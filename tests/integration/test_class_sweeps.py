"""Integration tests for the Class A and Class B sweeps (section 4.1).

The paper describes (without plotting) what these sweeps show; the
assertions pin the described trends on fixed seeds.
"""

import pytest

from repro.experiments.classes import class_a_configs, class_b_configs
from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


def spread(result):
    values = [
        result.mean_execution_time(name) for name in result.algorithms()
    ]
    return max(values) / min(values)


class TestClassA:
    """Vary link capacity and message size, CPU side fixed."""

    def test_communication_pressure_differentiates(self, runner):
        """Slow links + complex messages: the algorithms diverge hard."""
        configs = class_a_configs(
            repetitions=4, speeds=(1e6,), message_scales=("complex",)
        )
        result = runner.run(configs[0])
        assert spread(result) > 3.0
        # HOLM dodges the expensive messages entirely
        assert result.mean_execution_time(
            "HeavyOps-LargeMsgs"
        ) < 0.3 * result.mean_execution_time("FairLoad")

    def test_cheap_communication_converges(self, runner):
        """Gigabit links: every algorithm lands in the same place."""
        for scale in ("simple", "complex"):
            configs = class_a_configs(
                repetitions=4, speeds=(1000e6,), message_scales=(scale,)
            )
            result = runner.run(configs[0])
            assert spread(result) < 1.02, scale

    def test_small_messages_blunt_the_slow_link(self, runner):
        """Even at 1 Mbps, simple SOAP messages barely differentiate."""
        configs = class_a_configs(
            repetitions=4, speeds=(1e6,), message_scales=("simple",)
        )
        result = runner.run(configs[0])
        assert spread(result) < 1.5


class TestClassB:
    """Vary CPU power and workload, communication side fixed."""

    def test_execution_scales_with_cycles_over_power(self, runner):
        """Texecute tracks C(O)/P(S): 100x the cycles ~ 100x the time,
        3x the power ~ a third of the time."""
        points = {
            (cycles, power): runner.run(
                class_b_configs(
                    repetitions=4, cycles=(cycles,), powers=(power,)
                )[0]
            ).mean_execution_time("FairLoad")
            for cycles in (5e6, 500e6)
            for power in (1e9, 3e9)
        }
        assert points[(500e6, 1e9)] / points[(5e6, 1e9)] == pytest.approx(
            100.0, rel=0.15
        )
        assert points[(5e6, 1e9)] / points[(5e6, 3e9)] == pytest.approx(
            3.0, rel=0.25
        )

    def test_cpu_side_does_not_differentiate_algorithms(self, runner):
        """With communication pinned cheap, the heuristics are
        near-indistinguishable at every CPU point -- why the paper
        reports Class C only."""
        for cycles in (5e6, 500e6):
            for power in (1e9, 3e9):
                result = runner.run(
                    class_b_configs(
                        repetitions=4, cycles=(cycles,), powers=(power,)
                    )[0]
                )
                assert spread(result) < 1.30, (cycles, power)

    def test_heavier_work_shrinks_relative_spread(self, runner):
        """Fixed communication cost amortises over bigger computations."""
        light = runner.run(
            class_b_configs(repetitions=4, cycles=(5e6,), powers=(1e9,))[0]
        )
        heavy = runner.run(
            class_b_configs(repetitions=4, cycles=(500e6,), powers=(1e9,))[0]
        )
        assert spread(heavy) < spread(light)
