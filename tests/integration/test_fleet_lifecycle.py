"""End-to-end fleet lifecycle: deploy, failure, recovery, join, rebalance.

Drives a single :class:`~repro.service.controller.FleetController` through
the full tenancy lifecycle the issue describes: three tenants deployed, a
server killed (orphans must be re-homed onto survivors), a fresh server
joined (opportunistic spreading), and finally a forced drift rebalance that
must improve the fleet objective without moving more operations than the
churn it reports.
"""

import pytest

from repro.core.workflow import Operation, Workflow
from repro.network.topology import bus_network
from repro.service.controller import FleetConfig, FleetController, StepClock
from repro.service.events import (
    DeployRequest,
    ServerFailed,
    ServerJoined,
    Tick,
)


def _line(name, cycles, bits=50_000):
    workflow = Workflow(name)
    previous = None
    for index, value in enumerate(cycles, start=1):
        operation = workflow.add_operation(Operation(f"O{index}", value))
        if previous is not None:
            workflow.connect(previous.name, operation.name, bits)
        previous = operation
    return workflow


@pytest.fixture
def tenants():
    """Three tenants sized like the paper's Table 6 workflows."""
    return {
        "crm": _line("crm", [10e6, 20e6, 30e6, 20e6]),
        "billing": _line("billing", [30e6, 30e6, 10e6]),
        "search": _line("search", [20e6, 10e6, 20e6, 10e6, 20e6]),
    }


def deployments_snapshot(controller):
    """Current ``{tenant: {operation: server}}`` mapping of the fleet."""
    return {
        name: controller.state.tenant(name).deployment.as_dict()
        for name in controller.state.tenants
    }


class TestFleetLifecycle:
    def test_failure_recovery_join_and_rebalance(self, tenants):
        network = bus_network([1e9, 2e9, 2e9, 3e9], 100e6, name="lifecycle")
        config = FleetConfig(drift_threshold=0.0, max_moves_per_rebalance=4)
        controller = FleetController(network, config=config, clock=StepClock())

        # 1. three tenants admitted, every deployment complete
        for tenant, workflow in tenants.items():
            record = controller.handle(DeployRequest(tenant, workflow))
            assert record.action == "admitted", record.to_line()
        assert len(controller.state) == 3

        # 2. kill a server: orphans re-homed, loads stay over survivors only
        record = controller.handle(ServerFailed("S2"))
        assert record.action == "recovered"
        assert int(record.detail("orphans")) > 0
        survivors = set(controller.state.network.server_names)
        assert "S2" not in survivors
        for tenant, workflow in tenants.items():
            deployment = controller.state.tenant(tenant).deployment
            assert deployment.is_complete(workflow)
            assert set(deployment.used_servers()) <= survivors
        loads = controller.state.combined_loads()
        assert set(loads) == survivors
        assert all(load >= 0.0 for load in loads.values())

        # 3. a fresh server joins and is wired into the bus
        record = controller.handle(ServerJoined("S9", 2e9, 100e6))
        assert record.action == "joined"
        assert "S9" in controller.state.network
        assert controller.state.network.is_connected()

        # 4. skew the fleet (a tenant piled onto the slowest server), then a
        #    forced rebalance must improve the objective within its churn
        from repro.core.mapping import Deployment

        batch = _line("batch", [25e6, 25e6, 25e6])
        controller.state.add_tenant(
            "batch", batch, Deployment.all_on_one(batch, "S1")
        )
        before = deployments_snapshot(controller)
        objective_before = controller.state.snapshot().objective
        record = controller.handle(Tick())
        assert record.action == "rebalanced"
        churn = int(record.detail("churn"))
        assert 1 <= churn <= config.max_moves_per_rebalance
        after = deployments_snapshot(controller)
        moved = sum(
            1
            for tenant in before
            for operation in before[tenant]
            if before[tenant][operation] != after[tenant][operation]
        )
        assert moved <= churn
        objective_after = controller.state.snapshot().objective
        assert objective_after < objective_before
        # log details carry six decimals, so compare at that precision
        assert float(record.detail("gain")) == pytest.approx(
            objective_before - objective_after, abs=1e-6
        )

        # the full run is reflected in the metrics snapshot
        metrics = controller.metrics()
        assert metrics.admitted == 3
        assert metrics.failures_recovered == 1
        assert metrics.servers_joined == 1
        assert metrics.rebalances == 1
        assert metrics.tenants_hosted == 4
