"""End-to-end integration: full pipelines across all library layers."""

import random

import pytest

from repro.algorithms.base import algorithm_registry
from repro.algorithms.line_line import LineLine
from repro.core.constraints import ConstraintSet, MaxTimePenalty
from repro.core.cost import CostModel
from repro.experiments.multi_workflow import deploy_workflows
from repro.simulation.engine import SimulationEngine
from repro.workloads.gallery import healthcare_workflow, ministry_network
from repro.workloads.generator import (
    GraphStructure,
    line_workflow,
    random_graph_workflow,
    random_line_network,
)


def test_healthcare_pipeline_analytic_vs_simulated():
    """The motivating example (Fig. 1): deploy, cost, simulate, compare."""
    workflow = healthcare_workflow()
    network = ministry_network()
    model = CostModel(workflow, network)
    registry = algorithm_registry()
    for name in ("FairLoad", "FL-TieResolver2", "HeavyOps-LargeMsgs"):
        deployment = registry[name]().deploy(
            workflow, network, cost_model=model, rng=1
        )
        analytic = model.execution_time(deployment)
        engine = SimulationEngine(workflow, network, deployment)
        measured = engine.expected_makespan(runs=400, rng=2)
        assert measured == pytest.approx(analytic, rel=0.05), name


def test_simulation_confirms_analytic_ranking_on_slow_bus():
    """The DES must agree with the model about who wins on a congested
    bus -- the headline comparison of the whole paper."""
    from repro.network.topology import bus_network
    from repro.workloads.parameters import ClassCParameters

    parameters = ClassCParameters.paper().with_fixed_bus_speed(1e6)
    workflow = line_workflow(19, seed=5, parameters=parameters)
    network = bus_network([1e9, 2e9, 2e9, 3e9, 2e9], speed_bps=1e6)
    model = CostModel(workflow, network)
    registry = algorithm_registry()
    measured = {}
    for name in ("FairLoad", "HeavyOps-LargeMsgs"):
        deployment = registry[name]().deploy(
            workflow, network, cost_model=model, rng=3
        )
        measured[name] = (
            SimulationEngine(workflow, network, deployment).run().makespan
        )
    assert measured["HeavyOps-LargeMsgs"] < measured["FairLoad"]


def test_line_line_pipeline_with_simulation():
    workflow = line_workflow(12, seed=8)
    network = random_line_network(4, seed=9)
    model = CostModel(workflow, network)
    deployment = LineLine().deploy(workflow, network, cost_model=model)
    analytic = model.execution_time(deployment)
    measured = SimulationEngine(workflow, network, deployment).run().makespan
    assert measured == pytest.approx(analytic, rel=1e-9)


def test_constraint_filtered_deployment_selection():
    """Pick the fastest algorithm subject to a fairness constraint --
    the section 2.2 problem statement with a non-empty constraint set."""
    workflow = healthcare_workflow()
    network = ministry_network(speed_bps=1e6)
    model = CostModel(workflow, network)
    constraints = ConstraintSet([MaxTimePenalty(0.05)])
    registry = algorithm_registry()
    admissible = {}
    for name in (
        "FairLoad",
        "FL-TieResolver2",
        "FL-MergeMsgEnds",
        "HeavyOps-LargeMsgs",
    ):
        deployment = registry[name]().deploy(
            workflow, network, cost_model=model, rng=4
        )
        cost = model.evaluate(deployment)
        if constraints.satisfied(cost):
            admissible[name] = cost
    assert admissible, "at least one algorithm must satisfy the constraint"
    winner = min(admissible, key=lambda n: admissible[n].execution_time)
    assert admissible[winner].time_penalty <= 0.05


def test_multi_workflow_portfolio_deployment():
    """Section 6 extension: several workflows, one fair server pool."""
    from repro.algorithms.heavy_ops import HeavyOpsLargeMsgs

    workflows = [
        healthcare_workflow(),
        line_workflow(10, seed=11),
        random_graph_workflow(12, GraphStructure.HYBRID, seed=12),
    ]
    network = ministry_network()
    deployments, loads = deploy_workflows(
        workflows, network, HeavyOpsLargeMsgs(), rng=random.Random(13)
    )
    for workflow, deployment in zip(workflows, deployments):
        deployment.validate(workflow, network)
        # each workflow can be simulated under its own projection
        result = SimulationEngine(workflow, network, deployment).run()
        assert result.makespan > 0
    assert sum(loads.values()) > 0


def test_public_api_quickstart():
    """The README quickstart must keep working verbatim."""
    from repro import (
        CostModel as PublicCostModel,
        HeavyOpsLargeMsgs,
        bus_network,
        line_workflow as public_line_workflow,
    )

    workflow = public_line_workflow(19, seed=7)
    network = bus_network([1e9, 2e9, 2e9, 3e9, 2e9], speed_bps=100e6)
    mapping = HeavyOpsLargeMsgs().deploy(workflow, network)
    breakdown = PublicCostModel(workflow, network).evaluate(mapping)
    assert breakdown.execution_time > 0
    assert breakdown.objective > 0
