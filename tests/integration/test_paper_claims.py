"""Integration tests: the paper's qualitative claims must reproduce.

These are scaled-down versions of the Class C experiments (section 4.2)
with fixed seeds; each test asserts one sentence of the paper's
evaluation narrative. Absolute numbers differ (different generator,
different RNG), but the orderings and stability claims are the
reproduction target.
"""

import pytest

from repro.experiments.quality import QualityProtocol
from repro.experiments.runner import (
    DEFAULT_ALGORITHMS,
    ExperimentConfig,
    ExperimentRunner,
)

SLOW_BUS = 1e6
FAST_BUS = 100e6
GRAPH_KINDS = ("bushy", "lengthy", "hybrid")


def run(kind, speed, operations=19, servers=5, repetitions=8, seed=42):
    runner = ExperimentRunner(DEFAULT_ALGORITHMS + ("Random",))
    return runner.run(
        ExperimentConfig(
            workflow_kind=kind,
            num_operations=operations,
            num_servers=servers,
            bus_speed_bps=speed,
            repetitions=repetitions,
            seed=seed,
        )
    )


class TestSlowBusClaims:
    """1 Mbps bus: communication dominates (Figs. 6-8, left panels)."""

    @pytest.mark.parametrize("kind", ("line",) + GRAPH_KINDS)
    def test_holm_has_best_execution_time(self, kind):
        """'HeavyOps-LargeMsgs ... consistently the best choice in terms
        of execution time.'"""
        result = run(kind, SLOW_BUS)
        holm = result.mean_execution_time("HeavyOps-LargeMsgs")
        for name in result.algorithms():
            if name != "HeavyOps-LargeMsgs":
                assert holm < result.mean_execution_time(name), (kind, name)

    @pytest.mark.parametrize("kind", ("line",) + GRAPH_KINDS)
    def test_tie_resolvers_improve_execution_over_fair_load(self, kind):
        """'Both Tie Resolver algorithms provide some improvements.'"""
        result = run(kind, SLOW_BUS)
        fair = result.mean_execution_time("FairLoad")
        assert result.mean_execution_time("FL-TieResolver") < fair
        assert result.mean_execution_time("FL-TieResolver2") < fair

    @pytest.mark.parametrize("kind", ("line",) + GRAPH_KINDS)
    def test_flmme_trades_fairness_for_execution_time(self, kind):
        """'FL-Merge Messages' Ends improves the execution time ... by
        deteriorating the load balance.'"""
        result = run(kind, SLOW_BUS)
        assert result.mean_execution_time(
            "FL-MergeMsgEnds"
        ) < result.mean_execution_time("FL-TieResolver2")
        assert result.mean_time_penalty(
            "FL-MergeMsgEnds"
        ) > result.mean_time_penalty("FL-TieResolver2")

    @pytest.mark.parametrize("kind", ("line",) + GRAPH_KINDS)
    def test_fairness_tuned_algorithms_beat_random_on_fairness(self, kind):
        """Fair Load and the tie resolvers optimise fairness; HOLM and
        FLMME deliberately trade it away on slow buses, so they are not
        held to this claim."""
        result = run(kind, SLOW_BUS)
        random_penalty = result.mean_time_penalty("Random")
        for name in ("FairLoad", "FL-TieResolver", "FL-TieResolver2"):
            assert result.mean_time_penalty(name) < random_penalty, name

    @pytest.mark.parametrize("kind", ("line",) + GRAPH_KINDS)
    def test_smart_algorithms_beat_random_on_objective(self, kind):
        result = run(kind, SLOW_BUS)
        random_objective = result.mean_objective("Random")
        for name in (
            "FL-TieResolver",
            "FL-TieResolver2",
            "HeavyOps-LargeMsgs",
        ):
            assert result.mean_objective(name) < random_objective, name


class TestFastBusClaims:
    """100 Mbps bus: communication is cheap, fairness differentiates."""

    @pytest.mark.parametrize("kind", ("line",) + GRAPH_KINDS)
    def test_execution_times_converge(self, kind):
        """With cheap messages every load-balancing heuristic lands in
        the same execution-time ballpark."""
        result = run(kind, FAST_BUS)
        times = [
            result.mean_execution_time(name) for name in DEFAULT_ALGORITHMS
        ]
        assert max(times) / min(times) < 1.10

    @pytest.mark.parametrize("kind", ("line",) + GRAPH_KINDS)
    def test_holm_matches_best_fairness(self, kind):
        """'...slightly worse in this category' -- on fast buses HOLM's
        fairness ties the tie-resolvers' because grouping never triggers."""
        result = run(kind, FAST_BUS)
        best_penalty = min(
            result.mean_time_penalty(name) for name in DEFAULT_ALGORITHMS
        )
        holm = result.mean_time_penalty("HeavyOps-LargeMsgs")
        assert holm <= best_penalty * 1.25 + 1e-12


class TestProbabilityWeightingEffects:
    """Consequences of §3.4's 'Fair Load remains exactly the same'."""

    @pytest.mark.parametrize("kind", GRAPH_KINDS)
    def test_unweighted_fair_load_is_less_fair_on_graphs(self, kind):
        """Fair Load balances raw cycles while Load(s) is probability-
        weighted, so on XOR graphs the probability-aware tie resolvers
        achieve strictly better (weighted) fairness."""
        result = run(kind, FAST_BUS)
        fair = result.mean_time_penalty("FairLoad")
        for name in ("FL-TieResolver", "FL-TieResolver2"):
            assert result.mean_time_penalty(name) < fair, (kind, name)

    def test_no_such_gap_on_lines(self):
        """Without XOR weights the three coincide in fairness."""
        result = run("line", FAST_BUS)
        fair = result.mean_time_penalty("FairLoad")
        for name in ("FL-TieResolver", "FL-TieResolver2"):
            assert result.mean_time_penalty(name) == pytest.approx(
                fair, rel=1e-9
            ), name


class TestStabilityClaims:
    def test_holm_stable_as_k_grows(self):
        """'the behaviour of the HeavyOps-LargeMsgs algorithm remains
        quite stable even when the fraction of operations to servers
        (denoted as K) increases.'"""
        runner = ExperimentRunner(DEFAULT_ALGORITHMS)
        for operations in (10, 15, 19, 25, 30):
            result = runner.run(
                ExperimentConfig(
                    num_operations=operations,
                    num_servers=5,
                    bus_speed_bps=SLOW_BUS,
                    repetitions=6,
                    seed=77,
                )
            )
            holm = result.mean_execution_time("HeavyOps-LargeMsgs")
            best_other = min(
                result.mean_execution_time(name)
                for name in result.algorithms()
                if name != "HeavyOps-LargeMsgs"
            )
            assert holm < 0.5 * best_other, f"K={operations / 5}"

    def test_holm_wins_across_every_graph_structure(self):
        """Fig. 8: per-structure panels all crown the same winner."""
        for kind in GRAPH_KINDS:
            result = run(kind, SLOW_BUS, seed=99)
            assert result.winner_by_execution() == "HeavyOps-LargeMsgs", kind


class TestQualityClaims:
    """Section 4.2's deviation-from-sampled-optimum numbers (shape)."""

    def test_holm_execution_near_sampled_best_on_slow_bus(self):
        """At 1 Mbps HOLM's execution time matches the best sampled
        solution (paper: 2.9% worst-case deviation on Line-Bus)."""
        protocol = QualityProtocol(
            algorithms=("HeavyOps-LargeMsgs",), experiments=5, samples=1_000
        )
        report = protocol.run(
            ExperimentConfig(
                num_operations=19,
                num_servers=5,
                bus_speed_bps=SLOW_BUS,
                repetitions=1,
                seed=55,
            )
        )
        worst_exec, _ = report.worst_case("HeavyOps-LargeMsgs")
        assert worst_exec <= 0.05

    def test_holm_penalty_near_sampled_best_on_fast_bus(self):
        """At 100 Mbps HOLM's fairness matches the best sampled solution
        (paper: 0.3% / 0% deviations)."""
        protocol = QualityProtocol(
            algorithms=("HeavyOps-LargeMsgs",), experiments=5, samples=1_000
        )
        report = protocol.run(
            ExperimentConfig(
                num_operations=19,
                num_servers=5,
                bus_speed_bps=FAST_BUS,
                repetitions=1,
                seed=55,
            )
        )
        _, worst_penalty = report.worst_case("HeavyOps-LargeMsgs")
        assert worst_penalty <= 0.01

    def test_fair_load_penalty_is_sampled_best_or_better(self):
        protocol = QualityProtocol(
            algorithms=("FairLoad",), experiments=5, samples=1_000
        )
        report = protocol.run(
            ExperimentConfig(
                num_operations=19,
                num_servers=5,
                bus_speed_bps=SLOW_BUS,
                repetitions=1,
                seed=55,
            )
        )
        _, worst_penalty = report.worst_case("FairLoad")
        assert worst_penalty <= 1e-9
