"""The tutorial's code blocks must actually run.

Extracts every ```python block from docs/TUTORIAL.md and executes them
sequentially in one shared namespace (inside a temp directory, since one
block writes figure files). If the tutorial drifts from the API, this
fails.
"""

import os
import pathlib
import re

TUTORIAL = (
    pathlib.Path(__file__).resolve().parent.parent.parent
    / "docs"
    / "TUTORIAL.md"
)

BLOCK_PATTERN = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks():
    return BLOCK_PATTERN.findall(TUTORIAL.read_text())


def test_tutorial_has_code_blocks():
    assert len(python_blocks()) >= 6


def test_tutorial_blocks_execute(tmp_path):
    blocks = python_blocks()
    namespace: dict = {}
    cwd = os.getcwd()
    os.chdir(tmp_path)  # reproduce_all writes a directory
    try:
        for index, block in enumerate(blocks):
            try:
                exec(compile(block, f"<tutorial block {index}>", "exec"), namespace)
            except Exception as exc:  # pragma: no cover - diagnostic path
                raise AssertionError(
                    f"tutorial block {index} failed: {exc}\n---\n{block}"
                ) from exc
    finally:
        os.chdir(cwd)
    # spot-check a few artefacts the narrative promises
    assert namespace["workflow"].is_dag()
    assert namespace["mapping"].is_complete(namespace["line"])
    assert (tmp_path / "figures_out").is_dir()
