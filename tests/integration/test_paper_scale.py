"""Full paper-scale protocol runs, gated behind ``REPRO_PAPER_SCALE=1``.

The regular suite runs the section 4.1 quality protocol at a reduced
scale; set the environment variable to re-run it at the paper's exact
sizes (50 experiments x 32 000 sampled solutions per configuration --
several minutes per test).

Thresholds follow the paper's quality table (section 4.2) in *shape*:
on the congested bus HOLM's execution time must track the sampled best
(paper: 2.9 % line / 29 % graph); on the fast bus its fairness must be
near-optimal. Fairness is asserted through the load-normalised penalty
gap -- the raw relative deviation is ill-conditioned at this sample
count (see docs/PAPER_NOTES.md).
"""

import os

import pytest

from repro.experiments.quality import QualityProtocol
from repro.experiments.runner import ExperimentConfig

paper_scale = pytest.mark.skipif(
    not bool(int(os.environ.get("REPRO_PAPER_SCALE", "0"))),
    reason="set REPRO_PAPER_SCALE=1 to run the 50 x 32000 protocol",
)


@paper_scale
@pytest.mark.parametrize("kind", ("line", "hybrid"))
def test_full_scale_quality_protocol(kind):
    protocol = QualityProtocol(
        algorithms=("HeavyOps-LargeMsgs", "FairLoad"),
        experiments=50,
        samples=32_000,
    )
    for speed in (1e6, 100e6):
        config = ExperimentConfig(
            workflow_kind=kind,
            num_operations=19,
            num_servers=5,
            bus_speed_bps=speed,
            repetitions=1,
            seed=55,
        )
        report = protocol.run(config)
        worst_exec, _ = report.worst_case("HeavyOps-LargeMsgs")
        holm_gap = report.worst_penalty_gap("HeavyOps-LargeMsgs")
        if speed == 1e6:
            # paper: 2.9% (line) / 29% (graph) execution deviation; we
            # measure ~0% -- HOLM tracks or beats the sampled best
            assert worst_exec <= 0.30
        else:
            # paper: (29%, 0.3%) / (0%, 0%) -- on fast buses HOLM's
            # fairness is near the sampled best; execution deviation may
            # reach the paper's ~30%
            assert holm_gap <= 0.05
            assert worst_exec <= 0.60
        # Fair Load's fairness gap stays small on lines. On random
        # graphs it is measurably worse: section 3.4 keeps Fair Load
        # "exactly the same", balancing *raw* cycles, while Load(s) is
        # probability-weighted -- so rarely-executed branches skew its
        # weighted loads (measured worst gap ~39% on hybrid graphs).
        limit = 0.20 if kind == "line" else 0.45
        assert report.worst_penalty_gap("FairLoad") <= limit
