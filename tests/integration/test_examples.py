"""Every example script must run clean -- they are living documentation."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable floor


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=lambda path: path.name
)
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples must print their results"
    assert "Traceback" not in completed.stderr
