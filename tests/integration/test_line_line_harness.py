"""Integration: the §3.2 Line--Line setting through the experiment harness."""

import pytest

from repro.algorithms.line_line import LineLine
from repro.experiments.runner import ExperimentConfig, ExperimentRunner


@pytest.fixture(scope="module")
def result():
    runner = ExperimentRunner(
        [
            LineLine(fix_bridges=False, direction="ltr"),
            LineLine(fix_bridges=True, direction="best"),
            "FairLoad",
            "HeavyOps-LargeMsgs",
        ]
    )
    config = ExperimentConfig(
        workflow_kind="line",
        network_kind="line",
        num_operations=19,
        num_servers=5,
        repetitions=8,
        seed=31,
    )
    return runner.run(config)


def test_line_network_instances_are_lines(result):
    _, network = result.config.instance(0)
    assert network.is_line()


def test_all_algorithms_complete_on_line_networks(result):
    # the instance-name suite: both LineLine variants share a registry
    # name, so records are keyed per-entry order
    assert len(result.records) == 4 * 8
    for record in result.records:
        assert record.cost.execution_time > 0


def test_full_line_line_beats_phase1_only(result):
    """Best-of-directions + bridge repair is never worse on average."""
    # both variants carry the same registry name; compare via run order:
    # records alternate per algorithm in suite order for each repetition
    by_position = {}
    suite_size = 4
    for index, record in enumerate(result.records):
        by_position.setdefault(index % suite_size, []).append(record)
    phase1_only = by_position[0]
    full = by_position[1]

    def mean_objective(records):
        return sum(r.cost.objective for r in records) / len(records)

    assert mean_objective(full) <= mean_objective(phase1_only) + 1e-12


def test_bus_algorithms_work_on_lines_via_routing(result):
    """Fair Load and HOLM route messages over multi-hop line paths."""
    by_position = {}
    for index, record in enumerate(result.records):
        by_position.setdefault(index % 4, []).append(record)
    for position in (2, 3):
        for record in by_position[position]:
            assert record.cost.execution_time > 0
            assert record.deployment is not None
