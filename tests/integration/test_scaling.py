"""Integration: the library handles instances well beyond the paper's size.

The paper evaluates up to 19 operations over 5 servers. A downstream
user will throw hundreds of operations at the library; these tests pin
that everything still works (and finishes) at that scale -- correctness
at scale, not speed assertions.
"""

import pytest

from repro.algorithms.base import algorithm_registry
from repro.core.cost import CostModel
from repro.core.validation import check_well_formed
from repro.simulation.engine import SimulationEngine
from repro.workloads.generator import (
    GraphStructure,
    line_workflow,
    random_bus_network,
    random_graph_workflow,
)

SUITE = (
    "FairLoad",
    "FL-TieResolver",
    "FL-TieResolver2",
    "FL-MergeMsgEnds",
    "HeavyOps-LargeMsgs",
)


@pytest.fixture(scope="module")
def big_line():
    workflow = line_workflow(200, seed=1)
    network = random_bus_network(10, seed=2)
    return workflow, network, CostModel(workflow, network)


@pytest.fixture(scope="module")
def big_graph():
    workflow = random_graph_workflow(150, GraphStructure.HYBRID, seed=3)
    network = random_bus_network(8, seed=4)
    return workflow, network, CostModel(workflow, network)


def test_big_graph_generation_is_well_formed(big_graph):
    workflow, _, _ = big_graph
    assert len(workflow) == 150
    report = check_well_formed(workflow)
    assert report.ok, report.problems


@pytest.mark.parametrize("name", SUITE)
def test_suite_handles_200_operation_lines(big_line, name):
    workflow, network, model = big_line
    deployment = algorithm_registry()[name]().deploy(
        workflow, network, cost_model=model, rng=1
    )
    deployment.validate(workflow, network)
    cost = model.evaluate(deployment)
    assert cost.execution_time > 0


@pytest.mark.parametrize("name", SUITE)
def test_suite_handles_150_operation_graphs(big_graph, name):
    workflow, network, model = big_graph
    deployment = algorithm_registry()[name]().deploy(
        workflow, network, cost_model=model, rng=1
    )
    deployment.validate(workflow, network)


def test_simulator_handles_big_graphs(big_graph):
    workflow, network, model = big_graph
    deployment = algorithm_registry()["HeavyOps-LargeMsgs"]().deploy(
        workflow, network, cost_model=model, rng=1
    )
    result = SimulationEngine(workflow, network, deployment).run(rng=1)
    assert result.makespan > 0
    assert len(result.records) <= len(workflow)


def test_fairness_quality_holds_at_scale(big_line):
    """Worst-fit keeps load deviation below one heaviest op even at M=200."""
    workflow, network, model = big_line
    deployment = algorithm_registry()["FairLoad"]().deploy(
        workflow, network, cost_model=model
    )
    loads = model.loads(deployment)
    mean = sum(loads.values()) / len(loads)
    heaviest_time = max(op.cycles for op in workflow) / min(
        s.power_hz for s in network
    )
    assert all(abs(v - mean) <= heaviest_time for v in loads.values())
