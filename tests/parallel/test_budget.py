"""Budget slicing, shared-ledger accounting and the overshoot bound."""

from __future__ import annotations

import pytest

from repro.algorithms.runtime import (
    STOP_CANCELLED,
    STOP_MAX_EVALS,
    CancelToken,
    SearchBudget,
    SearchProgress,
)
from repro.parallel.budget import (
    STOP_TARGET,
    InlineLedger,
    WorkerBridge,
    slice_budget,
)


def _progress(evaluations, best_value=None):
    return SearchProgress(
        steps=evaluations,
        evaluations=evaluations,
        best_value=best_value,
        elapsed_s=0.0,
    )


class TestSliceBudget:
    def test_none_budget_passes_through(self):
        assert slice_budget(None, 4, 0) is None

    def test_even_division(self):
        budget = SearchBudget(max_evals=100)
        shares = [slice_budget(budget, 4, i).max_evals for i in range(4)]
        assert shares == [25, 25, 25, 25]

    def test_remainder_goes_to_lowest_indices(self):
        budget = SearchBudget(max_evals=10, max_steps=7)
        slices = [slice_budget(budget, 3, i) for i in range(3)]
        assert [s.max_evals for s in slices] == [4, 3, 3]
        assert [s.max_steps for s in slices] == [3, 2, 2]
        assert sum(s.max_evals for s in slices) == 10
        assert sum(s.max_steps for s in slices) == 7

    def test_floor_of_one_for_surplus_workers(self):
        budget = SearchBudget(max_evals=2)
        shares = [slice_budget(budget, 4, i).max_evals for i in range(4)]
        assert shares == [1, 1, 1, 1]

    def test_deadline_is_shared_not_divided(self):
        budget = SearchBudget(deadline_s=1.5, max_evals=8)
        share = slice_budget(budget, 4, 2)
        assert share.deadline_s == 1.5
        assert share.max_evals == 2

    def test_unlimited_dimensions_stay_unlimited(self):
        share = slice_budget(SearchBudget(max_evals=8), 2, 0)
        assert share.max_steps is None

    def test_index_out_of_range_rejected(self):
        budget = SearchBudget(max_evals=8)
        with pytest.raises(ValueError):
            slice_budget(budget, 2, 2)
        with pytest.raises(ValueError):
            slice_budget(budget, 2, -1)

    def test_pure_function_of_inputs(self):
        budget = SearchBudget(max_evals=1000, max_steps=99)
        assert slice_budget(budget, 8, 5) == slice_budget(budget, 8, 5)


class TestInlineLedger:
    def test_accumulates_and_trips_cap(self):
        ledger = InlineLedger(max_evals=10)
        ledger.record(6)
        assert ledger.evaluations == 6
        assert not ledger.stop_requested
        ledger.record(4)
        assert ledger.stop_requested
        assert ledger.stop_reason == STOP_MAX_EVALS

    def test_zero_and_negative_deltas_ignored(self):
        ledger = InlineLedger(max_evals=5)
        ledger.record(0)
        ledger.record(-3)
        assert ledger.evaluations == 0

    def test_first_stop_reason_sticks(self):
        ledger = InlineLedger()
        ledger.request_stop(STOP_CANCELLED)
        ledger.request_stop(STOP_TARGET)
        assert ledger.stop_reason == STOP_CANCELLED

    def test_uncapped_ledger_never_trips_on_record(self):
        ledger = InlineLedger()
        ledger.record(10_000)
        assert not ledger.stop_requested


class TestWorkerBridge:
    def test_flushes_in_batches(self):
        ledger = InlineLedger()
        bridge = WorkerBridge(ledger, CancelToken(), flush_every=10)
        bridge(_progress(9))
        assert ledger.evaluations == 0
        bridge(_progress(10))
        assert ledger.evaluations == 10
        bridge(_progress(19))
        assert ledger.evaluations == 10
        bridge.finish(19)
        assert ledger.evaluations == 19

    def test_overshoot_bounded_by_one_batch_per_worker(self):
        """The satellite's accounting bound, as a pure unit test.

        Two workers share a 100-eval cap with flush_every=16. Each
        worker runs until its local cancel token trips; the global
        count must never exceed max_evals + workers * flush_every.
        """
        workers, flush_every, max_evals = 2, 16, 100
        ledger = InlineLedger(max_evals=max_evals)
        totals = []
        for _ in range(workers):
            cancel = CancelToken()
            bridge = WorkerBridge(ledger, cancel, flush_every=flush_every)
            evaluations = 0
            while not cancel.cancelled and evaluations < 10_000:
                evaluations += 1
                bridge(_progress(evaluations))
            bridge.finish(evaluations)
            totals.append(evaluations)
        assert ledger.stop_reason == STOP_MAX_EVALS
        assert ledger.evaluations == sum(totals)
        assert ledger.evaluations <= max_evals + workers * flush_every

    def test_target_stop_trips_ledger_and_cancel(self):
        ledger = InlineLedger()
        cancel = CancelToken()
        bridge = WorkerBridge(
            ledger, cancel, flush_every=1000, target_value=5.0
        )
        bridge(_progress(3, best_value=7.0))
        assert not ledger.stop_requested
        bridge(_progress(4, best_value=5.0))
        assert ledger.stop_reason == STOP_TARGET
        assert cancel.cancelled
        assert cancel.reason == STOP_TARGET

    def test_shared_stop_propagates_into_cancel_token(self):
        ledger = InlineLedger()
        cancel = CancelToken()
        bridge = WorkerBridge(ledger, cancel, flush_every=5)
        ledger.request_stop(STOP_CANCELLED)
        bridge(_progress(5))
        assert cancel.cancelled
        assert cancel.reason == STOP_CANCELLED

    def test_chain_callback_still_invoked(self):
        seen = []
        bridge = WorkerBridge(
            InlineLedger(), CancelToken(), flush_every=5, chain=seen.append
        )
        progress = _progress(1)
        bridge(progress)
        assert seen == [progress]

    def test_flush_every_validated(self):
        from repro.exceptions import AlgorithmError

        with pytest.raises(AlgorithmError):
            WorkerBridge(InlineLedger(), CancelToken(), flush_every=0)
