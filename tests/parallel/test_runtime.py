"""Unit contracts of the orchestration layer: curves, runtime modes."""

from __future__ import annotations

import pytest

from repro.parallel.runtime import ParallelRuntime, merge_curves


class TestMergeCurves:
    def test_single_curve_passes_through_strict_improvements(self):
        curve = ((1, 10.0), (3, 8.0), (5, 8.0), (7, 6.0))
        assert merge_curves([curve]) == ((1, 10.0), (3, 8.0), (7, 6.0))

    def test_merges_by_step_then_worker(self):
        fast = ((1, 9.0), (2, 5.0))
        slow = ((1, 7.0), (4, 3.0))
        # step 1: worker 0's 9.0 improves, worker 1's 7.0 improves;
        # step 2: 5.0 improves; step 4: 3.0 improves
        assert merge_curves([fast, slow]) == (
            (1, 9.0),
            (1, 7.0),
            (2, 5.0),
            (4, 3.0),
        )

    def test_non_improvements_are_dropped(self):
        a = ((1, 5.0),)
        b = ((2, 6.0), (3, 4.0))
        assert merge_curves([a, b]) == ((1, 5.0), (3, 4.0))

    def test_empty_curves(self):
        assert merge_curves([]) == ()
        assert merge_curves([(), ()]) == ()


class TestParallelRuntime:
    def test_workers_one_forces_inline(self):
        runtime = ParallelRuntime(1)
        assert runtime.inline
        runtime.close()

    def test_workers_validated(self):
        with pytest.raises(Exception):
            ParallelRuntime(0)

    def test_inline_map_plain_preserves_order(self):
        runtime = ParallelRuntime(2, inline=True)
        try:
            assert runtime.map_plain(_double, [1, 2, 3]) == [2, 4, 6]
        finally:
            runtime.close()

    def test_inline_ledger_for_inline_mode(self):
        from repro.parallel.budget import InlineLedger

        runtime = ParallelRuntime(2, inline=True)
        try:
            assert isinstance(runtime.make_ledger(), InlineLedger)
        finally:
            runtime.close()

    def test_close_is_idempotent(self):
        runtime = ParallelRuntime(2, inline=True)
        runtime.close()
        runtime.close()


def _double(x):
    return 2 * x
