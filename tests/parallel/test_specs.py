"""AlgorithmSpec / ShardPlan validation and the default portfolio."""

from __future__ import annotations

import pickle

import pytest

from repro.algorithms.genetic import GeneticAlgorithm
from repro.algorithms.local_search import HillClimbing
from repro.exceptions import AlgorithmError
from repro.parallel.specs import (
    DEFAULT_PORTFOLIO,
    PLAN_KINDS,
    AlgorithmSpec,
    ShardPlan,
    auto_plan,
)


class TestAlgorithmSpec:
    def test_of_builds_configured_instance(self):
        spec = AlgorithmSpec.of("Genetic", generations=5, population_size=8)
        algorithm = spec.build()
        assert isinstance(algorithm, GeneticAlgorithm)
        assert algorithm.generations == 5
        assert algorithm.population_size == 8

    def test_of_with_seed_algorithm(self):
        spec = AlgorithmSpec.of(
            "HillClimbing", seed_algorithm="HeavyOps-LargeMsgs"
        )
        assert isinstance(spec.build(), HillClimbing)
        assert spec.label == "HillClimbing@HeavyOps-LargeMsgs"

    def test_parse_round_trips_label(self):
        spec = AlgorithmSpec.parse("SimulatedAnnealing@FL-TieResolver2")
        assert spec.name == "SimulatedAnnealing"
        assert spec.seed_algorithm == "FL-TieResolver2"
        assert AlgorithmSpec.parse(spec.label) == spec

    def test_parse_plain_name(self):
        spec = AlgorithmSpec.parse("Genetic")
        assert spec.name == "Genetic"
        assert spec.seed_algorithm is None

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(AlgorithmError):
            AlgorithmSpec.of("NoSuchAlgorithm")

    def test_unknown_seed_algorithm_rejected(self):
        with pytest.raises(AlgorithmError):
            AlgorithmSpec.of("HillClimbing", seed_algorithm="NoSuchSeed")

    def test_seed_algorithm_on_non_refiner_rejected(self):
        # the constructive greedy takes no seed_algorithm hook
        with pytest.raises(AlgorithmError):
            AlgorithmSpec.of(
                "HeavyOps-LargeMsgs", seed_algorithm="FL-TieResolver2"
            )

    def test_unknown_parameter_rejected(self):
        with pytest.raises(AlgorithmError):
            AlgorithmSpec.of("Genetic", warp_factor=9)

    def test_spec_is_picklable_and_hashable(self):
        spec = AlgorithmSpec.of("Genetic", generations=3)
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert hash(spec) == hash(AlgorithmSpec.of("Genetic", generations=3))


class TestShardPlan:
    def test_coerce_from_kind_string(self):
        for kind in PLAN_KINDS:
            assert ShardPlan.coerce(kind).kind == kind

    def test_coerce_passthrough_and_none(self):
        plan = ShardPlan(kind="islands", migration_every=3)
        assert ShardPlan.coerce(plan) is plan
        assert ShardPlan.coerce(None) is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(AlgorithmError):
            ShardPlan.coerce("butterfly")
        with pytest.raises(AlgorithmError):
            ShardPlan(kind="butterfly")

    def test_auto_plan_matches_algorithm_family(self):
        assert auto_plan("Genetic").kind == "islands"
        assert auto_plan("HillClimbing").kind == "restarts"
        assert auto_plan("HeavyOps-LargeMsgs").kind == "restarts"


class TestDefaultPortfolio:
    def test_every_entry_builds(self):
        for spec in DEFAULT_PORTFOLIO:
            assert spec.build() is not None

    def test_labels_are_unique(self):
        labels = [spec.label for spec in DEFAULT_PORTFOLIO]
        assert len(labels) == len(set(labels))

    def test_mixes_constructive_seeds_and_families(self):
        seeded = [s for s in DEFAULT_PORTFOLIO if s.seed_algorithm]
        assert seeded, "portfolio should include constructive-seeded racers"
        names = {s.name for s in DEFAULT_PORTFOLIO}
        assert {"HillClimbing", "SimulatedAnnealing", "Genetic"} <= names
