"""End-to-end contracts of ``deploy_parallel`` / ``race_portfolio``.

Everything except one process-pool parity check runs in *inline* mode:
the same task protocol and shared-ledger accounting, executed
sequentially in this process -- deterministic, fast, and exactly what
the pool executes (the parity test pins that equivalence).
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.algorithms.runtime import (
    STOP_CANCELLED,
    STOP_DEADLINE,
    STOP_MAX_EVALS,
    CancelToken,
    SearchBudget,
)
from repro.core.clock import StepClock
from repro.core.cost import CostModel
from repro.core.rng import coerce_rng
from repro.exceptions import AlgorithmError
from repro.parallel import (
    STOP_TARGET,
    AlgorithmSpec,
    deploy_parallel,
    race_portfolio,
)
from repro.parallel.budget import DEFAULT_FLUSH_EVERY


@pytest.fixture
def model(line5, bus5):
    return CostModel(line5, bus5)


def _strip(report):
    """Reports minus wall-clock time (the only non-deterministic field)."""
    return (
        None
        if report is None
        else dataclasses.replace(report, elapsed_s=0.0)
    )


SPECS = (
    "HillClimbing@HeavyOps-LargeMsgs",
    "SimulatedAnnealing",
    "Genetic",
    "HeavyOps-LargeMsgs",  # constructive: deploy_with_report returns None
)


class TestWorkersOneIdentity:
    @pytest.mark.parametrize("text", SPECS)
    def test_byte_identical_to_serial_call(self, line5, bus5, model, text):
        spec = AlgorithmSpec.parse(text)
        outcome = deploy_parallel(
            spec, line5, bus5, cost_model=model, workers=1, seed=5
        )
        deployment, report = spec.build().deploy_with_report(
            line5, bus5, cost_model=model, rng=coerce_rng(5)
        )
        assert outcome.best.as_dict() == deployment.as_dict()
        assert _strip(outcome.report) == _strip(report)
        assert outcome.parallel.plan == "serial"
        assert outcome.parallel.workers == 1

    def test_accepts_live_rng_like_the_serial_api(self, line5, bus5, model):
        outcome = deploy_parallel(
            "HillClimbing",
            line5,
            bus5,
            cost_model=model,
            workers=1,
            seed=random.Random(5),
        )
        deployment = AlgorithmSpec.parse("HillClimbing").build().deploy(
            line5, bus5, cost_model=model, rng=random.Random(5)
        )
        assert outcome.best.as_dict() == deployment.as_dict()


class TestReproducibility:
    def test_sharded_run_is_a_pure_function_of_seed(
        self, line5, bus5, model
    ):
        def run():
            return deploy_parallel(
                "SimulatedAnnealing",
                line5,
                bus5,
                cost_model=model,
                workers=2,
                seed=9,
                budget=SearchBudget(max_evals=400),
                inline=True,
            )

        first, second = run(), run()
        assert first.best.as_dict() == second.best.as_dict()
        assert first.best_value == second.best_value
        assert _strip(first.report) == _strip(second.report)
        assert [r.label for r in first.parallel.runs] == [
            r.label for r in second.parallel.runs
        ]

    def test_islands_run_is_reproducible(self, line5, bus5, model):
        def run():
            return deploy_parallel(
                AlgorithmSpec.of(
                    "Genetic", generations=8, population_size=8
                ),
                line5,
                bus5,
                cost_model=model,
                workers=2,
                seed=9,
                plan="islands",
                inline=True,
            )

        first, second = run(), run()
        assert first.best.as_dict() == second.best.as_dict()
        assert _strip(first.report) == _strip(second.report)

    def test_partition_run_is_reproducible(self, line5, bus5, model):
        def run():
            return deploy_parallel(
                "HillClimbing@HeavyOps-LargeMsgs",
                line5,
                bus5,
                cost_model=model,
                workers=2,
                seed=9,
                plan="partition",
                inline=True,
            )

        first, second = run(), run()
        assert first.best.as_dict() == second.best.as_dict()
        assert _strip(first.report) == _strip(second.report)

    def test_live_rng_rejected_for_sharded_runs(self, line5, bus5, model):
        with pytest.raises(AlgorithmError):
            deploy_parallel(
                "SimulatedAnnealing",
                line5,
                bus5,
                cost_model=model,
                workers=2,
                seed=random.Random(5),
                inline=True,
            )


class TestBudgetEnforcement:
    def test_eval_cap_never_overshoots_by_more_than_a_batch_per_worker(
        self, line5, bus5, model
    ):
        workers, max_evals = 2, 300
        outcome = deploy_parallel(
            "SimulatedAnnealing",
            line5,
            bus5,
            cost_model=model,
            workers=workers,
            seed=1,
            budget=SearchBudget(max_evals=max_evals),
            inline=True,
        )
        assert outcome.report.stop_reason == STOP_MAX_EVALS
        assert (
            outcome.report.evaluations
            <= max_evals + workers * DEFAULT_FLUSH_EVERY
        )

    def test_deadline_stops_workers_on_injected_clock(
        self, line5, bus5, model
    ):
        # every clock reading advances 10ms; a 50ms deadline fires after
        # a handful of steps regardless of machine speed
        outcome = deploy_parallel(
            "SimulatedAnnealing",
            line5,
            bus5,
            cost_model=model,
            workers=2,
            seed=1,
            budget=SearchBudget(deadline_s=0.05),
            inline=True,
            clock=StepClock(step_s=0.01),
        )
        assert outcome.report.stop_reason == STOP_DEADLINE
        assert outcome.best is not None
        assert outcome.best_value > 0

    def test_precancelled_token_still_yields_a_deployment(
        self, line5, bus5, model
    ):
        cancel = CancelToken()
        cancel.cancel()
        outcome = deploy_parallel(
            "SimulatedAnnealing",
            line5,
            bus5,
            cost_model=model,
            workers=2,
            seed=1,
            cancel=cancel,
            inline=True,
        )
        assert outcome.report.stop_reason == STOP_CANCELLED
        assert outcome.best is not None

    def test_precancelled_islands_still_yield_a_deployment(
        self, line5, bus5, model
    ):
        cancel = CancelToken()
        cancel.cancel()
        outcome = deploy_parallel(
            AlgorithmSpec.of("Genetic", generations=30),
            line5,
            bus5,
            cost_model=model,
            workers=2,
            seed=1,
            plan="islands",
            cancel=cancel,
            inline=True,
        )
        assert outcome.report.stop_reason == STOP_CANCELLED
        assert outcome.best is not None

    def test_target_value_stops_the_race(self, line5, bus5, model):
        # a target above any feasible objective is reached immediately
        outcome = deploy_parallel(
            "SimulatedAnnealing",
            line5,
            bus5,
            cost_model=model,
            workers=2,
            seed=1,
            target_value=1e9,
            budget=SearchBudget(max_steps=10_000),
            inline=True,
        )
        assert outcome.report.stop_reason == STOP_TARGET


class TestPlanValidation:
    def test_islands_require_the_genetic_algorithm(self, line5, bus5, model):
        with pytest.raises(AlgorithmError):
            deploy_parallel(
                "SimulatedAnnealing",
                line5,
                bus5,
                cost_model=model,
                workers=2,
                seed=1,
                plan="islands",
                inline=True,
            )

    def test_partition_requires_hill_climbing(self, line5, bus5, model):
        with pytest.raises(AlgorithmError):
            deploy_parallel(
                "Genetic",
                line5,
                bus5,
                cost_model=model,
                workers=2,
                seed=1,
                plan="partition",
                inline=True,
            )


class TestPortfolio:
    def test_default_portfolio_race(self, line5, bus5, model):
        outcome = race_portfolio(
            line5,
            bus5,
            cost_model=model,
            workers=2,
            seed=4,
            budget=SearchBudget(max_evals=600),
            inline=True,
        )
        labels = [run.label for run in outcome.parallel.runs]
        assert len(labels) == len(set(labels))
        winner = outcome.parallel.runs[outcome.parallel.winner]
        assert winner.value == outcome.best_value
        assert outcome.best_value == min(r.value for r in outcome.parallel.runs)

    def test_explicit_portfolio_and_worker_padding(self, line5, bus5, model):
        # more workers than entries: the line-up wraps around with
        # distinct #index suffixes and per-racer seeds
        outcome = race_portfolio(
            line5,
            bus5,
            portfolio=["HillClimbing", "SimulatedAnnealing"],
            cost_model=model,
            workers=4,
            seed=4,
            budget=SearchBudget(max_evals=400),
            inline=True,
        )
        labels = [run.label for run in outcome.parallel.runs]
        assert len(labels) == 4
        assert len(set(labels)) == 4

    def test_portfolio_race_is_reproducible(self, line5, bus5, model):
        def run():
            return race_portfolio(
                line5,
                bus5,
                cost_model=model,
                workers=2,
                seed=4,
                budget=SearchBudget(max_evals=400),
                inline=True,
            )

        first, second = run(), run()
        assert first.best.as_dict() == second.best.as_dict()
        assert (
            first.parallel.runs[first.parallel.winner].label
            == second.parallel.runs[second.parallel.winner].label
        )


class TestProcessPoolParity:
    def test_pool_matches_inline_execution(self, line5, bus5, model):
        """Real worker processes produce the inline-mode result."""

        def run(inline):
            return deploy_parallel(
                "SimulatedAnnealing",
                line5,
                bus5,
                cost_model=model,
                workers=2,
                seed=2,
                budget=SearchBudget(max_evals=300),
                inline=inline,
            )

        inline_outcome = run(True)
        pool_outcome = run(False)
        assert pool_outcome.best.as_dict() == inline_outcome.best.as_dict()
        assert pool_outcome.best_value == inline_outcome.best_value
        assert _strip(pool_outcome.report) == _strip(inline_outcome.report)
