"""Deterministic per-worker RNG spawning."""

from __future__ import annotations

import random

import pytest

from repro.core.rng import DEFAULT_SEED
from repro.exceptions import AlgorithmError
from repro.parallel.rng import require_spawnable_seed, spawn_rng, spawn_seed


def test_spawn_seed_joins_structural_path():
    assert spawn_seed(7, "worker", 3) == "7:worker:3"
    assert spawn_seed(7, "island", 2, "round", 5) == "7:island:2:round:5"


def test_spawn_seed_none_uses_library_default():
    assert spawn_seed(None, "worker", 0) == f"{DEFAULT_SEED}:worker:0"


def test_sibling_positions_get_distinct_streams():
    a = spawn_rng(7, "worker", 0)
    b = spawn_rng(7, "worker", 1)
    assert [a.random() for _ in range(4)] != [b.random() for _ in range(4)]


def test_same_position_reproduces_the_stream():
    first = [spawn_rng(7, "worker", 2).random() for _ in range(4)]
    second = [spawn_rng(7, "worker", 2).random() for _ in range(4)]
    assert first == second


def test_extension_stability():
    """Adding workers never perturbs existing positions' seeds."""
    assert spawn_seed(7, "worker", 0) == spawn_seed(7, "worker", 0)
    eight = [spawn_seed(7, "worker", i) for i in range(8)]
    four = [spawn_seed(7, "worker", i) for i in range(4)]
    assert eight[:4] == four


def test_live_random_rejected():
    with pytest.raises(AlgorithmError):
        require_spawnable_seed(random.Random(1))
    with pytest.raises(AlgorithmError):
        spawn_seed(random.Random(1), "worker", 0)


def test_plain_seeds_pass_through():
    assert require_spawnable_seed(42) == 42
    assert require_spawnable_seed("tag") == "tag"
