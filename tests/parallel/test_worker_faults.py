"""Fault injection: crashed workers must still account their spend.

Satellite regression: a worker that raised mid-search used to leave its
un-flushed evaluation delta off the shared ledger, so the global budget
accounting under-counted after every crash. The worker entry points now
flush in ``finally`` blocks and the bridge tracks the last progress
callback, so the ledger ends correct to the flush granularity even when
the search dies.
"""

from __future__ import annotations

import pytest

from repro.algorithms.runtime import CancelToken, SearchProgress
from repro.core.cost import CostModel
from repro.network.topology import bus_network
from repro.parallel.budget import InlineLedger, WorkerBridge
from repro.parallel.worker import (
    PartitionTask,
    SearchTask,
    payload_from,
    run_partition_scan,
    run_search_task,
)

from ..service.conftest import make_line


@pytest.fixture
def payload():
    workflow = make_line("faulty", [10e6, 20e6, 30e6, 40e6])
    network = bus_network([1e9, 1e9, 2e9], 1e8)
    return payload_from(workflow, network, CostModel(workflow, network))


class _CrashingAlgorithm:
    """Reports progress a few times, then dies mid-search."""

    name = "Crasher"

    def __init__(self, evaluations_before_crash: int):
        self.evaluations_before_crash = evaluations_before_crash

    def deploy_with_report(self, workflow, network, **kwargs):
        on_progress = kwargs["on_progress"]
        for done in range(1, self.evaluations_before_crash + 1):
            on_progress(
                SearchProgress(
                    steps=done,
                    evaluations=done,
                    best_value=None,
                    elapsed_s=0.0,
                )
            )
        raise RuntimeError("worker crashed mid-search")


class TestSearchTaskCrash:
    def test_crash_still_flushes_seen_evaluations(self, payload):
        """121 evaluations reported, flush_every=50: without the
        ``finally`` flush the ledger would stop at 100."""
        ledger = InlineLedger()
        task = SearchTask(
            index=0,
            label="crash",
            payload=payload,
            algorithm=_CrashingAlgorithm(121),
            seed=0,
            flush_every=50,
        )
        with pytest.raises(RuntimeError, match="crashed"):
            run_search_task(task, ledger)
        assert ledger.evaluations == 121

    def test_crash_before_any_progress_flushes_nothing(self, payload):
        ledger = InlineLedger()
        task = SearchTask(
            index=0,
            label="crash",
            payload=payload,
            algorithm=_CrashingAlgorithm(0),
            seed=0,
        )
        with pytest.raises(RuntimeError):
            run_search_task(task, ledger)
        assert ledger.evaluations == 0


class TestPartitionScanCrash:
    def test_tail_delta_lands_when_a_proposal_raises(
        self, payload, monkeypatch
    ):
        """The scan prices moves with flush_every=1000 (never flushes
        inside the loop); a proposal raising at evaluation 4 must still
        leave the first 3 on the ledger."""
        import repro.parallel.worker as worker_module

        real_evaluator = worker_module.MoveEvaluator
        calls = {"n": 0}

        class ExplodingEvaluator(real_evaluator):
            def propose_value(self, operation, server):
                calls["n"] += 1
                if calls["n"] >= 4:
                    raise RuntimeError("pricing kernel fault")
                return super().propose_value(operation, server)

        monkeypatch.setattr(
            worker_module, "MoveEvaluator", ExplodingEvaluator
        )
        ledger = InlineLedger()
        task = PartitionTask(
            index=0,
            payload=payload,
            servers=(0, 0, 0, 0),
            operations=(0, 1, 2, 3),
            flush_every=1000,
        )
        with pytest.raises(RuntimeError, match="pricing kernel fault"):
            run_partition_scan(task, ledger)
        assert ledger.evaluations == 3

    def test_clean_scan_accounts_everything(self, payload):
        ledger = InlineLedger()
        task = PartitionTask(
            index=0,
            payload=payload,
            servers=(0, 0, 0, 0),
            operations=(0, 1, 2, 3),
            flush_every=1000,
        )
        result = run_partition_scan(task, ledger)
        # 4 operations x 2 non-current servers
        assert result.evaluations == 8
        assert ledger.evaluations == 8


class TestBridgeExceptionAccounting:
    def test_finish_without_total_flushes_last_seen(self):
        ledger = InlineLedger()
        bridge = WorkerBridge(ledger, CancelToken(), flush_every=100)
        bridge(
            SearchProgress(
                steps=42, evaluations=42, best_value=None, elapsed_s=0.0
            )
        )
        assert ledger.evaluations == 0  # below the flush threshold
        bridge.finish()
        assert ledger.evaluations == 42

    def test_finish_is_idempotent(self):
        ledger = InlineLedger()
        bridge = WorkerBridge(ledger, CancelToken(), flush_every=10)
        bridge(
            SearchProgress(
                steps=7, evaluations=7, best_value=None, elapsed_s=0.0
            )
        )
        bridge.finish()
        bridge.finish()
        bridge.finish(7)
        assert ledger.evaluations == 7

    def test_finish_total_never_undercounts_seen(self):
        """finish(total) with a stale total keeps the larger seen count."""
        ledger = InlineLedger()
        bridge = WorkerBridge(ledger, CancelToken(), flush_every=100)
        bridge(
            SearchProgress(
                steps=50, evaluations=50, best_value=None, elapsed_s=0.0
            )
        )
        bridge.finish(30)
        assert ledger.evaluations == 50
