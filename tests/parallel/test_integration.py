"""Parallel wiring of the experiment harness and the fleet controller.

Both consumers promise the same contract as ``deploy_parallel``:
fanning work across processes changes wall-clock time only, never the
results -- records and fleet logs are byte-identical to the serial run.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.clock import StepClock
from repro.exceptions import ExperimentError
from repro.experiments.runner import ExperimentConfig, ExperimentRunner
from repro.service.controller import FleetController
from repro.service.scenarios import build_scenario


def _record_key(record):
    return (
        record.algorithm,
        record.repetition,
        record.cost.objective,
        record.deployment.as_dict(),
    )


class TestExperimentRunnerWorkers:
    CONFIG = ExperimentConfig(
        workflow_kind="line",
        num_operations=6,
        num_servers=3,
        repetitions=3,
        seed=11,
    )
    SUITE = ("HeavyOps-LargeMsgs", "FL-TieResolver2")

    def test_parallel_repetitions_match_serial(self):
        serial = ExperimentRunner(self.SUITE, workers=1).run(self.CONFIG)
        parallel = ExperimentRunner(self.SUITE, workers=2).run(self.CONFIG)
        assert len(serial.records) == len(parallel.records)
        assert [_record_key(r) for r in serial.records] == [
            _record_key(r) for r in parallel.records
        ]

    def test_workers_validated(self):
        with pytest.raises(ExperimentError):
            ExperimentRunner(self.SUITE, workers=0)


class TestFleetParallelPricing:
    def _replay(self, parallel_workers):
        scenario = build_scenario("churn", seed=3)
        config = dataclasses.replace(
            scenario.config, parallel_workers=parallel_workers
        )
        with FleetController(
            scenario.network, config=config, clock=StepClock()
        ) as controller:
            controller.run(scenario.events)
            pooled = controller._pricing_runtime is not None
            return list(controller.log), pooled

    def test_parallel_pricing_matches_serial_log(self):
        serial, _ = self._replay(1)
        parallel, pooled = self._replay(2)
        assert pooled, "the multi-tenant pricing fan-out never engaged"
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert a == b

    def test_parallel_workers_require_batch_kernel(self):
        from repro.exceptions import ServiceError
        from repro.service.controller import FleetConfig

        with pytest.raises(ServiceError):
            FleetConfig(use_batch=False, parallel_workers=2)
