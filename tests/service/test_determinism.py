"""Determinism contract: replaying a seeded scenario is byte-identical."""

import dataclasses

import pytest

from repro.service.scenarios import build_scenario, replay


@pytest.mark.parametrize("name", ["steady", "churn"])
class TestByteIdenticalReplay:
    def test_fleet_log_is_byte_identical(self, name):
        first = replay(name, seed=7).log.to_text()
        second = replay(name, seed=7).log.to_text()
        assert first == second

    def test_metrics_are_byte_identical(self, name):
        first = replay(name, seed=7).metrics().to_text()
        second = replay(name, seed=7).metrics().to_text()
        assert first == second

    def test_different_seeds_diverge(self, name):
        base = replay(name, seed=7).log.to_text()
        other = replay(name, seed=8).log.to_text()
        assert base != other

    def test_batch_pricing_does_not_change_decisions(self, name):
        """Batch vs scalar candidate pricing yields byte-identical logs.

        Scenarios are one-shot (the controller mutates the network), so
        each run rebuilds from ``(name, seed)`` with only ``use_batch``
        flipped. Metrics are deliberately *not* compared: the two paths
        touch the route / cost-model caches differently, so the cache
        hit/miss counters diverge while every decision stays the same.
        """
        logs = []
        for use_batch in (True, False):
            scenario = build_scenario(name, seed=7)
            scenario = dataclasses.replace(
                scenario,
                config=dataclasses.replace(
                    scenario.config, use_batch=use_batch
                ),
            )
            logs.append(replay(scenario).log.to_text())
        assert logs[0] == logs[1]
