"""Determinism contract: replaying a seeded scenario is byte-identical."""

import pytest

from repro.service.scenarios import replay


@pytest.mark.parametrize("name", ["steady", "churn"])
class TestByteIdenticalReplay:
    def test_fleet_log_is_byte_identical(self, name):
        first = replay(name, seed=7).log.to_text()
        second = replay(name, seed=7).log.to_text()
        assert first == second

    def test_metrics_are_byte_identical(self, name):
        first = replay(name, seed=7).metrics().to_text()
        second = replay(name, seed=7).metrics().to_text()
        assert first == second

    def test_different_seeds_diverge(self, name):
        base = replay(name, seed=7).log.to_text()
        other = replay(name, seed=8).log.to_text()
        assert base != other
