"""Drift events, the hysteresis policy and migration accounting.

The transition-aware controller surface: parameter-drift event
handling (``workload-drift`` / ``capacity-drift``), the rebalance
hysteresis knobs (``migration_weight``, ``rebalance_min_gain``,
``rebalance_cooldown_ticks``) and the ``migration_paid`` meter. The
frozen-oracle contract -- a configured migration model at weight 0
changes *accounting only*, never one decision byte -- is pinned here
end-to-end on the seeded ``drift`` scenario.
"""

import random
from dataclasses import replace

import pytest

from repro.core.clock import StepClock
from repro.core.migration import MigrationCostModel
from repro.exceptions import ServiceError
from repro.service.controller import FleetConfig, FleetController
from repro.service.events import (
    CapacityDrift,
    DeployRequest,
    Tick,
    UndeployRequest,
    WorkloadDrift,
)
from repro.service.scenarios import build_scenario, drift_workflow

from .conftest import make_line

MODEL = MigrationCostModel(
    state_bits_per_cycle=0.1, state_bits_base=2e6, downtime_s=0.1
)


def has_detail(record, key):
    return any(name == key for name, _value in record.details)


def controller_for(network, **overrides):
    config = FleetConfig(**overrides)
    return FleetController(network, config=config, clock=StepClock())


def replay_drift(seed=0, **overrides):
    """The drift scenario under config *overrides*."""
    scenario = build_scenario("drift", seed=seed)
    controller = FleetController(
        scenario.network,
        config=replace(scenario.config, **overrides),
        clock=StepClock(),
    )
    for event in scenario.events:
        controller.handle(event)
    return controller


class TestConfigValidation:
    def test_weight_without_model_rejected(self):
        with pytest.raises(ServiceError, match="MigrationCostModel"):
            FleetConfig(migration_weight=0.5)

    @pytest.mark.parametrize("bad", [-1.0, float("nan"), float("inf")])
    def test_bad_migration_weight_rejected(self, bad):
        with pytest.raises(ServiceError, match="migration_weight"):
            FleetConfig(migration=MODEL, migration_weight=bad)

    @pytest.mark.parametrize("bad", [-0.5, float("nan"), float("inf")])
    def test_bad_min_gain_rejected(self, bad):
        with pytest.raises(ServiceError, match="rebalance_min_gain"):
            FleetConfig(rebalance_min_gain=bad)

    def test_negative_cooldown_rejected(self):
        with pytest.raises(ServiceError, match="rebalance_cooldown_ticks"):
            FleetConfig(rebalance_cooldown_ticks=-1)

    def test_model_alone_is_fine(self):
        config = FleetConfig(migration=MODEL)
        assert config.migration_weight == 0.0


class TestWorkloadDrift:
    def test_updates_estimates_in_place(self, fleet_network):
        workflow = make_line("alpha", [10e6, 20e6, 30e6])
        controller = controller_for(fleet_network)
        controller.handle(DeployRequest("alpha", workflow))
        placement = controller.state.tenant("alpha").deployment.as_dict()
        drifted = drift_workflow(workflow, random.Random(4), 0.5)
        record = controller.handle(WorkloadDrift("alpha", drifted))
        assert record.action == "drifted"
        assert record.detail("operations") == "3"
        hosted = controller.state.tenant("alpha")
        assert hosted.workflow is drifted
        # the placement survives untouched; only the cost model moved
        assert hosted.deployment.as_dict() == placement

    def test_drift_changes_the_priced_objective(self, fleet_network):
        workflow = make_line("alpha", [10e6, 20e6, 30e6], bits=1_000_000)
        controller = controller_for(fleet_network)
        controller.handle(DeployRequest("alpha", workflow))
        before = controller.snapshot().objective
        heavier = workflow.copy()
        for message in heavier.messages:
            heavier.replace_message(
                replace(message, size_bits=message.size_bits * 64)
            )
        controller.handle(WorkloadDrift("alpha", heavier))
        assert controller.snapshot().objective != before

    def test_unknown_tenant_rejected(self, fleet_network):
        controller = controller_for(fleet_network)
        record = controller.handle(
            WorkloadDrift("ghost", make_line("ghost", [1e6]))
        )
        assert record.action == "rejected"
        assert record.detail("reason") == "unknown-tenant"

    def test_changed_operation_set_rejected(self, fleet_network):
        controller = controller_for(fleet_network)
        controller.handle(
            DeployRequest("alpha", make_line("alpha", [10e6, 20e6]))
        )
        record = controller.handle(
            WorkloadDrift("alpha", make_line("alpha", [10e6, 20e6, 30e6]))
        )
        assert record.action == "rejected"
        assert record.detail("reason") == "operations-changed"
        assert len(controller.state.tenant("alpha").workflow) == 2


class TestCapacityDrift:
    def test_rescales_a_server(self, fleet_network):
        controller = controller_for(fleet_network)
        controller.handle(
            DeployRequest("alpha", make_line("alpha", [10e6, 20e6]))
        )
        before = controller.snapshot().objective
        # S3 hosts real load, so halving it must re-price the fleet
        record = controller.handle(CapacityDrift("S3", 1e9))
        assert record.action == "rescaled"
        assert (
            controller.state.network.server("S3").power_hz == 1e9
        )
        assert controller.snapshot().objective != before

    def test_unknown_server_rejected(self, fleet_network):
        controller = controller_for(fleet_network)
        record = controller.handle(CapacityDrift("S99", 1e9))
        assert record.action == "rejected"
        assert record.detail("reason") == "unknown-server"

    @pytest.mark.parametrize("bad", [0.0, -1e9, float("nan"), float("inf")])
    def test_bad_power_rejected(self, fleet_network, bad):
        controller = controller_for(fleet_network)
        record = controller.handle(CapacityDrift("S1", bad))
        assert record.action == "rejected"
        assert record.detail("reason") == "bad-power"
        assert controller.state.network.server("S1").power_hz == 1e9


class TestFrozenOracle:
    """A weight-0 migration model changes accounting, never decisions."""

    def test_weight_zero_log_is_byte_identical(self):
        plain = replay_drift()
        billed = replay_drift(migration=MODEL)
        assert billed.log.to_text() == plain.log.to_text()
        assert plain.migration_paid == 0.0
        # ... but the blind controller's churn is now being metered
        assert billed.migration_paid > 0.0
        assert billed.metrics().migration_paid == billed.migration_paid

    def test_migration_row_rendered_only_when_paid(self):
        plain = replay_drift()
        billed = replay_drift(migration=MODEL)
        assert "migration paid" not in plain.metrics().to_text()
        assert "migration paid" in billed.metrics().to_text()

    def test_naive_rebalances_omit_migration_details(self):
        controller = replay_drift(migration=MODEL)
        rebalanced = controller.log.filter("tick", "rebalanced")
        assert rebalanced
        for record in rebalanced:
            assert not has_detail(record, "migration")
            assert not has_detail(record, "net_gain")


class TestHysteresis:
    def test_prohibitive_weight_freezes_the_fleet(self):
        aware = replay_drift(migration=MODEL, migration_weight=1e9)
        assert aware.metrics().rebalance_moves == 0
        assert aware.migration_paid == 0.0

    def test_aware_controller_moves_less_than_blind(self):
        blind = replay_drift(migration=MODEL)
        aware = replay_drift(
            migration=MODEL,
            migration_weight=0.05,
            rebalance_cooldown_ticks=1,
        )
        assert blind.metrics().rebalance_moves > 0
        assert (
            aware.metrics().rebalance_moves
            < blind.metrics().rebalance_moves
        )
        assert aware.migration_paid < blind.migration_paid

    def test_aware_rebalances_carry_migration_details(self):
        aware = replay_drift(migration=MODEL, migration_weight=1e-6)
        rebalanced = aware.log.filter("tick", "rebalanced")
        assert rebalanced
        for record in rebalanced:
            assert has_detail(record, "migration")
            assert has_detail(record, "net_gain")

    def test_min_gain_threshold_blocks_marginal_moves(self):
        open_gate = replay_drift()
        gated = replay_drift(rebalance_min_gain=1e9)
        assert open_gate.metrics().rebalance_moves > 0
        assert gated.metrics().rebalance_moves == 0
        # the rebalance records still fire -- only the moves are vetoed
        assert gated.log.filter("tick", "rebalanced")


class TestCooldown:
    def test_moved_tenants_start_their_cooldown(self):
        scenario = build_scenario("drift", seed=0)
        controller = FleetController(
            scenario.network,
            config=replace(scenario.config, rebalance_cooldown_ticks=3),
            clock=StepClock(),
        )
        cooled = None
        for event in scenario.events:
            record = controller.handle(event)
            if (
                record.event == "tick"
                and record.action == "rebalanced"
                and record.detail("churn") != "0"
            ):
                cooled = dict(controller._tenant_cooldowns)
                break
        assert cooled, "drift scenario produced no moving rebalance"
        assert all(ticks == 3 for ticks in cooled.values())
        assert len(cooled) >= 1

    def test_cooldown_decays_one_per_tick_and_expires(self, fleet_network):
        controller = controller_for(fleet_network)
        controller.handle(
            DeployRequest("alpha", make_line("alpha", [10e6, 20e6]))
        )
        controller._tenant_cooldowns["alpha"] = 2
        controller.handle(Tick())  # steady ticks still age cooldowns
        assert controller._tenant_cooldowns == {"alpha": 1}
        controller.handle(Tick())
        assert controller._tenant_cooldowns == {}

    def test_undeploy_clears_the_cooldown(self, fleet_network):
        controller = controller_for(fleet_network)
        controller.handle(
            DeployRequest("alpha", make_line("alpha", [10e6, 20e6]))
        )
        controller._tenant_cooldowns["alpha"] = 5
        controller.handle(UndeployRequest("alpha"))
        assert "alpha" not in controller._tenant_cooldowns

    def test_cooldown_damps_total_churn(self):
        free = replay_drift()
        cooled = replay_drift(rebalance_cooldown_ticks=10)
        assert free.metrics().rebalance_moves > 0
        assert (
            cooled.metrics().rebalance_moves
            <= free.metrics().rebalance_moves
        )
