"""Unit tests for the dynamic network events and their handlers.

LinkFailure / LinkDegrade / RegionOutage through the controller: the
topology is patched in place, route tables are invalidated (never the
cost-model caches), placements survive, and a drift check with a
bounded rebalance runs immediately rather than waiting for the next
tick.
"""

import pytest

from repro.exceptions import ServiceError
from repro.network.topology import bus_network, line_network
from repro.scenarios import geo_network
from repro.service.controller import FleetConfig, FleetController, StepClock
from repro.service.events import (
    DeployRequest,
    LinkDegrade,
    LinkFailure,
    RegionOutage,
    Tick,
)

from .conftest import make_line


def controller_for(network, **overrides):
    config = FleetConfig(**overrides)
    return FleetController(network, config=config, clock=StepClock())


class TestEventValidation:
    def test_kinds(self):
        assert LinkFailure("A", "B").kind == "link-failed"
        assert LinkDegrade("A", "B", 0.5).kind == "link-degraded"
        assert RegionOutage("us-east").kind == "region-outage"

    @pytest.mark.parametrize(
        "factor", [0.0, -1.0, float("inf"), float("nan")]
    )
    def test_degrade_rejects_bad_speed_factor(self, factor):
        with pytest.raises(ServiceError, match="speed_factor"):
            LinkDegrade("A", "B", factor)

    @pytest.mark.parametrize("factor", [-0.5, float("inf"), float("nan")])
    def test_degrade_rejects_bad_propagation_factor(self, factor):
        with pytest.raises(ServiceError, match="propagation_factor"):
            LinkDegrade("A", "B", 0.5, propagation_factor=factor)

    def test_upgrade_factors_allowed(self):
        event = LinkDegrade("A", "B", 2.0, propagation_factor=0.0)
        assert event.speed_factor == 2.0

    def test_outage_rejects_empty_region(self):
        with pytest.raises(ServiceError, match="non-empty region"):
            RegionOutage("")


class TestLinkFailure:
    def test_reroutes_over_surviving_links(
        self, fleet_network, tenant_workflows
    ):
        controller = controller_for(fleet_network)
        controller.handle(DeployRequest("alpha", tenant_workflows["alpha"]))
        placement_before = dict(
            controller.state.tenant("alpha").deployment
        )
        links_before = len(fleet_network.links)
        record = controller.handle(LinkFailure("S1", "S2"))
        assert record.action == "rerouted"
        assert record.subject == "S1-S2"
        assert int(record.detail("links")) == links_before - 1
        assert not controller.state.network.has_link("S1", "S2")
        # the placement itself is untouched by the failure (any moves
        # would come from the drift check, logged in the same record)
        if record.details_dict.get("churn", "0") == "0":
            assert (
                dict(controller.state.tenant("alpha").deployment)
                == placement_before
            )

    def test_rejects_unknown_server(self, fleet_network):
        controller = controller_for(fleet_network)
        record = controller.handle(LinkFailure("S1", "S9"))
        assert record.action == "rejected"
        assert record.detail("reason") == "unknown-server"

    def test_rejects_unknown_link(self):
        chain = line_network([1e9, 1e9, 1e9], speeds_bps=1e8)
        controller = controller_for(chain)
        record = controller.handle(LinkFailure("S1", "S3"))
        assert record.action == "rejected"
        assert record.detail("reason") == "unknown-link"

    def test_rejects_partition_and_keeps_link(self):
        chain = line_network([1e9, 1e9, 1e9], speeds_bps=1e8)
        controller = controller_for(chain)
        record = controller.handle(LinkFailure("S1", "S2"))
        assert record.action == "rejected"
        assert record.detail("reason") == "would-partition"
        assert controller.state.network.has_link("S1", "S2")
        assert controller.state.network.is_connected()

    def test_failure_changes_cost_estimates(self, tenant_workflows):
        # a 3-server ring-ish bus: dropping S1-S2 forces S1<->S2 traffic
        # through S3, so any tenant spanning S1/S2 gets slower routes
        network = bus_network([1e9, 1e9, 1e9], 1e6, name="tri")
        controller = controller_for(network)
        controller.handle(DeployRequest("alpha", tenant_workflows["alpha"]))
        before = controller.snapshot().objective
        controller.handle(LinkFailure("S1", "S2"))
        after = controller.snapshot().objective
        spans = set(
            dict(controller.state.tenant("alpha").deployment).values()
        )
        if {"S1", "S2"} <= spans:
            assert after != before


class TestLinkDegrade:
    def test_degrade_patches_link_parameters(self, fleet_network):
        controller = controller_for(fleet_network)
        old = fleet_network.link("S1", "S2")
        record = controller.handle(
            LinkDegrade("S1", "S2", 0.25, propagation_factor=2.0)
        )
        assert record.action == "degraded"
        link = controller.state.network.link("S1", "S2")
        assert link.speed_bps == pytest.approx(old.speed_bps * 0.25)
        assert link.propagation_s == pytest.approx(old.propagation_s * 2.0)

    def test_degrade_slows_the_fleet(self, tenant_workflows):
        network = bus_network([1e9, 1e9], 1e6, name="duo")
        controller = controller_for(network)
        controller.handle(DeployRequest("beta", tenant_workflows["beta"]))
        before = controller.snapshot().objective
        controller.handle(LinkDegrade("S1", "S2", 0.01))
        after = controller.snapshot().objective
        mapping = dict(controller.state.tenant("beta").deployment)
        if len(set(mapping.values())) > 1:
            assert after > before

    def test_rejections(self, fleet_network):
        chain = line_network([1e9, 1e9, 1e9], speeds_bps=1e8)
        controller = controller_for(chain)
        assert (
            controller.handle(LinkDegrade("S1", "S9", 0.5)).detail("reason")
            == "unknown-server"
        )
        assert (
            controller.handle(LinkDegrade("S1", "S3", 0.5)).detail("reason")
            == "unknown-link"
        )

    def test_degrade_then_restore_is_cost_neutral(self, fleet_network):
        controller = controller_for(fleet_network)
        controller.handle(
            DeployRequest("t", make_line("t", [10e6, 20e6], bits=1e6))
        )
        before = controller.snapshot().objective
        controller.handle(LinkDegrade("S1", "S2", 0.5))
        controller.handle(LinkDegrade("S1", "S2", 2.0))
        assert controller.snapshot().objective == pytest.approx(before)


class TestRegionOutage:
    def geo_controller(self, **overrides):
        network = geo_network(
            ("us-east", "us-west"), servers_per_region=2, name="geo-test"
        )
        return controller_for(network, **overrides)

    def test_outage_fails_all_members_and_rehomes(self, tenant_workflows):
        controller = self.geo_controller()
        for tenant, workflow in tenant_workflows.items():
            controller.handle(DeployRequest(tenant, workflow))
        record = controller.handle(RegionOutage("us-east"))
        assert record.action == "recovered"
        assert int(record.detail("servers_lost")) == 2
        assert int(record.detail("servers_left")) == 2
        network = controller.state.network
        assert "us-east/1" not in network and "us-east/2" not in network
        # every tenant is still completely placed on the survivors
        for tenant, workflow in tenant_workflows.items():
            deployment = controller.state.tenant(tenant).deployment
            assert deployment.is_complete(workflow)
            assert set(dict(deployment).values()) <= {
                "us-west/1",
                "us-west/2",
            }

    def test_unknown_region_rejected(self, tenant_workflows):
        controller = self.geo_controller()
        record = controller.handle(RegionOutage("mars"))
        assert record.action == "rejected"
        assert record.detail("reason") == "unknown-region"

    def test_whole_fleet_outage_rejected(self, fleet_network):
        # on a non-geo bus every server is its own region, so an outage
        # for one server name is a single-server outage...
        controller = controller_for(fleet_network)
        record = controller.handle(RegionOutage("S1"))
        assert record.action == "recovered"
        assert "S1" not in controller.state.network
        # ...and a region covering the whole fleet is refused
        solo = bus_network([1e9], speed_bps=1e6, name="solo")
        record = controller_for(solo).handle(RegionOutage("S1"))
        assert record.action == "rejected"
        assert record.detail("reason") == "whole-fleet"

    def test_orphans_never_land_on_dying_servers(self, tenant_workflows):
        network = geo_network(
            ("us-east", "us-west", "eu-west"),
            servers_per_region=2,
            name="geo-3",
        )
        controller = controller_for(network)
        for tenant, workflow in tenant_workflows.items():
            controller.handle(DeployRequest(tenant, workflow))
        record = controller.handle(RegionOutage("us-east"))
        assert record.action == "recovered"
        survivors = set(controller.state.network.server_names)
        for tenant in tenant_workflows:
            mapping = dict(controller.state.tenant(tenant).deployment)
            assert set(mapping.values()) <= survivors


class TestRouteInvalidationKeepsCostModels:
    def test_link_events_keep_compiled_artifacts(
        self, fleet_network, tenant_workflows
    ):
        controller = controller_for(fleet_network)
        controller.handle(DeployRequest("alpha", tenant_workflows["alpha"]))
        compiled_before = controller.state.cost_model("alpha").compiled
        controller.handle(LinkDegrade("S1", "S2", 0.5))
        compiled_after = controller.state.cost_model("alpha").compiled
        # link-only changes reuse the compiled instance in place
        assert compiled_after is compiled_before

    def test_tick_after_event_stays_consistent(
        self, fleet_network, tenant_workflows
    ):
        controller = controller_for(fleet_network, drift_threshold=0.01)
        for tenant, workflow in tenant_workflows.items():
            controller.handle(DeployRequest(tenant, workflow))
        controller.handle(LinkFailure("S1", "S2"))
        record = controller.handle(Tick())
        assert record.action in ("steady", "rebalanced")
