"""The priority work queue: stable order, reprioritization, policies."""

from __future__ import annotations

import pytest

from repro.core.clock import StepClock
from repro.exceptions import ServiceError
from repro.service.controller import FleetController
from repro.service.events import (
    DeployRequest,
    ServerFailed,
    ServerJoined,
    Tick,
    UndeployRequest,
)
from repro.service.queue import (
    DEFAULT_PRIORITIES,
    DONE,
    FAILED,
    PREEMPT_PRIORITY,
    QUEUED,
    RUNNING,
    FleetService,
    WorkQueue,
    event_subject,
)

from .conftest import make_line


def _deploy(tenant: str) -> DeployRequest:
    return DeployRequest(tenant, make_line(tenant, [10e6, 20e6]))


class TestEventSubject:
    def test_tenant_events(self):
        assert event_subject(_deploy("alpha")) == "alpha"
        assert event_subject(UndeployRequest("beta")) == "beta"

    def test_server_events(self):
        assert event_subject(ServerFailed("S2")) == "S2"
        assert event_subject(ServerJoined("S9", 1e9, 1e8)) == "S9"

    def test_tick_is_fleet(self):
        assert event_subject(Tick()) == "fleet"


class TestWorkQueueOrdering:
    def test_pops_by_priority_then_submission_order(self):
        queue = WorkQueue()
        queue.submit(_deploy("a"), priority=50)
        queue.submit(_deploy("b"), priority=10)
        queue.submit(_deploy("c"), priority=50)
        order = [queue.pop().subject for _ in range(3)]
        assert order == ["b", "a", "c"]

    def test_equal_priorities_pop_in_submission_order(self):
        queue = WorkQueue()
        for name in "abcdef":
            queue.submit(_deploy(name), priority=7)
        assert [queue.pop().subject for _ in range(6)] == list("abcdef")

    def test_default_priorities_follow_event_kind(self):
        queue = WorkQueue()
        tick = queue.submit(Tick())
        failure = queue.submit(ServerFailed("S1"))
        deploy = queue.submit(_deploy("a"))
        assert failure.priority == DEFAULT_PRIORITIES[ServerFailed.kind]
        assert tick.priority == DEFAULT_PRIORITIES[Tick.kind]
        assert deploy.priority == DEFAULT_PRIORITIES[DeployRequest.kind]
        # failure outranks deploy outranks tick
        assert [queue.pop().kind for _ in range(3)] == [
            "server-failed",
            "deploy",
            "tick",
        ]

    def test_pop_empty_returns_none(self):
        assert WorkQueue().pop() is None

    def test_non_event_submission_rejected(self):
        with pytest.raises(ServiceError):
            WorkQueue().submit("not an event")  # type: ignore[arg-type]

    def test_unknown_job_id_raises(self):
        with pytest.raises(ServiceError):
            WorkQueue().job(42)


class TestWorkQueueLifecycle:
    def test_states_progress_queued_running_done(self):
        queue = WorkQueue()
        job = queue.submit(_deploy("a"))
        assert job.state == QUEUED
        popped = queue.pop()
        assert popped is job and job.state == RUNNING
        queue.complete(job, record=None)
        assert job.state == DONE

    def test_fail_records_error(self):
        queue = WorkQueue()
        job = queue.submit(_deploy("a"))
        queue.pop()
        queue.fail(job, "boom")
        assert job.state == FAILED and job.error == "boom"

    def test_complete_requires_running(self):
        queue = WorkQueue()
        job = queue.submit(_deploy("a"))
        with pytest.raises(ServiceError):
            queue.complete(job, record=None)

    def test_pending_counts_only_queued(self):
        queue = WorkQueue()
        queue.submit(_deploy("a"))
        queue.submit(_deploy("b"))
        assert queue.pending == 2
        queue.complete(queue.pop(), record=None)
        assert queue.pending == 1


class TestUpdatePriorities:
    def test_reorders_queued_jobs(self):
        queue = WorkQueue()
        queue.submit(_deploy("a"), priority=50)
        late = queue.submit(_deploy("b"), priority=50)
        changed = queue.update_priorities(
            lambda job: 1 if job.subject == "b" else None
        )
        assert changed == (late,)
        assert [queue.pop().subject for _ in range(2)] == ["b", "a"]

    def test_never_touches_running_or_finished_jobs(self):
        queue = WorkQueue()
        queue.submit(_deploy("a"), priority=50)
        queue.submit(_deploy("b"), priority=50)
        running = queue.pop()  # "a" is now in flight
        offered = []
        queue.update_priorities(lambda job: offered.append(job.subject) or 1)
        assert offered == ["b"]
        assert running.priority == 50  # in-flight work is immovable

    def test_moved_jobs_keep_submission_order_on_ties(self):
        """Reprioritized jobs keep their original seq as the tie-break.

        c and a both end up at priority 5; a was submitted first, so a
        still pops before c -- the stable-order determinism contract
        survives reprioritization.
        """
        queue = WorkQueue()
        queue.submit(_deploy("a"), priority=30)
        queue.submit(_deploy("b"), priority=10)
        queue.submit(_deploy("c"), priority=40)
        queue.update_priorities(
            lambda job: 5 if job.subject in ("a", "c") else None
        )
        assert [queue.pop().subject for _ in range(3)] == ["a", "c", "b"]

    def test_stale_heap_entries_are_skipped(self):
        queue = WorkQueue()
        job = queue.submit(_deploy("a"), priority=50)
        queue.submit(_deploy("b"), priority=60)
        queue.update_priorities(
            lambda j: 70 if j.subject == "a" else None
        )
        # "a" was demoted below "b"; its stale priority-50 entry must
        # not resurface it first.
        assert queue.pop().subject == "b"
        assert queue.pop() is job

    def test_unchanged_priority_not_reported(self):
        queue = WorkQueue()
        queue.submit(_deploy("a"), priority=50)
        assert queue.update_priorities(lambda job: 50) == ()

    def test_drain_order_is_replayable(self):
        """Same submissions + same reprioritization = same drain order.

        b keeps its submission seq when boosted to priority 3, so it
        pops *before* c (submitted later at priority 3 from the start).
        """

        def run() -> list[str]:
            queue = WorkQueue()
            for name, priority in [("a", 9), ("b", 9), ("c", 3), ("d", 9)]:
                queue.submit(_deploy(name), priority=priority)
            queue.update_priorities(
                lambda job: 3 if job.subject in ("b", "d") else None
            )
            return [queue.pop().subject for _ in range(4)]

        assert run() == run() == ["b", "c", "d", "a"]


@pytest.fixture
def service(fleet_network):
    controller = FleetController(fleet_network, clock=StepClock())
    return FleetService(controller)


class TestFleetService:
    def test_drain_processes_in_priority_order(self, service):
        service.submit(_deploy("alpha"))
        service.submit(Tick())
        service.submit(_deploy("beta"))
        processed = service.drain()
        assert [job.subject for job in processed] == [
            "alpha",
            "beta",
            "fleet",
        ]
        assert all(job.state == DONE for job in processed)
        assert all(
            job.record is not None and job.record.event == job.kind
            for job in processed
        )

    def test_controller_error_fails_job_without_poisoning_queue(
        self, service
    ):
        # a join with a non-positive power rating raises NetworkError
        service.submit(ServerJoined("S9", -1e9, 1e8))
        service.submit(_deploy("alpha"))
        failed, deployed = service.drain()
        assert failed.state == FAILED and "power" in failed.error
        assert failed.record is None
        assert deployed.state == DONE

    def test_server_failure_preempts_affected_tenants(self, service):
        service.submit(_deploy("alpha"))
        service.drain()
        deployment = service.controller.state.tenant("alpha").deployment
        hosting = sorted(deployment.used_servers())[0]
        # queue routine work for the affected and an unaffected tenant
        affected = service.submit(UndeployRequest("alpha"))
        bystander = service.submit(_deploy("beta"))
        assert affected.priority == DEFAULT_PRIORITIES["undeploy"]
        service.submit(ServerFailed(hosting))
        assert affected.priority == PREEMPT_PRIORITY
        assert bystander.priority == DEFAULT_PRIORITIES["deploy"]
        # the failover itself still runs first, then the preempted job
        order = [job.kind for job in service.drain()]
        assert order[:2] == ["server-failed", "undeploy"]

    def test_failure_on_empty_server_preempts_nothing(self, service):
        service.submit(_deploy("alpha"))
        job = service.submit(UndeployRequest("alpha"))
        before = job.priority
        service.submit(ServerFailed("S4"))  # nobody hosted there yet
        if job.priority != before:
            # only legal if alpha actually had operations on S4
            deployment = service.controller.state.tenant("alpha").deployment
            assert deployment.operations_on("S4")

    def test_rebalance_raises_queued_drift_checks(self, fleet_network):
        controller = FleetController(fleet_network, clock=StepClock())
        service = FleetService(controller)
        # build enough imbalance that a tick rebalances: heavy tenants
        for index in range(4):
            service.submit(
                DeployRequest(
                    f"t{index}", make_line(f"t{index}", [80e6, 80e6])
                )
            )
        first_tick = service.submit(Tick())
        later_tick = service.submit(Tick())
        while True:
            job = service.process_next()
            assert job is not None, "queue drained without a rebalance"
            if job.event.kind == "tick" and job.record is not None:
                if job.record.action == "rebalanced":
                    break
            if service.queue.pending == 0:
                pytest.skip("scenario produced no rebalance")
        del first_tick
        assert later_tick.priority == service.drift_priority
