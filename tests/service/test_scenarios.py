"""Tests for the built-in fleet scenarios and the replay driver."""

import random

import pytest

from dataclasses import replace

from repro.exceptions import ServiceError
from repro.io.json_codec import workflow_to_dict
from repro.service.controller import FleetConfig, FleetController, StepClock
from repro.service.events import CapacityDrift, LinkDegrade, WorkloadDrift
from repro.service.scenarios import (
    build_scenario,
    builtin_scenarios,
    drift_capacity,
    drift_workflow,
    replay,
    wave_workflow,
)

from .conftest import make_line


class TestCatalogue:
    def test_builtin_names(self):
        assert builtin_scenarios() == (
            "steady",
            "churn",
            "surge",
            "drift",
            "abilene",
            "geo",
            "diurnal",
        )

    def test_unknown_scenario_raises(self):
        with pytest.raises(ServiceError, match="unknown scenario"):
            build_scenario("nope")

    def test_scenarios_carry_descriptions(self):
        for name in builtin_scenarios():
            scenario = build_scenario(name, seed=3)
            assert scenario.name == name
            assert scenario.description
            assert scenario.events


class TestReplay:
    def test_replay_processes_every_event(self):
        scenario = build_scenario("steady", seed=7)
        planned = len(scenario.events)
        controller = replay("steady", seed=7)
        assert len(controller.log) == planned
        assert controller.metrics().events == planned

    def test_churn_exercises_the_full_lifecycle(self):
        metrics = replay("churn", seed=7).metrics()
        assert metrics.rejected > 0  # tight admission cap must bite
        assert metrics.failures_recovered == 2
        assert metrics.servers_joined == 1
        assert metrics.orphans_rehomed > 0
        assert metrics.rebalances >= 1

    def test_surge_is_exactly_two_hundred_events(self):
        scenario = build_scenario("surge", seed=0)
        assert len(scenario.events) == 200

    def test_algorithm_override_applies(self):
        controller = replay("steady", seed=1, algorithm="FairLoad")
        admitted = controller.log.filter("deploy", "admitted")
        assert admitted
        assert all(
            record.detail("algorithm") == "FairLoad" for record in admitted
        )


class TestDriftWorkflow:
    def test_deterministic_in_the_rng_state(self, xor_diamond):
        first = drift_workflow(xor_diamond, random.Random(42), 0.5)
        second = drift_workflow(xor_diamond, random.Random(42), 0.5)
        assert workflow_to_dict(first) == workflow_to_dict(second)
        # a different stream produces a genuinely different drift
        other = drift_workflow(xor_diamond, random.Random(43), 0.5)
        assert workflow_to_dict(other) != workflow_to_dict(first)

    def test_preserves_shape_and_cycles(self, xor_diamond):
        drifted = drift_workflow(xor_diamond, random.Random(7), 0.9)
        assert drifted.operation_names == xor_diamond.operation_names
        for name in xor_diamond.operation_names:
            assert (
                drifted.operation(name).cycles
                == xor_diamond.operation(name).cycles
            )
        assert len(drifted.messages) == len(xor_diamond.messages)

    def test_sizes_floored_and_probabilities_renormalised(self, xor_diamond):
        rng = random.Random(3)
        for _ in range(20):
            drifted = drift_workflow(xor_diamond, rng, 0.95)
            for message in drifted.messages:
                assert message.size_bits >= 1.0
            branches = drifted.outgoing("choice")
            assert sum(m.probability for m in branches) == pytest.approx(1.0)
            assert all(m.probability > 0 for m in branches)

    def test_zero_amplitude_is_a_copy_without_rng_draws(self, xor_diamond):
        rng = random.Random(11)
        state = rng.getstate()
        copy = drift_workflow(xor_diamond, rng, 0.0)
        assert rng.getstate() == state  # not one draw consumed
        assert copy is not xor_diamond
        assert workflow_to_dict(copy) == workflow_to_dict(xor_diamond)

    def test_rename_applies(self):
        workflow = make_line("alpha", [10e6, 20e6])
        drifted = drift_workflow(
            workflow, random.Random(0), 0.25, name="alpha-v2"
        )
        assert drifted.name == "alpha-v2"

    @pytest.mark.parametrize(
        "amplitude", [-0.1, 1.0, 1.5, float("nan"), float("inf")]
    )
    def test_amplitude_bounds(self, amplitude):
        workflow = make_line("alpha", [10e6, 20e6])
        with pytest.raises(ServiceError, match="amplitude"):
            drift_workflow(workflow, random.Random(0), amplitude)
        with pytest.raises(ServiceError, match="amplitude"):
            drift_capacity(1e9, random.Random(0), amplitude)


class TestDriftCapacity:
    def test_deterministic_and_floored(self):
        assert drift_capacity(2e9, random.Random(5), 0.3) == drift_capacity(
            2e9, random.Random(5), 0.3
        )
        rng = random.Random(9)
        for _ in range(50):
            assert drift_capacity(1.1e6, rng, 0.9) >= 1e6

    def test_zero_amplitude_returns_power_unchanged(self):
        rng = random.Random(1)
        state = rng.getstate()
        assert drift_capacity(2e9, rng, 0.0) == 2e9
        assert rng.getstate() == state


class TestDriftScenario:
    def test_contains_both_drift_event_kinds(self):
        scenario = build_scenario("drift", seed=5)
        kinds = {type(event) for event in scenario.events}
        assert WorkloadDrift in kinds
        assert CapacityDrift in kinds

    def test_drift_compounds_across_rounds(self):
        scenario = build_scenario("drift", seed=0)
        per_tenant: dict[str, list] = {}
        for event in scenario.events:
            if isinstance(event, WorkloadDrift):
                per_tenant.setdefault(event.tenant, []).append(event.workflow)
        assert per_tenant
        for rounds in per_tenant.values():
            assert len(rounds) == 6
            documents = [workflow_to_dict(w) for w in rounds]
            # cumulative: every round differs from the one before
            for earlier, later in zip(documents, documents[1:]):
                assert earlier != later

    def test_replay_rebalances_under_drift(self):
        controller = replay("drift", seed=0)
        metrics = controller.metrics()
        assert metrics.rebalances >= 1
        assert metrics.rebalance_moves >= 1
        drifted = controller.log.filter("workload-drift", "drifted")
        rescaled = controller.log.filter("capacity-drift", "rescaled")
        assert drifted
        assert rescaled


class TestTopologyScenarios:
    """The real-topology packs: Abilene trunks and geo regions."""

    def test_abilene_replay_is_deterministic(self):
        first = replay("abilene", seed=0).log.to_text()
        second = replay("abilene", seed=0).log.to_text()
        assert first == second

    def test_abilene_exercises_every_link_event_branch(self):
        log = replay("abilene", seed=0).log
        assert log.filter("link-degraded", "degraded")
        assert log.filter("link-failed", "rerouted")
        rejected = log.filter("link-failed", "rejected")
        assert rejected
        assert rejected[0].detail("reason") == "would-partition"
        # the would-partition failure kept its link: ATLAM5 stays
        # reachable only through ATLAng in the Abilene graph

    def test_abilene_runs_on_the_bundled_backbone(self):
        scenario = build_scenario("abilene", seed=0)
        assert len(scenario.network) == 12
        assert "IPLSng" in scenario.network
        assert not scenario.network.is_uniform_bus()

    def test_abilene_seeds_differ(self):
        assert (
            replay("abilene", seed=0).log.to_text()
            != replay("abilene", seed=1).log.to_text()
        )

    def test_geo_replay_is_deterministic(self):
        first = replay("geo", seed=0).log.to_text()
        second = replay("geo", seed=0).log.to_text()
        assert first == second

    def test_geo_outage_rehomes_orphans(self):
        log = replay("geo", seed=0).log
        recovered = log.filter("region-outage", "recovered")
        assert recovered
        assert int(recovered[0].detail("orphans")) > 0
        assert int(recovered[0].detail("servers_lost")) == 2
        rejected = log.filter("region-outage", "rejected")
        assert rejected
        assert rejected[0].detail("reason") == "unknown-region"

    def test_geo_degrade_before_outage(self):
        log = replay("geo", seed=0).log
        assert log.filter("link-degraded", "degraded")


class TestWaveWorkflow:
    def test_scales_every_message_size(self):
        base = make_line("wave", [100.0, 200.0, 300.0], bits=10_000)
        peak = wave_workflow(base, 1.5)
        for message in peak.messages:
            assert message.size_bits == 15_000.0
        # the original is untouched
        assert all(m.size_bits == 10_000 for m in base.messages)

    def test_sizes_floored_at_one_bit(self):
        base = make_line("wave", [100.0, 200.0], bits=10.0)
        trough = wave_workflow(base, 1e-6)
        assert all(m.size_bits == 1.0 for m in trough.messages)

    def test_rename_applies(self):
        base = make_line("wave", [100.0, 200.0])
        assert wave_workflow(base, 2.0).name == "wave"
        assert wave_workflow(base, 2.0, name="peak").name == "peak"

    @pytest.mark.parametrize("factor", [0.0, -1.0, float("nan"), float("inf")])
    def test_factor_bounds(self, factor):
        base = make_line("wave", [100.0])
        with pytest.raises(ServiceError, match="wave factor"):
            wave_workflow(base, factor)


class TestDiurnalScenario:
    def test_replay_is_deterministic(self):
        first = replay("diurnal", seed=0).log.to_text()
        second = replay("diurnal", seed=0).log.to_text()
        assert first == second

    def test_contains_both_degrade_polarities(self):
        scenario = build_scenario("diurnal", seed=0)
        degrades = [
            event
            for event in scenario.events
            if isinstance(event, LinkDegrade)
        ]
        assert degrades
        # peak brownouts are strict worsenings (scoped invalidation);
        # trough recoveries are improvements (full invalidation)
        assert any(event.speed_factor == 0.5 for event in degrades)
        assert any(event.speed_factor == 2.0 for event in degrades)

    def test_waves_drive_rebalances(self):
        metrics = replay("diurnal", seed=0).metrics()
        assert metrics.rebalances >= 1
        assert metrics.route_dijkstra_runs > 0


def _replay_with_mode(name, mode, seed=0):
    scenario = build_scenario(name, seed=seed)
    controller = FleetController(
        scenario.network,
        config=replace(scenario.config, route_invalidation=mode),
        clock=StepClock(),
    )
    controller.run(scenario.events)
    return controller


class TestInvalidationModes:
    """Scoped, eager and lazy invalidation decide identically."""

    def test_unknown_mode_raises(self):
        with pytest.raises(ServiceError, match="route invalidation"):
            FleetConfig(route_invalidation="sometimes")

    @pytest.mark.parametrize("name", ["abilene", "geo", "diurnal"])
    def test_modes_agree_byte_for_byte(self, name):
        logs = {
            mode: _replay_with_mode(name, mode).log.to_text()
            for mode in ("scoped", "eager", "lazy")
        }
        assert logs["scoped"] == logs["eager"] == logs["lazy"]

    def test_scoped_runs_fewer_dijkstras_than_lazy(self):
        scoped = _replay_with_mode("abilene", "scoped")
        lazy = _replay_with_mode("abilene", "lazy")
        assert (
            scoped.state.router_dijkstra_runs
            < lazy.state.router_dijkstra_runs
        )
