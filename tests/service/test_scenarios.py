"""Tests for the built-in fleet scenarios and the replay driver."""

import pytest

from repro.exceptions import ServiceError
from repro.service.scenarios import build_scenario, builtin_scenarios, replay


class TestCatalogue:
    def test_builtin_names(self):
        assert builtin_scenarios() == ("steady", "churn", "surge")

    def test_unknown_scenario_raises(self):
        with pytest.raises(ServiceError, match="unknown scenario"):
            build_scenario("nope")

    def test_scenarios_carry_descriptions(self):
        for name in builtin_scenarios():
            scenario = build_scenario(name, seed=3)
            assert scenario.name == name
            assert scenario.description
            assert scenario.events


class TestReplay:
    def test_replay_processes_every_event(self):
        scenario = build_scenario("steady", seed=7)
        planned = len(scenario.events)
        controller = replay("steady", seed=7)
        assert len(controller.log) == planned
        assert controller.metrics().events == planned

    def test_churn_exercises_the_full_lifecycle(self):
        metrics = replay("churn", seed=7).metrics()
        assert metrics.rejected > 0  # tight admission cap must bite
        assert metrics.failures_recovered == 2
        assert metrics.servers_joined == 1
        assert metrics.orphans_rehomed > 0
        assert metrics.rebalances >= 1

    def test_surge_is_exactly_two_hundred_events(self):
        scenario = build_scenario("surge", seed=0)
        assert len(scenario.events) == 200

    def test_algorithm_override_applies(self):
        controller = replay("steady", seed=1, algorithm="FairLoad")
        admitted = controller.log.filter("deploy", "admitted")
        assert admitted
        assert all(
            record.detail("algorithm") == "FairLoad" for record in admitted
        )
