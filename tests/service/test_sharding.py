"""Tenant sharding: stable hashing, routing, budget splits, determinism."""

from __future__ import annotations

import hashlib

import pytest

from repro.algorithms.runtime import SearchBudget
from repro.core.clock import StepClock
from repro.exceptions import ServiceError
from repro.service.controller import FleetConfig
from repro.service.events import (
    DeployRequest,
    ServerFailed,
    ServerJoined,
    Tick,
    UndeployRequest,
)
from repro.service.scenarios import build_scenario
from repro.service.sharding import ShardRouter, shard_for

from .conftest import make_line


class TestShardFor:
    def test_stable_across_calls(self):
        assert shard_for("tenant-001", 4) == shard_for("tenant-001", 4)

    def test_matches_sha1_not_builtin_hash(self):
        digest = hashlib.sha1(b"tenant-042").hexdigest()
        assert shard_for("tenant-042", 7) == int(digest, 16) % 7

    def test_single_shard_takes_everything(self):
        assert all(
            shard_for(f"t{i}", 1) == 0 for i in range(20)
        )

    def test_spreads_over_shards(self):
        shards = {shard_for(f"tenant-{i:03d}", 4) for i in range(50)}
        assert shards == {0, 1, 2, 3}

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ServiceError):
            shard_for("x", 0)


@pytest.fixture
def router(fleet_network):
    return ShardRouter(
        fleet_network,
        config=FleetConfig(),
        shards=3,
        clock_factory=StepClock,
    )


class TestRouting:
    def test_tenant_events_go_to_one_shard(self, router):
        event = DeployRequest("alpha", make_line("alpha", [10e6]))
        targets = router.targets(event)
        assert targets == (shard_for("alpha", 3),)
        assert router.targets(UndeployRequest("alpha")) == targets

    def test_fleet_events_broadcast(self, router):
        assert router.targets(Tick()) == (0, 1, 2)
        assert router.targets(ServerFailed("S1")) == (0, 1, 2)
        assert router.targets(ServerJoined("S9", 1e9, 1e8)) == (0, 1, 2)

    def test_handle_reaches_only_targets(self, router):
        results = router.handle(
            DeployRequest("alpha", make_line("alpha", [10e6]))
        )
        assert len(results) == 1
        shard, record = results[0]
        assert shard == router.shard_of("alpha")
        assert record.action == "admitted"
        assert router.controller_for("alpha").state.tenants == ("alpha",)

    def test_topology_events_reach_every_shard(self, router):
        results = router.handle(ServerJoined("S9", 1e9, 1e8))
        assert [shard for shard, _ in results] == [0, 1, 2]
        for controller in router.controllers:
            assert "S9" in controller.state.network

    def test_shards_have_independent_networks(self, router, fleet_network):
        router.controllers[0].handle(ServerJoined("S9", 1e9, 1e8))
        assert "S9" not in router.controllers[1].state.network
        assert "S9" not in fleet_network  # the source is never mutated


class TestBudgetSlicing:
    def test_rebalance_budget_divided_across_shards(self, fleet_network):
        config = FleetConfig(
            rebalance_budget=SearchBudget(max_evals=100, deadline_s=2.0)
        )
        router = ShardRouter(fleet_network, config=config, shards=4)
        shares = [c.rebalance_budget.max_evals for c in router.configs]
        assert shares == [25, 25, 25, 25]
        assert all(
            c.rebalance_budget.deadline_s == 2.0 for c in router.configs
        )

    def test_no_budget_stays_none(self, fleet_network):
        router = ShardRouter(fleet_network, shards=2)
        assert all(c.rebalance_budget is None for c in router.configs)

    def test_invalid_shard_count_rejected(self, fleet_network):
        with pytest.raises(ServiceError):
            ShardRouter(fleet_network, shards=0)


class TestShardedDeterminism:
    def test_scenario_replay_is_byte_identical(self):
        def run():
            scenario = build_scenario("churn", seed=5)
            router = ShardRouter(
                scenario.network,
                config=scenario.config,
                shards=3,
                clock_factory=StepClock,
            )
            router.run(scenario.events)
            return [c.log.to_text() for c in router.controllers]

        assert run() == run()

    def test_tenant_placement_is_stable(self):
        scenario = build_scenario("steady", seed=2)
        router = ShardRouter(
            scenario.network,
            config=scenario.config,
            shards=3,
            clock_factory=StepClock,
        )
        router.run(scenario.events)
        placement = router.tenants()
        assert placement  # the scenario hosts at least one tenant
        for tenant, shard in placement.items():
            assert shard == shard_for(tenant, 3)

    def test_aggregate_views(self, router):
        router.handle(DeployRequest("alpha", make_line("alpha", [10e6])))
        snapshots = router.snapshots()
        assert len(snapshots) == 3
        assert router.total_objective() == sum(
            s.objective for s in snapshots
        )
