"""Golden decision log: the canonical rendering is pinned byte for byte.

Satellite regression: numeric details used to be formatted at call
sites with a mix of ``str(float)`` (repr, platform/version sensitive)
and ad-hoc precisions. Every detail now funnels through
:func:`repro.service.log.format_detail` (floats pinned to ``.6f``), so
the full log text of a fixed mini-scenario can be asserted literally --
any accidental formatting drift breaks this file, not a downstream
replay comparison.
"""

from __future__ import annotations

from repro.core.clock import StepClock
from repro.service.controller import FleetController
from repro.service.events import (
    DeployRequest,
    ServerFailed,
    Tick,
    UndeployRequest,
)
from repro.service.log import format_detail

from .conftest import make_line

GOLDEN_LOG = """\
#0000 deploy alpha admitted latency=0.001000s algorithm=HeavyOps-LargeMsgs balance=0.720588 objective=0.019787 operations=3 projected_load=0.010000 servers_used=3
#0001 deploy beta admitted latency=0.001000s algorithm=HeavyOps-LargeMsgs balance=0.615385 objective=0.030050 operations=2 projected_load=0.025000 servers_used=2
#0002 tick fleet steady latency=0.001000s balance=0.615385 drift=0.249584 objective=0.030050
#0003 server-failed S3 recovered latency=0.001000s balance=0.960000 objective=0.038383 orphans=2 servers_left=3 tenants_affected=2
#0004 undeploy alpha removed latency=0.001000s balance=0.563218 objective=0.043939 operations=3
"""


class TestFormatDetail:
    def test_floats_pinned_to_six_decimals(self):
        assert format_detail(0.25) == "0.250000"
        assert format_detail(1 / 3) == "0.333333"
        assert format_detail(2.0) == "2.000000"

    def test_no_repr_noise_on_unrepresentable_floats(self):
        # str(0.1 + 0.2) == '0.30000000000000004'; the canonical form
        # must not leak that
        assert format_detail(0.1 + 0.2) == "0.300000"

    def test_non_floats_pass_through_str(self):
        assert format_detail(7) == "7"
        assert format_detail("steady") == "steady"
        assert format_detail(True) == "True"

    def test_bools_are_not_floats(self):
        # bool is an int subclass, not a float -- no .6f applied
        assert format_detail(False) == "False"


class TestGoldenLog:
    def test_mini_scenario_log_is_byte_identical(self, fleet_network):
        controller = FleetController(fleet_network, clock=StepClock())
        controller.handle(
            DeployRequest("alpha", make_line("alpha", [10e6, 20e6, 30e6]))
        )
        controller.handle(
            DeployRequest("beta", make_line("beta", [40e6, 50e6]))
        )
        controller.handle(Tick())
        controller.handle(ServerFailed("S3"))
        controller.handle(UndeployRequest("alpha"))
        assert controller.log.to_text() == GOLDEN_LOG

    def test_every_detail_value_is_canonical(self, fleet_network):
        """No log detail may carry more than 6 decimals or repr noise."""
        controller = FleetController(fleet_network, clock=StepClock())
        controller.handle(
            DeployRequest("alpha", make_line("alpha", [10e6, 20e6]))
        )
        controller.handle(Tick())
        for record in controller.log:
            for _, value in record.details:
                if value.replace(".", "", 1).replace("-", "", 1).isdigit():
                    if "." in value:
                        assert len(value.split(".")[1]) == 6, (
                            record,
                            value,
                        )
