"""Unit tests for :class:`repro.service.controller.FleetController`."""

import pytest

from repro.exceptions import ServiceError
from repro.service.controller import FleetConfig, FleetController, StepClock
from repro.service.events import (
    DeployRequest,
    FleetEvent,
    ServerFailed,
    ServerJoined,
    Tick,
    UndeployRequest,
)


def controller_for(network, **overrides):
    """A controller with a deterministic clock and test-friendly config."""
    config = FleetConfig(**overrides)
    return FleetController(network, config=config, clock=StepClock())


class TestDeploy:
    def test_admits_and_places_completely(
        self, fleet_network, tenant_workflows
    ):
        controller = controller_for(fleet_network)
        record = controller.handle(
            DeployRequest("alpha", tenant_workflows["alpha"])
        )
        assert record.action == "admitted"
        assert record.detail("algorithm") == "HeavyOps-LargeMsgs"
        deployment = controller.state.tenant("alpha").deployment
        assert deployment.is_complete(tenant_workflows["alpha"])

    def test_rejects_duplicate_tenant(self, fleet_network, tenant_workflows):
        controller = controller_for(fleet_network)
        controller.handle(DeployRequest("alpha", tenant_workflows["alpha"]))
        record = controller.handle(
            DeployRequest("alpha", tenant_workflows["beta"])
        )
        assert record.action == "rejected"
        assert record.detail("reason") == "duplicate-tenant"

    def test_rejects_over_capacity(self, fleet_network, tenant_workflows):
        # alpha alone projects 10 ms of mean load on this 6 GHz fleet
        controller = controller_for(
            fleet_network, admission_load_limit_s=0.005
        )
        record = controller.handle(
            DeployRequest("alpha", tenant_workflows["alpha"])
        )
        assert record.action == "rejected"
        assert record.detail("reason") == "capacity"
        assert "alpha" not in controller.state

    def test_per_request_algorithm_override(
        self, fleet_network, tenant_workflows
    ):
        controller = controller_for(fleet_network)
        record = controller.handle(
            DeployRequest(
                "alpha", tenant_workflows["alpha"], algorithm="FairLoad"
            )
        )
        assert record.detail("algorithm") == "FairLoad"


class TestUndeploy:
    def test_removes_hosted_tenant(self, fleet_network, tenant_workflows):
        controller = controller_for(fleet_network)
        controller.handle(DeployRequest("alpha", tenant_workflows["alpha"]))
        record = controller.handle(UndeployRequest("alpha"))
        assert record.action == "removed"
        assert "alpha" not in controller.state

    def test_unknown_tenant_rejected(self, fleet_network):
        controller = controller_for(fleet_network)
        record = controller.handle(UndeployRequest("ghost"))
        assert record.action == "rejected"
        assert record.detail("reason") == "unknown-tenant"


class TestServerFailed:
    def test_orphans_rehomed_onto_survivors(
        self, fleet_network, tenant_workflows
    ):
        controller = controller_for(fleet_network)
        for tenant, workflow in tenant_workflows.items():
            controller.handle(DeployRequest(tenant, workflow))
        victim = "S3"
        record = controller.handle(ServerFailed(victim))
        assert record.action == "recovered"
        assert victim not in controller.state.network
        for tenant, workflow in tenant_workflows.items():
            deployment = controller.state.tenant(tenant).deployment
            assert deployment.is_complete(workflow)
            assert victim not in deployment.used_servers()

    def test_unknown_server_rejected(self, fleet_network):
        controller = controller_for(fleet_network)
        record = controller.handle(ServerFailed("S99"))
        assert record.action == "rejected"
        assert record.detail("reason") == "unknown-server"


class TestServerJoined:
    def test_join_spreads_bounded_moves(
        self, fleet_network, tenant_workflows
    ):
        controller = controller_for(fleet_network, max_moves_per_rebalance=2)
        for tenant, workflow in tenant_workflows.items():
            controller.handle(DeployRequest(tenant, workflow))
        record = controller.handle(ServerJoined("S9", 3e9, 100e6))
        assert record.action == "joined"
        assert "S9" in controller.state.network
        moves = int(record.detail("spread_moves"))
        assert 0 <= moves <= 2
        assert float(record.detail("gain")) >= 0.0

    def test_duplicate_server_rejected(self, fleet_network):
        controller = controller_for(fleet_network)
        record = controller.handle(ServerJoined("S1", 1e9, 1e8))
        assert record.action == "rejected"
        assert record.detail("reason") == "duplicate-server"


class TestTick:
    def test_steady_below_threshold(self, fleet_network, tenant_workflows):
        controller = controller_for(fleet_network, drift_threshold=1.0)
        controller.handle(DeployRequest("alpha", tenant_workflows["alpha"]))
        record = controller.handle(Tick())
        assert record.action == "steady"
        assert 0.0 <= float(record.detail("drift")) <= 1.0

    def test_empty_fleet_tick_is_steady(self, fleet_network):
        controller = controller_for(fleet_network, drift_threshold=0.0)
        record = controller.handle(Tick())
        assert record.action == "steady"

    def test_rebalance_improves_objective_within_churn(
        self, fleet_network, tenant_workflows
    ):
        # all-on-one placement maximises unfairness: any drift threshold
        # of zero forces a rebalance with improving moves available
        from repro.core.mapping import Deployment

        controller = controller_for(
            fleet_network, drift_threshold=0.0, max_moves_per_rebalance=3
        )
        workflow = tenant_workflows["gamma"]
        deployment = Deployment.all_on_one(workflow, "S1")
        controller.state.add_tenant("gamma", workflow, deployment)
        before = controller.state.tenant("gamma").deployment.as_dict()
        record = controller.handle(Tick())
        assert record.action == "rebalanced"
        after = controller.state.tenant("gamma").deployment.as_dict()
        moved = sum(1 for op in before if before[op] != after[op])
        churn = int(record.detail("churn"))
        assert 1 <= churn <= 3
        assert moved <= churn
        assert float(record.detail("objective_after")) < float(
            record.detail("objective_before")
        )
        assert float(record.detail("gain")) > 0.0


class TestLoop:
    def test_run_logs_one_record_per_event(
        self, fleet_network, tenant_workflows
    ):
        controller = controller_for(fleet_network)
        events = [
            DeployRequest("alpha", tenant_workflows["alpha"]),
            Tick(),
            UndeployRequest("alpha"),
        ]
        log = controller.run(events)
        assert len(log) == 3
        assert [r.event for r in log] == ["deploy", "tick", "undeploy"]
        assert [r.seq for r in log] == [0, 1, 2]

    def test_unknown_event_type_raises(self, fleet_network):
        controller = controller_for(fleet_network)
        with pytest.raises(ServiceError, match="unknown fleet event"):
            controller.handle(FleetEvent())

    def test_every_record_carries_objective_and_balance(
        self, fleet_network, tenant_workflows
    ):
        controller = controller_for(fleet_network)
        controller.handle(DeployRequest("alpha", tenant_workflows["alpha"]))
        record = controller.log[0]
        assert float(record.detail("objective")) > 0.0
        assert 0.0 < float(record.detail("balance")) <= 1.0


class TestMetrics:
    def test_counts_reflect_the_log(self, fleet_network, tenant_workflows):
        controller = controller_for(
            fleet_network, admission_load_limit_s=0.012
        )
        controller.handle(DeployRequest("alpha", tenant_workflows["alpha"]))
        controller.handle(DeployRequest("beta", tenant_workflows["beta"]))
        controller.handle(DeployRequest("gamma", tenant_workflows["gamma"]))
        controller.handle(UndeployRequest("alpha"))
        controller.handle(Tick())
        metrics = controller.metrics()
        assert metrics.events == 5
        assert metrics.admitted + metrics.rejected == 3
        assert metrics.rejected >= 1  # the 12 ms cap cannot host all three
        assert metrics.undeployed == 1
        assert metrics.mean_latency_s == pytest.approx(0.001)
        assert len(metrics.balance_timeline) == 5
        assert dict(metrics.events_by_kind) == {
            "deploy": 3,
            "undeploy": 1,
            "tick": 1,
        }

    def test_cache_hit_rates_exposed(self, fleet_network, tenant_workflows):
        controller = controller_for(fleet_network)
        controller.handle(DeployRequest("alpha", tenant_workflows["alpha"]))
        controller.handle(Tick())
        metrics = controller.metrics()
        assert metrics.router_hits + metrics.router_misses > 0
        assert 0.0 <= metrics.router_hit_rate <= 1.0
        assert metrics.cost_model_misses >= 1


class TestBudgetedRebalance:
    """The rebalance search runs under the shared SearchRuntime."""

    def _overloaded_controller(self, network, workflow, **overrides):
        from repro.core.mapping import Deployment

        controller = controller_for(
            network,
            drift_threshold=0.0,
            max_moves_per_rebalance=3,
            **overrides,
        )
        controller.state.add_tenant(
            "gamma", workflow, Deployment.all_on_one(workflow, "S1")
        )
        return controller

    def test_unbudgeted_rebalance_report_is_exhausted(
        self, fleet_network, tenant_workflows
    ):
        controller = self._overloaded_controller(
            fleet_network, tenant_workflows["gamma"]
        )
        record = controller.handle(Tick())
        assert record.action == "rebalanced"
        report = controller.last_rebalance_report
        assert report is not None and report.exhausted
        assert "stopped" not in record.details

    def test_rebalance_budget_caps_evaluations(
        self, fleet_network, tenant_workflows
    ):
        from repro.algorithms.runtime import STOP_MAX_EVALS, SearchBudget

        controller = self._overloaded_controller(
            fleet_network,
            tenant_workflows["gamma"],
            rebalance_budget=SearchBudget(max_evals=1),
        )
        record = controller.handle(Tick())
        # the budget bites at the starting state: no move is applied
        assert record.action == "rebalanced"
        assert record.detail("churn") == "0"
        assert record.detail("stopped") == STOP_MAX_EVALS
        report = controller.last_rebalance_report
        assert report.stop_reason == STOP_MAX_EVALS
        assert controller.state.tenant("gamma").deployment.is_complete(
            tenant_workflows["gamma"]
        )

    def test_progress_hook_preempts_mid_rebalance(
        self, fleet_network, tenant_workflows
    ):
        from repro.algorithms.runtime import STOP_CANCELLED

        controller = self._overloaded_controller(
            fleet_network, tenant_workflows["gamma"]
        )
        preempted = []

        def surge(progress):
            # cancel as soon as the first improving move has landed
            if progress.steps == 2:
                preempted.append(controller.preempt_rebalance("surge"))

        controller.on_search_step = surge
        record = controller.handle(Tick())
        assert preempted == [True]
        report = controller.last_rebalance_report
        assert report.stop_reason == STOP_CANCELLED
        assert report.steps == 2
        # the partial rebalance left a consistent, fully placed state
        assert record.action == "rebalanced"
        assert int(record.detail("churn")) == 1
        assert record.detail("stopped") == STOP_CANCELLED
        deployment = controller.state.tenant("gamma").deployment
        assert deployment.is_complete(tenant_workflows["gamma"])
        assert float(record.detail("objective_after")) < float(
            record.detail("objective_before")
        )

    def test_preempt_without_active_search_is_a_no_op(self, fleet_network):
        controller = controller_for(fleet_network)
        assert controller.preempt_rebalance() is False
