"""The REST façade: pure dispatch unit tests plus one real HTTP smoke."""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.core.clock import StepClock
from repro.service.checkpoint import event_to_dict, load_checkpoint
from repro.service.controller import FleetController
from repro.service.events import DeployRequest, ServerFailed, Tick
from repro.service.queue import FleetService
from repro.service.server import FleetApp, job_to_dict, make_server

from .conftest import make_line


@pytest.fixture
def app(fleet_network):
    controller = FleetController(fleet_network, clock=StepClock())
    return FleetApp(FleetService(controller))


def _deploy_doc(tenant: str) -> dict:
    return event_to_dict(
        DeployRequest(tenant, make_line(tenant, [10e6, 20e6]))
    )


class TestDispatchRoutes:
    def test_health(self, app):
        status, payload = app.dispatch("GET", "/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["servers"] == 4
        assert payload["pending"] == 0

    def test_snapshot(self, app):
        status, payload = app.dispatch("GET", "/snapshot")
        assert status == 200
        assert payload["tenants"] == 0
        assert set(payload["loads"]) == {"S1", "S2", "S3", "S4"}

    def test_metrics(self, app):
        status, payload = app.dispatch("GET", "/metrics")
        assert status == 200
        assert payload["events"] == 0

    def test_submit_then_process(self, app):
        status, job = app.dispatch(
            "POST", "/jobs", {"event": _deploy_doc("alpha")}
        )
        assert status == 201
        assert job["state"] == "queued" and job["subject"] == "alpha"
        status, result = app.dispatch("POST", "/process")
        assert status == 200
        assert [j["state"] for j in result["processed"]] == ["done"]
        assert result["pending"] == 0
        status, payload = app.dispatch("GET", "/snapshot")
        assert payload["tenants"] == 1

    def test_submit_with_priority(self, app):
        _, low = app.dispatch(
            "POST", "/jobs", {"event": _deploy_doc("a"), "priority": 90}
        )
        _, high = app.dispatch(
            "POST", "/jobs", {"event": _deploy_doc("b"), "priority": 5}
        )
        _, result = app.dispatch("POST", "/process", {"max_jobs": 1})
        assert [j["id"] for j in result["processed"]] == [high["id"]]
        assert result["pending"] == 1
        del low

    def test_jobs_listing_and_detail(self, app):
        app.dispatch("POST", "/jobs", {"event": _deploy_doc("alpha")})
        status, listing = app.dispatch("GET", "/jobs")
        assert status == 200 and len(listing["jobs"]) == 1
        job_id = listing["jobs"][0]["id"]
        status, job = app.dispatch("GET", f"/jobs/{job_id}")
        assert status == 200 and job["id"] == job_id

    def test_unknown_job_is_404(self, app):
        assert app.dispatch("GET", "/jobs/99")[0] == 404
        assert app.dispatch("GET", "/jobs/abc")[0] == 404

    def test_unknown_route_is_404(self, app):
        assert app.dispatch("GET", "/nope")[0] == 404
        assert app.dispatch("POST", "/nope")[0] == 404
        assert app.dispatch("DELETE", "/jobs")[0] == 404

    def test_bad_event_document_is_400(self, app):
        status, payload = app.dispatch("POST", "/jobs", {})
        assert status == 400 and "event" in payload["error"]
        status, payload = app.dispatch(
            "POST", "/jobs", {"event": {"kind": "teleport"}}
        )
        assert status == 400

    def test_checkpoint_includes_queued_jobs_as_pending(self, app, tmp_path):
        app.dispatch("POST", "/jobs", {"event": _deploy_doc("alpha")})
        app.dispatch("POST", "/process")
        app.dispatch("POST", "/jobs", {"event": event_to_dict(Tick())})
        path = tmp_path / "fleet.json"
        status, payload = app.dispatch(
            "POST", "/checkpoint", {"path": str(path)}
        )
        assert status == 200 and payload["pending"] == 1
        checkpoint = load_checkpoint(path)
        assert [event.kind for event in checkpoint.pending] == ["tick"]

    def test_checkpoint_without_path_is_400(self, app):
        assert app.dispatch("POST", "/checkpoint", {})[0] == 400

    def test_payloads_are_json_serializable(self, app):
        app.dispatch("POST", "/jobs", {"event": _deploy_doc("alpha")})
        app.dispatch("POST", "/jobs", {"event": event_to_dict(
            ServerFailed("S1")
        )})
        app.dispatch("POST", "/process")
        for method, path in [
            ("GET", "/health"),
            ("GET", "/snapshot"),
            ("GET", "/metrics"),
            ("GET", "/jobs"),
            ("GET", "/jobs/0"),
        ]:
            _, payload = app.dispatch(method, path)
            json.dumps(payload)  # must not raise


class TestJobToDict:
    def test_done_job_carries_its_record(self, app):
        app.dispatch("POST", "/jobs", {"event": _deploy_doc("alpha")})
        app.dispatch("POST", "/process")
        job = app.service.queue.job(0)
        document = job_to_dict(job)
        assert document["state"] == "done"
        assert document["record"]["event"] == "deploy"
        assert document["error"] == ""


class TestHttpSmoke:
    """One end-to-end pass over real sockets on an OS-assigned port."""

    def test_full_lifecycle_over_http(self, app):
        server = make_server(app, port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{port}"
        try:
            def get(path):
                with urllib.request.urlopen(base + path, timeout=5) as res:
                    return res.status, json.loads(res.read())

            def post(path, body):
                request = urllib.request.Request(
                    base + path,
                    data=json.dumps(body).encode(),
                    headers={"Content-Type": "application/json"},
                    method="POST",
                )
                with urllib.request.urlopen(request, timeout=5) as res:
                    return res.status, json.loads(res.read())

            status, health = get("/health")
            assert status == 200 and health["status"] == "ok"
            status, job = post("/jobs", {"event": _deploy_doc("alpha")})
            assert status == 201 and job["state"] == "queued"
            status, result = post("/process", {})
            assert status == 200
            assert [j["state"] for j in result["processed"]] == ["done"]
            status, snapshot = get("/snapshot")
            assert snapshot["tenants"] == 1
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get("/nope")
            assert excinfo.value.code == 404
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_malformed_body_is_400(self, app):
        server = make_server(app, port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/jobs",
                data=b"{not json",
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=5)
            assert excinfo.value.code == 400
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
