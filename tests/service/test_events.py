"""Unit tests for the typed fleet events."""

import pytest

from repro.exceptions import ServiceError
from repro.service.events import (
    DeployRequest,
    ServerFailed,
    ServerJoined,
    Tick,
    UndeployRequest,
)

from .conftest import make_line


class TestEventKinds:
    def test_every_event_carries_a_distinct_kind(self):
        workflow = make_line("w", [1e6])
        kinds = {
            DeployRequest("t", workflow).kind,
            UndeployRequest("t").kind,
            ServerFailed("S1").kind,
            ServerJoined("S9", 1e9, 1e8).kind,
            Tick().kind,
        }
        assert kinds == {
            "deploy",
            "undeploy",
            "server-failed",
            "server-joined",
            "tick",
        }

    def test_events_are_immutable(self):
        event = ServerFailed("S1")
        with pytest.raises(AttributeError):
            event.server = "S2"


class TestDeployRequest:
    def test_rejects_empty_tenant_name(self):
        with pytest.raises(ServiceError, match="non-empty tenant"):
            DeployRequest("", make_line("w", [1e6]))

    def test_optional_algorithm_override(self):
        event = DeployRequest("t", make_line("w", [1e6]), algorithm="FairLoad")
        assert event.algorithm == "FairLoad"
