"""Unit tests for :class:`repro.service.state.FleetState` and helpers."""

import pytest

from repro.core.mapping import Deployment
from repro.exceptions import ReproError, ServiceError
from repro.network.topology import bus_network
from repro.service.state import (
    FleetState,
    InstrumentedRouter,
    jain_index,
    load_penalty,
)


def place_round_robin(state, tenant, workflow):
    """Admit *tenant* with a round-robin placement; returns the record."""
    deployment = Deployment.round_robin(workflow, state.network)
    return state.add_tenant(tenant, workflow, deployment)


class TestInstrumentedRouter:
    def test_counts_misses_then_hits(self, fleet_network):
        router = InstrumentedRouter(fleet_network)
        router.transmission_time("S1", "S2", 1000)
        assert (router.hits, router.misses) == (0, 1)
        router.transmission_time("S1", "S2", 1000)
        assert (router.hits, router.misses) == (1, 1)
        assert router.hit_rate == 0.5

    def test_colocated_queries_bypass_the_cache(self, fleet_network):
        router = InstrumentedRouter(fleet_network)
        assert router.transmission_time("S1", "S1", 1000) == 0.0
        assert (router.hits, router.misses) == (0, 0)


class TestFairnessHelpers:
    def test_jain_index_perfectly_fair(self):
        assert jain_index({"a": 2.0, "b": 2.0, "c": 2.0}) == pytest.approx(1.0)

    def test_jain_index_single_loaded_server(self):
        assert jain_index({"a": 5.0, "b": 0.0, "c": 0.0, "d": 0.0}) == (
            pytest.approx(0.25)
        )

    def test_jain_index_idle_fleet_is_fair(self):
        assert jain_index({"a": 0.0, "b": 0.0}) == 1.0

    def test_load_penalty_matches_cost_model_modes(self):
        values = [1.0, 3.0]
        assert load_penalty(values, "mad") == pytest.approx(1.0)
        assert load_penalty(values, "sum_abs") == pytest.approx(2.0)
        assert load_penalty(values, "max") == pytest.approx(1.0)
        assert load_penalty(values, "std") == pytest.approx(1.0)
        assert load_penalty([], "mad") == 0.0


class TestTenantLifecycle:
    def test_add_and_remove_tenant(self, fleet_network, tenant_workflows):
        state = FleetState(fleet_network)
        place_round_robin(state, "alpha", tenant_workflows["alpha"])
        assert "alpha" in state and len(state) == 1
        removed = state.remove_tenant("alpha")
        assert removed.tenant == "alpha"
        assert "alpha" not in state

    def test_duplicate_tenant_rejected(self, fleet_network, tenant_workflows):
        state = FleetState(fleet_network)
        place_round_robin(state, "alpha", tenant_workflows["alpha"])
        with pytest.raises(ServiceError, match="already hosted"):
            place_round_robin(state, "alpha", tenant_workflows["alpha"])

    def test_unknown_tenant_raises(self, fleet_network):
        state = FleetState(fleet_network)
        with pytest.raises(ServiceError, match="no tenant"):
            state.tenant("ghost")


class TestSharedCaches:
    def test_cost_model_cached_until_topology_changes(
        self, fleet_network, tenant_workflows
    ):
        state = FleetState(fleet_network)
        place_round_robin(state, "alpha", tenant_workflows["alpha"])
        first = state.cost_model("alpha")
        assert state.cost_model("alpha") is first
        assert (state.cost_model_hits, state.cost_model_misses) == (1, 1)
        state.join_server("S9", 1e9, 100e6)
        rebuilt = state.cost_model("alpha")
        assert rebuilt is not first
        assert state.cost_model_misses == 2

    def test_router_counters_survive_failure(
        self, fleet_network, tenant_workflows
    ):
        state = FleetState(fleet_network)
        place_round_robin(state, "alpha", tenant_workflows["alpha"])
        state.combined_loads()
        state.cost_model("alpha").execution_time(
            state.tenant("alpha").deployment
        )
        before = state.router.misses
        assert before > 0
        state.fail_server("S4")
        assert state.router.misses == before  # counters carried over
        assert state.router.network is state.network


class TestAggregates:
    def test_combined_loads_sum_over_tenants(
        self, fleet_network, tenant_workflows
    ):
        state = FleetState(fleet_network)
        for tenant in ("alpha", "beta"):
            place_round_robin(state, tenant, tenant_workflows[tenant])
        loads = state.combined_loads()
        expected = {name: 0.0 for name in state.network.server_names}
        for tenant in ("alpha", "beta"):
            record = state.tenant(tenant)
            for server, load in (
                state.cost_model(tenant).loads(record.deployment).items()
            ):
                expected[server] += load
        assert loads == pytest.approx(expected)

    def test_mean_load_projection(self, fleet_network, tenant_workflows):
        state = FleetState(fleet_network)
        place_round_robin(state, "alpha", tenant_workflows["alpha"])
        base = state.mean_load_s()
        assert base == pytest.approx(60e6 / fleet_network.total_power_hz)
        projected = state.mean_load_s(extra_cycles=90e6)
        assert projected == pytest.approx(
            150e6 / fleet_network.total_power_hz
        )

    def test_remaining_budgets_sum_to_extra_cycles(
        self, fleet_network, tenant_workflows
    ):
        state = FleetState(fleet_network)
        place_round_robin(state, "alpha", tenant_workflows["alpha"])
        budgets = state.remaining_budgets(extra_cycles=50e6)
        # ideal shares sum to hosted + extra; hosted subtracts itself
        assert sum(budgets.values()) == pytest.approx(50e6)

    def test_empty_fleet_snapshot(self, fleet_network):
        snapshot = FleetState(fleet_network).snapshot()
        assert snapshot.execution_time == 0.0
        assert snapshot.objective == 0.0
        assert snapshot.balance_index == 1.0
        assert snapshot.tenants == 0


class TestTopologyChanges:
    def test_fail_server_orphans_and_rebuild(
        self, fleet_network, tenant_workflows
    ):
        state = FleetState(fleet_network)
        for tenant in ("alpha", "beta", "gamma"):
            place_round_robin(state, tenant, tenant_workflows[tenant])
        orphans = state.fail_server("S1")
        assert "S1" not in state.network
        assert orphans  # round-robin put something on every server
        for tenant, operations in orphans.items():
            deployment = state.tenant(tenant).deployment
            for operation in operations:
                assert deployment.get(operation) is None

    def test_fail_last_server_rejected(self):
        state = FleetState(bus_network([1e9], 1e8))
        with pytest.raises(ServiceError, match="only fleet server"):
            state.fail_server("S1")

    def test_join_server_links_to_everyone(self, fleet_network):
        state = FleetState(fleet_network)
        state.join_server("S9", 1.5e9, 50e6)
        assert "S9" in state.network
        for other in ("S1", "S2", "S3", "S4"):
            assert state.network.has_link(other, "S9")
        assert state.network.is_connected()

    def test_join_duplicate_server_rejected(self, fleet_network):
        state = FleetState(fleet_network)
        with pytest.raises(ServiceError, match="already in the fleet"):
            state.join_server("S1", 1e9, 1e8)

    @pytest.mark.parametrize(
        "power_hz,link_speed_bps,propagation_s",
        [
            (-1e9, 1e8, 0.0),  # bad power
            (0.0, 1e8, 0.0),  # zero power
            (1e9, -5.0, 0.0),  # bad link speed
            (1e9, 0.0, 0.0),  # zero link speed
            (1e9, 1e8, -0.5),  # negative propagation delay
        ],
    )
    def test_join_server_is_transactional(
        self, fleet_network, power_hz, link_speed_bps, propagation_s
    ):
        """Regression: bad join parameters must leave the fleet untouched.

        ``join_server`` used to add the server (and some links) before
        the failing parameter was validated, leaving a half-joined
        server behind. All servers and links are now constructed --
        and therefore validated -- before the first mutation.
        """
        state = FleetState(fleet_network)
        servers_before = state.network.server_names
        links_before = len(state.network.links)
        with pytest.raises(ReproError):
            state.join_server(
                "S9", power_hz, link_speed_bps, propagation_s
            )
        assert state.network.server_names == servers_before
        assert len(state.network.links) == links_before
        assert "S9" not in state.network
        # the fleet is still fully usable: a good join goes through
        state.join_server("S9", 1e9, 1e8)
        assert "S9" in state.network
