"""Shared fixtures for the fleet-service tests."""

from __future__ import annotations

import pytest

from repro.core.workflow import Operation, Workflow
from repro.network.topology import bus_network


@pytest.fixture
def fleet_network():
    """A 4-server uniform bus: 1/1/2/2 GHz at 100 Mbps."""
    return bus_network([1e9, 1e9, 2e9, 2e9], 100e6, name="test-fleet")


def make_line(name: str, cycles: list[float], bits: float = 10_000):
    """A line workflow ``<name>.O1 -> ... -> O<n>`` with given cycles."""
    workflow = Workflow(name)
    previous = None
    for index, value in enumerate(cycles, start=1):
        operation = workflow.add_operation(Operation(f"O{index}", value))
        if previous is not None:
            workflow.connect(previous.name, operation.name, bits)
        previous = operation
    return workflow


@pytest.fixture
def tenant_workflows():
    """Three small line workflows of distinct total weight."""
    return {
        "alpha": make_line("alpha", [10e6, 20e6, 30e6]),
        "beta": make_line("beta", [40e6, 50e6]),
        "gamma": make_line("gamma", [15e6, 15e6, 15e6, 15e6]),
    }
