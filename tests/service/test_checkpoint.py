"""Durable checkpoints: verified restore, crash-mid-scenario resume."""

from __future__ import annotations

import json

import pytest

from repro.algorithms.runtime import SearchBudget
from repro.core.clock import StepClock
from repro.exceptions import ValidationError
from repro.core.migration import MigrationCostModel
from repro.service.checkpoint import (
    Checkpoint,
    budget_from_dict,
    budget_to_dict,
    config_from_dict,
    config_to_dict,
    event_from_dict,
    event_to_dict,
    load_checkpoint,
    migration_from_dict,
    migration_to_dict,
    record_from_dict,
    record_to_dict,
    restore_controller,
    restore_service,
    snapshot_from_dict,
    snapshot_to_dict,
    write_checkpoint,
)
from repro.service.controller import FleetConfig, FleetController
from repro.service.events import (
    CapacityDrift,
    DeployRequest,
    LinkDegrade,
    LinkFailure,
    RegionOutage,
    ServerFailed,
    ServerJoined,
    Tick,
    UndeployRequest,
    WorkloadDrift,
)
from repro.service.queue import FleetService
from repro.service.scenarios import build_scenario, replay

from .conftest import make_line


def _replay_all(scenario) -> FleetController:
    controller = FleetController(
        scenario.network, config=scenario.config, clock=StepClock()
    )
    for event in scenario.events:
        controller.handle(event)
    return controller


class TestEventCodec:
    @pytest.mark.parametrize(
        "event",
        [
            DeployRequest("alpha", make_line("alpha", [10e6, 20e6])),
            DeployRequest(
                "beta", make_line("beta", [5e6]), algorithm="Exhaustive"
            ),
            UndeployRequest("gamma"),
            ServerFailed("S2"),
            ServerJoined("S9", 2e9, 5e7, propagation_s=0.001),
            WorkloadDrift("alpha", make_line("alpha", [15e6, 25e6])),
            CapacityDrift("S3", 1.25e9),
            LinkFailure("S1", "S2"),
            LinkDegrade("S1", "S3", 0.25),
            LinkDegrade("S2", "S3", 0.5, propagation_factor=1.5),
            RegionOutage("us-east"),
            Tick(),
        ],
    )
    def test_round_trip(self, event):
        decoded = event_from_dict(event_to_dict(event))
        assert type(decoded) is type(event)
        assert event_to_dict(decoded) == event_to_dict(event)

    def test_json_serializable(self):
        event = DeployRequest("alpha", make_line("alpha", [10e6]))
        text = json.dumps(event_to_dict(event), sort_keys=True)
        assert event_from_dict(json.loads(text)).tenant == "alpha"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            event_from_dict({"kind": "teleport"})

    def test_missing_field_rejected(self):
        with pytest.raises(ValidationError):
            event_from_dict({"kind": "deploy"})


class TestConfigCodec:
    def test_round_trip_defaults(self):
        config = FleetConfig()
        assert config_from_dict(config_to_dict(config)) == config

    def test_round_trip_with_budget(self):
        config = FleetConfig(
            algorithm="GreedyPaths",
            admission_load_limit_s=0.25,
            drift_threshold=0.5,
            rebalance_budget=SearchBudget(
                max_steps=10, max_evals=200, deadline_s=1.5
            ),
            seed=9,
            use_batch=False,
        )
        assert config_from_dict(config_to_dict(config)) == config

    def test_budget_none_passes_through(self):
        assert budget_to_dict(None) is None
        assert budget_from_dict(None) is None


class TestRecordAndSnapshotCodecs:
    def test_record_round_trip_preserves_line(self):
        controller = replay("steady", seed=7)
        for record in controller.log:
            decoded = record_from_dict(record_to_dict(record))
            assert decoded.to_line() == record.to_line()

    def test_snapshot_round_trip_is_exact(self):
        controller = replay("steady", seed=7)
        snapshot = controller.state.snapshot()
        document = json.loads(json.dumps(snapshot_to_dict(snapshot)))
        assert snapshot_from_dict(document) == snapshot


class TestWriteAndLoad:
    def test_full_round_trip(self, tmp_path):
        controller = replay("churn", seed=3)
        path = write_checkpoint(controller, tmp_path / "fleet.json")
        checkpoint = load_checkpoint(path)
        assert isinstance(checkpoint, Checkpoint)
        assert checkpoint.deterministic
        assert len(checkpoint.events) == len(controller.history)
        assert len(checkpoint.records) == len(controller.log.records)
        assert checkpoint.pending == ()

    def test_missing_file_raises_validation_error(self, tmp_path):
        with pytest.raises(ValidationError):
            load_checkpoint(tmp_path / "nope.json")

    def test_malformed_json_raises_validation_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError):
            load_checkpoint(path)

    def test_wrong_format_raises_validation_error(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "network", "version": 1}))
        with pytest.raises(ValidationError):
            load_checkpoint(path)

    def test_unsupported_version_rejected(self, tmp_path):
        controller = replay("steady", seed=1)
        path = write_checkpoint(controller, tmp_path / "fleet.json")
        document = json.loads(path.read_text())
        document["version"] = 99
        path.write_text(json.dumps(document))
        with pytest.raises(ValidationError):
            load_checkpoint(path)


class TestVerifiedRestore:
    def test_restore_reproduces_log_byte_identically(self, tmp_path):
        controller = replay("churn", seed=3)
        path = write_checkpoint(controller, tmp_path / "fleet.json")
        restored, pending = restore_controller(path)
        assert pending == ()
        assert restored.log.to_text() == controller.log.to_text()
        assert restored.state.snapshot() == controller.state.snapshot()

    def test_restored_controller_is_live(self, tmp_path):
        controller = replay("steady", seed=7)
        path = write_checkpoint(controller, tmp_path / "fleet.json")
        restored, _ = restore_controller(path)
        record = restored.handle(
            DeployRequest("late", make_line("late", [25e6]))
        )
        assert record.event == "deploy"

    def test_tampered_log_fails_verification(self, tmp_path):
        controller = replay("steady", seed=7)
        path = write_checkpoint(controller, tmp_path / "fleet.json")
        document = json.loads(path.read_text())
        document["log"][0]["action"] = "tampered"
        path.write_text(json.dumps(document))
        with pytest.raises(ValidationError, match="diverged"):
            restore_controller(path)

    def test_tampered_snapshot_fails_verification(self, tmp_path):
        controller = replay("steady", seed=7)
        path = write_checkpoint(controller, tmp_path / "fleet.json")
        document = json.loads(path.read_text())
        document["snapshot"]["tenants"] += 1
        path.write_text(json.dumps(document))
        with pytest.raises(ValidationError, match="snapshot"):
            restore_controller(path)

    def test_truncated_history_fails_verification(self, tmp_path):
        controller = replay("steady", seed=7)
        path = write_checkpoint(controller, tmp_path / "fleet.json")
        document = json.loads(path.read_text())
        document["events"] = document["events"][:-1]
        path.write_text(json.dumps(document))
        with pytest.raises(ValidationError):
            restore_controller(path)

    def test_classmethod_restore_matches_function(self, tmp_path):
        controller = replay("steady", seed=7)
        path = write_checkpoint(controller, tmp_path / "fleet.json")
        via_class = FleetController.restore(path)
        assert via_class.log.to_text() == controller.log.to_text()


@pytest.mark.parametrize("name", ["steady", "churn"])
class TestCrashRestoreResume:
    """The acceptance criterion: kill at an arbitrary event boundary,
    checkpoint (remaining events as pending), restore, resume -- the
    final decision log is byte-identical to the uninterrupted run's."""

    def test_resume_equals_uninterrupted_at_every_boundary(
        self, name, tmp_path
    ):
        scenario = build_scenario(name, seed=11)
        uninterrupted = _replay_all(build_scenario(name, seed=11))
        expected = uninterrupted.log.to_text()
        total = len(scenario.events)
        for cut in range(total + 1):
            crashed = FleetController(
                build_scenario(name, seed=11).network,
                config=scenario.config,
                clock=StepClock(),
            )
            for event in scenario.events[:cut]:
                crashed.handle(event)
            path = crashed.checkpoint(
                tmp_path / f"cut{cut}.json",
                pending=scenario.events[cut:],
            )
            resumed, pending = restore_controller(path)
            assert len(pending) == total - cut
            for event in pending:
                resumed.handle(event)
            assert resumed.log.to_text() == expected, (
                f"divergence after crash at event boundary {cut}"
            )
            assert (
                resumed.state.snapshot() == uninterrupted.state.snapshot()
            )
        # metrics are deliberately not compared: the restore-time
        # verification snapshot touches the shared caches, so hit/miss
        # counters diverge while every decision stays identical (same
        # caveat as the batch-pricing determinism test).

    def test_double_checkpoint_is_stable(self, name, tmp_path):
        """checkpoint -> restore -> checkpoint writes identical bytes."""
        controller = _replay_all(build_scenario(name, seed=11))
        first = write_checkpoint(controller, tmp_path / "one.json")
        restored, _ = restore_controller(first)
        second = write_checkpoint(restored, tmp_path / "two.json")
        assert first.read_text() == second.read_text()


class TestMigrationCodec:
    MODEL = MigrationCostModel(
        state_bits_per_cycle=0.25, state_bits_base=5e5, downtime_s=0.02
    )

    def test_none_passes_through(self):
        assert migration_to_dict(None) is None
        assert migration_from_dict(None) is None

    def test_model_round_trips(self):
        document = json.loads(json.dumps(migration_to_dict(self.MODEL)))
        assert migration_from_dict(document) == self.MODEL

    def test_config_round_trips_the_policy_knobs(self):
        config = FleetConfig(
            migration=self.MODEL,
            migration_weight=0.05,
            rebalance_min_gain=1e-4,
            rebalance_cooldown_ticks=3,
        )
        document = json.loads(json.dumps(config_to_dict(config)))
        assert config_from_dict(document) == config

    def test_pre_migration_documents_decode_with_defaults(self):
        document = config_to_dict(FleetConfig())
        for key in (
            "migration",
            "migration_weight",
            "rebalance_min_gain",
            "rebalance_cooldown_ticks",
        ):
            document.pop(key, None)
        config = config_from_dict(document)
        assert config.migration is None
        assert config.migration_weight == 0.0
        assert config.rebalance_min_gain == 0.0
        assert config.rebalance_cooldown_ticks == 0


class TestPendingPriorities:
    """Regression: checkpoints must carry pending-job *priorities*.

    Restoring used to re-submit pending events at their kind's default
    priority, silently reordering any queue whose jobs had been boosted
    (operator overrides, failure preemption) -- the resumed run then
    replayed decisions in a different order than the interrupted one
    would have.
    """

    def _drift_service(self):
        """A fleet service mid-way through the drift scenario.

        The first chunk of events is drained; the rest sits queued with
        deliberately scrambled explicit priorities (so default-priority
        resubmission would provably reorder it).
        """
        scenario = build_scenario("drift", seed=0)
        controller = FleetController(
            scenario.network, config=scenario.config, clock=StepClock()
        )
        service = FleetService(controller)
        cut = len(scenario.events) // 2
        for event in scenario.events[:cut]:
            service.submit(event)
        service.drain()
        for index, event in enumerate(scenario.events[cut:]):
            priority = (index * 7) % 5 if index % 3 else None
            service.submit(event, priority)
        return service

    def _queued_pairs(self, service):
        return [(job.event, job.priority) for job in service.queue.queued()]

    def test_priorities_survive_the_codec(self, tmp_path):
        service = self._drift_service()
        pairs = self._queued_pairs(service)
        assert len({priority for _event, priority in pairs}) > 1
        path = write_checkpoint(
            service.controller, tmp_path / "mid.json", pending=pairs
        )
        checkpoint = load_checkpoint(path)
        assert len(checkpoint.pending) == len(pairs)
        assert checkpoint.pending_priorities == tuple(
            priority for _event, priority in pairs
        )

    def test_bare_events_load_with_default_priorities(self, tmp_path):
        controller = replay("steady", seed=2)
        path = write_checkpoint(
            controller, tmp_path / "bare.json", pending=[Tick(), Tick()]
        )
        checkpoint = load_checkpoint(path)
        assert len(checkpoint.pending) == 2
        assert checkpoint.pending_priorities == (None, None)
        restored = restore_service(checkpoint)
        defaults = [job.priority for job in restored.queue.queued()]
        assert len(defaults) == 2

    def test_restored_queue_replays_in_checkpointed_order(self, tmp_path):
        service = self._drift_service()
        pairs = self._queued_pairs(service)
        path = write_checkpoint(
            service.controller, tmp_path / "mid.json", pending=pairs
        )
        restored = restore_service(path)
        # events lack value equality (workflows compare by identity), so
        # compare through the codec
        encoded = [
            (event_to_dict(event), priority) for event, priority in pairs
        ]
        assert [
            (event_to_dict(event), priority)
            for event, priority in self._queued_pairs(restored)
        ] == encoded

    def test_resumed_decisions_are_byte_identical(self, tmp_path):
        service = self._drift_service()
        pairs = self._queued_pairs(service)
        path = write_checkpoint(
            service.controller, tmp_path / "mid.json", pending=pairs
        )
        restored = restore_service(path)
        service.drain()
        restored.drain()
        assert (
            restored.controller.log.to_text()
            == service.controller.log.to_text()
        )
        assert (
            restored.controller.state.snapshot()
            == service.controller.state.snapshot()
        )
