"""Unit tests for the SNDlib-style/JSON topology loader."""

import json

import pytest

from repro.exceptions import NetworkError, ReproError, TopologyFormatError
from repro.io.json_codec import network_to_dict
from repro.network.topology import bus_network
from repro.scenarios import abilene_network, load_topology, parse_topology
from repro.scenarios.loader import SIGNAL_SPEED_M_PER_S, great_circle_m

MINI = """
# a 3-node triangle with one explicit delay
NODES (
  A ( 0.0 0.0 )
  B ( 1.0 0.0 )
  C ( 0.0 1.0 )
)
LINKS (
  L1 ( A B ) 100.0
  L2 ( B C ) 50.0 2.5
  L3 ( C A ) 10.0
)
"""


class TestParseTopology:
    def test_mini_triangle(self):
        network = parse_topology(MINI, name="mini")
        assert network.name == "mini"
        assert network.server_names == ("A", "B", "C")
        assert len(network.links) == 3
        assert all(s.power_hz == 2e9 for s in network)

    def test_capacity_unit_scaling(self):
        network = parse_topology(MINI)
        # default unit is Mbps
        assert network.link("A", "B").speed_bps == 100.0 * 1e6
        kbps = parse_topology(MINI, capacity_unit_bps=1e3)
        assert kbps.link("A", "B").speed_bps == 100.0 * 1e3

    def test_explicit_delay_column_wins(self):
        network = parse_topology(MINI)
        assert network.link("B", "C").propagation_s == 2.5 / 1e3

    def test_distance_derived_propagation(self):
        network = parse_topology(MINI)
        expected = (
            great_circle_m(0.0, 0.0, 1.0, 0.0) / SIGNAL_SPEED_M_PER_S
        )
        assert network.link("A", "B").propagation_s == pytest.approx(
            expected
        )
        assert network.link("A", "B").propagation_s > 0

    def test_default_power_override(self):
        network = parse_topology(MINI, default_power_hz=5e9)
        assert all(s.power_hz == 5e9 for s in network)

    @pytest.mark.parametrize(
        "text, fragment",
        [
            ("NODES (\n A ( x 0 )\n)", "longitude must be a number"),
            ("NODES (\n A 0 0\n)", "expected 'name"),
            ("NODES (\n A ( 0 0 )\n A ( 1 1 )\n)", "duplicate node"),
            (
                "NODES (\n A ( 0 0 )\n B ( 1 1 )\n)\n"
                "LINKS (\n L1 ( A X ) 10\n)",
                "unknown endpoint",
            ),
            (
                "NODES (\n A ( 0 0 )\n B ( 1 1 )\n)\n"
                "LINKS (\n L1 ( A B ) -3\n)",
                "capacity must be > 0",
            ),
            (
                "NODES (\n A ( 0 0 )\n B ( 1 1 )\n)\n"
                "LINKS (\n L1 ( A B ) 10 -1\n)",
                "delay_ms must be >= 0",
            ),
            (
                "NODES (\n A ( 0 0 )\n B ( 1 1 )\n)\n"
                "LINKS (\n L1 ( A B ) 10\n L2 ( B A ) 10\n)",
                "duplicate link",
            ),
            ("hello", "outside NODES/LINKS"),
            ("NODES (\n A ( 0 0 )", "unterminated"),
            ("NODES (\nNODES (\n)", "unterminated previous section"),
            (")", "outside any section"),
            ("", "no NODES section"),
            ("NODES\n", "section header must end"),
        ],
    )
    def test_malformed_text_raises_with_context(self, text, fragment):
        with pytest.raises(TopologyFormatError, match=fragment):
            parse_topology(text)

    def test_error_is_a_network_error(self):
        assert issubclass(TopologyFormatError, NetworkError)
        assert issubclass(TopologyFormatError, ReproError)

    def test_disconnected_rejected(self):
        text = (
            "NODES (\n A ( 0 0 )\n B ( 1 1 )\n C ( 2 2 )\n)\n"
            "LINKS (\n L1 ( A B ) 10\n)"
        )
        with pytest.raises(ReproError):
            parse_topology(text)

    def test_comments_and_blanks_ignored(self):
        network = parse_topology(
            "# leading comment\n\nNODES (\n  A ( 0 0 )  # inline\n"
            "  B ( 1 1 )\n)\nLINKS (\n  L1 ( A B ) 10\n)\n"
        )
        assert len(network) == 2


class TestLoadTopology:
    def test_text_file(self, tmp_path):
        path = tmp_path / "mini.txt"
        path.write_text(MINI)
        network = load_topology(path)
        assert network.name == "mini"  # from the stem
        assert load_topology(path, name="other").name == "other"

    def test_json_file(self, tmp_path):
        source = bus_network([1e9, 2e9, 3e9], speed_bps=5e6, name="bus")
        path = tmp_path / "net.json"
        path.write_text(json.dumps(network_to_dict(source)))
        network = load_topology(path)
        assert network.server_names == source.server_names
        assert network.link("S1", "S2").speed_bps == 5e6

    def test_json_dispatch_on_content(self, tmp_path):
        # leading '{' wins even without a .json suffix
        source = bus_network([1e9, 1e9], speed_bps=1e6)
        path = tmp_path / "net.topo"
        path.write_text(json.dumps(network_to_dict(source)))
        assert len(load_topology(path)) == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(TopologyFormatError, match="cannot read"):
            load_topology(tmp_path / "nope.txt")

    def test_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(TopologyFormatError, match="not valid JSON"):
            load_topology(path)

    def test_json_wrong_shape(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"unexpected": true}')
        with pytest.raises(TopologyFormatError):
            load_topology(path)


class TestAbileneFixture:
    def test_bundled_fixture_loads(self):
        network = abilene_network()
        assert network.name == "abilene"
        assert len(network) == 12
        assert len(network.links) == 15
        assert network.is_connected()
        assert not network.is_uniform_bus()

    def test_multi_hop_and_heterogeneous_delay(self):
        network = abilene_network()
        # Abilene is sparse: coast-to-coast pairs are not adjacent
        assert not network.has_link("NYCMng", "LOSAng")
        # every trunk is OC-192 but propagation varies with distance
        speeds = {link.speed_bps for link in network.links}
        assert speeds == {9920.0 * 1e6}
        propagations = [link.propagation_s for link in network.links]
        assert min(propagations) > 0
        assert max(propagations) > 2 * min(propagations)

    def test_power_override(self):
        network = abilene_network(default_power_hz=3e9, name="abi")
        assert network.name == "abi"
        assert all(s.power_hz == 3e9 for s in network)
