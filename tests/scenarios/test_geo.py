"""Unit tests for the geo-region network factories."""

import pytest

from repro.exceptions import NetworkError
from repro.network.topology import bus_network
from repro.scenarios import (
    GEO_REGIONS,
    REGION_LATENCY_MS,
    geo_network,
    random_geo_network,
    region_of,
    region_servers,
)


class TestRegionNaming:
    def test_region_of(self):
        assert region_of("us-east/1") == "us-east"
        assert region_of("eu-west/12") == "eu-west"
        # a bare name is its own region (non-geo fleets degrade to
        # single-server outages)
        assert region_of("S3") == "S3"

    def test_region_servers(self):
        network = geo_network(("us-east", "us-west"), servers_per_region=3)
        assert region_servers(network, "us-east") == (
            "us-east/1",
            "us-east/2",
            "us-east/3",
        )
        assert region_servers(network, "mars") == ()

    def test_region_servers_on_bus(self):
        network = bus_network([1e9, 1e9], speed_bps=1e6)
        assert region_servers(network, "S1") == ("S1",)


class TestGeoNetwork:
    def test_default_four_regions(self):
        network = geo_network()
        assert len(network) == 8
        # complete graph: C(8, 2) links
        assert len(network.links) == 28
        assert network.is_connected()
        assert not network.is_uniform_bus()

    def test_lan_vs_backbone(self):
        network = geo_network(
            ("us-east", "eu-west"),
            servers_per_region=2,
            backbone_bps=1e9,
            lan_bps=10e9,
            lan_propagation_s=2e-4,
        )
        lan = network.link("us-east/1", "us-east/2")
        assert lan.speed_bps == 10e9
        assert lan.propagation_s == 2e-4
        wan = network.link("us-east/1", "eu-west/2")
        assert wan.speed_bps == 1e9
        expected = REGION_LATENCY_MS[frozenset(("us-east", "eu-west"))]
        assert wan.propagation_s == pytest.approx(expected / 1e3)

    def test_per_server_powers(self):
        powers = {
            "us-east/1": 1e9,
            "us-east/2": 2e9,
            "us-west/1": 3e9,
            "us-west/2": 4e9,
        }
        network = geo_network(("us-east", "us-west"), power_hz=powers)
        assert network.server("us-west/1").power_hz == 3e9

    def test_latency_matrix_is_complete(self):
        # every unordered pair of the default pool has an entry
        for index, a in enumerate(GEO_REGIONS):
            for b in GEO_REGIONS[index + 1 :]:
                assert frozenset((a, b)) in REGION_LATENCY_MS

    def test_rejections(self):
        with pytest.raises(NetworkError):
            geo_network(("us-east", "us-east"))
        with pytest.raises(NetworkError):
            geo_network(("us-east",), servers_per_region=0)
        with pytest.raises(NetworkError, match="latency"):
            geo_network(("us-east", "nowhere"))


class TestRandomGeoNetwork:
    def test_seeded_determinism(self):
        a = random_geo_network(4, seed=7)
        b = random_geo_network(4, seed=7)
        assert a.server_names == b.server_names
        assert [
            (link.endpoints, link.speed_bps, link.propagation_s)
            for link in a.links
        ] == [
            (link.endpoints, link.speed_bps, link.propagation_s)
            for link in b.links
        ]
        assert [s.power_hz for s in a] == [s.power_hz for s in b]

    def test_different_seeds_differ(self):
        a = random_geo_network(4, seed=7)
        b = random_geo_network(4, seed=8)
        assert [s.power_hz for s in a] != [s.power_hz for s in b]

    def test_jitter_stays_bounded(self):
        network = random_geo_network(3, seed=1, latency_jitter=0.1)
        for link in network.links:
            a, b = sorted(link.endpoints)
            region_a, region_b = region_of(a), region_of(b)
            if region_a == region_b:
                continue
            base = REGION_LATENCY_MS[frozenset((region_a, region_b))] / 1e3
            assert 0.9 * base <= link.propagation_s <= 1.1 * base

    def test_zero_jitter_matches_matrix(self):
        network = random_geo_network(2, seed=3, latency_jitter=0.0)
        base = REGION_LATENCY_MS[frozenset(("us-east", "us-west"))]
        wan = network.link("us-east/1", "us-west/1")
        assert wan.propagation_s == pytest.approx(base / 1e3)

    def test_rejections(self):
        with pytest.raises(NetworkError):
            random_geo_network(0)
        with pytest.raises(NetworkError):
            random_geo_network(99)
        with pytest.raises(NetworkError):
            random_geo_network(2, latency_jitter=1.5)
