"""Unit tests for the DOT exporters (structure of the generated text)."""

import pytest

from repro.core.mapping import Deployment
from repro.io.dot import deployment_to_dot, network_to_dot, workflow_to_dot


class TestWorkflowDot:
    def test_digraph_with_all_nodes_and_edges(self, line3):
        dot = workflow_to_dot(line3)
        assert dot.startswith('digraph "line3" {')
        assert dot.rstrip().endswith("}")
        for name in line3.operation_names:
            assert f'"{name}"' in dot
        assert '"A" -> "B"' in dot
        assert '"B" -> "C"' in dot

    def test_decision_nodes_are_diamonds(self, xor_diamond):
        dot = workflow_to_dot(xor_diamond)
        choice_line = next(
            line for line in dot.splitlines() if line.strip().startswith('"choice"')
        )
        assert "diamond" in choice_line
        start_line = next(
            line for line in dot.splitlines() if line.strip().startswith('"start"')
        )
        assert "box" in start_line

    def test_xor_probability_in_edge_label(self, xor_diamond):
        dot = workflow_to_dot(xor_diamond)
        assert "p=0.7" in dot and "p=0.3" in dot

    def test_quotes_escaped(self):
        from repro.core.workflow import Operation, Workflow

        workflow = Workflow('we "quote"')
        workflow.add_operation(Operation('op "x"', 1e6))
        dot = workflow_to_dot(workflow)
        assert '\\"' in dot


class TestFormatHelpers:
    def test_format_bits_scales(self):
        from repro.io.dot import _format_bits

        assert _format_bits(500) == "500 bit"
        assert _format_bits(8_000) == "8.0 kbit"
        assert _format_bits(2_500_000) == "2.50 Mbit"

    def test_format_cycles_scales(self):
        from repro.io.dot import _format_cycles

        assert _format_cycles(500) == "500 cyc"
        assert _format_cycles(50e6) == "50 Mcyc"


class TestNetworkDot:
    def test_undirected_graph(self, bus3):
        dot = network_to_dot(bus3)
        assert dot.startswith('graph "bus" {')
        assert '"S1" -- "S2"' in dot
        assert "GHz" in dot and "Mbps" in dot


class TestDeploymentDot:
    def test_clusters_per_server(self, line3, bus3):
        deployment = Deployment({"A": "S1", "B": "S1", "C": "S2"})
        dot = deployment_to_dot(line3, bus3, deployment)
        assert "subgraph cluster_0" in dot
        assert "subgraph cluster_1" in dot

    def test_cross_server_edges_highlighted(self, line3, bus3):
        deployment = Deployment({"A": "S1", "B": "S1", "C": "S2"})
        dot = deployment_to_dot(line3, bus3, deployment)
        edge_ab = next(
            line for line in dot.splitlines() if '"A" -> "B"' in line
        )
        edge_bc = next(
            line for line in dot.splitlines() if '"B" -> "C"' in line
        )
        assert "grey" in edge_ab  # co-located
        assert "red" in edge_bc  # crosses the bus

    def test_incomplete_deployment_rejected(self, line3, bus3):
        from repro.exceptions import IncompleteMappingError

        with pytest.raises(IncompleteMappingError):
            deployment_to_dot(line3, bus3, Deployment({"A": "S1"}))
