"""Unit tests for the JSON codec (round-trips and error handling)."""

import json

import pytest

from repro.core.mapping import Deployment
from repro.io.json_codec import (
    CodecError,
    deployment_from_dict,
    deployment_to_dict,
    dump_instance,
    load_instance,
    network_from_dict,
    network_to_dict,
    workflow_from_dict,
    workflow_to_dict,
)


class TestWorkflowRoundTrip:
    def test_line(self, line3):
        restored = workflow_from_dict(workflow_to_dict(line3))
        assert restored.name == line3.name
        assert restored.operation_names == line3.operation_names
        assert [op.cycles for op in restored] == [op.cycles for op in line3]
        assert [m.pair for m in restored.messages] == [
            m.pair for m in line3.messages
        ]

    def test_decision_nodes_and_probabilities(self, xor_diamond):
        restored = workflow_from_dict(workflow_to_dict(xor_diamond))
        assert restored.operation("choice").kind.value == "xor"
        assert restored.message("choice", "left").probability == 0.7
        restored.validate_xor_probabilities()

    def test_generated_graph_round_trip(self):
        from repro.core.validation import check_well_formed
        from repro.workloads.generator import (
            GraphStructure,
            random_graph_workflow,
        )

        workflow = random_graph_workflow(20, GraphStructure.BUSHY, seed=5)
        restored = workflow_from_dict(workflow_to_dict(workflow))
        assert check_well_formed(restored).ok
        assert len(restored) == 20

    def test_is_json_serialisable(self, xor_diamond):
        json.dumps(workflow_to_dict(xor_diamond))


class TestNetworkRoundTrip:
    def test_bus(self, bus3):
        restored = network_from_dict(network_to_dict(bus3))
        assert restored.topology_kind == "bus"
        assert restored.server_names == bus3.server_names
        assert restored.is_uniform_bus()
        assert restored.uniform_speed_bps == 100e6

    def test_line_with_propagation(self):
        from repro.network.topology import line_network

        network = line_network([1e9, 2e9], 5e6, propagation_s=0.01)
        restored = network_from_dict(network_to_dict(network))
        assert restored.link("S1", "S2").propagation_s == 0.01


class TestDeploymentRoundTrip:
    def test_round_trip(self):
        deployment = Deployment({"A": "S1", "B": "S2"})
        restored = deployment_from_dict(deployment_to_dict(deployment))
        assert restored == deployment


class TestErrorHandling:
    def test_wrong_format_rejected(self, line3):
        document = workflow_to_dict(line3)
        with pytest.raises(CodecError):
            network_from_dict(document)

    def test_missing_field_rejected(self, line3):
        document = workflow_to_dict(line3)
        del document["operations"]
        with pytest.raises(CodecError):
            workflow_from_dict(document)

    def test_unknown_kind_rejected(self, line3):
        document = workflow_to_dict(line3)
        document["operations"][0]["kind"] = "quantum"
        with pytest.raises(CodecError):
            workflow_from_dict(document)

    def test_unsupported_version_rejected(self, line3):
        document = workflow_to_dict(line3)
        document["version"] = 99
        with pytest.raises(CodecError):
            workflow_from_dict(document)

    def test_bad_assignments_rejected(self):
        with pytest.raises(CodecError):
            deployment_from_dict(
                {"format": "deployment", "version": 1, "assignments": [1, 2]}
            )

    def test_structural_errors_surface_as_workflow_errors(self, line3):
        from repro.exceptions import DuplicateOperationError

        document = workflow_to_dict(line3)
        document["operations"].append(document["operations"][0])
        with pytest.raises(DuplicateOperationError):
            workflow_from_dict(document)


class TestInstanceBundles:
    def test_round_trip_without_deployment(self, line3, bus3, tmp_path):
        path = tmp_path / "instance.json"
        dump_instance(path, line3, bus3)
        workflow, network, deployment = load_instance(path)
        assert workflow.operation_names == line3.operation_names
        assert network.server_names == bus3.server_names
        assert deployment is None

    def test_round_trip_with_deployment(self, line3, bus3, tmp_path):
        path = tmp_path / "instance.json"
        original = Deployment.all_on_one(line3, "S2")
        dump_instance(path, line3, bus3, original)
        workflow, network, deployment = load_instance(path)
        assert deployment == original
        deployment.validate(workflow, network)

    def test_costs_survive_the_round_trip(self, line3, bus3, tmp_path):
        """The decisive property: identical costs before and after."""
        from repro.core.cost import CostModel

        path = tmp_path / "instance.json"
        original = Deployment({"A": "S1", "B": "S2", "C": "S3"})
        dump_instance(path, line3, bus3, original)
        workflow, network, deployment = load_instance(path)
        before = CostModel(line3, bus3).evaluate(original)
        after = CostModel(workflow, network).evaluate(deployment)
        assert after.execution_time == pytest.approx(before.execution_time)
        assert after.time_penalty == pytest.approx(before.time_penalty)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{ not json")
        with pytest.raises(CodecError):
            load_instance(path)

    def test_wrong_bundle_format_rejected(self, line3, tmp_path):
        path = tmp_path / "wf.json"
        path.write_text(json.dumps(workflow_to_dict(line3)))
        with pytest.raises(CodecError):
            load_instance(path)
