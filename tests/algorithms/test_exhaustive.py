"""Unit tests for the exhaustive algorithm."""

import itertools

import pytest

from repro.algorithms.exhaustive import Exhaustive
from repro.core.cost import CostModel
from repro.core.mapping import Deployment
from repro.core.workflow import Operation, Workflow
from repro.exceptions import AlgorithmError, SearchSpaceTooLargeError
from repro.network.topology import bus_network


@pytest.fixture
def tiny():
    """A 3-op line on a 2-server bus: 8 configurations."""
    workflow = Workflow("tiny")
    workflow.add_operations(
        [Operation("A", 10e6), Operation("B", 20e6), Operation("C", 30e6)]
    )
    workflow.connect("A", "B", 8_000)
    workflow.connect("B", "C", 16_000)
    network = bus_network([1e9, 2e9], speed_bps=100e6)
    return workflow, network, CostModel(workflow, network)


def test_search_space_size(tiny):
    workflow, network, _ = tiny
    assert Exhaustive().search_space_size(workflow, network) == 8


def test_enumerate_covers_all_configurations(tiny):
    workflow, network, model = tiny
    seen = {
        tuple(sorted(em.deployment.as_dict().items()))
        for em in Exhaustive().enumerate(workflow, network, model)
    }
    assert len(seen) == 8
    expected = {
        tuple(sorted(zip(("A", "B", "C"), combo)))
        for combo in itertools.product(("S1", "S2"), repeat=3)
    }
    assert seen == expected


def test_best_is_global_minimum(tiny):
    workflow, network, model = tiny
    algorithm = Exhaustive()
    best = algorithm.best(workflow, network, model)
    all_objectives = [
        em.cost.objective
        for em in algorithm.enumerate(workflow, network, model)
    ]
    assert best.cost.objective == pytest.approx(min(all_objectives))


def test_deploy_equals_best(tiny):
    workflow, network, model = tiny
    algorithm = Exhaustive()
    deployment = algorithm.deploy(workflow, network, cost_model=model)
    assert deployment == algorithm.best(workflow, network, model).deployment


def test_limit_guard(tiny):
    workflow, network, model = tiny
    algorithm = Exhaustive(limit=7)
    with pytest.raises(SearchSpaceTooLargeError):
        list(algorithm.enumerate(workflow, network, model))
    with pytest.raises(SearchSpaceTooLargeError):
        algorithm.deploy(workflow, network, cost_model=model)


def test_invalid_limit_rejected():
    # a bad argument is an AlgorithmError, not a search outcome -- callers
    # catching SearchSpaceTooLargeError to fall back to a heuristic must
    # not swallow a programming error
    with pytest.raises(AlgorithmError) as excinfo:
        Exhaustive(limit=0)
    assert not isinstance(excinfo.value, SearchSpaceTooLargeError)


def test_pareto_front_is_nondominated(tiny):
    workflow, network, model = tiny
    algorithm = Exhaustive()
    front = algorithm.pareto_front(workflow, network, model)
    assert front, "front must be non-empty"
    for a in front:
        for b in front:
            if a is not b:
                assert not a.cost.dominates(b.cost)
    # every enumerated point is dominated by or equal to a front point
    for em in algorithm.enumerate(workflow, network, model):
        assert any(
            f.cost.dominates(em.cost)
            or (
                f.cost.execution_time == em.cost.execution_time
                and f.cost.time_penalty == em.cost.time_penalty
            )
            for f in front
        )


def test_pareto_front_sorted_by_execution_time(tiny):
    workflow, network, model = tiny
    front = Exhaustive().pareto_front(workflow, network, model)
    times = [em.cost.execution_time for em in front]
    assert times == sorted(times)


def test_heuristics_never_beat_exhaustive(tiny):
    """Sanity anchor: no registered heuristic beats the optimum."""
    from repro.algorithms.base import algorithm_registry

    workflow, network, model = tiny
    optimum = Exhaustive().best(workflow, network, model).cost.objective
    for name, cls in algorithm_registry().items():
        if name in ("Exhaustive", "Line-Line"):
            continue
        deployment = cls().deploy(workflow, network, cost_model=model, rng=3)
        assert model.objective(deployment) >= optimum - 1e-12, name
