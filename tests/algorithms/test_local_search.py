"""Unit tests for the local-search refinement extensions."""

import pytest

from repro.algorithms.exhaustive import Exhaustive
from repro.algorithms.fair_load import FairLoad
from repro.algorithms.heavy_ops import HeavyOpsLargeMsgs
from repro.algorithms.local_search import HillClimbing, SimulatedAnnealing
from repro.core.cost import CostModel
from repro.core.workflow import Operation, Workflow
from repro.exceptions import AlgorithmError
from repro.network.topology import bus_network


@pytest.fixture
def tiny():
    workflow = Workflow("tiny")
    workflow.add_operations(
        [Operation("A", 10e6), Operation("B", 20e6), Operation("C", 30e6)]
    )
    workflow.connect("A", "B", 50_000)
    workflow.connect("B", "C", 100_000)
    network = bus_network([1e9, 2e9], speed_bps=1e6)
    return workflow, network, CostModel(workflow, network)


class TestHillClimbing:
    def test_parameter_validation(self):
        with pytest.raises(AlgorithmError):
            HillClimbing(max_iterations=0)

    def test_rejects_unknown_sweep(self):
        with pytest.raises(AlgorithmError):
            HillClimbing(sweep="bogus")

    def test_batch_sweep_matches_scalar(self, tiny):
        workflow, network, model = tiny
        batched = HillClimbing(sweep="batch").deploy(
            workflow, network, cost_model=model, rng=4
        )
        scalar = HillClimbing(sweep="scalar").deploy(
            workflow, network, cost_model=model, rng=4
        )
        assert batched.as_dict() == scalar.as_dict()
        assert model.objective(batched) == model.objective(scalar)

    def test_result_is_a_local_optimum(self, tiny):
        """No single-operation move may improve the returned mapping."""
        workflow, network, model = tiny
        result = HillClimbing().deploy(workflow, network, cost_model=model, rng=1)
        value = model.objective(result)
        for operation in workflow.operation_names:
            original = result.server_of(operation)
            for server in network.server_names:
                if server == original:
                    continue
                result.assign(operation, server)
                assert model.objective(result) >= value - 1e-15
                result.assign(operation, original)

    def test_random_restarts_reach_optimum_on_tiny_instance(self, tiny):
        workflow, network, model = tiny
        optimum = Exhaustive().best(workflow, network, model).cost.objective
        best = min(
            model.objective(
                HillClimbing().deploy(workflow, network, cost_model=model, rng=seed)
            )
            for seed in range(8)
        )
        assert best == pytest.approx(optimum)

    def test_never_worse_than_seed_algorithm(self, line5, bus3):
        model = CostModel(line5, bus3)
        seed_algorithm = FairLoad()
        seeded = seed_algorithm.deploy(line5, bus3, cost_model=model)
        refined = HillClimbing(seed_algorithm=seed_algorithm).deploy(
            line5, bus3, cost_model=model, rng=2
        )
        assert model.objective(refined) <= model.objective(seeded) + 1e-15

    def test_polishes_holm(self, tiny):
        workflow, network, model = tiny
        seeded = HeavyOpsLargeMsgs().deploy(workflow, network, cost_model=model)
        refined = HillClimbing(seed_algorithm=HeavyOpsLargeMsgs()).deploy(
            workflow, network, cost_model=model, rng=0
        )
        assert model.objective(refined) <= model.objective(seeded) + 1e-15

    def test_deterministic_given_seed_algorithm(self, line5, bus3):
        algorithm = HillClimbing(seed_algorithm=FairLoad())
        d1 = algorithm.deploy(line5, bus3, rng=3)
        d2 = algorithm.deploy(line5, bus3, rng=3)
        assert d1 == d2

    def test_iteration_cap_respected(self, line5, bus3):
        # one round may not reach a local optimum, but must return a
        # complete mapping regardless
        deployment = HillClimbing(max_iterations=1).deploy(line5, bus3, rng=1)
        assert deployment.is_complete(line5)


class TestSimulatedAnnealing:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"initial_temperature": 0.0},
            {"initial_temperature": -1.0},
            {"cooling": 0.0},
            {"cooling": 1.0},
            {"steps": 0},
        ],
    )
    def test_parameter_validation(self, kwargs):
        with pytest.raises(AlgorithmError):
            SimulatedAnnealing(**kwargs)

    def test_reaches_optimum_on_tiny_instance(self, tiny):
        workflow, network, model = tiny
        optimum = Exhaustive().best(workflow, network, model).cost.objective
        result = SimulatedAnnealing(steps=3_000).deploy(
            workflow, network, cost_model=model, rng=4
        )
        assert model.objective(result) == pytest.approx(optimum, rel=1e-9)

    def test_single_server_short_circuits(self, line3):
        network = bus_network([1e9], speed_bps=1e6)
        deployment = SimulatedAnnealing().deploy(line3, network, rng=1)
        assert set(deployment.as_dict().values()) == {"S1"}

    def test_deterministic_per_seed(self, line5, bus3):
        d1 = SimulatedAnnealing(steps=200).deploy(line5, bus3, rng=9)
        d2 = SimulatedAnnealing(steps=200).deploy(line5, bus3, rng=9)
        assert d1 == d2

    def test_returns_best_seen_not_last(self, line5, bus3):
        """The result must be at least as good as a plain random mapping
        refined by chance -- i.e. SA tracks the best-so-far state."""
        from repro.core.mapping import Deployment
        import random

        model = CostModel(line5, bus3)
        sa_value = model.objective(
            SimulatedAnnealing(steps=1_000).deploy(
                line5, bus3, cost_model=model, rng=11
            )
        )
        random_value = model.objective(
            Deployment.random(line5, bus3, random.Random(11))
        )
        assert sa_value <= random_value + 1e-15
