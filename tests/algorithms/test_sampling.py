"""Unit tests for the random baseline and the sampling quality protocol."""

import random

import pytest

from repro.algorithms.exhaustive import Exhaustive
from repro.algorithms.sampling import RandomMapping, SolutionSampler
from repro.core.cost import CostBreakdown, CostModel
from repro.exceptions import AlgorithmError


class TestRandomMapping:
    def test_complete_and_valid(self, line5, bus3):
        deployment = RandomMapping().deploy(line5, bus3, rng=5)
        assert deployment.is_complete(line5)

    def test_deterministic_per_seed(self, line5, bus3):
        d1 = RandomMapping().deploy(line5, bus3, rng=5)
        d2 = RandomMapping().deploy(line5, bus3, rng=5)
        d3 = RandomMapping().deploy(line5, bus3, rng=6)
        assert d1 == d2
        # different seeds almost surely differ on 5 ops x 3 servers
        assert d1 != d3


class TestSolutionSampler:
    def test_rejects_zero_samples(self):
        with pytest.raises(AlgorithmError):
            SolutionSampler(0)

    def test_rejects_zero_block(self):
        with pytest.raises(AlgorithmError):
            SolutionSampler(10, block=0)

    def test_block_size_does_not_change_statistics(
        self, line3, bus3, cost_line3_bus3
    ):
        """Batched block scoring is a pure speed-up, not a semantic change."""
        results = [
            SolutionSampler(200, block=block).run(
                line3, bus3, cost_line3_bus3, random.Random(1)
            )
            for block in (1, 7, 64, 1024)
        ]
        reference = results[0]
        for stats in results[1:]:
            assert stats.samples == reference.samples
            assert stats.best_execution_time == reference.best_execution_time
            assert stats.best_time_penalty == reference.best_time_penalty
            assert stats.worst_objective_value == (
                reference.worst_objective_value
            )
            assert stats.best_objective[0].as_dict() == (
                reference.best_objective[0].as_dict()
            )

    def test_statistics_fields(self, line3, bus3, cost_line3_bus3):
        stats = SolutionSampler(100).run(
            line3, bus3, cost_line3_bus3, random.Random(1)
        )
        assert stats.samples == 100
        best_deployment, best_cost = stats.best_objective
        assert best_deployment.is_complete(line3)
        assert stats.best_execution_time <= best_cost.execution_time
        assert stats.best_time_penalty <= best_cost.time_penalty
        assert stats.worst_objective_value >= best_cost.objective

    def test_dimensions_tracked_independently(self, line3, bus3, cost_line3_bus3):
        """Best execution and best penalty may come from different samples."""
        stats = SolutionSampler(500).run(
            line3, bus3, cost_line3_bus3, random.Random(2)
        )
        # with 500 samples over 27 configs the independent minima are the
        # global ones: all-on-fastest-server for execution, balanced for
        # penalty -- no single mapping achieves both
        exhaustive = Exhaustive().enumerate(line3, bus3, cost_line3_bus3)
        costs = [em.cost for em in exhaustive]
        assert stats.best_execution_time == pytest.approx(
            min(c.execution_time for c in costs)
        )
        assert stats.best_time_penalty == pytest.approx(
            min(c.time_penalty for c in costs)
        )

    def test_exhaustive_never_worse_than_sampled(
        self, line3, bus3, cost_line3_bus3
    ):
        stats = SolutionSampler(200).run(
            line3, bus3, cost_line3_bus3, random.Random(3)
        )
        optimum = Exhaustive().best(line3, bus3, cost_line3_bus3)
        assert (
            optimum.cost.objective <= stats.best_objective[1].objective + 1e-15
        )


class TestDeviationMetrics:
    def _stats(self, best_execution, best_penalty):
        from repro.algorithms.sampling import SampleStatistics
        from repro.core.mapping import Deployment

        return SampleStatistics(
            samples=1,
            best_objective=(Deployment(), CostBreakdown(1.0, 1.0, 1.0)),
            best_execution_time=best_execution,
            best_time_penalty=best_penalty,
            worst_objective_value=10.0,
        )

    def _cost(self, execution, penalty, loads=None):
        return CostBreakdown(
            execution_time=execution,
            time_penalty=penalty,
            objective=execution + penalty,
            loads=loads or {"S1": 1.0, "S2": 1.0},
        )

    def test_execution_deviation(self):
        stats = self._stats(best_execution=1.0, best_penalty=1.0)
        assert stats.execution_deviation(self._cost(1.029, 1.0)) == (
            pytest.approx(0.029)
        )

    def test_deviation_clamped_at_zero_when_better(self):
        stats = self._stats(best_execution=1.0, best_penalty=1.0)
        assert stats.execution_deviation(self._cost(0.5, 1.0)) == 0.0
        assert stats.penalty_deviation(self._cost(1.0, 0.5)) == 0.0

    def test_penalty_deviation_relative(self):
        stats = self._stats(best_execution=1.0, best_penalty=0.1)
        assert stats.penalty_deviation(self._cost(1.0, 0.112)) == (
            pytest.approx(0.12)
        )

    def test_penalty_deviation_zero_best_zero_actual(self):
        stats = self._stats(best_execution=1.0, best_penalty=0.0)
        assert stats.penalty_deviation(self._cost(1.0, 0.0)) == 0.0

    def test_penalty_deviation_zero_best_nonzero_actual(self):
        """Normalised by the mean load instead of dividing by zero."""
        stats = self._stats(best_execution=1.0, best_penalty=0.0)
        deviation = stats.penalty_deviation(
            self._cost(1.0, 0.25, loads={"S1": 0.5, "S2": 0.5})
        )
        assert deviation == pytest.approx(0.5)  # 0.25 / mean load 0.5

    def test_zero_best_execution_defends_division(self):
        stats = self._stats(best_execution=0.0, best_penalty=1.0)
        assert stats.execution_deviation(self._cost(1.0, 1.0)) == 0.0

    def test_penalty_gap_vs_load(self):
        stats = self._stats(best_execution=1.0, best_penalty=0.01)
        cost = self._cost(1.0, 0.05, loads={"S1": 0.4, "S2": 0.4})
        # gap 0.04 over mean load 0.4 -> 10%
        assert stats.penalty_gap_vs_load(cost) == pytest.approx(0.10)

    def test_penalty_gap_clamped_when_better_than_best(self):
        stats = self._stats(best_execution=1.0, best_penalty=0.05)
        cost = self._cost(1.0, 0.01, loads={"S1": 0.4, "S2": 0.4})
        assert stats.penalty_gap_vs_load(cost) == 0.0

    def test_penalty_gap_stays_conditioned_when_best_is_tiny(self):
        """The motivating case: relative deviation explodes, the gap
        stays proportionate."""
        stats = self._stats(best_execution=1.0, best_penalty=1e-4)
        cost = self._cost(1.0, 0.02, loads={"S1": 0.04, "S2": 0.04})
        assert stats.penalty_deviation(cost) > 100  # ill-conditioned
        assert stats.penalty_gap_vs_load(cost) == pytest.approx(
            (0.02 - 1e-4) / 0.04
        )
