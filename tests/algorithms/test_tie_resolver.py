"""Unit tests for FLTR and FLTR2 (tie-resolving Fair Load variants)."""

import statistics

import pytest

from repro.algorithms.base import DeploymentAlgorithm
from repro.algorithms.fair_load import FairLoad
from repro.algorithms.graph_adapters import (
    ServerBudgets,
    gain_of_operation_at_server,
)
from repro.algorithms.tie_resolver import (
    FairLoadTieResolver,
    FairLoadTieResolver2,
    tied_prefix,
)
from repro.core.cost import CostModel
from repro.core.mapping import Deployment
from repro.core.workflow import Operation, Workflow
from repro.network.topology import bus_network


def uniform_line(num_ops=6, cycles=10e6, sizes=None):
    """A line whose operations all tie on cost (ties everywhere)."""
    workflow = Workflow("uniform")
    names = [f"O{i}" for i in range(1, num_ops + 1)]
    workflow.add_operations(Operation(n, cycles) for n in names)
    sizes = sizes or [8_000] * (num_ops - 1)
    for (a, b), size in zip(zip(names, names[1:]), sizes):
        workflow.connect(a, b, size)
    return workflow


class TestTiedPrefix:
    def test_all_distinct(self):
        assert tied_prefix(["a", "b"], {"a": 3.0, "b": 1.0}.__getitem__) == ["a"]

    def test_ties_extend_prefix(self):
        key = {"a": 3.0, "b": 3.0, "c": 1.0}.__getitem__
        assert tied_prefix(["a", "b", "c"], key) == ["a", "b"]

    def test_empty(self):
        assert tied_prefix([], lambda n: 0.0) == []

    def test_relative_tolerance(self):
        key = {"a": 1e9, "b": 1e9 * (1 + 1e-12), "c": 2e9}.__getitem__
        assert tied_prefix(["c", "b", "a"], key) == ["c"]
        assert tied_prefix(["b", "a"], key) == ["b", "a"]


class TestGainFunction:
    def _context(self, workflow, network):
        class Probe(DeploymentAlgorithm):
            name = "test-gain-probe"

            def _deploy(self, context):
                self.context = context
                return Deployment.round_robin(
                    context.workflow, context.network
                )

        probe = Probe()
        probe.deploy(workflow, network)
        return probe.context

    def test_gain_counts_colocated_neighbors(self, bus3):
        workflow = uniform_line(3, sizes=[1_000, 5_000])
        context = self._context(workflow, bus3)
        mapping = Deployment({"O1": "S1", "O3": "S1"})
        # placing O2 on S1 saves both its messages
        assert gain_of_operation_at_server(
            context, "O2", "S1", mapping
        ) == pytest.approx(6_000)
        # placing it elsewhere saves nothing
        assert gain_of_operation_at_server(
            context, "O2", "S2", mapping
        ) == 0.0

    def test_gain_ignores_unmapped_neighbors(self, bus3):
        workflow = uniform_line(3, sizes=[1_000, 5_000])
        context = self._context(workflow, bus3)
        mapping = Deployment({"O1": "S1"})
        assert gain_of_operation_at_server(
            context, "O2", "S1", mapping
        ) == pytest.approx(1_000)

    def test_gain_weighted_by_probability(self, xor_diamond, bus3):
        context = self._context(xor_diamond, bus3)
        mapping = Deployment({"choice": "S1"})
        gain = gain_of_operation_at_server(context, "left", "S1", mapping)
        assert gain == pytest.approx(0.7 * 8_000)


class TestServerBudgets:
    def _context(self, workflow, network):
        class Probe(DeploymentAlgorithm):
            name = "test-budget-probe"

            def _deploy(self, context):
                self.context = context
                return Deployment.round_robin(
                    context.workflow, context.network
                )

        probe = Probe()
        probe.deploy(workflow, network)
        return probe.context

    def test_neediest_follows_capacity(self, line3, bus3):
        budgets = ServerBudgets(self._context(line3, bus3))
        assert budgets.neediest() == "S3"
        budgets.charge("S3", 25e6)  # 30M -> 5M remaining
        assert budgets.neediest() == "S2"

    def test_ties_keep_insertion_order(self, line3):
        network = bus_network([1e9, 1e9, 1e9], speed_bps=1e6)
        budgets = ServerBudgets(self._context(line3, network))
        assert budgets.sorted_servers() == ["S1", "S2", "S3"]
        assert budgets.tied_with_neediest() == ["S1", "S2", "S3"]
        budgets.charge("S1", 1e6)
        assert budgets.neediest() == "S2"
        assert budgets.tied_with_neediest() == ["S2", "S3"]

    def test_as_dict_snapshot(self, line3, bus3):
        budgets = ServerBudgets(self._context(line3, bus3))
        snapshot = budgets.as_dict()
        budgets.charge("S1", 5e6)
        assert snapshot["S1"] == pytest.approx(10e6)
        assert budgets.remaining("S1") == pytest.approx(5e6)


class TestFLTR:
    def test_equals_fair_load_without_ties(self, line3, bus3):
        """Distinct costs leave nothing to resolve: FLTR == Fair Load."""
        fair = FairLoad().deploy(line3, bus3)
        fltr = FairLoadTieResolver().deploy(line3, bus3, rng=9)
        assert fltr.as_dict() == fair.as_dict()

    def test_deterministic_per_seed(self, bus3):
        workflow = uniform_line()
        d1 = FairLoadTieResolver().deploy(workflow, bus3, rng=4)
        d2 = FairLoadTieResolver().deploy(workflow, bus3, rng=4)
        assert d1 == d2

    def test_reduces_communication_under_ties(self):
        """With all-equal cycles, gains steer ops toward their neighbours,
        cutting communication versus tie-blind Fair Load on average."""
        workflow = uniform_line(10)
        network = bus_network([1e9, 1e9], speed_bps=1e6)
        model = CostModel(workflow, network)
        fair = model.total_communication_time(
            FairLoad().deploy(workflow, network)
        )
        resolver_costs = [
            model.total_communication_time(
                FairLoadTieResolver().deploy(workflow, network, rng=seed)
            )
            for seed in range(10)
        ]
        assert statistics.mean(resolver_costs) <= fair

    def test_preserves_fairness(self, bus3):
        """Tie resolution must not degrade the load distribution."""
        workflow = uniform_line(9)
        model = CostModel(workflow, bus3)
        fair_penalty = model.time_penalty(FairLoad().deploy(workflow, bus3))
        fltr_penalty = model.time_penalty(
            FairLoadTieResolver().deploy(workflow, bus3, rng=1)
        )
        assert fltr_penalty == pytest.approx(fair_penalty, abs=1e-12)


class TestEmptyStartAblation:
    """The ``random_start=False`` variants (DESIGN.md ablation)."""

    def test_empty_start_still_complete_and_valid(self, bus3):
        workflow = uniform_line()
        for cls in (FairLoadTieResolver, FairLoadTieResolver2):
            deployment = cls(random_start=False).deploy(workflow, bus3, rng=1)
            deployment.validate(workflow, bus3)

    def test_empty_start_is_seed_independent(self, bus3):
        """Without the random mapping nothing is stochastic."""
        workflow = uniform_line()
        algorithm = FairLoadTieResolver(random_start=False)
        assert algorithm.deploy(workflow, bus3, rng=1) == algorithm.deploy(
            workflow, bus3, rng=999
        )

    def test_empty_start_equals_fair_load_without_ties(self, line3, bus3):
        fair = FairLoad().deploy(line3, bus3)
        fltr = FairLoadTieResolver(random_start=False).deploy(
            line3, bus3, rng=1
        )
        assert fltr.as_dict() == fair.as_dict()

    def test_flmme_empty_start_valid(self, bus3):
        from repro.algorithms.merge_messages import FairLoadMergeMessages

        workflow = uniform_line(8, sizes=[50_000] * 7)
        deployment = FairLoadMergeMessages(random_start=False).deploy(
            workflow, bus3, rng=1
        )
        deployment.validate(workflow, bus3)


class TestFLTR2:
    def test_equals_fair_load_without_ties(self, line3, bus3):
        fair = FairLoad().deploy(line3, bus3)
        fltr2 = FairLoadTieResolver2().deploy(line3, bus3, rng=9)
        assert fltr2.as_dict() == fair.as_dict()

    def test_deterministic_per_seed(self, bus3):
        workflow = uniform_line()
        d1 = FairLoadTieResolver2().deploy(workflow, bus3, rng=4)
        d2 = FairLoadTieResolver2().deploy(workflow, bus3, rng=4)
        assert d1 == d2

    def test_exploits_server_ties(self):
        """Equal-power servers widen the candidate set; FLTR2 may pick a
        server other than the first to co-locate with a mapped neighbour."""
        workflow = uniform_line(8, sizes=[50_000] * 7)
        network = bus_network([1e9, 1e9, 1e9], speed_bps=1e6)
        model = CostModel(workflow, network)
        fltr = statistics.mean(
            model.total_communication_time(
                FairLoadTieResolver().deploy(workflow, network, rng=seed)
            )
            for seed in range(8)
        )
        fltr2 = statistics.mean(
            model.total_communication_time(
                FairLoadTieResolver2().deploy(workflow, network, rng=seed)
            )
            for seed in range(8)
        )
        assert fltr2 <= fltr

    def test_complete_on_graph_workflows(self, xor_diamond, bus3):
        deployment = FairLoadTieResolver2().deploy(xor_diamond, bus3, rng=2)
        assert deployment.is_complete(xor_diamond)
