"""Unit tests for Fair Load -- Merge Messages' Ends (FLMME)."""

import pytest

from repro.algorithms.base import DeploymentAlgorithm
from repro.algorithms.merge_messages import (
    FairLoadMergeMessages,
    big_message_threshold,
)
from repro.core.cost import CostModel
from repro.core.mapping import Deployment
from repro.core.workflow import Operation, Workflow
from repro.exceptions import AlgorithmError
from repro.network.topology import bus_network


def line_with_sizes(sizes, cycles=10e6):
    workflow = Workflow("sized")
    names = [f"O{i}" for i in range(1, len(sizes) + 2)]
    workflow.add_operations(Operation(n, cycles) for n in names)
    for (a, b), size in zip(zip(names, names[1:]), sizes):
        workflow.connect(a, b, size)
    return workflow


def _context(workflow, network):
    class Probe(DeploymentAlgorithm):
        name = "test-flmme-probe"

        def _deploy(self, context):
            self.context = context
            return Deployment.round_robin(context.workflow, context.network)

    probe = Probe()
    probe.deploy(workflow, network)
    return probe.context


class TestBigMessageThreshold:
    def test_top_decile_of_ten_messages(self, bus3):
        sizes = [float(s) for s in range(1_000, 11_000, 1_000)]  # 1k..10k
        workflow = line_with_sizes(sizes)
        context = _context(workflow, bus3)
        # descending [10k..1k]; index int(9 * 0.1) = 0 -> 10k is the bar
        assert big_message_threshold(context, 0.1) == pytest.approx(10_000)

    def test_half_fraction(self, bus3):
        sizes = [1_000.0, 2_000.0, 3_000.0, 4_000.0]
        workflow = line_with_sizes(sizes)
        context = _context(workflow, bus3)
        # descending [4k,3k,2k,1k]; index int(3 * 0.5) = 1 -> 3k
        assert big_message_threshold(context, 0.5) == pytest.approx(3_000)

    def test_no_messages_yields_infinity(self, bus3):
        workflow = Workflow("solo")
        workflow.add_operation(Operation("A", 1e6))
        context = _context(workflow, bus3)
        assert big_message_threshold(context, 0.1) == float("inf")

    def test_probability_weighted_sizes(self, xor_diamond, bus3):
        context = _context(xor_diamond, bus3)
        threshold = big_message_threshold(context, 0.0)
        # fraction 0 -> the single largest weighted message: the
        # probability-1 edges at 8000 bits
        assert threshold == pytest.approx(8_000)


class TestFLMME:
    def test_invalid_fraction_rejected(self):
        with pytest.raises(AlgorithmError):
            FairLoadMergeMessages(big_fraction=1.5)
        with pytest.raises(AlgorithmError):
            FairLoadMergeMessages(big_fraction=-0.1)

    def test_huge_message_ends_colocated(self):
        """The defining behaviour: a dominant message never crosses."""
        workflow = line_with_sizes([100.0, 1_000_000.0, 100.0, 100.0])
        network = bus_network([1e9, 1e9], speed_bps=1e6)
        for seed in range(6):
            deployment = FairLoadMergeMessages().deploy(
                workflow, network, rng=seed
            )
            assert deployment.server_of("O2") == deployment.server_of("O3"), (
                f"seed {seed}: the 1 Mbit message O2->O3 crossed the bus"
            )

    def test_improves_execution_time_over_fairness(self):
        """Paper: FLMME trades load balance for execution time."""
        from repro.algorithms.tie_resolver import FairLoadTieResolver2

        workflow = line_with_sizes(
            [100.0, 500_000.0, 100.0, 400_000.0, 100.0, 100.0]
        )
        network = bus_network([1e9, 1e9], speed_bps=1e6)
        model = CostModel(workflow, network)
        flmme_exec = min(
            model.execution_time(
                FairLoadMergeMessages().deploy(workflow, network, rng=seed)
            )
            for seed in range(5)
        )
        fltr2_exec = min(
            model.execution_time(
                FairLoadTieResolver2().deploy(workflow, network, rng=seed)
            )
            for seed in range(5)
        )
        assert flmme_exec <= fltr2_exec

    def test_no_big_messages_behaves_like_fltr2(self, line3, bus3):
        """With the threshold fraction at 0 and a clear size winner, only
        that one message is 'big'; with distinct op costs FLMME otherwise
        follows the FLTR2 schedule."""
        from repro.algorithms.tie_resolver import FairLoadTieResolver2

        # all messages equal: every message is 'big' only if >= threshold
        # = the common size, so constraint placement dominates; instead
        # give distinct costs and tiny messages with fraction excluding all
        algorithm = FairLoadMergeMessages(big_fraction=0.0)
        d_flmme = algorithm.deploy(line3, bus3, rng=5)
        assert d_flmme.is_complete(line3)

    def test_deterministic_per_seed(self, bus3):
        workflow = line_with_sizes([100.0, 9_000.0, 100.0])
        d1 = FairLoadMergeMessages().deploy(workflow, bus3, rng=3)
        d2 = FairLoadMergeMessages().deploy(workflow, bus3, rng=3)
        assert d1 == d2

    def test_complete_on_graph_workflows(self, xor_diamond, bus3):
        deployment = FairLoadMergeMessages().deploy(xor_diamond, bus3, rng=1)
        assert deployment.is_complete(xor_diamond)

    def test_single_operation_workflow(self, bus3):
        workflow = Workflow("solo")
        workflow.add_operation(Operation("A", 1e6))
        deployment = FairLoadMergeMessages().deploy(workflow, bus3, rng=0)
        assert deployment.is_complete(workflow)
