"""Unit tests for HOLM's internal group bookkeeping (`_Groups`)."""

import pytest

from repro.algorithms.base import DeploymentAlgorithm
from repro.algorithms.heavy_ops import _Groups
from repro.core.mapping import Deployment
from repro.core.workflow import Operation, Workflow
from repro.network.topology import bus_network


def make_context(cycles=(10e6, 20e6, 30e6, 40e6)):
    workflow = Workflow("groups")
    names = [f"O{i}" for i in range(1, len(cycles) + 1)]
    workflow.add_operations(
        Operation(n, c) for n, c in zip(names, cycles)
    )
    for a, b in zip(names, names[1:]):
        workflow.connect(a, b, 1_000)
    network = bus_network([1e9, 1e9], speed_bps=100e6)

    class Probe(DeploymentAlgorithm):
        name = "test-groups-probe"

        def _deploy(self, context):
            self.context = context
            return Deployment.round_robin(context.workflow, context.network)

    probe = Probe()
    probe.deploy(workflow, network)
    return probe.context


def test_initial_singletons():
    context = make_context()
    groups = _Groups(context)
    assert len(groups) == 4
    for name in context.workflow.operation_names:
        assert groups.members(groups.group_of(name)) == {name}


def test_heaviest_tracks_cycles():
    context = make_context()
    groups = _Groups(context)
    heaviest = groups.heaviest()
    assert groups.members(heaviest) == {"O4"}
    assert groups.cycles(heaviest) == pytest.approx(40e6)


def test_merge_accumulates_cycles_and_members():
    context = make_context()
    groups = _Groups(context)
    merged = groups.merge("O1", "O2")
    assert groups.members(merged) == {"O1", "O2"}
    assert groups.cycles(merged) == pytest.approx(30e6)
    assert groups.group_of("O1") == groups.group_of("O2")
    assert len(groups) == 3


def test_merge_same_group_is_noop():
    context = make_context()
    groups = _Groups(context)
    first = groups.merge("O1", "O2")
    second = groups.merge("O2", "O1")
    assert first == second
    assert len(groups) == 3


def test_merged_group_can_become_heaviest():
    context = make_context()
    groups = _Groups(context)
    groups.merge("O1", "O2")
    groups.merge("O1", "O3")  # 10+20+30 = 60M > O4's 40M
    assert groups.members(groups.heaviest()) == {"O1", "O2", "O3"}


def test_remove_operation_updates_cycles():
    context = make_context()
    groups = _Groups(context)
    merged = groups.merge("O1", "O2")
    groups.remove_operation("O2")
    assert groups.members(merged) == {"O1"}
    assert groups.cycles(merged) == pytest.approx(10e6)


def test_removing_last_member_drops_group():
    context = make_context()
    groups = _Groups(context)
    gid = groups.group_of("O1")
    groups.remove_operation("O1")
    assert len(groups) == 3
    with pytest.raises(KeyError):
        groups.members(gid)


def test_remove_group_returns_members():
    context = make_context()
    groups = _Groups(context)
    merged = groups.merge("O3", "O4")
    members = groups.remove_group(merged)
    assert members == {"O3", "O4"}
    assert len(groups) == 2


def test_same_group_query():
    context = make_context()
    groups = _Groups(context)
    assert not groups.same_group("O1", "O2")
    groups.merge("O1", "O2")
    assert groups.same_group("O1", "O2")
    groups.remove_operation("O1")
    assert not groups.same_group("O1", "O2")


def test_heaviest_none_when_empty():
    context = make_context(cycles=(10e6,))
    groups = _Groups(context)
    groups.remove_operation("O1")
    assert groups.heaviest() is None


def test_heaviest_tie_breaks_by_insertion_rank():
    context = make_context(cycles=(10e6, 10e6, 10e6, 10e6))
    groups = _Groups(context)
    assert groups.members(groups.heaviest()) == {"O1"}


def test_weighted_cycles_used(xor_diamond, bus3):
    """Group cycles honour the section 3.4 probability weights."""

    class Probe(DeploymentAlgorithm):
        name = "test-groups-probe-xor"

        def _deploy(self, context):
            self.context = context
            return Deployment.round_robin(context.workflow, context.network)

    probe = Probe()
    probe.deploy(xor_diamond, bus3)
    groups = _Groups(probe.context)
    left = groups.group_of("left")
    assert groups.cycles(left) == pytest.approx(0.7 * 20e6)
