"""Unit tests for the budgeted, anytime search runtime."""

import pytest

from repro.algorithms.runtime import (
    STOP_CANCELLED,
    STOP_DEADLINE,
    STOP_EXHAUSTED,
    STOP_MAX_EVALS,
    STOP_MAX_STEPS,
    CancelToken,
    SearchBudget,
    SearchRuntime,
    SearchStep,
)
from repro.core.clock import MONOTONIC, StepClock
from repro.exceptions import AlgorithmError


def descending(values, evals=1):
    """A search yielding *values* in order (snapshot = the value itself)."""
    for value in values:
        yield SearchStep(value, lambda v=value: v, evals=evals)


class TestSearchBudget:
    def test_default_is_unlimited(self):
        budget = SearchBudget()
        assert not budget.bounded
        assert budget.max_steps is None
        assert budget.max_evals is None
        assert budget.deadline_s is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_steps": 0},
            {"max_steps": -1},
            {"max_evals": 0},
            {"deadline_s": 0.0},
            {"deadline_s": -1.0},
        ],
    )
    def test_bad_limits_rejected(self, kwargs):
        with pytest.raises(AlgorithmError):
            SearchBudget(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [{"max_steps": 1}, {"max_evals": 5}, {"deadline_s": 0.5}],
    )
    def test_any_limit_makes_it_bounded(self, kwargs):
        assert SearchBudget(**kwargs).bounded

    def test_validate_count_returns_value(self):
        assert SearchBudget.validate_count("steps", 3) == 3

    def test_validate_count_message_is_uniform(self):
        with pytest.raises(AlgorithmError, match="max_iterations must be >= 1"):
            SearchBudget.validate_count("max_iterations", 0)
        with pytest.raises(
            AlgorithmError, match="population_size must be >= 2"
        ):
            SearchBudget.validate_count("population_size", 1, minimum=2)


class TestCancelToken:
    def test_starts_uncancelled(self):
        assert not CancelToken().cancelled

    def test_cancel_is_sticky_and_keeps_reason(self):
        token = CancelToken()
        token.cancel("surge")
        token.cancel()
        assert token.cancelled
        assert token.reason == "surge"


class TestRuntimeBasics:
    def test_exhausted_run_tracks_incumbent(self):
        outcome = SearchRuntime().run(descending([5.0, 3.0, 4.0, 1.0]))
        assert outcome.best_value == 1.0
        assert outcome.best == 1.0
        report = outcome.report
        assert report.stop_reason == STOP_EXHAUSTED
        assert report.exhausted
        assert report.steps == 4
        assert report.evaluations == 4
        assert report.curve == ((1, 5.0), (2, 3.0), (4, 1.0))

    def test_snapshot_called_only_on_strict_improvement(self):
        calls = []

        def search():
            for value in [2.0, 2.0, 1.0, 1.5]:
                yield SearchStep(
                    value, lambda v=value: calls.append(v) or v
                )

        SearchRuntime().run(search())
        assert calls == [2.0, 1.0]

    def test_first_achiever_wins_ties(self):
        # two steps with equal values: the incumbent is the first one
        first, second = object(), object()
        outcome = SearchRuntime().run(
            iter(
                [
                    SearchStep(1.0, lambda: first),
                    SearchStep(1.0, lambda: second),
                ]
            )
        )
        assert outcome.best is first

    def test_empty_search_raises(self):
        with pytest.raises(AlgorithmError, match="no steps"):
            SearchRuntime().run(iter(()))

    def test_accepted_rejected_accounting(self):
        steps = [
            SearchStep(2.0, lambda: 2.0, evals=3, accepted=1, rejected=2),
            SearchStep(1.0, lambda: 1.0, evals=4, accepted=1, rejected=3),
        ]
        report = SearchRuntime().run(iter(steps)).report
        assert report.evaluations == 7
        assert report.accepted == 2
        assert report.rejected == 5

    def test_describe_mentions_stop_reason(self):
        report = SearchRuntime().run(descending([1.0])).report
        assert "exhausted" in report.describe()

    def test_lexicographic_values_supported(self):
        outcome = SearchRuntime().run(
            descending([(1, 5.0), (1, 2.0), (0, 9.0)])
        )
        assert outcome.best_value == (0, 9.0)


class TestRuntimeLimits:
    def test_max_steps_stops_with_best_so_far(self):
        runtime = SearchRuntime(budget=SearchBudget(max_steps=2))
        outcome = runtime.run(descending([5.0, 3.0, 1.0]))
        assert outcome.report.stop_reason == STOP_MAX_STEPS
        assert outcome.report.steps == 2
        assert outcome.best_value == 3.0

    def test_max_evals_counts_step_evals(self):
        runtime = SearchRuntime(budget=SearchBudget(max_evals=5))
        outcome = runtime.run(descending([5.0, 3.0, 1.0], evals=3))
        # the second step crosses the cap (6 >= 5)
        assert outcome.report.stop_reason == STOP_MAX_EVALS
        assert outcome.report.steps == 2
        assert outcome.best_value == 3.0

    def test_deadline_with_step_clock_is_deterministic(self):
        # the start reading is 0.001; each step polls the clock once, so
        # step N sees 0.001 + N ms and the 3.5 ms deadline fires at the
        # fourth step's check (reading 0.005 >= 0.0045)
        runtime = SearchRuntime(
            budget=SearchBudget(deadline_s=0.0035),
            clock=StepClock(step_s=0.001),
        )
        outcome = runtime.run(descending([5.0, 4.0, 3.0, 2.0, 1.0]))
        assert outcome.report.stop_reason == STOP_DEADLINE
        assert outcome.report.steps == 4
        assert outcome.best_value == 2.0

    def test_incumbent_updated_before_limit_check(self):
        runtime = SearchRuntime(budget=SearchBudget(max_steps=1))
        outcome = runtime.run(descending([7.0]))
        assert outcome.best_value == 7.0

    def test_generator_closed_on_early_stop(self):
        closed = []

        def search():
            try:
                while True:
                    yield SearchStep(1.0, lambda: 1.0)
            finally:
                closed.append(True)

        SearchRuntime(budget=SearchBudget(max_steps=3)).run(search())
        assert closed == [True]


class TestRuntimeCancellation:
    def test_cancel_before_run_stops_at_first_step(self):
        token = CancelToken()
        token.cancel("pre-empted")
        runtime = SearchRuntime(cancel=token)
        outcome = runtime.run(descending([5.0, 1.0]))
        assert outcome.report.stop_reason == STOP_CANCELLED
        assert outcome.report.steps == 1
        assert outcome.best_value == 5.0

    def test_progress_callback_can_cancel_its_own_search(self):
        token = CancelToken()

        def on_progress(progress):
            if progress.steps == 2:
                token.cancel()

        runtime = SearchRuntime(cancel=token, on_progress=on_progress)
        outcome = runtime.run(descending([5.0, 4.0, 1.0]))
        assert outcome.report.stop_reason == STOP_CANCELLED
        assert outcome.report.steps == 2
        assert outcome.best_value == 4.0


class TestRuntimeProgress:
    def test_progress_every_step_by_default(self):
        seen = []
        runtime = SearchRuntime(on_progress=seen.append)
        runtime.run(descending([3.0, 2.0, 1.0]))
        assert [p.steps for p in seen] == [1, 2, 3]
        assert [p.best_value for p in seen] == [3.0, 2.0, 1.0]
        assert [p.evaluations for p in seen] == [1, 2, 3]

    def test_progress_every_k(self):
        seen = []
        runtime = SearchRuntime(on_progress=seen.append, progress_every=2)
        runtime.run(descending([5.0, 4.0, 3.0, 2.0, 1.0]))
        assert [p.steps for p in seen] == [2, 4]

    def test_progress_every_validated(self):
        with pytest.raises(AlgorithmError, match="progress_every must be >= 1"):
            SearchRuntime(progress_every=0)


class TestClocks:
    def test_step_clock_advances_fixed_steps(self):
        clock = StepClock(step_s=0.5)
        assert clock() == 0.5
        assert clock() == 1.0

    def test_step_clock_start_offset(self):
        clock = StepClock(step_s=1.0, start_s=10.0)
        assert clock() == 11.0

    def test_monotonic_is_nondecreasing(self):
        assert MONOTONIC() <= MONOTONIC()
