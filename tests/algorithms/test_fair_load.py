"""Unit tests for the Fair Load algorithm (worst-fit bin packing)."""

import pytest

from repro.algorithms.fair_load import FairLoad, sorted_operations_by_cost
from repro.core.cost import CostModel
from repro.core.workflow import Operation, Workflow
from repro.network.topology import bus_network


def test_perfect_fit_is_perfectly_fair(line3, bus3):
    """Cycles 10/20/30M exactly match the ideal shares of 1/2/3 GHz."""
    deployment = FairLoad().deploy(line3, bus3)
    assert deployment.as_dict() == {"A": "S1", "B": "S2", "C": "S3"}
    assert CostModel(line3, bus3).time_penalty(deployment) == pytest.approx(0.0)


def test_heaviest_operation_goes_to_biggest_budget():
    workflow = Workflow("w")
    workflow.add_operations(
        [Operation("big", 100e6), Operation("small", 1e6)]
    )
    workflow.connect("big", "small", 10)
    network = bus_network([1e9, 3e9], speed_bps=100e6)
    deployment = FairLoad().deploy(workflow, network)
    assert deployment.server_of("big") == "S2"


def test_loads_proportional_to_power(line5, bus3):
    """Worst-fit keeps server times close to each other."""
    model = CostModel(line5, bus3)
    deployment = FairLoad().deploy(line5, bus3, cost_model=model)
    loads = model.loads(deployment)
    mean = sum(loads.values()) / len(loads)
    # every server within one operation's time of the mean
    slowest_power = min(s.power_hz for s in bus3)
    tolerance = 10e6 / slowest_power
    assert all(abs(v - mean) <= tolerance for v in loads.values())


def test_ignores_messages_entirely():
    """Fair Load is communication-blind: message sizes cannot change it."""
    small = Workflow("small-msgs")
    small.add_operations([Operation(f"O{i}", 10e6) for i in range(1, 5)])
    for a, b in zip(small.operation_names, small.operation_names[1:]):
        small.connect(a, b, 10)
    big = small.scaled(message_factor=1e6, name="big-msgs")
    network = bus_network([1e9, 1e9], speed_bps=1e6)
    d_small = FairLoad().deploy(small, network)
    d_big = FairLoad().deploy(big, network)
    assert d_small.as_dict() == d_big.as_dict()


def test_unweighted_on_xor_graphs(xor_diamond, bus3):
    """Section 3.4: Fair Load 'remains exactly the same' on graphs."""
    weighted_model = CostModel(xor_diamond, bus3)
    deployment = FairLoad().deploy(xor_diamond, bus3, cost_model=weighted_model)
    # the 40M 'right' op outweighs 20M 'left' in raw cycles even though its
    # weighted cost (0.3 * 40M) is lower; Fair Load must use raw cycles, so
    # 'right' is placed before 'left' and lands on the biggest budget
    ordered = sorted(
        xor_diamond.operation_names,
        key=lambda n: -xor_diamond.operation(n).cycles,
    )
    assert ordered[0] == "right"
    assert deployment.server_of("right") == "S3"


def test_deterministic_without_rng(line5, bus3):
    d1 = FairLoad().deploy(line5, bus3)
    d2 = FairLoad().deploy(line5, bus3)
    assert d1 == d2


def test_sorted_operations_by_cost_stable_ties(line5, bus5):
    """Equal-cost operations keep workflow insertion order."""
    from repro.algorithms.base import DeploymentAlgorithm
    from repro.core.mapping import Deployment

    class Probe(DeploymentAlgorithm):
        name = "test-probe-sort"

        def _deploy(self, context):
            self.order = sorted_operations_by_cost(context)
            return Deployment.round_robin(context.workflow, context.network)

    probe = Probe()
    probe.deploy(line5, bus5)
    assert probe.order == list(line5.operation_names)


def test_single_server_takes_everything(line5):
    network = bus_network([1e9], speed_bps=1e6)
    deployment = FairLoad().deploy(line5, network)
    assert set(deployment.as_dict().values()) == {"S1"}


def test_more_servers_than_operations(line3):
    network = bus_network([1e9] * 6, speed_bps=100e6)
    deployment = FairLoad().deploy(line3, network)
    assert deployment.is_complete(line3)
    # the three ops land on three distinct servers (worst-fit spreads)
    assert len(set(deployment.as_dict().values())) == 3
