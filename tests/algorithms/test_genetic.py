"""Unit tests for the genetic-algorithm deployment."""

import pytest

from repro.algorithms.exhaustive import Exhaustive
from repro.algorithms.genetic import GeneticAlgorithm
from repro.algorithms.heavy_ops import HeavyOpsLargeMsgs
from repro.core.cost import CostModel
from repro.exceptions import AlgorithmError
from repro.workloads.generator import line_workflow, random_bus_network


@pytest.mark.parametrize(
    "kwargs",
    [
        {"population_size": 1},
        {"generations": 0},
        {"crossover_rate": 1.5},
        {"mutation_rate": -0.1},
        {"tournament": 0},
    ],
)
def test_parameter_validation(kwargs):
    with pytest.raises(AlgorithmError):
        GeneticAlgorithm(**kwargs)


def test_returns_complete_valid_mapping(line5, bus3):
    deployment = GeneticAlgorithm(generations=5).deploy(line5, bus3, rng=1)
    deployment.validate(line5, bus3)


def test_deterministic_per_seed(line5, bus3):
    algorithm = GeneticAlgorithm(generations=5)
    d1 = algorithm.deploy(line5, bus3, rng=7)
    d2 = algorithm.deploy(line5, bus3, rng=7)
    assert d1 == d2


def test_never_worse_than_heuristic_seeds(line5, bus3):
    """Elitism + heuristic seeding: the GA cannot lose to its seeds."""
    model = CostModel(line5, bus3)
    holm_value = model.objective(
        HeavyOpsLargeMsgs().deploy(line5, bus3, cost_model=model)
    )
    ga_value = model.objective(
        GeneticAlgorithm(generations=10).deploy(
            line5, bus3, cost_model=model, rng=3
        )
    )
    assert ga_value <= holm_value + 1e-15


def test_reaches_optimum_on_tiny_instance():
    workflow = line_workflow(5, seed=2)
    network = random_bus_network(2, seed=3)
    model = CostModel(workflow, network)
    optimum = Exhaustive().best(workflow, network, model).cost.objective
    ga_value = model.objective(
        GeneticAlgorithm(population_size=40, generations=40).deploy(
            workflow, network, cost_model=model, rng=4
        )
    )
    assert ga_value == pytest.approx(optimum, rel=1e-9)


def test_unseeded_population_still_works(line5, bus3):
    deployment = GeneticAlgorithm(
        generations=5, seed_with_heuristics=False
    ).deploy(line5, bus3, rng=5)
    deployment.validate(line5, bus3)


def test_single_server(line5):
    network = random_bus_network(1, seed=1)
    deployment = GeneticAlgorithm(generations=3).deploy(line5, network, rng=2)
    assert set(deployment.as_dict().values()) == {network.server_names[0]}


def test_generations_improve_or_hold(line5, bus3):
    """More generations never hurt (elitism is monotone per seed)."""
    model = CostModel(line5, bus3)
    short = model.objective(
        GeneticAlgorithm(generations=2).deploy(
            line5, bus3, cost_model=model, rng=9
        )
    )
    # different generation counts change the RNG consumption pattern, so
    # compare against the best of several seeds instead of the same seed
    long = min(
        model.objective(
            GeneticAlgorithm(generations=25).deploy(
                line5, bus3, cost_model=model, rng=seed
            )
        )
        for seed in range(3)
    )
    assert long <= short + 1e-12
