"""Unit tests for the algorithm base class, context and registry."""

import random

import pytest

from repro.algorithms.base import (
    DeploymentAlgorithm,
    ProblemContext,
    algorithm_registry,
    get_algorithm,
    register_algorithm,
)
from repro.core.cost import CostModel
from repro.core.mapping import Deployment
from repro.exceptions import AlgorithmError
from repro.network.topology import Server, ServerNetwork


class TestRegistry:
    def test_known_algorithms_registered(self):
        registry = algorithm_registry()
        for name in (
            "Exhaustive",
            "Random",
            "Line-Line",
            "FairLoad",
            "FL-TieResolver",
            "FL-TieResolver2",
            "FL-MergeMsgEnds",
            "HeavyOps-LargeMsgs",
            "HillClimbing",
            "SimulatedAnnealing",
        ):
            assert name in registry, name

    def test_get_algorithm(self):
        cls = get_algorithm("FairLoad")
        assert cls().name == "FairLoad"

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(AlgorithmError) as excinfo:
            get_algorithm("NoSuchAlgorithm")
        assert "FairLoad" in str(excinfo.value)

    def test_registry_returns_copy(self):
        registry = algorithm_registry()
        registry["FairLoad"] = None
        assert algorithm_registry()["FairLoad"] is not None

    def test_duplicate_registration_rejected(self):
        with pytest.raises(AlgorithmError):

            @register_algorithm
            class Duplicate(DeploymentAlgorithm):
                name = "FairLoad"

                def _deploy(self, context):  # pragma: no cover
                    return Deployment()

    def test_unnamed_registration_rejected(self):
        with pytest.raises(AlgorithmError):

            @register_algorithm
            class Unnamed(DeploymentAlgorithm):
                def _deploy(self, context):  # pragma: no cover
                    return Deployment()


class _AllOnFirst(DeploymentAlgorithm):
    """Trivial test algorithm: everything on the first server."""

    name = "test-all-on-first"

    def __init__(self):
        self.seen_context = None

    def _deploy(self, context):
        self.seen_context = context
        server = context.network.server_names[0]
        return Deployment(
            {name: server for name in context.workflow.operation_names}
        )


class TestDeployContract:
    def test_deploy_returns_complete_mapping(self, line3, bus3):
        deployment = _AllOnFirst().deploy(line3, bus3)
        assert deployment.is_complete(line3)

    def test_empty_workflow_rejected(self, bus3):
        from repro.core.workflow import Workflow

        with pytest.raises(AlgorithmError):
            _AllOnFirst().deploy(Workflow("empty"), bus3)

    def test_empty_network_rejected(self, line3):
        with pytest.raises(AlgorithmError):
            _AllOnFirst().deploy(line3, ServerNetwork("empty"))

    def test_disconnected_network_rejected(self, line3):
        from repro.exceptions import DisconnectedNetworkError

        network = ServerNetwork("disc")
        network.add_servers([Server("S1", 1e9), Server("S2", 1e9)])
        with pytest.raises(DisconnectedNetworkError):
            _AllOnFirst().deploy(line3, network)

    def test_incomplete_result_rejected(self, line3, bus3):
        class Broken(DeploymentAlgorithm):
            name = "test-broken"

            def _deploy(self, context):
                return Deployment({"A": "S1"})  # misses B and C

        from repro.exceptions import IncompleteMappingError

        with pytest.raises(IncompleteMappingError):
            Broken().deploy(line3, bus3)

    def test_int_seed_and_rng_accepted(self, line3, bus3):
        algorithm = _AllOnFirst()
        algorithm.deploy(line3, bus3, rng=7)
        assert isinstance(algorithm.seen_context.rng, random.Random)
        algorithm.deploy(line3, bus3, rng=random.Random(7))

    def test_cost_model_defaulted(self, line3, bus3):
        algorithm = _AllOnFirst()
        algorithm.deploy(line3, bus3)
        assert isinstance(algorithm.seen_context.cost_model, CostModel)

    def test_shared_cost_model_used(self, line3, bus3):
        model = CostModel(line3, bus3)
        algorithm = _AllOnFirst()
        algorithm.deploy(line3, bus3, cost_model=model)
        assert algorithm.seen_context.cost_model is model


class TestProblemContextWeights:
    def test_line_weights_are_one(self, line3, bus3):
        algorithm = _AllOnFirst()
        algorithm.deploy(line3, bus3)
        context = algorithm.seen_context
        assert all(w == 1.0 for w in context.op_weights.values())
        assert all(w == 1.0 for w in context.msg_weights.values())

    def test_xor_weights_follow_probabilities(self, xor_diamond, bus3):
        algorithm = _AllOnFirst()
        algorithm.deploy(xor_diamond, bus3)
        context = algorithm.seen_context
        assert context.op_weights["left"] == pytest.approx(0.7)
        assert context.msg_weights[("choice", "right")] == pytest.approx(0.3)

    def test_opt_out_of_weighting(self, xor_diamond, bus3):
        class Unweighted(_AllOnFirst):
            name = "test-unweighted"
            uses_probability_weights = False

        algorithm = Unweighted()
        algorithm.deploy(xor_diamond, bus3)
        assert all(
            w == 1.0 for w in algorithm.seen_context.op_weights.values()
        )

    def test_weighted_cycles_and_bits(self, xor_diamond, bus3):
        algorithm = _AllOnFirst()
        algorithm.deploy(xor_diamond, bus3)
        context = algorithm.seen_context
        assert context.weighted_cycles("left") == pytest.approx(0.7 * 20e6)
        assert context.weighted_message_bits(
            "choice", "left"
        ) == pytest.approx(0.7 * 8_000)
        assert context.total_weighted_cycles() == pytest.approx(48e6)

    def test_initial_ideal_cycles(self, line3, bus3):
        algorithm = _AllOnFirst()
        algorithm.deploy(line3, bus3)
        ideal = algorithm.seen_context.initial_ideal_cycles()
        assert ideal == pytest.approx(
            {"S1": 10e6, "S2": 20e6, "S3": 30e6}
        )
