"""Unit tests for Heavy Operations -- Large Messages (HOLM)."""

import pytest

from repro.algorithms.fair_load import FairLoad
from repro.algorithms.heavy_ops import HeavyOpsLargeMsgs
from repro.core.cost import CostModel
from repro.core.workflow import Operation, Workflow
from repro.network.topology import bus_network, line_network


def line_with_sizes(sizes, cycles=None):
    count = len(sizes) + 1
    cycles = cycles or [10e6] * count
    workflow = Workflow("sized")
    names = [f"O{i}" for i in range(1, count + 1)]
    workflow.add_operations(
        Operation(n, c) for n, c in zip(names, cycles)
    )
    for (a, b), size in zip(zip(names, names[1:]), sizes):
        workflow.connect(a, b, size)
    return workflow


def test_fast_bus_reduces_to_fair_load(line3, bus3):
    """With cheap communication no message is 'large': pure option (a)."""
    holm = HeavyOpsLargeMsgs().deploy(line3, bus3)
    fair = FairLoad().deploy(line3, bus3)
    assert holm.as_dict() == fair.as_dict()


def test_slow_bus_collapses_to_one_server():
    """When every transfer dwarfs all processing, everything groups."""
    workflow = line_with_sizes([1_000_000.0] * 4)  # 1 Mbit messages
    network = bus_network([1e9, 1e9, 1e9], speed_bps=1e6)  # 1 s transfers
    model = CostModel(workflow, network)
    deployment = HeavyOpsLargeMsgs().deploy(workflow, network, cost_model=model)
    assert len(set(deployment.as_dict().values())) == 1
    assert model.total_communication_time(deployment) == 0.0


def test_single_large_message_colocated():
    """Only the dominant message's ends must share a server."""
    workflow = line_with_sizes([100.0, 2_000_000.0, 100.0, 100.0])
    network = bus_network([1e9, 1e9], speed_bps=1e6)
    deployment = HeavyOpsLargeMsgs().deploy(workflow, network)
    assert deployment.server_of("O2") == deployment.server_of("O3")


def test_one_end_assigned_pulls_the_other():
    """Option (b1): a large message with one placed end places the other.

    A heavy operation is assigned first via option (a); the large message
    touching it must then pull its free end onto the same server.
    """
    # O1 heavy; message O1->O2 is large relative to the *remaining* groups
    workflow = line_with_sizes(
        [500_000.0, 10.0], cycles=[500e6, 1e6, 1e6]
    )
    network = bus_network([1e9, 1e9], speed_bps=1e6)
    deployment = HeavyOpsLargeMsgs().deploy(workflow, network)
    assert deployment.server_of("O1") == deployment.server_of("O2")


def test_execution_time_never_worse_than_fair_load_on_slow_bus():
    """The design goal: HOLM dodges the transfers Fair Load pays for."""
    workflow = line_with_sizes([200_000.0] * 9)
    network = bus_network([1e9, 2e9, 3e9], speed_bps=1e6)
    model = CostModel(workflow, network)
    holm = model.execution_time(
        HeavyOpsLargeMsgs().deploy(workflow, network, cost_model=model)
    )
    fair = model.execution_time(
        FairLoad().deploy(workflow, network, cost_model=model)
    )
    assert holm <= fair


def test_deterministic(line5, bus3):
    d1 = HeavyOpsLargeMsgs().deploy(line5, bus3)
    d2 = HeavyOpsLargeMsgs().deploy(line5, bus3)
    assert d1 == d2


def test_terminates_on_intra_group_top_message():
    """Two ops merged by one message, with a second message between the
    same group: the skip rule must prevent an endless self-merge."""
    workflow = Workflow("tri")
    workflow.add_operations(
        [Operation("A", 1e6), Operation("B", 1e6), Operation("C", 1e6)]
    )
    workflow.connect("A", "B", 900_000)
    workflow.connect("B", "C", 800_000)
    workflow.connect("A", "C", 700_000)
    network = bus_network([1e9, 1e9], speed_bps=1e6)
    deployment = HeavyOpsLargeMsgs().deploy(workflow, network)
    assert deployment.is_complete(workflow)
    # all three exchange large messages -> one server
    assert len(set(deployment.as_dict().values())) == 1


def test_probability_weighting_on_graphs(xor_diamond, bus3):
    deployment = HeavyOpsLargeMsgs().deploy(xor_diamond, bus3)
    assert deployment.is_complete(xor_diamond)


def test_rare_branch_message_discounted():
    """A huge message on a 1%-probability XOR branch should not force
    co-location the way a certain message would."""
    from repro.core.builder import WorkflowBuilder
    from repro.core.workflow import NodeKind

    def build(probability):
        builder = WorkflowBuilder("rare", default_message_bits=100)
        builder.task("t", 50e6)
        builder.split(NodeKind.XOR_SPLIT, "x", 1e6)
        builder.branch(probability=probability)
        builder.task("rare_op", 50e6, message_bits=400_000)
        builder.branch(probability=1.0 - probability)
        builder.task("common_op", 50e6)
        builder.join("xe", 1e6)
        return builder.build()

    network = bus_network([1e9, 1e9], speed_bps=1e6)
    # certain branch: 0.4 s transfer >> processing -> co-location
    certain = HeavyOpsLargeMsgs().deploy(build(0.999), network)
    assert certain.server_of("x") == certain.server_of("rare_op")
    # 1% branch: weighted size 4k bits -> 4 ms << 50 ms processing, so the
    # algorithm is free to balance load instead; the weighted transfer no
    # longer dominates every decision
    model = CostModel(build(0.01), network)
    rare = HeavyOpsLargeMsgs().deploy(build(0.01), network, cost_model=model)
    loads = model.loads(rare)
    assert max(loads.values()) < sum(loads.values())  # uses both servers


def test_works_on_non_bus_networks(line3):
    """Falls back to the slowest link as the conservative bus estimate."""
    network = line_network([1e9, 2e9, 3e9], speeds_bps=[1e6, 100e6])
    deployment = HeavyOpsLargeMsgs().deploy(line3, network)
    assert deployment.is_complete(line3)


def test_heaviest_group_priority():
    """Groups are served heaviest-first, mirroring Fair Load's order."""
    workflow = line_with_sizes([10.0, 10.0], cycles=[90e6, 10e6, 10e6])
    network = bus_network([1e9, 3e9], speed_bps=100e6)
    deployment = HeavyOpsLargeMsgs().deploy(workflow, network)
    assert deployment.server_of("O1") == "S2"  # 90M cycles -> 3 GHz budget
