"""Unit tests for the Line--Line algorithm and its variants."""

import pytest

from repro.algorithms.line_line import LineLine
from repro.core.cost import CostModel
from repro.core.workflow import Operation, Workflow
from repro.exceptions import AlgorithmError, UnsupportedTopologyError
from repro.network.topology import bus_network, line_network


def uniform_line_workflow(num_ops, cycles=10e6, sizes=None):
    workflow = Workflow("line-wf")
    names = [f"O{i}" for i in range(1, num_ops + 1)]
    workflow.add_operations(Operation(n, cycles) for n in names)
    sizes = sizes or [5_000] * (num_ops - 1)
    for (a, b), size in zip(zip(names, names[1:]), sizes):
        workflow.connect(a, b, size)
    return workflow


def blocks_of(deployment, workflow, network):
    """Operation blocks per server, in line order."""
    order = workflow.line_order()
    blocks = {name: [] for name in network.server_names}
    for op in order:
        blocks[deployment.server_of(op)].append(op)
    return blocks


class TestGuards:
    def test_rejects_non_line_workflow(self, xor_diamond, chain3):
        with pytest.raises(UnsupportedTopologyError):
            LineLine().deploy(xor_diamond, chain3)

    def test_rejects_non_line_network(self, line5, bus3):
        with pytest.raises(UnsupportedTopologyError):
            LineLine().deploy(line5, bus3)

    def test_rejects_bad_direction(self):
        with pytest.raises(AlgorithmError):
            LineLine(direction="up")


class TestPhase1:
    def test_blocks_are_contiguous(self):
        workflow = uniform_line_workflow(9)
        network = line_network([1e9, 1e9, 1e9], 100e6)
        deployment = LineLine(fix_bridges=False, direction="ltr").deploy(
            workflow, network
        )
        order = workflow.line_order()
        servers_seen = [deployment.server_of(op) for op in order]
        # a server never reappears after we left it
        compact = [s for i, s in enumerate(servers_seen)
                   if i == 0 or servers_seen[i - 1] != s]
        assert len(compact) == len(set(compact))

    def test_uniform_case_splits_evenly(self):
        workflow = uniform_line_workflow(9)
        network = line_network([1e9, 1e9, 1e9], 100e6)
        deployment = LineLine(fix_bridges=False, direction="ltr").deploy(
            workflow, network
        )
        blocks = blocks_of(deployment, workflow, network)
        assert [len(b) for b in blocks.values()] == [3, 3, 3]

    def test_every_server_gets_an_operation(self):
        """Coverage guarantee even when early servers could absorb all."""
        workflow = uniform_line_workflow(4)
        # first server is so powerful its ideal share is nearly everything
        network = line_network([100e9, 1e9, 1e9], 100e6)
        deployment = LineLine(fix_bridges=False, direction="ltr").deploy(
            workflow, network
        )
        assert len(set(deployment.as_dict().values())) == 3

    def test_capacity_proportional_fill(self):
        workflow = uniform_line_workflow(12)
        network = line_network([1e9, 2e9, 1e9], 100e6)
        deployment = LineLine(fix_bridges=False, direction="ltr").deploy(
            workflow, network
        )
        blocks = blocks_of(deployment, workflow, network)
        assert len(blocks["S2"]) > len(blocks["S1"])

    def test_more_servers_than_operations(self):
        workflow = uniform_line_workflow(2)
        network = line_network([1e9, 1e9, 1e9], 100e6)
        deployment = LineLine(fix_bridges=False, direction="ltr").deploy(
            workflow, network
        )
        assert deployment.is_complete(workflow)


class TestCriticalBridges:
    def _scenario(self):
        """Slow S2-S3 link with a large crossing message and a small
        adjacent message, so phase 2 must shift O4 rightward."""
        workflow = uniform_line_workflow(
            6, sizes=[5_000, 5_000, 500, 50_000, 5_000]
        )
        network = line_network([1e9, 1e9, 1e9], [100e6, 1e6])
        return workflow, network

    def test_phase1_blocks_before_fixing(self):
        workflow, network = self._scenario()
        deployment = LineLine(fix_bridges=False, direction="ltr").deploy(
            workflow, network
        )
        blocks = blocks_of(deployment, workflow, network)
        assert blocks == {
            "S1": ["O1", "O2"],
            "S2": ["O3", "O4"],
            "S3": ["O5", "O6"],
        }

    def test_bridge_fix_moves_sender_across(self):
        workflow, network = self._scenario()
        deployment = LineLine(fix_bridges=True, direction="ltr").deploy(
            workflow, network
        )
        blocks = blocks_of(deployment, workflow, network)
        assert blocks == {
            "S1": ["O1", "O2"],
            "S2": ["O3"],
            "S3": ["O4", "O5", "O6"],
        }

    def test_bridge_fix_improves_execution_time(self):
        workflow, network = self._scenario()
        model = CostModel(workflow, network)
        fixed = model.execution_time(
            LineLine(fix_bridges=True, direction="ltr").deploy(
                workflow, network, cost_model=model
            )
        )
        unfixed = model.execution_time(
            LineLine(fix_bridges=False, direction="ltr").deploy(
                workflow, network, cost_model=model
            )
        )
        assert fixed < unfixed

    def test_fast_links_leave_mapping_alone(self):
        workflow = uniform_line_workflow(6)
        network = line_network([1e9, 1e9, 1e9], 1000e6)
        with_fix = LineLine(fix_bridges=True, direction="ltr").deploy(
            workflow, network
        )
        without = LineLine(fix_bridges=False, direction="ltr").deploy(
            workflow, network
        )
        # all links and messages are uniform: nothing is 'critical' in a
        # way that finds a small adjacent message to swap behind
        assert with_fix.is_complete(workflow) and without.is_complete(workflow)


class TestDirections:
    def test_rtl_mirrors_ltr_on_symmetric_instances(self):
        workflow = uniform_line_workflow(6)
        network = line_network([1e9, 1e9, 1e9], 100e6)
        ltr = LineLine(fix_bridges=False, direction="ltr").deploy(
            workflow, network
        )
        rtl = LineLine(fix_bridges=False, direction="rtl").deploy(
            workflow, network
        )
        blocks_l = blocks_of(ltr, workflow, network)
        blocks_r = blocks_of(rtl, workflow, network)
        assert [len(b) for b in blocks_l.values()] == [
            len(b) for b in reversed(list(blocks_r.values()))
        ]

    def test_best_picks_the_cheaper_direction(self):
        # asymmetric powers make the directions differ
        workflow = uniform_line_workflow(7)
        network = line_network([3e9, 1e9, 1e9], [1e6, 100e6])
        model = CostModel(workflow, network)
        best = model.objective(
            LineLine(fix_bridges=False, direction="best").deploy(
                workflow, network, cost_model=model
            )
        )
        ltr = model.objective(
            LineLine(fix_bridges=False, direction="ltr").deploy(
                workflow, network, cost_model=model
            )
        )
        rtl = model.objective(
            LineLine(fix_bridges=False, direction="rtl").deploy(
                workflow, network, cost_model=model
            )
        )
        assert best == pytest.approx(min(ltr, rtl))

    def test_all_four_paper_variants_run(self):
        workflow = uniform_line_workflow(8)
        network = line_network([1e9, 2e9, 1e9], [10e6, 100e6])
        for fix in (False, True):
            for direction in ("ltr", "best"):
                deployment = LineLine(
                    fix_bridges=fix, direction=direction
                ).deploy(workflow, network)
                assert deployment.is_complete(workflow)


def test_single_server_line():
    workflow = uniform_line_workflow(3)
    network = line_network([1e9], 1.0)
    deployment = LineLine().deploy(workflow, network)
    assert set(deployment.as_dict().values()) == {"S1"}
