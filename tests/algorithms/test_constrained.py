"""Unit tests for constraint-aware deployment search."""

import pytest

from repro.algorithms.constrained import ConstraintAwareSearch
from repro.algorithms.heavy_ops import HeavyOpsLargeMsgs
from repro.core.constraints import (
    ConstraintSet,
    MaxServerLoad,
    MaxTimePenalty,
)
from repro.core.cost import CostModel
from repro.exceptions import AlgorithmError
from repro.network.topology import bus_network
from repro.workloads.generator import line_workflow


def test_parameter_validation():
    with pytest.raises(AlgorithmError):
        ConstraintAwareSearch(max_iterations=0)


def test_no_constraints_behaves_like_local_search(line5, bus3):
    """With an empty C it just polishes the seed's objective."""
    model = CostModel(line5, bus3)
    seeded = HeavyOpsLargeMsgs().deploy(line5, bus3, cost_model=model)
    refined = ConstraintAwareSearch().deploy(line5, bus3, cost_model=model)
    assert model.objective(refined) <= model.objective(seeded) + 1e-15


def test_repairs_a_fairness_violation():
    """HOLM on a slow bus lumps operations (unfair); the constraint-aware
    search must trade execution time back for admissibility."""
    workflow = line_workflow(12, seed=3)
    network = bus_network([1e9, 2e9, 3e9], speed_bps=1e6)
    model = CostModel(workflow, network)
    seeded = HeavyOpsLargeMsgs().deploy(workflow, network, cost_model=model)
    limit = 0.5 * model.time_penalty(seeded)  # force a real repair
    constraints = ConstraintSet([MaxTimePenalty(limit)])
    assert not constraints.satisfied(model.evaluate(seeded))

    repaired = ConstraintAwareSearch(constraints=constraints).deploy(
        workflow, network, cost_model=model
    )
    assert constraints.satisfied(model.evaluate(repaired))


def test_feasible_result_optimises_objective_second():
    """Among admissible mappings the search still minimises the objective:
    it must not stop at the first feasible point."""
    workflow = line_workflow(10, seed=5)
    network = bus_network([1e9, 2e9, 3e9], speed_bps=1e6)
    model = CostModel(workflow, network)
    constraints = ConstraintSet([MaxTimePenalty(1.0)])  # trivially loose
    refined = ConstraintAwareSearch(constraints=constraints).deploy(
        workflow, network, cost_model=model
    )
    seeded = HeavyOpsLargeMsgs().deploy(workflow, network, cost_model=model)
    assert model.objective(refined) <= model.objective(seeded) + 1e-15


def test_unsatisfiable_constraints_minimise_excess():
    """An impossible load cap cannot be met; the search returns the
    least-infeasible mapping instead of crashing."""
    workflow = line_workflow(8, seed=7)
    network = bus_network([1e9, 1e9], speed_bps=100e6)
    model = CostModel(workflow, network)
    impossible = ConstraintSet([MaxServerLoad(1e-9)])
    seeded = HeavyOpsLargeMsgs().deploy(workflow, network, cost_model=model)
    result = ConstraintAwareSearch(constraints=impossible).deploy(
        workflow, network, cost_model=model
    )
    result.validate(workflow, network)
    assert impossible.total_excess(
        model.evaluate(result)
    ) <= impossible.total_excess(model.evaluate(seeded)) + 1e-15


def test_custom_seed_algorithm(line5, bus3):
    from repro.algorithms.fair_load import FairLoad

    search = ConstraintAwareSearch(seed_algorithm=FairLoad())
    deployment = search.deploy(line5, bus3, rng=1)
    deployment.validate(line5, bus3)


def test_deterministic(line5, bus3):
    constraints = ConstraintSet([MaxTimePenalty(0.01)])
    search = ConstraintAwareSearch(constraints=constraints)
    assert search.deploy(line5, bus3, rng=2) == search.deploy(
        line5, bus3, rng=2
    )
