"""Unit tests for the branch-and-bound exact solver."""

import pytest

from repro.algorithms.branch_and_bound import BranchAndBound
from repro.algorithms.exhaustive import Exhaustive
from repro.core.cost import CostModel
from repro.exceptions import AlgorithmError, SearchSpaceTooLargeError
from repro.workloads.generator import (
    GraphStructure,
    line_workflow,
    random_bus_network,
    random_graph_workflow,
)


def test_invalid_node_limit_rejected():
    # a bad argument is an AlgorithmError, not a search outcome -- callers
    # catching SearchSpaceTooLargeError to fall back to a heuristic must
    # not swallow a programming error
    with pytest.raises(AlgorithmError) as excinfo:
        BranchAndBound(node_limit=0)
    assert not isinstance(excinfo.value, SearchSpaceTooLargeError)


@pytest.mark.parametrize("seed", range(5))
def test_matches_exhaustive_on_lines(seed):
    workflow = line_workflow(6, seed=seed)
    network = random_bus_network(3, seed=seed + 100)
    model = CostModel(workflow, network)
    optimum = Exhaustive().best(workflow, network, model).cost.objective
    deployment = BranchAndBound().deploy(workflow, network, cost_model=model)
    assert model.objective(deployment) == pytest.approx(optimum, abs=1e-12)


@pytest.mark.parametrize("structure", list(GraphStructure))
def test_matches_exhaustive_on_graphs(structure):
    workflow = random_graph_workflow(7, structure, seed=11)
    network = random_bus_network(3, seed=12)
    model = CostModel(workflow, network)
    optimum = Exhaustive().best(workflow, network, model).cost.objective
    deployment = BranchAndBound().deploy(workflow, network, cost_model=model)
    assert model.objective(deployment) == pytest.approx(optimum, abs=1e-12)


def test_prunes_substantially():
    workflow = line_workflow(10, seed=1)
    network = random_bus_network(3, seed=2)
    model = CostModel(workflow, network)
    solver = BranchAndBound()
    solver.deploy(workflow, network, cost_model=model)
    full_tree_leaves = 3**10
    assert solver.nodes_explored < full_tree_leaves / 10


def test_node_limit_enforced():
    workflow = line_workflow(12, seed=3)
    network = random_bus_network(4, seed=4)
    solver = BranchAndBound(node_limit=5)
    with pytest.raises(SearchSpaceTooLargeError):
        solver.deploy(workflow, network)


def test_never_worse_than_its_holm_incumbent():
    """The incumbent seeds the search; the result can only improve on it."""
    from repro.algorithms.heavy_ops import HeavyOpsLargeMsgs

    workflow = line_workflow(8, seed=6)
    network = random_bus_network(3, seed=7)
    model = CostModel(workflow, network)
    holm_value = model.objective(
        HeavyOpsLargeMsgs().deploy(workflow, network, cost_model=model)
    )
    bb_value = model.objective(
        BranchAndBound().deploy(workflow, network, cost_model=model)
    )
    assert bb_value <= holm_value + 1e-15


def test_respects_objective_weights():
    """With penalty weight 0, B&B must find the pure-speed optimum."""
    workflow = line_workflow(6, seed=8)
    network = random_bus_network(2, seed=9)
    model = CostModel(workflow, network, execution_weight=1.0, penalty_weight=0.0)
    deployment = BranchAndBound().deploy(workflow, network, cost_model=model)
    optimum = Exhaustive().best(workflow, network, model).cost.objective
    assert model.objective(deployment) == pytest.approx(optimum, abs=1e-12)


@pytest.mark.parametrize("penalty_mode", ("mad", "sum_abs", "max", "std"))
def test_matches_exhaustive_under_every_penalty_mode(penalty_mode):
    """The water-filling fairness bound must stay sound for every
    deviation statistic (all are Schur-convex, so levelling minimises
    each -- this test would catch a statistic that breaks that)."""
    workflow = line_workflow(5, seed=13)
    network = random_bus_network(3, seed=14)
    model = CostModel(workflow, network, penalty_mode=penalty_mode)
    optimum = Exhaustive().best(workflow, network, model).cost.objective
    deployment = BranchAndBound().deploy(workflow, network, cost_model=model)
    assert model.objective(deployment) == pytest.approx(optimum, abs=1e-12)


def test_single_server():
    workflow = line_workflow(5, seed=10)
    network = random_bus_network(1, seed=11)
    deployment = BranchAndBound().deploy(workflow, network)
    assert set(deployment.as_dict().values()) == {network.server_names[0]}
