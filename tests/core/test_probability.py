"""Unit tests for execution-probability propagation."""

import pytest

from repro.core.builder import WorkflowBuilder
from repro.core.probability import execution_probabilities, message_probabilities
from repro.core.workflow import NodeKind


def test_line_probabilities_are_all_one(line5):
    probs = execution_probabilities(line5)
    assert all(p == 1.0 for p in probs.values())


def test_xor_branch_probabilities(xor_diamond):
    probs = execution_probabilities(xor_diamond)
    assert probs["start"] == 1.0
    assert probs["choice"] == 1.0
    assert probs["left"] == pytest.approx(0.7)
    assert probs["right"] == pytest.approx(0.3)
    # the join and everything after it always execute
    assert probs["merge"] == pytest.approx(1.0)
    assert probs["end"] == pytest.approx(1.0)


def test_and_branches_always_execute(and_diamond):
    probs = execution_probabilities(and_diamond)
    assert probs["left"] == 1.0
    assert probs["right"] == 1.0
    assert probs["join"] == 1.0


def test_or_branches_always_execute(or_diamond):
    probs = execution_probabilities(or_diamond)
    assert probs["fast"] == 1.0
    assert probs["slow"] == 1.0
    assert probs["first"] == 1.0


def test_nested_xor_multiplies():
    builder = WorkflowBuilder("nested-xor", default_message_bits=10)
    builder.task("t", 1e6)
    builder.split(NodeKind.XOR_SPLIT, "outer", 1e6)
    builder.branch(probability=0.5)
    builder.split(NodeKind.XOR_SPLIT, "inner", 1e6)
    builder.branch(probability=0.4)
    builder.task("deep", 1e6)
    builder.branch(probability=0.6)
    builder.task("deep2", 1e6)
    builder.join("inner_end", 1e6)
    builder.branch(probability=0.5)
    builder.task("other", 1e6)
    builder.join("outer_end", 1e6)
    workflow = builder.build()
    probs = execution_probabilities(workflow)
    assert probs["inner"] == pytest.approx(0.5)
    assert probs["deep"] == pytest.approx(0.5 * 0.4)
    assert probs["deep2"] == pytest.approx(0.5 * 0.6)
    assert probs["inner_end"] == pytest.approx(0.5)
    assert probs["outer_end"] == pytest.approx(1.0)


def test_xor_inside_and_keeps_region_probability():
    builder = WorkflowBuilder("xor-in-and", default_message_bits=10)
    builder.task("t", 1e6)
    builder.split(NodeKind.AND_SPLIT, "fork", 1e6)
    builder.branch()
    builder.split(NodeKind.XOR_SPLIT, "x", 1e6)
    builder.branch(probability=0.25)
    builder.task("rare", 1e6)
    builder.branch(probability=0.75)
    builder.task("common", 1e6)
    builder.join("xe", 1e6)
    builder.branch()
    builder.task("steady", 1e6)
    builder.join("joined", 1e6)
    workflow = builder.build()
    probs = execution_probabilities(workflow)
    assert probs["rare"] == pytest.approx(0.25)
    assert probs["steady"] == 1.0
    assert probs["joined"] == 1.0


def test_message_probabilities(xor_diamond):
    msg_probs = message_probabilities(xor_diamond)
    assert msg_probs[("choice", "left")] == pytest.approx(0.7)
    assert msg_probs[("choice", "right")] == pytest.approx(0.3)
    assert msg_probs[("left", "merge")] == pytest.approx(0.7)
    assert msg_probs[("start", "choice")] == 1.0


def test_message_probabilities_accept_precomputed(xor_diamond):
    node_probs = execution_probabilities(xor_diamond)
    msg_probs = message_probabilities(xor_diamond, node_probs)
    assert msg_probs[("right", "merge")] == pytest.approx(0.3)


def test_probabilities_clamped_to_unit_interval(xor_diamond):
    probs = execution_probabilities(xor_diamond)
    assert all(0.0 <= p <= 1.0 for p in probs.values())
