"""Unit tests for workflow analysis (statistics, region tree, critical path)."""

import pytest

from repro.core.analysis import (
    critical_path,
    region_tree,
    workflow_statistics,
)
from repro.core.builder import WorkflowBuilder
from repro.core.cost import CostModel
from repro.core.mapping import Deployment
from repro.core.workflow import NodeKind, Operation, Workflow
from repro.exceptions import MalformedWorkflowError

MS = 1e-3


class TestStatistics:
    def test_line(self, line3):
        stats = workflow_statistics(line3)
        assert stats["operations"] == 3
        assert stats["messages"] == 2
        assert stats["depth"] == 3
        assert stats["max_fan_out"] == 1
        assert stats["max_fan_in"] == 1
        assert stats["kind_counts"] == {"operational": 3}
        assert stats["total_cycles"] == 60e6
        assert stats["total_message_bits"] == 24_000
        assert stats["mean_message_bits"] == 12_000

    def test_diamond(self, xor_diamond):
        stats = workflow_statistics(xor_diamond)
        assert stats["max_fan_out"] == 2
        assert stats["max_fan_in"] == 2
        assert stats["kind_counts"]["xor"] == 1
        assert stats["kind_counts"]["/xor"] == 1
        # start -> choice -> branch -> merge -> end = depth 5
        assert stats["depth"] == 5

    def test_single_operation(self):
        workflow = Workflow("solo")
        workflow.add_operation(Operation("A", 1e6))
        stats = workflow_statistics(workflow)
        assert stats["depth"] == 1
        assert stats["mean_message_bits"] == 0.0


class TestRegionTree:
    def test_no_regions(self, line3):
        tree = region_tree(line3)
        assert tree.is_root
        assert tree.count() == 0
        assert tree.depth() == 0

    def test_single_region(self, xor_diamond):
        tree = region_tree(xor_diamond)
        assert tree.count() == 1
        child = tree.children[0]
        assert (child.split, child.join) == ("choice", "merge")
        assert child.kind is NodeKind.XOR_SPLIT
        assert not child.is_root

    def test_nested_regions(self):
        builder = WorkflowBuilder("nested", default_message_bits=10)
        builder.task("t", 1e6)
        builder.split(NodeKind.AND_SPLIT, "outer", 1e6)
        builder.branch()
        builder.split(NodeKind.XOR_SPLIT, "inner", 1e6)
        builder.branch(probability=0.5)
        builder.task("a", 1e6)
        builder.branch(probability=0.5)
        builder.task("b", 1e6)
        builder.join("inner_end", 1e6)
        builder.branch()
        builder.task("c", 1e6)
        builder.join("outer_end", 1e6)
        tree = region_tree(builder.build())
        assert tree.count() == 2
        assert tree.depth() == 2
        outer = tree.children[0]
        assert outer.split == "outer"
        assert [child.split for child in outer.children] == ["inner"]

    def test_sibling_regions(self):
        builder = WorkflowBuilder("siblings", default_message_bits=10)
        builder.task("t", 1e6)
        for index in range(2):
            builder.split(NodeKind.AND_SPLIT, f"s{index}", 1e6)
            builder.branch()
            builder.task(f"a{index}", 1e6)
            builder.branch()
            builder.task(f"b{index}", 1e6)
            builder.join(f"j{index}", 1e6)
        tree = region_tree(builder.build())
        assert tree.count() == 2
        assert tree.depth() == 1
        assert [child.split for child in tree.children] == ["s0", "s1"]

    def test_malformed_rejected(self):
        workflow = Workflow("bad")
        workflow.add_operations(
            [
                Operation("s", 1e6, NodeKind.AND_SPLIT),
                Operation("a", 1e6),
                Operation("b", 1e6),
            ]
        )
        workflow.connect("s", "a", 1)
        workflow.connect("s", "b", 1)
        with pytest.raises(MalformedWorkflowError):
            region_tree(workflow)


class TestExtractRegion:
    def test_single_region_extraction(self, xor_diamond):
        from repro.core.analysis import extract_region
        from repro.core.validation import check_well_formed

        region = extract_region(xor_diamond, "choice")
        assert set(region.operation_names) == {
            "choice",
            "left",
            "right",
            "merge",
        }
        assert region.entries == ("choice",)
        assert region.exits == ("merge",)
        assert check_well_formed(region).ok
        # probabilities survive
        assert region.message("choice", "left").probability == 0.7

    def test_nested_region_extraction(self):
        from repro.core.analysis import extract_region

        builder = WorkflowBuilder("nested", default_message_bits=10)
        builder.task("t", 1e6)
        builder.split(NodeKind.AND_SPLIT, "outer", 1e6)
        builder.branch()
        builder.split(NodeKind.XOR_SPLIT, "inner", 1e6)
        builder.branch(probability=0.5)
        builder.task("a", 1e6)
        builder.branch(probability=0.5)
        builder.task("b", 1e6)
        builder.join("inner_end", 1e6)
        builder.branch()
        builder.task("c", 1e6)
        builder.join("outer_end", 1e6)
        workflow = builder.build()

        inner = extract_region(workflow, "inner")
        assert set(inner.operation_names) == {"inner", "a", "b", "inner_end"}
        outer = extract_region(workflow, "outer")
        assert "t" not in outer
        assert {"inner", "a", "b", "inner_end", "c"} <= set(
            outer.operation_names
        )

    def test_non_split_rejected(self, xor_diamond):
        from repro.core.analysis import extract_region

        with pytest.raises(MalformedWorkflowError):
            extract_region(xor_diamond, "start")

    def test_malformed_rejected(self, line3):
        from repro.core.analysis import extract_region

        line3.connect("C", "A", 1)  # cycle
        with pytest.raises(MalformedWorkflowError):
            extract_region(line3, "A")


class TestCriticalPath:
    def test_line_path_is_the_whole_line(self, line3, bus3):
        model = CostModel(line3, bus3)
        deployment = Deployment({"A": "S1", "B": "S2", "C": "S3"})
        path = critical_path(line3, deployment, model)
        assert path.operations == ("A", "B", "C")
        assert path.length_s == pytest.approx(
            model.execution_time(deployment)
        )
        assert path.processing_s == pytest.approx(30 * MS)
        assert path.communication_s == pytest.approx(24_000 / 100e6)
        # no XOR: chain sums reconstruct the length exactly
        assert path.processing_s + path.communication_s == pytest.approx(
            path.length_s
        )

    def test_and_diamond_follows_slow_branch(self, and_diamond, bus3):
        model = CostModel(and_diamond, bus3)
        deployment = Deployment.all_on_one(and_diamond, "S1")
        path = critical_path(and_diamond, deployment, model)
        assert "right" in path.operations  # the 40M branch dominates
        assert "left" not in path.operations

    def test_or_diamond_follows_fast_branch(self, or_diamond, bus3):
        model = CostModel(or_diamond, bus3)
        deployment = Deployment.all_on_one(or_diamond, "S1")
        path = critical_path(or_diamond, deployment, model)
        assert "fast" in path.operations
        assert "slow" not in path.operations

    def test_xor_follows_dominant_weighted_branch(self, xor_diamond, bus3):
        model = CostModel(xor_diamond, bus3)
        deployment = Deployment.all_on_one(xor_diamond, "S1")
        path = critical_path(xor_diamond, deployment, model)
        # left: 0.7 * 31ms = 21.7; right: 0.3 * 51ms = 15.3 -> left wins
        assert "left" in path.operations
        assert path.length_s == pytest.approx(
            model.execution_time(deployment)
        )

    def test_moving_critical_op_changes_time(self, line3, bus3):
        """Sanity: speeding up the critical path's slowest op helps."""
        model = CostModel(line3, bus3)
        deployment = Deployment.all_on_one(line3, "S1")
        path = critical_path(line3, deployment, model)
        slowest = max(
            path.operations, key=lambda n: model.tproc(n, deployment)
        )
        before = model.execution_time(deployment)
        deployment.assign(slowest, "S3")  # 3x faster server
        assert model.execution_time(deployment) < before


class TestResponseTimes:
    def test_line_response_times_accumulate(self, line3, bus3):
        model = CostModel(line3, bus3)
        deployment = Deployment.all_on_one(line3, "S1")
        times = model.response_times(deployment)
        assert times["A"] == pytest.approx(10 * MS)
        assert times["B"] == pytest.approx(30 * MS)
        assert times["C"] == pytest.approx(60 * MS)

    def test_breakdown_carries_response_times(self, line3, bus3):
        model = CostModel(line3, bus3)
        cost = model.evaluate(Deployment.all_on_one(line3, "S1"))
        assert cost.response_times["C"] == pytest.approx(60 * MS)

    def test_max_response_time_constraint(self, line3, bus3):
        from repro.core.constraints import ConstraintSet, MaxResponseTime

        model = CostModel(line3, bus3)
        cost = model.evaluate(Deployment.all_on_one(line3, "S1"))
        assert MaxResponseTime("B", 0.05).satisfied(cost)
        assert not MaxResponseTime("B", 0.02).satisfied(cost)
        message = MaxResponseTime("ghost", 1.0).violation(cost)
        assert message is not None and "ghost" in message
        violations = ConstraintSet(
            [MaxResponseTime("C", 0.01)]
        ).violations(cost)
        assert len(violations) == 1
