"""Unit tests for the batch evaluation kernel (:mod:`repro.core.batch`).

The parity property suite (``tests/properties/test_property_batch``)
pins the kernel's numerics against the scalar compiled path over random
instances; these tests cover the API surface and the degenerate batch
shapes the issue calls out -- ``K=0``, ``K=1``, duplicate rows, the
all-ops-on-one-server antagonism row -- plus the NumPy import guard and
the shared-artifact memoisation.
"""

import random

import numpy as np
import pytest

from repro.core.batch import BatchEvaluator, BatchScores
from repro.core.compiled import CompiledInstance, batch_evaluator_or_none
from repro.core.workflow import Operation, Workflow
from repro.exceptions import DeploymentError
from repro.network.topology import Link, bus_network
from repro.workloads.generator import (
    GraphStructure,
    random_bus_network,
    random_graph_workflow,
)


@pytest.fixture(scope="module")
def compiled():
    workflow = random_graph_workflow(12, GraphStructure.HYBRID, seed=17)
    network = random_bus_network(5, seed=18)
    return CompiledInstance(workflow, network)


@pytest.fixture(scope="module")
def evaluator(compiled):
    return compiled.batch_evaluator()


def random_batch(compiled, count, seed=0):
    rng = random.Random(seed)
    return [
        [rng.randrange(compiled.num_servers) for _ in range(compiled.num_ops)]
        for _ in range(count)
    ]


class TestDegenerateBatches:
    def test_empty_batch_returns_empty_arrays(self, evaluator):
        scores = evaluator.evaluate([])
        assert len(scores) == 0
        assert scores.execution.shape == (0,)
        assert scores.penalty.shape == (0,)
        assert scores.objective.shape == (0,)

    def test_empty_batch_argbest_raises(self, evaluator):
        with pytest.raises(DeploymentError):
            evaluator.evaluate([]).argbest()

    def test_single_row_matches_scalar_exactly(self, compiled, evaluator):
        (row,) = random_batch(compiled, 1, seed=3)
        scores = evaluator.evaluate([row])
        execution, penalty, objective = compiled.components(row)
        assert scores.execution[0] == execution
        assert scores.penalty[0] == penalty
        assert scores.objective[0] == objective
        assert scores.argbest() == 0

    def test_duplicate_rows_score_identically(self, compiled, evaluator):
        (row,) = random_batch(compiled, 1, seed=5)
        scores = evaluator.evaluate([row] * 8)
        for array in (scores.execution, scores.penalty, scores.objective):
            assert all(value == array[0] for value in array)
        # first-occurrence tie resolution on an all-tied batch
        assert scores.argbest() == 0

    def test_all_ops_on_one_server_matches_antagonism_example(
        self, compiled, evaluator
    ):
        # DESIGN's antagonism statement: all-on-one-server minimises
        # communication but destroys fairness. The row's penalty must
        # equal the scalar statistic of its (maximally skewed) loads...
        row = [0] * compiled.num_ops
        scores = evaluator.evaluate([row])
        assert scores.penalty[0] == compiled.penalty(
            compiled.load_values(row)
        )
        # ...and its communication is genuinely minimal: the execution
        # time is pure processing, every message priced at zero delay
        assert scores.execution[0] == compiled.execution_from(
            compiled.forward_pass(row)
        )
        assert compiled.communication_time(row) == 0.0
        # while fairness is worse than any mapping that spreads at all
        spread = [i % compiled.num_servers for i in range(compiled.num_ops)]
        assert scores.penalty[0] > evaluator.evaluate([spread]).penalty[0]


class TestBatchValidation:
    def test_wrong_width_rejected(self, compiled, evaluator):
        with pytest.raises(DeploymentError, match="batch must be"):
            evaluator.evaluate([[0] * (compiled.num_ops + 1)])

    def test_out_of_range_indices_rejected(self, evaluator):
        bad = [[0] * evaluator.num_ops]
        bad[0][0] = evaluator.num_servers
        with pytest.raises(DeploymentError, match="outside"):
            evaluator.evaluate(bad)
        bad[0][0] = -1
        with pytest.raises(DeploymentError, match="outside"):
            evaluator.evaluate(bad)

    def test_index_batch_translates_names(self, compiled, evaluator):
        genome = tuple(
            compiled.server_names[i % compiled.num_servers]
            for i in range(compiled.num_ops)
        )
        indexed = evaluator.index_batch([genome])
        assert indexed.shape == (1, compiled.num_ops)
        assert [compiled.server_names[j] for j in indexed[0]] == list(genome)

    def test_index_batch_rejects_unknown_server(self, compiled, evaluator):
        genome = ("nope",) * compiled.num_ops
        with pytest.raises(DeploymentError, match="unknown server"):
            evaluator.index_batch([genome])

    def test_index_batch_empty_is_a_valid_k0_batch(self, evaluator):
        indexed = evaluator.index_batch([])
        assert indexed.shape == (0, evaluator.num_ops)
        assert len(evaluator.evaluate(indexed)) == 0


class TestNeighborhood:
    def test_grid_shape_and_row_encoding(self, compiled, evaluator):
        base = random_batch(compiled, 1, seed=7)[0]
        grid = evaluator.neighborhood(base)
        num_servers = compiled.num_servers
        assert grid.shape == (
            compiled.num_ops * num_servers,
            compiled.num_ops,
        )
        for op in range(compiled.num_ops):
            for server in range(num_servers):
                row = grid[op * num_servers + server]
                assert row[op] == server
                others = [x for i, x in enumerate(row) if i != op]
                expected = [x for i, x in enumerate(base) if i != op]
                assert others == expected

    def test_no_op_rows_score_the_incumbent(self, compiled, evaluator):
        base = random_batch(compiled, 1, seed=9)[0]
        scores = evaluator.evaluate(evaluator.neighborhood(base))
        incumbent = evaluator.evaluate([base]).objective[0]
        for op in range(compiled.num_ops):
            row = op * compiled.num_servers + base[op]
            assert scores.objective[row] == incumbent

    def test_wrong_length_vector_rejected(self, evaluator):
        with pytest.raises(DeploymentError, match="length"):
            evaluator.neighborhood([0] * (evaluator.num_ops + 1))


class TestArgbest:
    def test_argbest_is_first_minimum(self):
        scores = BatchScores(
            execution=np.array([1.0, 2.0, 1.0]),
            penalty=np.array([0.0, 0.0, 0.0]),
            objective=np.array([2.0, 1.0, 1.0]),
        )
        assert scores.argbest() == 1

    def test_argbest_matches_scalar_scan(self, compiled, evaluator):
        batch = random_batch(compiled, 40, seed=11)
        scores = evaluator.evaluate(batch)
        scalar = [compiled.components(row)[2] for row in batch]
        assert scores.argbest() == min(
            range(len(scalar)), key=scalar.__getitem__
        )


class TestSharing:
    def test_batch_evaluator_is_memoised(self, compiled):
        assert compiled.batch_evaluator() is compiled.batch_evaluator()

    def test_helper_returns_shared_instance(self, compiled):
        assert batch_evaluator_or_none(compiled) is compiled.batch_evaluator()

    def test_helper_respects_enabled_flag_and_none(self, compiled):
        assert batch_evaluator_or_none(compiled, enabled=False) is None
        assert batch_evaluator_or_none(None) is None

    def test_delay_matrices_shared_per_size(self):
        workflow = random_graph_workflow(8, GraphStructure.BUSHY, seed=2)
        network = bus_network((2e9, 3e9), speed_bps=1e8)
        evaluator = CompiledInstance(workflow, network).batch_evaluator()
        sizes = {m.size_bits for m in workflow.messages}
        evaluator.evaluate(random_batch(evaluator.compiled, 2))
        assert set(evaluator._delay_matrices) == sizes


class TestImportGuard:
    def test_core_package_imports_without_batch(self):
        # the lazy PEP 562 re-export must not import repro.core.batch
        # (and so numpy) as a side effect of importing repro.core
        import subprocess
        import sys

        code = (
            "import sys\n"
            "import repro.core\n"
            "import repro.algorithms\n"
            "import repro.service.controller\n"
            "assert 'repro.core.batch' not in sys.modules\n"
        )
        subprocess.run(
            [sys.executable, "-c", code], check=True, capture_output=True
        )

    def test_missing_numpy_raises_clear_runtime_error(self):
        import subprocess
        import sys

        # simulate a numpy-less interpreter: poison the import, reload
        code = (
            "import sys\n"
            "sys.modules['numpy'] = None\n"
            "import importlib.util\n"
            "class Block:\n"
            "    def find_spec(self, name, *args):\n"
            "        if name == 'numpy':\n"
            "            raise ImportError('blocked')\n"
            "        return None\n"
            "sys.meta_path.insert(0, Block())\n"
            "del sys.modules['numpy']\n"
            "try:\n"
            "    import repro.core.batch\n"
            "except RuntimeError as exc:\n"
            "    assert 'pip install numpy' in str(exc), exc\n"
            "else:\n"
            "    raise SystemExit('RuntimeError not raised')\n"
            "from repro.core.compiled import batch_evaluator_or_none\n"
            "from repro.core.cost import CostModel\n"
            "from repro.network.topology import bus_network\n"
            "from repro.workloads.generator import line_workflow\n"
            "wf = line_workflow(3, seed=1)\n"
            "net = bus_network((2e9, 3e9), speed_bps=1e8)\n"
            "model = CostModel(wf, net)\n"
            "assert batch_evaluator_or_none(model.compiled) is None\n"
        )
        subprocess.run(
            [sys.executable, "-c", code], check=True, capture_output=True
        )


class TestEvaluatorConstruction:
    def test_repr_mentions_dimensions(self, evaluator):
        text = repr(evaluator)
        assert str(evaluator.num_ops) in text
        assert str(evaluator.num_servers) in text

    def test_direct_construction_equals_shared(self, compiled):
        direct = BatchEvaluator(compiled)
        shared = compiled.batch_evaluator()
        batch = random_batch(compiled, 6, seed=13)
        assert list(direct.evaluate(batch).objective) == list(
            shared.evaluate(batch).objective
        )


class TestScopedRefreshSizedPairs:
    def test_scoped_refresh_reprices_third_pareto_path(self, pareto_triple):
        # regression: the (A, B) message's per-size optimum rides the z
        # route, which is on neither classification path -- after a
        # scoped invalidation of an A-z worsening the dense delay
        # matrices must re-derive that entry, not restore the stale one
        workflow = Workflow("pair")
        workflow.add_operations(
            [Operation("op1", 1e9), Operation("op2", 1e9)]
        )
        workflow.connect("op1", "op2", 5e6)
        compiled = CompiledInstance(workflow, pareto_triple)
        evaluator = compiled.batch_evaluator()
        row = [0, 4]  # op1 on A, op2 on B
        before = evaluator.evaluate([row]).execution[0]
        pareto_triple.replace_link(Link("A", "z", 1e3, 50.0))
        compiled.invalidate_routes(
            changed_links=(("A", "z"),), worsening=True
        )
        fresh = CompiledInstance(workflow, pareto_triple)
        fresh_scores = fresh.batch_evaluator().evaluate([row])
        scores = evaluator.evaluate([row])
        # byte-identical to a from-scratch compile on the changed net
        assert scores.execution[0] == fresh_scores.execution[0]
        assert scores.objective[0] == fresh_scores.objective[0]
        assert scores.execution[0] > before  # the z detour is gone
