"""Unit tests for the user-constraint framework."""

import pytest

from repro.core.constraints import (
    ConstraintSet,
    MaxExecutionTime,
    MaxServerLoad,
    MaxTimePenalty,
)
from repro.core.cost import CostBreakdown
from repro.exceptions import ConstraintViolationError


def breakdown(execution=1.0, penalty=0.1, loads=None):
    loads = loads if loads is not None else {"S1": 0.5, "S2": 0.7}
    return CostBreakdown(
        execution_time=execution,
        time_penalty=penalty,
        objective=execution + penalty,
        loads=loads,
    )


class TestMaxExecutionTime:
    def test_satisfied(self):
        assert MaxExecutionTime(2.0).satisfied(breakdown(execution=1.0))

    def test_violated_with_message(self):
        message = MaxExecutionTime(0.5).violation(breakdown(execution=1.0))
        assert message is not None and "execution time" in message

    def test_boundary_is_allowed(self):
        assert MaxExecutionTime(1.0).satisfied(breakdown(execution=1.0))


class TestMaxServerLoad:
    def test_global_limit(self):
        assert MaxServerLoad(0.8).satisfied(breakdown())
        assert not MaxServerLoad(0.6).satisfied(breakdown())

    def test_named_server(self):
        constraint = MaxServerLoad(0.6, server_name="S1")
        assert constraint.satisfied(breakdown())  # S1 is 0.5
        constraint2 = MaxServerLoad(0.6, server_name="S2")
        assert not constraint2.satisfied(breakdown())  # S2 is 0.7

    def test_unknown_named_server_is_violation(self):
        message = MaxServerLoad(0.6, server_name="S9").violation(breakdown())
        assert message is not None and "S9" in message


class TestMaxTimePenalty:
    def test_satisfied_and_violated(self):
        assert MaxTimePenalty(0.2).satisfied(breakdown(penalty=0.1))
        assert not MaxTimePenalty(0.05).satisfied(breakdown(penalty=0.1))


class TestConstraintSet:
    def test_empty_set_always_satisfied(self):
        assert ConstraintSet().satisfied(breakdown())
        assert ConstraintSet().violations(breakdown()) == []

    def test_add_chains(self):
        constraints = (
            ConstraintSet()
            .add(MaxExecutionTime(2.0))
            .add(MaxTimePenalty(1.0))
        )
        assert len(constraints) == 2

    def test_collects_all_violations(self):
        constraints = ConstraintSet(
            [MaxExecutionTime(0.5), MaxTimePenalty(0.05), MaxServerLoad(10.0)]
        )
        messages = constraints.violations(breakdown())
        assert len(messages) == 2

    def test_enforce_raises_with_all_messages(self):
        constraints = ConstraintSet(
            [MaxExecutionTime(0.5), MaxTimePenalty(0.05)]
        )
        with pytest.raises(ConstraintViolationError) as excinfo:
            constraints.enforce(breakdown())
        text = str(excinfo.value)
        assert "execution time" in text and "time penalty" in text

    def test_enforce_passes_silently(self):
        ConstraintSet([MaxExecutionTime(10.0)]).enforce(breakdown())

    def test_iteration(self):
        items = [MaxExecutionTime(1.0), MaxTimePenalty(1.0)]
        assert list(ConstraintSet(items)) == items


class TestIntegrationWithCostModel:
    def test_constraints_filter_real_deployments(self, line3, bus3):
        from repro.core.cost import CostModel
        from repro.core.mapping import Deployment

        model = CostModel(line3, bus3)
        fair = model.evaluate(Deployment({"A": "S1", "B": "S2", "C": "S3"}))
        lumped = model.evaluate(Deployment.all_on_one(line3, "S1"))
        constraints = ConstraintSet([MaxTimePenalty(0.01)])
        assert constraints.satisfied(fair)
        assert not constraints.satisfied(lumped)
