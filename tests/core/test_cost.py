"""Unit tests for the Table 1 cost model (hand-computed expectations).

Fixtures: ``line3`` is ``A(10M) -[8k]-> B(20M) -[16k]-> C(30M)``;
``bus3`` has S1=1 GHz, S2=2 GHz, S3=3 GHz on a 100 Mbps bus.
"""

import pytest

from repro.core.cost import CostBreakdown, CostModel
from repro.core.mapping import Deployment
from repro.exceptions import DeploymentError, IncompleteMappingError

MS = 1e-3


class TestPrimitives:
    def test_tproc(self, line3, bus3, cost_line3_bus3):
        deployment = Deployment({"A": "S1", "B": "S2", "C": "S3"})
        assert cost_line3_bus3.tproc("A", deployment) == pytest.approx(10 * MS)
        assert cost_line3_bus3.tproc("B", deployment) == pytest.approx(10 * MS)
        assert cost_line3_bus3.tproc("C", deployment) == pytest.approx(10 * MS)

    def test_tcomm_cross_server(self, line3, cost_line3_bus3):
        deployment = Deployment({"A": "S1", "B": "S2", "C": "S3"})
        message = line3.message("A", "B")
        # 8000 bits over 100 Mbps = 80 microseconds
        assert cost_line3_bus3.tcomm(message, deployment) == pytest.approx(8e-5)

    def test_tcomm_colocated_is_zero(self, line3, cost_line3_bus3):
        deployment = Deployment.all_on_one(line3, "S2")
        for message in line3.messages:
            assert cost_line3_bus3.tcomm(message, deployment) == 0.0

    def test_ideal_cycles_proportional_to_power(self, cost_line3_bus3):
        assert cost_line3_bus3.ideal_cycles("S1") == pytest.approx(10e6)
        assert cost_line3_bus3.ideal_cycles("S2") == pytest.approx(20e6)
        assert cost_line3_bus3.ideal_cycles("S3") == pytest.approx(30e6)

    def test_total_weighted_cycles_line(self, cost_line3_bus3):
        assert cost_line3_bus3.total_weighted_cycles() == pytest.approx(60e6)

    def test_total_weighted_cycles_xor(self, xor_diamond, bus3):
        model = CostModel(xor_diamond, bus3)
        # 10 + 1 + 0.7*20 + 0.3*40 + 1 + 10 = 48 Mcycles
        assert model.total_weighted_cycles() == pytest.approx(48e6)


class TestLoads:
    def test_loads_all_on_one(self, line3, cost_line3_bus3):
        loads = cost_line3_bus3.loads(Deployment.all_on_one(line3, "S1"))
        assert loads == pytest.approx({"S1": 60 * MS, "S2": 0.0, "S3": 0.0})

    def test_loads_balanced(self, cost_line3_bus3):
        loads = cost_line3_bus3.loads(
            Deployment({"A": "S1", "B": "S2", "C": "S3"})
        )
        assert loads == pytest.approx(
            {"S1": 10 * MS, "S2": 10 * MS, "S3": 10 * MS}
        )

    def test_loads_probability_weighted(self, xor_diamond, bus3):
        model = CostModel(xor_diamond, bus3)
        deployment = Deployment.all_on_one(xor_diamond, "S1")
        loads = model.loads(deployment)
        assert loads["S1"] == pytest.approx(48 * MS)

    def test_incomplete_mapping_rejected(self, cost_line3_bus3):
        with pytest.raises(IncompleteMappingError):
            cost_line3_bus3.loads(Deployment({"A": "S1"}))


class TestTimePenalty:
    def test_perfectly_fair_is_zero(self, cost_line3_bus3):
        deployment = Deployment({"A": "S1", "B": "S2", "C": "S3"})
        assert cost_line3_bus3.time_penalty(deployment) == pytest.approx(0.0)

    def test_all_on_one_mad(self, line3, cost_line3_bus3):
        deployment = Deployment.all_on_one(line3, "S1")
        # loads 60/0/0 ms, mean 20 ms, MAD = (40 + 20 + 20)/3 ms
        assert cost_line3_bus3.time_penalty(deployment) == pytest.approx(
            80 / 3 * MS
        )

    @pytest.mark.parametrize(
        "mode,expected_ms",
        [
            ("mad", 80 / 3),
            ("sum_abs", 80.0),
            ("max", 40.0),
            ("std", (1600 / 3 + 400 / 3 + 400 / 3) ** 0.5),
        ],
    )
    def test_penalty_modes(self, line3, bus3, mode, expected_ms):
        model = CostModel(line3, bus3, penalty_mode=mode)
        deployment = Deployment.all_on_one(line3, "S1")
        # loads in ms: 60/0/0, mean 20; deviations 40/20/20
        assert model.time_penalty(deployment) == pytest.approx(
            expected_ms * MS, rel=1e-6
        )

    def test_unknown_penalty_mode_rejected(self, line3, bus3):
        with pytest.raises(DeploymentError):
            CostModel(line3, bus3, penalty_mode="variance")


class TestExecutionTime:
    def test_line_is_sum_of_tproc_and_tcomm(self, cost_line3_bus3):
        deployment = Deployment({"A": "S1", "B": "S2", "C": "S3"})
        # 10 + 10 + 10 ms processing + (8k + 16k bits)/100Mbps
        expected = 30 * MS + 8_000 / 100e6 + 16_000 / 100e6
        assert cost_line3_bus3.execution_time(deployment) == pytest.approx(
            expected
        )

    def test_all_on_one_has_no_comm(self, line3, cost_line3_bus3):
        deployment = Deployment.all_on_one(line3, "S1")
        assert cost_line3_bus3.execution_time(deployment) == pytest.approx(
            60 * MS
        )

    def test_and_join_waits_for_slowest(self, and_diamond, bus3):
        model = CostModel(and_diamond, bus3)
        deployment = Deployment.all_on_one(and_diamond, "S1")
        # start 10 + fork 1 + max(20, 40) + join 1 + end 10 = 62 ms
        assert model.execution_time(deployment) == pytest.approx(62 * MS)

    def test_or_join_takes_fastest(self, or_diamond, bus3):
        model = CostModel(or_diamond, bus3)
        deployment = Deployment.all_on_one(or_diamond, "S1")
        # start 10 + race 1 + min(5, 500) + first 1 + end 10 = 27 ms
        assert model.execution_time(deployment) == pytest.approx(27 * MS)

    def test_xor_join_is_expectation(self, xor_diamond, bus3):
        model = CostModel(xor_diamond, bus3)
        deployment = Deployment.all_on_one(xor_diamond, "S1")
        # start 10 + choice 1 + (0.7*20 + 0.3*40) + merge 1 + end 10 = 48 ms
        assert model.execution_time(deployment) == pytest.approx(48 * MS)

    def test_cross_server_branch_pays_comm(self, and_diamond, bus3):
        model = CostModel(and_diamond, bus3)
        deployment = Deployment.all_on_one(and_diamond, "S1")
        deployment.assign("right", "S2")  # 40M on 2GHz = 20 ms
        # start 10 + fork 1 + max(left 20, 0.08 + right 20 + 0.08) + join 1
        # + end 10; right branch: 8k/100M twice = 0.08 ms each way
        expected = (10 + 1 + 20 + 0.16 + 1 + 10) * MS
        assert model.execution_time(deployment) == pytest.approx(expected)


class TestObjectiveAndEvaluate:
    def test_objective_is_weighted_sum(self, line3, bus3):
        model = CostModel(line3, bus3, execution_weight=1.0, penalty_weight=0.0)
        deployment = Deployment.all_on_one(line3, "S1")
        assert model.objective(deployment) == pytest.approx(60 * MS)
        model2 = CostModel(
            line3, bus3, execution_weight=0.0, penalty_weight=1.0
        )
        assert model2.objective(deployment) == pytest.approx(80 / 3 * MS)

    def test_negative_weights_rejected(self, line3, bus3):
        with pytest.raises(DeploymentError):
            CostModel(line3, bus3, execution_weight=-0.1)

    def test_evaluate_breakdown_consistency(self, line3, cost_line3_bus3):
        deployment = Deployment({"A": "S1", "B": "S2", "C": "S3"})
        breakdown = cost_line3_bus3.evaluate(deployment)
        assert breakdown.execution_time == pytest.approx(
            cost_line3_bus3.execution_time(deployment)
        )
        assert breakdown.time_penalty == pytest.approx(
            cost_line3_bus3.time_penalty(deployment)
        )
        assert breakdown.objective == pytest.approx(
            0.5 * breakdown.execution_time + 0.5 * breakdown.time_penalty
        )
        assert breakdown.loads == pytest.approx(
            cost_line3_bus3.loads(deployment)
        )
        assert breakdown.processing_time == pytest.approx(30 * MS)
        assert breakdown.communication_time == pytest.approx(24_000 / 100e6)

    def test_dominates(self):
        a = CostBreakdown(1.0, 1.0, 1.0)
        b = CostBreakdown(2.0, 1.0, 1.5)
        c = CostBreakdown(0.5, 2.0, 1.25)
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(c) and not c.dominates(a)
        assert not a.dominates(a)


class TestModelGuards:
    def test_cyclic_workflow_rejected(self, line3, bus3):
        line3.connect("C", "A", 1)
        with pytest.raises(DeploymentError):
            CostModel(line3, bus3)

    def test_disconnected_network_rejected(self, line3):
        from repro.network.topology import Server, ServerNetwork

        network = ServerNetwork("disc")
        network.add_servers([Server("S1", 1e9), Server("S2", 1e9)])
        from repro.exceptions import DisconnectedNetworkError

        with pytest.raises(DisconnectedNetworkError):
            CostModel(line3, network)

    def test_probability_weighting_auto_detection(
        self, line3, xor_diamond, bus3
    ):
        assert CostModel(line3, bus3).use_probabilities is False
        assert CostModel(xor_diamond, bus3).use_probabilities is True

    def test_probability_weighting_override(self, xor_diamond, bus3):
        model = CostModel(xor_diamond, bus3, use_probabilities=False)
        assert model.node_probability("left") == 1.0
        # unweighted total: 10+1+20+40+1+10 = 82 Mcycles
        assert model.total_weighted_cycles() == pytest.approx(82e6)
