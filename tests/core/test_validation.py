"""Unit tests for the well-formedness checker."""

import pytest

from repro.core.validation import assert_well_formed, check_well_formed
from repro.core.workflow import NodeKind, Operation, Workflow
from repro.exceptions import MalformedWorkflowError


def _wf(*ops):
    workflow = Workflow("test")
    workflow.add_operations(ops)
    return workflow


def test_empty_workflow_is_malformed():
    report = check_well_formed(Workflow("empty"))
    assert not report.ok
    assert any("empty" in p for p in report.problems)


def test_purely_operational_line_is_well_formed(line3):
    report = check_well_formed(line3)
    assert report.ok
    assert report.problems == []
    assert report.matches == {}


def test_cyclic_workflow_is_malformed(line3):
    line3.connect("C", "A", 1)
    report = check_well_formed(line3)
    assert not report.ok
    assert any("cycle" in p for p in report.problems)


def test_diamond_regions_match(xor_diamond, and_diamond, or_diamond):
    assert check_well_formed(xor_diamond).matches == {"choice": "merge"}
    assert check_well_formed(and_diamond).matches == {"fork": "join"}
    assert check_well_formed(or_diamond).matches == {"race": "first"}


def test_split_without_join_is_malformed():
    workflow = _wf(
        Operation("s", 1e6, NodeKind.AND_SPLIT),
        Operation("a", 1e6),
        Operation("b", 1e6),
    )
    workflow.connect("s", "a", 1)
    workflow.connect("s", "b", 1)
    report = check_well_formed(workflow)
    assert not report.ok
    assert any("no post-dominating join" in p for p in report.problems)


def test_mismatched_complement_kind_is_malformed():
    workflow = _wf(
        Operation("s", 1e6, NodeKind.AND_SPLIT),
        Operation("a", 1e6),
        Operation("b", 1e6),
        Operation("j", 1e6, NodeKind.XOR_JOIN),
    )
    workflow.connect("s", "a", 1)
    workflow.connect("s", "b", 1)
    workflow.connect("a", "j", 1)
    workflow.connect("b", "j", 1)
    report = check_well_formed(workflow)
    assert not report.ok
    assert any("expected a /and node" in p for p in report.problems)


def test_orphan_join_is_malformed():
    workflow = _wf(
        Operation("a", 1e6),
        Operation("j", 1e6, NodeKind.AND_JOIN),
    )
    workflow.connect("a", "j", 1)
    report = check_well_formed(workflow)
    assert not report.ok
    assert any("matches no split" in p for p in report.problems)


def test_path_escaping_region_is_malformed():
    # s -> (a -> j, b -> exit): branch b bypasses the join
    workflow = _wf(
        Operation("s", 1e6, NodeKind.AND_SPLIT),
        Operation("a", 1e6),
        Operation("b", 1e6),
        Operation("j", 1e6, NodeKind.AND_JOIN),
        Operation("exit", 1e6),
    )
    workflow.connect("s", "a", 1)
    workflow.connect("s", "b", 1)
    workflow.connect("a", "j", 1)
    workflow.connect("j", "exit", 1)
    workflow.connect("b", "exit", 1)
    report = check_well_formed(workflow)
    assert not report.ok


def test_overlapping_regions_are_malformed():
    # two splits sharing one join: s1 -> (x, y), s2 inside one branch also
    # closed by the same join
    workflow = _wf(
        Operation("s1", 1e6, NodeKind.AND_SPLIT),
        Operation("s2", 1e6, NodeKind.AND_SPLIT),
        Operation("x", 1e6),
        Operation("y", 1e6),
        Operation("z", 1e6),
        Operation("j", 1e6, NodeKind.AND_JOIN),
    )
    workflow.connect("s1", "s2", 1)
    workflow.connect("s1", "x", 1)
    workflow.connect("s2", "y", 1)
    workflow.connect("s2", "z", 1)
    workflow.connect("x", "j", 1)
    workflow.connect("y", "j", 1)
    workflow.connect("z", "j", 1)
    report = check_well_formed(workflow)
    assert not report.ok


def test_bad_xor_probabilities_reported():
    workflow = _wf(
        Operation("x", 1e6, NodeKind.XOR_SPLIT),
        Operation("a", 1e6),
        Operation("b", 1e6),
        Operation("j", 1e6, NodeKind.XOR_JOIN),
    )
    workflow.connect("x", "a", 1, probability=0.9)
    workflow.connect("x", "b", 1, probability=0.9)
    workflow.connect("a", "j", 1)
    workflow.connect("b", "j", 1)
    report = check_well_formed(workflow)
    assert not report.ok
    assert any("probabilities sum" in p for p in report.problems)


def test_assert_well_formed_raises_with_details():
    workflow = _wf(
        Operation("s", 1e6, NodeKind.OR_SPLIT),
        Operation("a", 1e6),
        Operation("b", 1e6),
    )
    workflow.connect("s", "a", 1)
    workflow.connect("s", "b", 1)
    with pytest.raises(MalformedWorkflowError) as excinfo:
        assert_well_formed(workflow)
    assert "s" in str(excinfo.value)


def test_assert_well_formed_returns_report(xor_diamond):
    report = assert_well_formed(xor_diamond)
    assert report.ok
    assert bool(report) is True


def test_report_bool_reflects_ok():
    report = check_well_formed(Workflow("empty"))
    assert bool(report) is False
