"""Unit tests for the incremental move-evaluation engine."""

import random

import pytest

from repro.core.cost import PENALTY_MODES, CostModel
from repro.core.incremental import MoveEvaluator, TableScorer
from repro.core.mapping import Deployment
from repro.exceptions import DeploymentError
from repro.workloads.generator import (
    GraphStructure,
    line_workflow,
    random_bus_network,
    random_graph_workflow,
)

TOLERANCE = 1e-9


def make_instance(size=8, servers=4, seed=7, penalty_mode="mad"):
    workflow = random_graph_workflow(size, GraphStructure.HYBRID, seed=seed)
    network = random_bus_network(servers, seed=seed + 1)
    model = CostModel(workflow, network, penalty_mode=penalty_mode)
    deployment = Deployment.random(workflow, network, random.Random(seed))
    return workflow, network, model, deployment


class TestMoveEvaluatorLifecycle:
    def test_attach_matches_full_evaluation(self):
        _, _, model, deployment = make_instance()
        evaluator = MoveEvaluator(model, deployment)
        full = model.evaluate(deployment)
        assert evaluator.objective == pytest.approx(full.objective, abs=TOLERANCE)
        assert evaluator.execution_time == pytest.approx(
            full.execution_time, abs=TOLERANCE
        )
        assert evaluator.time_penalty == pytest.approx(
            full.time_penalty, abs=TOLERANCE
        )

    def test_propose_prices_without_mutating(self):
        workflow, network, model, deployment = make_instance()
        evaluator = MoveEvaluator(model, deployment)
        before = deployment.as_dict()
        operation = workflow.operation_names[0]
        target = next(
            s
            for s in network.server_names
            if s != deployment.server_of(operation)
        )
        outcome = evaluator.propose(operation, target)
        # the deployment and the evaluator state are untouched
        assert deployment.as_dict() == before
        assert evaluator.objective != outcome.objective or outcome.delta == 0.0
        # the priced objective equals a from-scratch evaluation of the move
        trial = deployment.copy()
        trial.assign(operation, target)
        full = model.evaluate(trial)
        assert outcome.objective == pytest.approx(full.objective, abs=TOLERANCE)
        assert outcome.execution_time == pytest.approx(
            full.execution_time, abs=TOLERANCE
        )
        assert outcome.time_penalty == pytest.approx(
            full.time_penalty, abs=TOLERANCE
        )
        assert outcome.delta == pytest.approx(
            full.objective - model.objective(deployment), abs=TOLERANCE
        )

    def test_commit_applies_into_attached_deployment(self):
        workflow, network, model, deployment = make_instance()
        evaluator = MoveEvaluator(model, deployment)
        operation = workflow.operation_names[0]
        target = next(
            s
            for s in network.server_names
            if s != deployment.server_of(operation)
        )
        outcome = evaluator.propose(operation, target)
        committed = evaluator.commit()
        assert committed is outcome
        assert deployment.server_of(operation) == target
        assert evaluator.objective == pytest.approx(
            model.objective(deployment), abs=TOLERANCE
        )

    def test_commit_without_propose_rejected(self):
        _, _, model, deployment = make_instance()
        evaluator = MoveEvaluator(model, deployment)
        with pytest.raises(DeploymentError):
            evaluator.commit()
        # a same-server propose clears any pending move
        operation = next(iter(deployment.as_dict()))
        evaluator.propose(operation, deployment.server_of(operation))
        with pytest.raises(DeploymentError):
            evaluator.commit()

    def test_unknown_server_rejected(self):
        workflow, _, model, deployment = make_instance()
        evaluator = MoveEvaluator(model, deployment)
        with pytest.raises(DeploymentError):
            evaluator.propose(workflow.operation_names[0], "no-such-server")

    def test_noop_move_has_zero_delta(self):
        workflow, _, model, deployment = make_instance()
        evaluator = MoveEvaluator(model, deployment)
        operation = workflow.operation_names[0]
        outcome = evaluator.apply(operation, deployment.server_of(operation))
        assert outcome.delta == 0.0
        assert outcome.server == outcome.previous_server

    def test_breakdown_matches_cost_model(self):
        _, _, model, deployment = make_instance()
        evaluator = MoveEvaluator(model, deployment)
        ours = evaluator.breakdown()
        full = model.evaluate(deployment)
        assert ours.objective == pytest.approx(full.objective, abs=TOLERANCE)
        assert ours.processing_time == pytest.approx(
            full.processing_time, abs=TOLERANCE
        )
        assert ours.communication_time == pytest.approx(
            full.communication_time, abs=TOLERANCE
        )
        assert ours.loads.keys() == full.loads.keys()
        for name in full.loads:
            assert ours.loads[name] == pytest.approx(
                full.loads[name], abs=TOLERANCE
            )

    @pytest.mark.parametrize("mode", PENALTY_MODES)
    def test_random_apply_sequence_stays_in_sync(self, mode):
        workflow, network, model, deployment = make_instance(
            size=10, servers=3, seed=11, penalty_mode=mode
        )
        evaluator = MoveEvaluator(model, deployment)
        rng = random.Random(99)
        operations = workflow.operation_names
        servers = network.server_names
        for _ in range(40):
            evaluator.apply(rng.choice(operations), rng.choice(servers))
            full = model.evaluate(deployment)
            assert evaluator.objective == pytest.approx(
                full.objective, abs=TOLERANCE
            )

    def test_resync_interval_validation(self):
        _, _, model, deployment = make_instance()
        with pytest.raises(DeploymentError):
            MoveEvaluator(model, deployment, resync_interval=-1)

    def test_attach_validates_once(self):
        workflow, network, model, _ = make_instance()
        broken = Deployment({workflow.operation_names[0]: "S1"})
        with pytest.raises(DeploymentError):
            MoveEvaluator(model, broken)


class TestTableScorer:
    def test_components_match_cost_model(self):
        workflow, network, model, deployment = make_instance(seed=23)
        scorer = TableScorer(model)
        genome = tuple(
            deployment.server_of(name) for name in scorer.operations
        )
        execution, penalty, objective = scorer.components(genome)
        full = model.evaluate(deployment)
        assert execution == pytest.approx(full.execution_time, abs=TOLERANCE)
        assert penalty == pytest.approx(full.time_penalty, abs=TOLERANCE)
        assert objective == pytest.approx(full.objective, abs=TOLERANCE)
        assert scorer.evaluations == 1

    def test_custom_operation_order(self):
        workflow, network, model, deployment = make_instance(seed=31)
        order = tuple(reversed(workflow.operation_names))
        scorer = TableScorer(model, order)
        genome = tuple(deployment.server_of(name) for name in order)
        assert scorer.objective(genome) == pytest.approx(
            model.objective(deployment), abs=TOLERANCE
        )

    def test_score_mapping(self):
        _, _, model, deployment = make_instance(seed=41)
        scorer = TableScorer(model)
        assert scorer.score_mapping(deployment.as_dict()) == pytest.approx(
            model.objective(deployment), abs=TOLERANCE
        )

    def test_incomplete_operation_order_rejected(self):
        workflow, _, model, _ = make_instance()
        with pytest.raises(DeploymentError):
            TableScorer(model, workflow.operation_names[:-1])

    def test_line_workflow(self):
        workflow = line_workflow(6, seed=3)
        network = random_bus_network(3, seed=4)
        model = CostModel(workflow, network)
        deployment = Deployment.random(workflow, network, random.Random(5))
        scorer = TableScorer(model)
        genome = tuple(
            deployment.server_of(name) for name in scorer.operations
        )
        assert scorer.objective(genome) == pytest.approx(
            model.objective(deployment), abs=TOLERANCE
        )
