"""Unit tests for the transition-aware objective (hand-computed).

Fixtures: ``line3`` is ``A(10M) -[8k]-> B(20M) -[16k]-> C(30M)``;
``bus3`` has S1=1 GHz, S2=2 GHz, S3=3 GHz on a 100 Mbps bus, so any
cross-server transfer of ``b`` bits takes ``b / 100e6`` seconds.

The hand model below: 1 Mb of base state plus 0.1 bit per cycle and
10 ms of downtime per move gives per-operation move costs (from an
all-on-S1 baseline, to any other server)::

    A: state 1e6 + 0.1*10e6 = 2e6 bits -> 0.02 s + 0.01 = 0.03 s
    B: state 1e6 + 0.1*20e6 = 3e6 bits -> 0.03 s + 0.01 = 0.04 s
    C: state 1e6 + 0.1*30e6 = 4e6 bits -> 0.04 s + 0.01 = 0.05 s
"""

import math

import pytest

from repro.core.compiled import CompiledInstance
from repro.core.cost import CostBreakdown, CostModel
from repro.core.incremental import MoveEvaluator, TableScorer
from repro.core.mapping import Deployment
from repro.core.migration import (
    PENALTY_MODES,
    MigrationCostModel,
    TransitionObjective,
)
from repro.exceptions import DeploymentError

MODEL = MigrationCostModel(
    state_bits_per_cycle=0.1, state_bits_base=1e6, downtime_s=0.01
)


@pytest.fixture
def aware_objective(line3):
    """Transition-aware spec anchored to everything-on-S1."""
    return TransitionObjective(
        migration_weight=0.5,
        migration=MODEL,
        baseline=Deployment.all_on_one(line3, "S1"),
    )


class TestMigrationCostModel:
    def test_state_bits_is_affine_in_cycles(self):
        assert MODEL.state_bits(0.0) == 1e6
        assert MODEL.state_bits(10e6) == pytest.approx(2e6)
        assert MODEL.state_bits(30e6) == pytest.approx(4e6)

    def test_defaults_are_free(self):
        model = MigrationCostModel()
        assert model.state_bits(1e9) == 0.0
        assert model.downtime_s == 0.0

    @pytest.mark.parametrize(
        "field", ["state_bits_per_cycle", "state_bits_base", "downtime_s"]
    )
    @pytest.mark.parametrize("bad", [-1.0, float("nan"), float("inf")])
    def test_rejects_bad_parameters(self, field, bad):
        with pytest.raises(DeploymentError, match=field):
            MigrationCostModel(**{field: bad})


class TestTransitionObjective:
    def test_defaults_are_the_historical_scalar(self):
        objective = TransitionObjective()
        assert not objective.transition_aware
        assert objective.value(2.0, 4.0) == 0.5 * 2.0 + 0.5 * 4.0
        # the migration argument is gated out entirely at weight 0
        assert objective.value(2.0, 4.0, 1e9) == objective.value(2.0, 4.0)

    def test_value_includes_weighted_migration_when_positive(self):
        objective = TransitionObjective(
            migration_weight=0.25, migration=MODEL
        )
        assert objective.value(2.0, 4.0, 8.0) == pytest.approx(
            0.5 * 2.0 + 0.5 * 4.0 + 0.25 * 8.0
        )

    def test_unknown_penalty_mode_rejected(self):
        with pytest.raises(DeploymentError, match="penalty mode"):
            TransitionObjective(penalty_mode="median")
        for mode in PENALTY_MODES:
            TransitionObjective(penalty_mode=mode)  # all accepted

    def test_negative_weights_rejected(self):
        with pytest.raises(DeploymentError, match=">= 0"):
            TransitionObjective(execution_weight=-0.1)
        with pytest.raises(DeploymentError, match=">= 0"):
            TransitionObjective(penalty_weight=-0.1)

    @pytest.mark.parametrize("bad", [-0.5, float("nan"), float("inf")])
    def test_bad_migration_weight_rejected(self, bad):
        with pytest.raises(DeploymentError, match="migration_weight"):
            TransitionObjective(migration_weight=bad, migration=MODEL)

    def test_positive_weight_requires_a_model(self):
        with pytest.raises(DeploymentError, match="MigrationCostModel"):
            TransitionObjective(migration_weight=0.5)

    def test_transition_aware_needs_model_weight_and_baseline(self, line3):
        baseline = Deployment.all_on_one(line3, "S1")
        assert not TransitionObjective(
            migration_weight=0.5, migration=MODEL
        ).transition_aware  # no baseline
        assert not TransitionObjective(
            migration=MODEL, baseline=baseline
        ).transition_aware  # weight 0
        assert TransitionObjective(
            migration_weight=0.5, migration=MODEL, baseline=baseline
        ).transition_aware

    def test_baseline_deployment_is_frozen_on_construction(self, line3):
        mutable = Deployment.all_on_one(line3, "S1")
        objective = TransitionObjective(migration=MODEL, baseline=mutable)
        frozen = objective.baseline
        mutable.assign("A", "S2")  # must not leak into the spec
        assert frozen.as_dict()["A"] == "S1"

    def test_with_baseline_reanchors(self, line3, aware_objective):
        moved = aware_objective.with_baseline(
            Deployment.all_on_one(line3, "S2")
        )
        assert moved.baseline.as_dict() == {n: "S2" for n in "ABC"}
        # the original spec is untouched (frozen dataclass semantics)
        assert aware_objective.baseline.as_dict() == {n: "S1" for n in "ABC"}


class TestCompiledMigrationTables:
    def test_non_aware_instance_has_no_tables(self, line3, bus3):
        compiled = CompiledInstance(line3, bus3)
        assert not compiled.transition_aware
        assert compiled.baseline_servers is None
        assert compiled.migration_table is None
        assert compiled.migration_cost([0, 1, 2]) == 0.0

    def test_table_prices_each_op_against_its_baseline(
        self, line3, bus3, aware_objective
    ):
        compiled = CompiledInstance(line3, bus3, objective=aware_objective)
        assert compiled.transition_aware
        s1 = compiled.server_index["S1"]
        assert compiled.baseline_servers == (s1, s1, s1)
        table = compiled.migration_table
        for op, cost in zip("ABC", (0.03, 0.04, 0.05)):
            row = table[compiled.op_index[op]]
            assert row[s1] == 0.0  # staying home is free
            for server in range(len(row)):
                if server != s1:
                    assert row[server] == pytest.approx(cost)

    def test_migration_cost_sums_moved_operations(
        self, line3, bus3, aware_objective
    ):
        compiled = CompiledInstance(line3, bus3, objective=aware_objective)
        index = compiled.server_index
        # A stays, B -> S2, C -> S3: 0 + 0.04 + 0.05
        servers = [index["S1"], index["S2"], index["S3"]]
        assert compiled.migration_cost(servers) == pytest.approx(0.09)
        # the baseline itself never pays
        assert compiled.migration_cost([index["S1"]] * 3) == 0.0

    def test_objective_value_gates_the_migration_term(
        self, line3, bus3, aware_objective
    ):
        aware = CompiledInstance(line3, bus3, objective=aware_objective)
        plain = CompiledInstance(line3, bus3)
        assert aware.objective_value(2.0, 4.0, 0.09) == pytest.approx(
            0.5 * 2.0 + 0.5 * 4.0 + 0.5 * 0.09
        )
        # non-aware instances ignore the third argument entirely
        assert plain.objective_value(2.0, 4.0, 0.09) == plain.objective_value(
            2.0, 4.0
        )


class TestEvaluatorsCarryMigration:
    def test_breakdown_field_defaults_to_zero(self):
        breakdown = CostBreakdown(
            execution_time=1.0, time_penalty=0.0, objective=0.5
        )
        assert breakdown.migration_cost == 0.0

    def test_cost_model_evaluate_prices_the_transition(
        self, line3, bus3, aware_objective
    ):
        aware = CostModel(line3, bus3, objective=aware_objective)
        plain = CostModel(line3, bus3)
        deployment = Deployment({"A": "S1", "B": "S2", "C": "S3"})
        result = aware.evaluate(deployment)
        assert result.migration_cost == pytest.approx(0.09)
        assert result.objective == pytest.approx(
            plain.objective(deployment) + 0.5 * 0.09
        )
        assert plain.evaluate(deployment).migration_cost == 0.0

    def test_move_evaluator_prices_moves_incrementally(
        self, line3, bus3, aware_objective
    ):
        model = CostModel(line3, bus3, objective=aware_objective)
        evaluator = MoveEvaluator(
            model, Deployment.all_on_one(line3, "S1")
        )
        assert evaluator.breakdown().migration_cost == 0.0
        outcome = evaluator.propose("C", "S3")
        assert outcome.migration_cost == pytest.approx(0.05)
        assert outcome.objective == pytest.approx(
            model.evaluate(
                Deployment({"A": "S1", "B": "S1", "C": "S3"})
            ).objective
        )
        evaluator.commit()
        # moving back home refunds the whole term
        refund = evaluator.apply("C", "S1")
        assert refund.migration_cost == 0.0
        assert math.isclose(
            refund.objective,
            model.objective(Deployment.all_on_one(line3, "S1")),
            rel_tol=1e-12,
        )

    def test_table_scorer_matches_evaluate(
        self, line3, bus3, aware_objective
    ):
        model = CostModel(line3, bus3, objective=aware_objective)
        scorer = TableScorer(model)
        genome = ["S1", "S2", "S3"]
        execution, penalty, objective = scorer.components(genome)
        reference = model.evaluate(
            Deployment(dict(zip(scorer.operations, genome)))
        )
        assert execution == reference.execution_time
        assert penalty == reference.time_penalty
        assert objective == reference.objective


class TestScopedInvalidationReprices:
    def test_sized_pair_migration_rows_reprice(self, pareto_triple):
        # regression: moving op1 from baseline A to B ships 5e6 bits of
        # state over the z route -- on neither classification path of
        # the size-dependent (A, B) pair -- so a scoped invalidation of
        # an A-z worsening must re-price that migration row rather than
        # keep the pre-event (now too optimistic) move cost
        from repro.core.workflow import Operation, Workflow
        from repro.network.topology import Link

        workflow = Workflow("pair")
        workflow.add_operations(
            [Operation("op1", 1e9), Operation("op2", 1e9)]
        )
        workflow.connect("op1", "op2", 8_000)
        objective = TransitionObjective(
            migration_weight=0.5,
            migration=MigrationCostModel(state_bits_base=5e6),
            baseline=Deployment.all_on_one(workflow, "A"),
        )
        compiled = CompiledInstance(
            workflow, pareto_triple, objective=objective
        )
        before = compiled.migration_table[0][4]  # op1: A -> B
        assert before == pytest.approx(6.5)  # state rides z
        pareto_triple.replace_link(Link("A", "z", 1e3, 50.0))
        compiled.invalidate_routes(
            changed_links=(("A", "z"),), worsening=True
        )
        fresh = CompiledInstance(
            workflow, pareto_triple, objective=objective
        )
        assert compiled.migration_table == fresh.migration_table
        assert compiled.migration_table[0][4] == pytest.approx(10.01)
