"""Unit tests for the workflow model (operations, messages, digraph)."""

import pytest

from repro.core.workflow import Message, NodeKind, Operation, Workflow
from repro.exceptions import (
    DuplicateOperationError,
    DuplicateTransitionError,
    UnknownOperationError,
    WorkflowError,
)


class TestNodeKind:
    def test_operational_is_not_decision(self):
        assert not NodeKind.OPERATIONAL.is_decision

    @pytest.mark.parametrize(
        "kind",
        [
            NodeKind.AND_SPLIT,
            NodeKind.AND_JOIN,
            NodeKind.OR_SPLIT,
            NodeKind.OR_JOIN,
            NodeKind.XOR_SPLIT,
            NodeKind.XOR_JOIN,
        ],
    )
    def test_decision_kinds(self, kind):
        assert kind.is_decision

    @pytest.mark.parametrize(
        "split,join",
        [
            (NodeKind.AND_SPLIT, NodeKind.AND_JOIN),
            (NodeKind.OR_SPLIT, NodeKind.OR_JOIN),
            (NodeKind.XOR_SPLIT, NodeKind.XOR_JOIN),
        ],
    )
    def test_complement_pairs(self, split, join):
        assert split.complement is join
        assert join.complement is split
        assert split.is_split and not split.is_join
        assert join.is_join and not join.is_split

    def test_operational_has_no_complement(self):
        with pytest.raises(ValueError):
            NodeKind.OPERATIONAL.complement


class TestOperation:
    def test_defaults_to_operational(self):
        op = Operation("A", 1e6)
        assert op.kind is NodeKind.OPERATIONAL
        assert not op.is_decision

    def test_rejects_empty_name(self):
        with pytest.raises(WorkflowError):
            Operation("", 1e6)

    @pytest.mark.parametrize("cycles", [-1.0, float("nan"), float("inf")])
    def test_rejects_bad_cycles(self, cycles):
        with pytest.raises(WorkflowError):
            Operation("A", cycles)

    def test_zero_cycles_allowed(self):
        assert Operation("A", 0.0).cycles == 0.0

    def test_with_cycles_returns_new_object(self):
        op = Operation("A", 1e6)
        scaled = op.with_cycles(2e6)
        assert scaled.cycles == 2e6
        assert op.cycles == 1e6
        assert scaled.name == "A"


class TestMessage:
    def test_rejects_self_transition(self):
        with pytest.raises(WorkflowError):
            Message("A", "A", 100)

    @pytest.mark.parametrize("size", [-1.0, float("nan"), float("inf")])
    def test_rejects_bad_size(self, size):
        with pytest.raises(WorkflowError):
            Message("A", "B", size)

    @pytest.mark.parametrize("p", [-0.1, 1.1, float("nan")])
    def test_rejects_bad_probability(self, p):
        with pytest.raises(WorkflowError):
            Message("A", "B", 100, probability=p)

    def test_pair(self):
        assert Message("A", "B", 100).pair == ("A", "B")


class TestWorkflowConstruction:
    def test_duplicate_operation_rejected(self, line3):
        with pytest.raises(DuplicateOperationError):
            line3.add_operation(Operation("A", 1e6))

    def test_duplicate_transition_rejected(self, line3):
        with pytest.raises(DuplicateTransitionError):
            line3.connect("A", "B", 999)

    def test_reverse_transition_is_distinct(self, line3):
        # the one-message rule is per ordered pair
        line3.connect("B", "A", 999)
        assert line3.has_message("B", "A")

    def test_transition_requires_known_endpoints(self, line3):
        with pytest.raises(UnknownOperationError):
            line3.connect("A", "Z", 100)
        with pytest.raises(UnknownOperationError):
            line3.connect("Z", "A", 100)

    def test_replace_operation(self, line3):
        line3.replace_operation(Operation("A", 99e6))
        assert line3.operation("A").cycles == 99e6

    def test_replace_unknown_operation_rejected(self, line3):
        with pytest.raises(UnknownOperationError):
            line3.replace_operation(Operation("Z", 1e6))

    def test_replace_message(self, line3):
        line3.replace_message(Message("A", "B", 123))
        assert line3.message("A", "B").size_bits == 123

    def test_replace_unknown_message_rejected(self, line3):
        with pytest.raises(UnknownOperationError):
            line3.replace_message(Message("A", "C", 123))


class TestWorkflowQueries:
    def test_len_contains_iter(self, line3):
        assert len(line3) == 3
        assert "A" in line3 and "Z" not in line3
        assert [op.name for op in line3] == ["A", "B", "C"]

    def test_operation_lookup_error(self, line3):
        with pytest.raises(UnknownOperationError):
            line3.operation("Z")

    def test_message_lookup(self, line3):
        assert line3.message("A", "B").size_bits == 8_000
        with pytest.raises(UnknownOperationError):
            line3.message("A", "C")

    def test_neighbors(self, line3):
        assert line3.predecessors("B") == ("A",)
        assert line3.successors("B") == ("C",)
        assert line3.predecessors("A") == ()
        assert line3.successors("C") == ()

    def test_incoming_outgoing(self, line3):
        assert [m.pair for m in line3.incoming("B")] == [("A", "B")]
        assert [m.pair for m in line3.outgoing("B")] == [("B", "C")]

    def test_entries_exits(self, line3):
        assert line3.entries == ("A",)
        assert line3.exits == ("C",)

    def test_total_cycles(self, line3):
        assert line3.total_cycles == 60e6

    def test_is_dag(self, line3):
        assert line3.is_dag()
        line3.connect("C", "A", 1)
        assert not line3.is_dag()


class TestLineDetection:
    def test_line_is_line(self, line3):
        assert line3.is_line()
        assert line3.line_order() == ("A", "B", "C")

    def test_single_operation_is_line(self):
        workflow = Workflow("one")
        workflow.add_operation(Operation("A", 1e6))
        assert workflow.is_line()
        assert workflow.line_order() == ("A",)

    def test_empty_is_not_line(self):
        assert not Workflow("empty").is_line()

    def test_branching_is_not_line(self, line3):
        line3.add_operation(Operation("D", 1e6))
        line3.connect("A", "D", 1)
        assert not line3.is_line()
        with pytest.raises(WorkflowError):
            line3.line_order()

    def test_disconnected_is_not_line(self):
        workflow = Workflow("disc")
        workflow.add_operations([Operation("A", 1e6), Operation("B", 1e6)])
        assert not workflow.is_line()

    def test_xor_diamond_is_not_line(self, xor_diamond):
        assert not xor_diamond.is_line()


class TestTopologicalOrder:
    def test_line_topological_order(self, line3):
        assert line3.topological_order() == ("A", "B", "C")

    def test_cycle_raises(self, line3):
        line3.connect("C", "A", 1)
        with pytest.raises(WorkflowError):
            line3.topological_order()

    def test_diamond_order_respects_edges(self, xor_diamond):
        order = xor_diamond.topological_order()
        position = {name: i for i, name in enumerate(order)}
        for message in xor_diamond.messages:
            assert position[message.source] < position[message.target]


class TestXorValidation:
    def test_valid_diamond_passes(self, xor_diamond):
        xor_diamond.validate_xor_probabilities()

    def test_bad_xor_sum_rejected(self):
        workflow = Workflow("bad")
        workflow.add_operations(
            [
                Operation("x", 1e6, NodeKind.XOR_SPLIT),
                Operation("a", 1e6),
                Operation("b", 1e6),
            ]
        )
        workflow.connect("x", "a", 1, probability=0.5)
        workflow.connect("x", "b", 1, probability=0.2)
        with pytest.raises(WorkflowError):
            workflow.validate_xor_probabilities()

    def test_non_xor_edge_probability_rejected(self):
        workflow = Workflow("bad2")
        workflow.add_operations([Operation("a", 1e6), Operation("b", 1e6)])
        workflow.connect("a", "b", 1, probability=0.5)
        with pytest.raises(WorkflowError):
            workflow.validate_xor_probabilities()


class TestDerivedWorkflows:
    def test_copy_is_independent(self, line3):
        clone = line3.copy("clone")
        clone.add_operation(Operation("D", 1e6))
        assert "D" in clone and "D" not in line3
        assert clone.name == "clone"

    def test_scaled_cycles_and_messages(self, line3):
        scaled = line3.scaled(cycle_factor=2.0, message_factor=0.5)
        assert scaled.operation("A").cycles == 20e6
        assert scaled.message("A", "B").size_bits == 4_000
        # original untouched
        assert line3.operation("A").cycles == 10e6

    def test_decision_fraction(self, xor_diamond):
        # 2 decision nodes (choice, merge) out of 6
        assert xor_diamond.decision_fraction() == pytest.approx(2 / 6)

    def test_summary_keys(self, line3):
        summary = line3.summary()
        assert summary["operations"] == 3
        assert summary["messages"] == 2
        assert summary["is_line"] is True
