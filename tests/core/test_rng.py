"""Unit tests for the shared seed-coercion helper."""

import random

from repro.core.rng import DEFAULT_SEED, coerce_rng


class TestCoerceRng:
    def test_random_instance_passes_through(self):
        rng = random.Random(7)
        assert coerce_rng(rng) is rng

    def test_none_means_the_documented_default_seed(self):
        assert DEFAULT_SEED == 0
        rng = coerce_rng(None)
        stream = [rng.random() for _ in range(5)]
        reference = random.Random(0)
        assert stream == [reference.random() for _ in range(5)]

    def test_none_returns_fresh_generators(self):
        # each call starts a new Random(0) stream, not a shared one
        assert coerce_rng(None) is not coerce_rng(None)
        assert coerce_rng(None).random() == coerce_rng(None).random()

    def test_int_seed_matches_random_random(self):
        for seed in (0, 1, 42, 10**9):
            assert (
                coerce_rng(seed).random() == random.Random(seed).random()
            ), seed

    def test_string_seed_matches_random_random(self):
        # the experiment harness derives per-instance string seeds like
        # f"{seed}:{index}"; the helper must preserve those streams
        for seed in ("0:0", "7:3:HillClimbing", "abc"):
            assert (
                coerce_rng(seed).getrandbits(64)
                == random.Random(seed).getrandbits(64)
            ), seed

    def test_passthrough_continues_the_callers_stream(self):
        rng = random.Random(3)
        rng.random()
        continued = coerce_rng(rng)
        expected = random.Random(3)
        expected.random()
        assert continued.random() == expected.random()
