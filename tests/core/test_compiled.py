"""Unit tests for the compiled problem IR (:mod:`repro.core.compiled`).

The parity property suite (``tests/properties/test_property_compiled``)
pins the numeric behaviour against a pre-refactor oracle; these tests
cover the artifact's structure -- index maps, tables, lazy caches --
and the sharing contract: the cost model, the move evaluators, the
simulation engine and the fleet must all consume the *same*
``CompiledInstance`` object.
"""

import random

import pytest

from repro.core.builder import WorkflowBuilder
from repro.core.compiled import (
    JOIN_MAX,
    JOIN_MIN,
    JOIN_XOR,
    PENALTY_MODES,
    CompiledInstance,
    penalty_statistic,
)
from repro.core.cost import CostModel
from repro.core.incremental import MoveEvaluator, TableScorer
from repro.core.mapping import Deployment
from repro.core.workflow import Message, NodeKind, Operation, Workflow
from repro.exceptions import DeploymentError, UnknownServerError
from repro.network.topology import bus_network
from repro.simulation.engine import SimulationEngine
from repro.service.state import FleetState
from repro.workloads.generator import (
    GraphStructure,
    line_workflow,
    random_bus_network,
    random_graph_workflow,
)


def xor_workflow():
    """start -> XOR(a: 0.75 | b: 0.25) -> join -> end."""
    builder = WorkflowBuilder("compiled-xor", default_message_bits=8e6)
    builder.task("start", 4e9)
    builder.split(NodeKind.XOR_SPLIT, "split", 1e9)
    builder.branch(probability=0.75)
    builder.task("a", 2e9)
    builder.branch(probability=0.25)
    builder.task("b", 6e9)
    builder.join("join", 1e9)
    builder.task("end", 3e9, message_bits=4e6)
    return builder.build()


@pytest.fixture
def instance():
    workflow = xor_workflow()
    network = bus_network((2e9, 3e9, 4e9), speed_bps=1e8)
    return workflow, network, CompiledInstance(workflow, network)


class TestCompilation:
    def test_index_maps_cover_the_instance(self, instance):
        workflow, network, compiled = instance
        assert compiled.op_names == workflow.operation_names
        assert compiled.server_names == network.server_names
        assert [compiled.op_index[n] for n in compiled.op_names] == list(
            range(compiled.num_ops)
        )
        assert tuple(
            compiled.op_names[i] for i in compiled.order
        ) == workflow.topological_order()
        assert {compiled.op_names[i] for i in compiled.exits} == set(
            workflow.exits
        )

    def test_tproc_table_is_cycles_over_power(self, instance):
        workflow, network, compiled = instance
        for i, name in enumerate(compiled.op_names):
            cycles = workflow.operation(name).cycles
            for j, server in enumerate(compiled.server_names):
                expected = cycles / network.server(server).power_hz
                assert compiled.tproc[i][j] == expected

    def test_probability_weighted_arrays(self, instance):
        workflow, _, compiled = instance
        a = compiled.op_index["a"]
        b = compiled.op_index["b"]
        assert compiled.node_prob[a] == pytest.approx(0.75)
        assert compiled.node_prob[b] == pytest.approx(0.25)
        assert compiled.wcycles[a] == compiled.cycles[a] * 0.75
        assert compiled.use_probabilities

    def test_join_codes(self, instance):
        _, _, compiled = instance
        join = compiled.op_index["join"]
        start = compiled.op_index["start"]
        assert compiled.join_code[join] == JOIN_XOR
        assert compiled.join_code[start] == JOIN_MAX
        assert JOIN_MIN not in compiled.join_code  # no OR join here

    def test_ideal_cycles_are_capacity_proportional(self, instance):
        _, network, compiled = instance
        total = compiled.total_weighted_cycles
        for j, server in enumerate(compiled.server_names):
            expected = (
                total
                * network.server(server).power_hz
                / network.total_power_hz
            )
            assert compiled.ideal_cycles[j] == expected

    def test_route_table_fills_lazily_with_affine_coefficients(
        self, instance
    ):
        _, _, compiled = instance
        assert compiled.routes[0][0] == (0.0, 0.0)  # co-located prefill
        assert compiled.routes[0][1] is None  # unresolved until queried
        size = 8e6
        delay = compiled.delay(0, 1, size)
        coeff = compiled.routes[0][1]
        assert coeff is not None and len(coeff) == 2
        assert delay == coeff[0] + size * coeff[1]
        assert delay == compiled.router.transmission_time("S1", "S2", size)
        assert compiled.delay(0, 0, size) == 0.0

    def test_dirty_order_is_descendants_in_topo_order(self, instance):
        workflow, _, compiled = instance
        start = compiled.op_index["start"]
        region = compiled.dirty_order(start)
        assert region[0] == start
        assert len(region) == compiled.num_ops  # start reaches everything
        positions = {op: i for i, op in enumerate(compiled.order)}
        assert list(region) == sorted(region, key=positions.__getitem__)
        end = compiled.op_index["end"]
        assert compiled.dirty_order(end) == (end,)
        assert compiled.dirty_order(start) is region  # memoised

    def test_decision_scopes_span_split_to_join(self, instance):
        _, _, compiled = instance
        scopes = compiled.decision_scopes()
        split = compiled.op_index["split"]
        assert set(scopes) == {split}
        members = {compiled.op_names[i] for i in scopes[split]}
        assert members == {"split", "a", "b", "join"}

    def test_server_index_of_rejects_unknown_servers(self, instance):
        _, _, compiled = instance
        assert compiled.server_index_of("S2") == 1
        with pytest.raises(UnknownServerError):
            compiled.server_index_of("nope")

    def test_validation_matches_cost_model_errors(self):
        workflow = xor_workflow()
        network = bus_network((1e9, 2e9), speed_bps=1e8)
        with pytest.raises(DeploymentError, match="penalty mode"):
            CompiledInstance(workflow, network, penalty_mode="bogus")
        with pytest.raises(DeploymentError, match="weights"):
            CompiledInstance(workflow, network, execution_weight=-1.0)
        cyclic = Workflow("cycle")
        cyclic.add_operation(Operation("A", cycles=1e9))
        cyclic.add_operation(Operation("B", cycles=1e9))
        cyclic.add_transition(Message("A", "B", size_bits=1.0))
        cyclic.add_transition(Message("B", "A", size_bits=1.0))
        with pytest.raises(DeploymentError, match="contains a cycle"):
            CompiledInstance(cyclic, network)

    def test_penalty_statistic_modes(self):
        values = [1.0, 3.0]
        assert penalty_statistic(values, "mad") == 1.0
        assert penalty_statistic(values, "sum_abs") == 2.0
        assert penalty_statistic(values, "max") == 1.0
        assert penalty_statistic(values, "std") == 1.0
        assert penalty_statistic([], "mad") == 0.0
        assert set(PENALTY_MODES) == {"mad", "sum_abs", "max", "std"}


class TestSharing:
    """One artifact per instance: nobody rebuilds Tproc/route tables."""

    def test_cost_model_builds_and_exposes_the_artifact(self, instance):
        workflow, network, _ = instance
        model = CostModel(workflow, network)
        assert isinstance(model.compiled, CompiledInstance)
        assert model.router is model.compiled.router

    def test_from_compiled_shares_instead_of_recompiling(self, instance):
        _, _, compiled = instance
        model = CostModel.from_compiled(compiled)
        assert model.compiled is compiled
        assert model.workflow is compiled.workflow
        assert model.network is compiled.network
        assert model.execution_weight == compiled.execution_weight
        assert model.penalty_mode == compiled.penalty_mode

    def test_evaluators_borrow_the_cost_models_artifact(self, instance):
        workflow, network, _ = instance
        model = CostModel(workflow, network)
        deployment = Deployment.random(
            workflow, network, random.Random(0)
        )
        evaluator = MoveEvaluator(model, deployment)
        scorer = TableScorer(model)
        assert evaluator.compiled is model.compiled
        assert scorer.compiled is model.compiled

    def test_simulation_engine_accepts_a_shared_artifact(self, instance):
        workflow, network, compiled = instance
        deployment = Deployment.random(
            workflow, network, random.Random(0)
        )
        engine = SimulationEngine(
            workflow, network, deployment, compiled=compiled
        )
        assert engine.compiled is compiled
        assert engine.router is compiled.router
        result = engine.run(rng=0)
        assert result.makespan > 0

    def test_simulation_engine_compiles_when_not_given_one(self, instance):
        workflow, network, _ = instance
        deployment = Deployment.random(
            workflow, network, random.Random(0)
        )
        engine = SimulationEngine(workflow, network, deployment)
        assert isinstance(engine.compiled, CompiledInstance)

    def test_simulation_engine_rejects_foreign_artifacts(self, instance):
        workflow, network, _ = instance
        other_workflow = line_workflow(4, seed=1)
        other = CompiledInstance(other_workflow, network)
        deployment = Deployment.random(
            workflow, network, random.Random(0)
        )
        from repro.exceptions import SimulationError

        with pytest.raises(SimulationError, match="does not match"):
            SimulationEngine(
                workflow, network, deployment, compiled=other
            )

    def test_fleet_cost_models_carry_one_artifact_per_tenant(self):
        network = random_bus_network(4, seed=3)
        state = FleetState(network)
        workflow = random_graph_workflow(
            8, GraphStructure.HYBRID, seed=5
        )
        deployment = Deployment.random(
            workflow, network, random.Random(0)
        )
        state.add_tenant("t1", workflow, deployment)
        model = state.cost_model("t1")
        # the cached model is returned again, with the same artifact
        assert state.cost_model("t1") is model
        evaluator = MoveEvaluator(model, deployment)
        assert evaluator.compiled is model.compiled
        assert model.router is state.router

    def test_deterministic_equivalence_between_shared_consumers(
        self, instance
    ):
        workflow, network, compiled = instance
        model = CostModel.from_compiled(compiled)
        deployment = Deployment.random(
            workflow, network, random.Random(2)
        )
        evaluator = MoveEvaluator(model, deployment)
        scorer = TableScorer(model)
        genome = [
            deployment.server_of(name) for name in scorer.operations
        ]
        breakdown = model.evaluate(deployment)
        assert evaluator.objective == breakdown.objective
        assert scorer.objective(genome) == breakdown.objective
