"""Unit tests for the deployment mapping container."""

import random

import pytest

from repro.core.mapping import Deployment
from repro.exceptions import (
    DeploymentError,
    IncompleteMappingError,
    UnknownOperationError,
    UnknownServerError,
)


class TestConstructors:
    def test_all_on_one(self, line3):
        deployment = Deployment.all_on_one(line3, "S1")
        assert deployment.as_dict() == {"A": "S1", "B": "S1", "C": "S1"}

    def test_round_robin(self, line5, bus3):
        deployment = Deployment.round_robin(line5, bus3)
        assert deployment.as_dict() == {
            "O1": "S1",
            "O2": "S2",
            "O3": "S3",
            "O4": "S1",
            "O5": "S2",
        }

    def test_random_is_complete_and_valid(self, line5, bus3, rng):
        deployment = Deployment.random(line5, bus3, rng)
        assert deployment.is_complete(line5)
        assert set(deployment.as_dict().values()) <= set(bus3.server_names)

    def test_random_is_deterministic_per_seed(self, line5, bus3):
        d1 = Deployment.random(line5, bus3, random.Random(7))
        d2 = Deployment.random(line5, bus3, random.Random(7))
        assert d1 == d2

    def test_constructors_reject_empty_network(self, line3):
        from repro.network.topology import ServerNetwork

        with pytest.raises(DeploymentError):
            Deployment.round_robin(line3, ServerNetwork("empty"))


class TestMutation:
    def test_assign_and_move(self):
        deployment = Deployment()
        deployment.assign("A", "S1")
        assert deployment.server_of("A") == "S1"
        deployment.assign("A", "S2")
        assert deployment.server_of("A") == "S2"

    def test_unassign(self):
        deployment = Deployment({"A": "S1"})
        deployment.unassign("A")
        assert "A" not in deployment
        deployment.unassign("A")  # idempotent

    def test_update(self):
        deployment = Deployment({"A": "S1"})
        deployment.update({"B": "S2", "A": "S3"})
        assert deployment.as_dict() == {"A": "S3", "B": "S2"}


class TestQueries:
    def test_server_of_missing_raises(self):
        with pytest.raises(IncompleteMappingError):
            Deployment().server_of("A")

    def test_get_returns_none(self):
        assert Deployment().get("A") is None

    def test_operations_on(self):
        deployment = Deployment({"A": "S1", "B": "S2", "C": "S1"})
        assert deployment.operations_on("S1") == ("A", "C")
        assert deployment.operations_on("S3") == ()

    def test_used_servers_and_occupancy(self):
        deployment = Deployment({"A": "S1", "B": "S2", "C": "S1"})
        assert deployment.used_servers() == ("S1", "S2")
        assert deployment.occupancy() == {"S1": 2, "S2": 1}

    def test_missing_and_is_complete(self, line3):
        deployment = Deployment({"A": "S1"})
        assert not deployment.is_complete(line3)
        assert deployment.missing(line3) == ("B", "C")
        deployment.update({"B": "S1", "C": "S2"})
        assert deployment.is_complete(line3)


class TestValidate:
    def test_valid_passes(self, line3, bus3):
        Deployment.all_on_one(line3, "S1").validate(line3, bus3)

    def test_unknown_operation_rejected(self, line3, bus3):
        deployment = Deployment.all_on_one(line3, "S1")
        deployment.assign("ghost", "S1")
        with pytest.raises(UnknownOperationError):
            deployment.validate(line3, bus3)

    def test_unknown_server_rejected(self, line3, bus3):
        deployment = Deployment.all_on_one(line3, "S9")
        with pytest.raises(UnknownServerError):
            deployment.validate(line3, bus3)

    def test_incomplete_rejected(self, line3, bus3):
        deployment = Deployment({"A": "S1"})
        with pytest.raises(IncompleteMappingError):
            deployment.validate(line3, bus3)


class TestComparison:
    def test_equality_and_hash(self):
        d1 = Deployment({"A": "S1", "B": "S2"})
        d2 = Deployment({"B": "S2", "A": "S1"})
        assert d1 == d2
        assert d1 != Deployment({"A": "S2", "B": "S2"})
        assert d1 != "not a deployment"
        # mutable deployments are deliberately unhashable: a mapping that
        # changes under assign() must never silently corrupt a set/dict
        with pytest.raises(TypeError):
            hash(d1)
        assert hash(d1.frozen()) == hash(d2.frozen())

    def test_frozen_snapshot(self):
        d1 = Deployment({"A": "S1", "B": "S2"})
        snapshot = d1.frozen()
        assert snapshot == d1
        assert dict(snapshot) == {"A": "S1", "B": "S2"}
        assert snapshot.as_dict() == d1.as_dict()
        assert len(snapshot) == 2
        # the snapshot is decoupled from later mutation
        d1.assign("A", "S2")
        assert snapshot != d1
        assert snapshot.thaw() == Deployment({"A": "S1", "B": "S2"})
        # frozen snapshots are usable as dict keys / set members
        seen = {snapshot: 1, d1.frozen(): 2}
        assert len(seen) == 2

    def test_copy_is_independent(self):
        d1 = Deployment({"A": "S1"})
        d2 = d1.copy()
        d2.assign("A", "S2")
        assert d1.server_of("A") == "S1"

    def test_diff(self):
        d1 = Deployment({"A": "S1", "B": "S2"})
        d2 = Deployment({"A": "S1", "B": "S3", "C": "S1"})
        assert d1.diff(d2) == {"B": ("S2", "S3"), "C": (None, "S1")}
        assert d1.diff(d1) == {}

    def test_len_and_iter(self):
        deployment = Deployment({"A": "S1", "B": "S2"})
        assert len(deployment) == 2
        assert dict(iter(deployment)) == {"A": "S1", "B": "S2"}
