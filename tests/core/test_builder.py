"""Unit tests for the fluent workflow builder."""

import pytest

from repro.core.builder import WorkflowBuilder
from repro.core.validation import check_well_formed
from repro.core.workflow import NodeKind
from repro.exceptions import WorkflowError


def test_simple_sequence():
    builder = WorkflowBuilder("seq", default_message_bits=100)
    builder.task("a", 1e6).task("b", 2e6).task("c", 3e6)
    workflow = builder.build()
    assert workflow.is_line()
    assert workflow.line_order() == ("a", "b", "c")
    assert workflow.message("a", "b").size_bits == 100


def test_message_size_override():
    builder = WorkflowBuilder("seq", default_message_bits=100)
    builder.task("a", 1e6)
    builder.task("b", 1e6, message_bits=999)
    workflow = builder.build()
    assert workflow.message("a", "b").size_bits == 999


def test_xor_region_structure(xor_diamond):
    assert xor_diamond.operation("choice").kind is NodeKind.XOR_SPLIT
    assert xor_diamond.operation("merge").kind is NodeKind.XOR_JOIN
    assert set(xor_diamond.successors("choice")) == {"left", "right"}
    assert set(xor_diamond.predecessors("merge")) == {"left", "right"}
    assert xor_diamond.message("choice", "left").probability == 0.7
    assert xor_diamond.message("choice", "right").probability == 0.3


def test_built_workflows_are_well_formed(xor_diamond, and_diamond, or_diamond):
    for workflow in (xor_diamond, and_diamond, or_diamond):
        assert check_well_formed(workflow).ok


def test_nested_regions():
    builder = WorkflowBuilder("nested", default_message_bits=10)
    builder.task("t0", 1e6)
    builder.split(NodeKind.AND_SPLIT, "outer", 1e6)
    builder.branch()
    builder.split(NodeKind.XOR_SPLIT, "inner", 1e6)
    builder.branch(probability=0.5)
    builder.task("i1", 1e6)
    builder.branch(probability=0.5)
    builder.task("i2", 1e6)
    builder.join("inner_end", 1e6)
    builder.branch()
    builder.task("o1", 1e6)
    builder.join("outer_end", 1e6)
    workflow = builder.build()
    report = check_well_formed(workflow)
    assert report.ok
    assert report.matches == {"outer": "outer_end", "inner": "inner_end"}


def test_split_requires_split_kind():
    builder = WorkflowBuilder("bad")
    builder.task("a", 1e6)
    with pytest.raises(WorkflowError):
        builder.split(NodeKind.AND_JOIN, "j", 1e6)
    with pytest.raises(WorkflowError):
        builder.split(NodeKind.OPERATIONAL, "op", 1e6)


def test_task_directly_after_split_rejected():
    builder = WorkflowBuilder("bad")
    builder.task("a", 1e6)
    builder.split(NodeKind.AND_SPLIT, "s", 1e6)
    with pytest.raises(WorkflowError):
        builder.task("oops", 1e6)


def test_branch_without_region_rejected():
    builder = WorkflowBuilder("bad")
    builder.task("a", 1e6)
    with pytest.raises(WorkflowError):
        builder.branch()


def test_join_without_region_rejected():
    builder = WorkflowBuilder("bad")
    builder.task("a", 1e6)
    with pytest.raises(WorkflowError):
        builder.join("j", 1e6)


def test_join_without_branches_rejected():
    builder = WorkflowBuilder("bad")
    builder.task("a", 1e6)
    builder.split(NodeKind.AND_SPLIT, "s", 1e6)
    with pytest.raises(WorkflowError):
        builder.join("j", 1e6)


def test_empty_branch_rejected():
    builder = WorkflowBuilder("bad")
    builder.task("a", 1e6)
    builder.split(NodeKind.AND_SPLIT, "s", 1e6)
    builder.branch()
    with pytest.raises(WorkflowError):
        builder.branch()  # first branch is still empty


def test_probability_on_non_xor_branch_rejected():
    builder = WorkflowBuilder("bad")
    builder.task("a", 1e6)
    builder.split(NodeKind.AND_SPLIT, "s", 1e6)
    with pytest.raises(WorkflowError):
        builder.branch(probability=0.5)


def test_xor_probabilities_must_sum_to_one():
    builder = WorkflowBuilder("bad")
    builder.task("a", 1e6)
    builder.split(NodeKind.XOR_SPLIT, "x", 1e6)
    builder.branch(probability=0.5)
    builder.task("b", 1e6)
    builder.branch(probability=0.2)
    builder.task("c", 1e6)
    with pytest.raises(WorkflowError):
        builder.join("xe", 1e6)


def test_unclosed_region_rejected_at_build():
    builder = WorkflowBuilder("bad")
    builder.task("a", 1e6)
    builder.split(NodeKind.AND_SPLIT, "s", 1e6)
    builder.branch()
    builder.task("b", 1e6)
    with pytest.raises(WorkflowError):
        builder.build()


def test_empty_build_rejected():
    with pytest.raises(WorkflowError):
        WorkflowBuilder("empty").build()


def test_double_build_rejected():
    builder = WorkflowBuilder("once")
    builder.task("a", 1e6)
    builder.build()
    with pytest.raises(WorkflowError):
        builder.build()


def test_append_after_build_rejected():
    builder = WorkflowBuilder("done")
    builder.task("a", 1e6)
    builder.build()
    with pytest.raises(WorkflowError):
        builder.task("b", 1e6)


def test_negative_default_message_bits_rejected():
    with pytest.raises(WorkflowError):
        WorkflowBuilder("bad", default_message_bits=-1)
