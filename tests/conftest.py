"""Shared fixtures: small canonical workflows, networks and cost models."""

from __future__ import annotations

import random

import pytest

from repro.core.builder import WorkflowBuilder
from repro.core.cost import CostModel
from repro.core.workflow import Message, NodeKind, Operation, Workflow
from repro.network.topology import (
    Server,
    ServerNetwork,
    bus_network,
    line_network,
)


@pytest.fixture
def rng():
    """A deterministic RNG for tests that need randomness."""
    return random.Random(12345)


@pytest.fixture
def line3():
    """A 3-operation line workflow with distinct costs and message sizes.

    ``A(10M) -[8k]-> B(20M) -[16k]-> C(30M)``
    """
    workflow = Workflow("line3")
    workflow.add_operations(
        [Operation("A", 10e6), Operation("B", 20e6), Operation("C", 30e6)]
    )
    workflow.connect("A", "B", 8_000)
    workflow.connect("B", "C", 16_000)
    return workflow


@pytest.fixture
def line5():
    """A 5-operation uniform line workflow (10M cycles, 10k-bit messages)."""
    workflow = Workflow("line5")
    names = ["O1", "O2", "O3", "O4", "O5"]
    workflow.add_operations(Operation(n, 10e6) for n in names)
    for a, b in zip(names, names[1:]):
        workflow.connect(a, b, 10_000)
    return workflow


@pytest.fixture
def xor_diamond():
    """A diamond with one XOR region (70/30 branches).

    ``start -> xor -> (left | right) -> /xor -> end``
    """
    builder = WorkflowBuilder("xor-diamond", default_message_bits=8_000)
    builder.task("start", 10e6)
    builder.split(NodeKind.XOR_SPLIT, "choice", 1e6)
    builder.branch(probability=0.7)
    builder.task("left", 20e6)
    builder.branch(probability=0.3)
    builder.task("right", 40e6)
    builder.join("merge", 1e6)
    builder.task("end", 10e6)
    return builder.build()


@pytest.fixture
def and_diamond():
    """A diamond with one AND region (both branches execute)."""
    builder = WorkflowBuilder("and-diamond", default_message_bits=8_000)
    builder.task("start", 10e6)
    builder.split(NodeKind.AND_SPLIT, "fork", 1e6)
    builder.branch()
    builder.task("left", 20e6)
    builder.branch()
    builder.task("right", 40e6)
    builder.join("join", 1e6)
    builder.task("end", 10e6)
    return builder.build()


@pytest.fixture
def or_diamond():
    """A diamond with one OR region (first branch to finish wins)."""
    builder = WorkflowBuilder("or-diamond", default_message_bits=8_000)
    builder.task("start", 10e6)
    builder.split(NodeKind.OR_SPLIT, "race", 1e6)
    builder.branch()
    builder.task("fast", 5e6)
    builder.branch()
    builder.task("slow", 500e6)
    builder.join("first", 1e6)
    builder.task("end", 10e6)
    return builder.build()


@pytest.fixture
def bus3():
    """A 3-server uniform bus: powers 1/2/3 GHz, 100 Mbps."""
    return bus_network([1e9, 2e9, 3e9], speed_bps=100e6)


@pytest.fixture
def bus5():
    """A 5-server uniform bus: mixed powers, 100 Mbps."""
    return bus_network([1e9, 2e9, 2e9, 3e9, 2e9], speed_bps=100e6)


@pytest.fixture
def slow_bus3():
    """A congested 3-server bus (1 Mbps) where communication dominates."""
    return bus_network([1e9, 2e9, 3e9], speed_bps=1e6)


@pytest.fixture
def chain3():
    """A 3-server line network with heterogeneous link speeds."""
    return line_network([1e9, 2e9, 3e9], speeds_bps=[10e6, 100e6])


@pytest.fixture
def pareto_triple():
    """Three disjoint A-B routes with a *third* Pareto-optimal path.

    Min-propagation via ``x`` (1 s + 2e-6 s/bit), min-transfer via
    ``y`` (10 s + 2e-9 s/bit), and a middle route via ``z``
    (4 s + 5e-7 s/bit) that wins only at intermediate sizes (6.5 s at
    5e6 bits, vs 11 s via x and 10.01 s via y) -- so the sized optimum
    of the size-dependent (A, B) pair crosses links on *neither* of its
    classification paths. The scoped-invalidation regression trigger.
    """
    network = ServerNetwork("pareto-triple")
    network.add_servers(
        [Server(name, 1e9) for name in ("A", "x", "y", "z", "B")]
    )
    network.connect("A", "x", 1e6, propagation_s=0.5)
    network.connect("x", "B", 1e6, propagation_s=0.5)
    network.connect("A", "y", 1e9, propagation_s=5.0)
    network.connect("y", "B", 1e9, propagation_s=5.0)
    network.connect("A", "z", 4e6, propagation_s=2.0)
    network.connect("z", "B", 4e6, propagation_s=2.0)
    return network


@pytest.fixture
def cost_line3_bus3(line3, bus3):
    """Cost model for the (line3, bus3) instance."""
    return CostModel(line3, bus3)
