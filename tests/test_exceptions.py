"""Unit tests for the exception hierarchy.

A caller catching :class:`ReproError` must catch everything the library
raises; the layer-specific bases must partition the subclasses sensibly.
"""

import inspect

import pytest

from repro import exceptions


def all_exception_classes():
    return [
        obj
        for _, obj in inspect.getmembers(exceptions, inspect.isclass)
        if issubclass(obj, Exception) and obj.__module__ == "repro.exceptions"
    ]


def test_everything_derives_from_repro_error():
    for cls in all_exception_classes():
        assert issubclass(cls, exceptions.ReproError), cls


@pytest.mark.parametrize(
    "child,parent",
    [
        (exceptions.MalformedWorkflowError, exceptions.WorkflowError),
        (exceptions.UnknownOperationError, exceptions.WorkflowError),
        (exceptions.DuplicateOperationError, exceptions.WorkflowError),
        (exceptions.DuplicateTransitionError, exceptions.WorkflowError),
        (exceptions.UnknownServerError, exceptions.NetworkError),
        (exceptions.DuplicateServerError, exceptions.NetworkError),
        (exceptions.DisconnectedNetworkError, exceptions.NetworkError),
        (exceptions.IncompleteMappingError, exceptions.DeploymentError),
        (exceptions.ConstraintViolationError, exceptions.DeploymentError),
        (exceptions.UnsupportedTopologyError, exceptions.AlgorithmError),
        (exceptions.SearchSpaceTooLargeError, exceptions.AlgorithmError),
    ],
)
def test_layer_hierarchy(child, parent):
    assert issubclass(child, parent)


def test_codec_error_is_a_repro_error():
    from repro.io.json_codec import CodecError

    assert issubclass(CodecError, exceptions.ReproError)


def test_catching_base_catches_library_raises(line3, bus3):
    """End-to-end: a representative raise from each layer is caught."""
    from repro.core.mapping import Deployment
    from repro.core.cost import CostModel

    with pytest.raises(exceptions.ReproError):
        line3.operation("nope")
    with pytest.raises(exceptions.ReproError):
        bus3.server("nope")
    with pytest.raises(exceptions.ReproError):
        CostModel(line3, bus3).loads(Deployment())
