"""Property tests: the incremental engine tracks the full cost model.

Two guarantees are exercised here:

* **equivalence** -- over random instances (line and graph structure,
  XOR probabilities, every fairness statistic) and random move
  sequences, :class:`MoveEvaluator` and :class:`TableScorer` agree with
  ``CostModel.evaluate`` to within ``1e-9``;
* **regression** -- the seeded local-search algorithms return the exact
  same deployment whether they price moves incrementally or with the
  pre-existing full evaluation, so the rewiring cannot have changed any
  published experiment.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.local_search import HillClimbing, SimulatedAnnealing
from repro.core.cost import PENALTY_MODES, CostModel
from repro.core.incremental import MoveEvaluator, TableScorer
from repro.core.mapping import Deployment
from repro.workloads.generator import (
    GraphStructure,
    line_workflow,
    random_bus_network,
    random_graph_workflow,
)

TOLERANCE = 1e-9

sizes = st.integers(min_value=2, max_value=18)
server_counts = st.integers(min_value=1, max_value=6)
seeds = st.integers(min_value=0, max_value=10_000)
structures = st.sampled_from([None] + list(GraphStructure))
modes = st.sampled_from(PENALTY_MODES)


def instance(size, servers, seed, structure, mode):
    if structure is None:
        workflow = line_workflow(size, seed=seed)
    else:
        # graph structures introduce decision nodes, including XOR splits
        # whose branch probabilities weight the cost model
        workflow = random_graph_workflow(size, structure, seed=seed)
    network = random_bus_network(servers, seed=seed + 1)
    model = CostModel(workflow, network, penalty_mode=mode)
    deployment = Deployment.random(workflow, network, random.Random(seed))
    return workflow, network, model, deployment


def assert_in_sync(evaluator, model, deployment):
    full = model.evaluate(deployment)
    assert abs(evaluator.objective - full.objective) <= TOLERANCE
    assert abs(evaluator.execution_time - full.execution_time) <= TOLERANCE
    assert abs(evaluator.time_penalty - full.time_penalty) <= TOLERANCE


@given(
    size=sizes,
    servers=server_counts,
    seed=seeds,
    structure=structures,
    mode=modes,
)
@settings(max_examples=60, deadline=None)
def test_move_evaluator_tracks_cost_model(size, servers, seed, structure, mode):
    workflow, network, model, deployment = instance(
        size, servers, seed, structure, mode
    )
    evaluator = MoveEvaluator(model, deployment)
    assert_in_sync(evaluator, model, deployment)
    rng = random.Random(seed + 2)
    operations = workflow.operation_names
    servers_list = network.server_names
    for _ in range(15):
        operation = rng.choice(operations)
        server = rng.choice(servers_list)
        outcome = evaluator.propose(operation, server)
        # the priced move equals a from-scratch evaluation of the move
        trial = deployment.copy()
        trial.assign(operation, server)
        trial_cost = model.evaluate(trial)
        assert abs(outcome.objective - trial_cost.objective) <= TOLERANCE
        assert (
            abs(outcome.execution_time - trial_cost.execution_time)
            <= TOLERANCE
        )
        assert abs(outcome.time_penalty - trial_cost.time_penalty) <= TOLERANCE
        # commit roughly half the proposals and re-check the running state
        if rng.random() < 0.5 and server != outcome.previous_server:
            evaluator.commit()
            assert_in_sync(evaluator, model, deployment)


@given(
    size=sizes,
    servers=server_counts,
    seed=seeds,
    structure=structures,
    mode=modes,
)
@settings(max_examples=60, deadline=None)
def test_table_scorer_tracks_cost_model(size, servers, seed, structure, mode):
    workflow, network, model, _ = instance(size, servers, seed, structure, mode)
    scorer = TableScorer(model)
    rng = random.Random(seed + 3)
    servers_list = network.server_names
    for _ in range(5):
        genome = tuple(rng.choice(servers_list) for _ in scorer.operations)
        execution, penalty, objective = scorer.components(genome)
        full = model.evaluate(
            Deployment(dict(zip(scorer.operations, genome)))
        )
        assert abs(execution - full.execution_time) <= TOLERANCE
        assert abs(penalty - full.time_penalty) <= TOLERANCE
        assert abs(objective - full.objective) <= TOLERANCE


@given(size=sizes, servers=server_counts, seed=seeds, mode=modes)
@settings(max_examples=40, deadline=None)
def test_frequent_resync_changes_nothing(size, servers, seed, mode):
    # resyncing after every commit must be observationally identical to
    # the default interval -- it only re-derives the same state
    workflow, network, model, deployment = instance(
        size, servers, seed, None, mode
    )
    evaluator = MoveEvaluator(model, deployment, resync_interval=1)
    rng = random.Random(seed + 4)
    for _ in range(10):
        evaluator.apply(
            rng.choice(workflow.operation_names),
            rng.choice(network.server_names),
        )
    assert_in_sync(evaluator, model, deployment)


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("structure", [None, GraphStructure.HYBRID])
def test_hill_climbing_unchanged_by_incremental_pricing(seed, structure):
    if structure is None:
        workflow = line_workflow(9, seed=seed)
    else:
        workflow = random_graph_workflow(12, structure, seed=seed)
    network = random_bus_network(4, seed=seed + 50)
    model = CostModel(workflow, network)
    results = {}
    for incremental in (True, False):
        algorithm = HillClimbing(use_incremental=incremental)
        deployment = algorithm.deploy(
            workflow, network, cost_model=model, rng=random.Random(seed)
        )
        results[incremental] = deployment.as_dict()
    assert results[True] == results[False]


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("structure", [None, GraphStructure.BUSHY])
def test_simulated_annealing_unchanged_by_incremental_pricing(seed, structure):
    if structure is None:
        workflow = line_workflow(9, seed=seed)
    else:
        workflow = random_graph_workflow(12, structure, seed=seed)
    network = random_bus_network(4, seed=seed + 70)
    model = CostModel(workflow, network)
    results = {}
    for incremental in (True, False):
        algorithm = SimulatedAnnealing(
            steps=400, use_incremental=incremental
        )
        deployment = algorithm.deploy(
            workflow, network, cost_model=model, rng=random.Random(seed)
        )
        results[incremental] = deployment.as_dict()
    assert results[True] == results[False]
