"""Property-based tests: serialization round-trips over random instances."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import CostModel
from repro.core.mapping import Deployment
from repro.io.json_codec import (
    deployment_from_dict,
    deployment_to_dict,
    network_from_dict,
    network_to_dict,
    workflow_from_dict,
    workflow_to_dict,
)
from repro.workloads.generator import (
    GraphStructure,
    line_workflow,
    random_bus_network,
    random_graph_workflow,
    random_line_network,
)

sizes = st.integers(min_value=1, max_value=25)
server_counts = st.integers(min_value=1, max_value=6)
seeds = st.integers(min_value=0, max_value=10_000)
structures = st.sampled_from(list(GraphStructure))


@given(size=sizes, seed=seeds, structure=structures)
@settings(max_examples=40, deadline=None)
def test_workflow_round_trip_is_identity(size, seed, structure):
    workflow = random_graph_workflow(size, structure, seed=seed)
    restored = workflow_from_dict(workflow_to_dict(workflow))
    assert restored.name == workflow.name
    assert restored.operation_names == workflow.operation_names
    for original, copy in zip(workflow.operations, restored.operations):
        assert original == copy
    assert restored.messages == workflow.messages


@given(servers=server_counts, seed=seeds, line=st.booleans())
@settings(max_examples=40, deadline=None)
def test_network_round_trip_is_identity(servers, seed, line):
    if line:
        network = random_line_network(servers, seed=seed)
    else:
        network = random_bus_network(servers, seed=seed)
    restored = network_from_dict(network_to_dict(network))
    assert restored.name == network.name
    assert restored.topology_kind == network.topology_kind
    assert restored.servers == network.servers
    assert restored.links == network.links


@given(size=sizes, servers=server_counts, seed=seeds)
@settings(max_examples=40, deadline=None)
def test_costs_invariant_under_round_trip(size, servers, seed):
    """The decisive property: serialisation never changes the physics."""
    workflow = line_workflow(size, seed=seed)
    network = random_bus_network(servers, seed=seed + 1)
    deployment = Deployment.random(workflow, network, random.Random(seed))

    restored_workflow = workflow_from_dict(workflow_to_dict(workflow))
    restored_network = network_from_dict(network_to_dict(network))
    restored_deployment = deployment_from_dict(
        deployment_to_dict(deployment)
    )

    before = CostModel(workflow, network).evaluate(deployment)
    after = CostModel(restored_workflow, restored_network).evaluate(
        restored_deployment
    )
    assert after.execution_time == before.execution_time
    assert after.time_penalty == before.time_penalty
    assert after.objective == before.objective
