"""Property-based tests: cost-model invariants over random instances."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import CostModel
from repro.core.mapping import Deployment
from repro.workloads.generator import (
    GraphStructure,
    line_workflow,
    random_bus_network,
    random_graph_workflow,
)

sizes = st.integers(min_value=1, max_value=25)
server_counts = st.integers(min_value=1, max_value=6)
seeds = st.integers(min_value=0, max_value=10_000)
structures = st.sampled_from(list(GraphStructure))


def instance(size, servers, seed, structure=None):
    if structure is None:
        workflow = line_workflow(size, seed=seed)
    else:
        workflow = random_graph_workflow(size, structure, seed=seed)
    network = random_bus_network(servers, seed=seed + 1)
    return workflow, network, CostModel(workflow, network)


@given(size=sizes, servers=server_counts, seed=seeds, structure=structures)
@settings(max_examples=50, deadline=None)
def test_costs_are_finite_and_nonnegative(size, servers, seed, structure):
    workflow, network, model = instance(size, servers, seed, structure)
    deployment = Deployment.random(workflow, network, random.Random(seed))
    breakdown = model.evaluate(deployment)
    assert breakdown.execution_time > 0
    assert breakdown.time_penalty >= 0
    assert breakdown.processing_time > 0
    assert breakdown.communication_time >= 0
    assert breakdown.objective == (
        0.5 * breakdown.execution_time + 0.5 * breakdown.time_penalty
    )


@given(size=sizes, servers=server_counts, seed=seeds)
@settings(max_examples=50, deadline=None)
def test_colocating_everything_removes_communication(size, servers, seed):
    workflow, network, model = instance(size, servers, seed)
    server = network.server_names[0]
    deployment = Deployment.all_on_one(workflow, server)
    assert model.total_communication_time(deployment) == 0.0
    # for a line, Texecute then equals the server's load (same quantity
    # accumulated in different order, hence the float tolerance)
    execution = model.execution_time(deployment)
    load = model.loads(deployment)[server]
    assert abs(execution - load) <= 1e-12 * max(1.0, execution)


@given(size=sizes, servers=server_counts, seed=seeds, structure=structures)
@settings(max_examples=50, deadline=None)
def test_loads_sum_to_total_weighted_work(size, servers, seed, structure):
    workflow, network, model = instance(size, servers, seed, structure)
    deployment = Deployment.random(workflow, network, random.Random(seed))
    loads = model.loads(deployment)
    # invariant: sum over servers of load * power == total weighted cycles
    recovered = sum(
        loads[s.name] * s.power_hz for s in network
    )
    assert abs(recovered - model.total_weighted_cycles()) <= 1e-3


@given(size=sizes, servers=server_counts, seed=seeds)
@settings(max_examples=50, deadline=None)
def test_ideal_cycles_partition_the_total(size, servers, seed):
    _, network, model = instance(size, servers, seed)
    total = sum(model.ideal_cycles(name) for name in network.server_names)
    assert abs(total - model.total_weighted_cycles()) <= 1e-3


@given(size=sizes, servers=server_counts, seed=seeds)
@settings(max_examples=40, deadline=None)
def test_scaling_cycles_scales_line_execution(size, servers, seed):
    workflow, network, model = instance(size, servers, seed)
    server = network.server_names[0]
    deployment = Deployment.all_on_one(workflow, server)
    base = model.execution_time(deployment)
    scaled_model = CostModel(workflow.scaled(cycle_factor=3.0), network)
    assert abs(scaled_model.execution_time(deployment) - 3.0 * base) <= (
        1e-9 * max(1.0, base)
    )


@given(size=sizes, servers=server_counts, seed=seeds)
@settings(max_examples=40, deadline=None)
def test_penalty_zero_iff_loads_equal(size, servers, seed):
    workflow, network, model = instance(size, servers, seed)
    deployment = Deployment.random(workflow, network, random.Random(seed))
    loads = list(model.loads(deployment).values())
    penalty = model.time_penalty(deployment)
    spread = max(loads) - min(loads)
    if spread <= 1e-15:
        assert penalty <= 1e-15
    else:
        assert penalty > 0


@given(size=sizes, servers=server_counts, seed=seeds, structure=structures)
@settings(max_examples=40, deadline=None)
def test_execution_time_at_least_entry_to_exit_processing(
    size, servers, seed, structure
):
    """Texecute can never undercut the fastest server's take on any
    certain-execution chain operation."""
    workflow, network, model = instance(size, servers, seed, structure)
    deployment = Deployment.random(workflow, network, random.Random(seed))
    fastest = max(s.power_hz for s in network)
    certain_ops = [
        op for op in workflow if model.node_probability(op.name) >= 1.0
    ]
    lower_bound = max(
        (op.cycles / fastest for op in certain_ops), default=0.0
    )
    assert model.execution_time(deployment) >= lower_bound - 1e-12


@given(size=sizes, servers=server_counts, seed=seeds)
@settings(max_examples=30, deadline=None)
def test_slower_bus_never_speeds_up_a_line(size, servers, seed):
    from repro.workloads.parameters import ClassCParameters

    workflow = line_workflow(size, seed=seed)
    fast = random_bus_network(
        servers,
        seed=seed + 1,
        parameters=ClassCParameters.paper().with_fixed_bus_speed(1000e6),
    )
    slow = random_bus_network(
        servers,
        seed=seed + 1,
        parameters=ClassCParameters.paper().with_fixed_bus_speed(1e6),
    )
    deployment = Deployment.random(workflow, fast, random.Random(seed))
    fast_time = CostModel(workflow, fast).execution_time(deployment)
    slow_time = CostModel(workflow, slow).execution_time(deployment)
    assert slow_time >= fast_time - 1e-12
