"""Property tests: the transition-aware objective refactor is safe.

Two contracts across random instances (workflows, bus networks,
penalty modes, baselines and candidate deployments):

**Frozen oracle (weight 0).** Configuring a
:class:`~repro.core.migration.MigrationCostModel` with
``migration_weight == 0`` must be *byte-identical* to the pre-refactor
scalar -- every ``evaluate``/``objective`` float and every vectorized
batch row compares with ``==``, not a tolerance, because the migration
term is gated out before any floating-point operation happens.

**Four-way exact parity (weight > 0).** When the objective *is*
transition-aware, :class:`~repro.core.cost.CostModel`,
:class:`~repro.core.incremental.TableScorer`,
:class:`~repro.core.batch.BatchEvaluator` and
:meth:`~repro.core.compiled.CompiledInstance.components` must agree
exactly on every component including the migration term;
:class:`~repro.core.incremental.MoveEvaluator` agrees to within its
documented running-sum drift and exactly on the migration term (whose
O(1) per-move delta is a table-row subtraction, re-verified here
against the from-scratch sum after every move).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import BatchEvaluator
from repro.core.cost import PENALTY_MODES, CostModel
from repro.core.incremental import MoveEvaluator, TableScorer
from repro.core.mapping import Deployment
from repro.core.migration import MigrationCostModel, TransitionObjective
from repro.workloads.generator import (
    line_workflow,
    random_bus_network,
    random_graph_workflow,
)

TOLERANCE = 1e-9

sizes = st.integers(min_value=2, max_value=12)
server_counts = st.integers(min_value=2, max_value=5)
seeds = st.integers(min_value=0, max_value=10_000)
modes = st.sampled_from(PENALTY_MODES)


def _instance(size, servers, seed):
    """A random (workflow, network, rng) triple; graphs on odd seeds."""
    rng = random.Random(seed)
    if seed % 2:
        workflow = random_graph_workflow(size, seed=rng.randrange(2**31))
    else:
        workflow = line_workflow(size, seed=rng.randrange(2**31))
    network = random_bus_network(servers, seed=rng.randrange(2**31))
    return workflow, network, rng


def _model(rng):
    return MigrationCostModel(
        state_bits_per_cycle=rng.uniform(0.0, 0.5),
        state_bits_base=rng.uniform(0.0, 1e6),
        downtime_s=rng.uniform(0.0, 0.05),
    )


@settings(max_examples=40, deadline=None)
@given(sizes, server_counts, seeds, modes)
def test_weight_zero_is_byte_identical(size, servers, seed, mode):
    """A weight-0 migration model must not change one output bit."""
    workflow, network, rng = _instance(size, servers, seed)
    baseline = Deployment.random(workflow, network, rng)
    spec = TransitionObjective(
        penalty_mode=mode,
        migration_weight=0.0,
        migration=_model(rng),
        baseline=baseline,
    )
    plain = CostModel(workflow, network, penalty_mode=mode)
    gated = CostModel(workflow, network, objective=spec)
    assert not gated.compiled.transition_aware
    assert gated.compiled.migration_table is None

    candidates = [
        Deployment.random(workflow, network, rng) for _ in range(5)
    ]
    for deployment in candidates:
        a = plain.evaluate(deployment)
        b = gated.evaluate(deployment)
        assert b.execution_time == a.execution_time
        assert b.time_penalty == a.time_penalty
        assert b.objective == a.objective
        assert b.migration_cost == 0.0
        assert plain.objective(deployment) == gated.objective(deployment)

    index = gated.compiled.server_index
    batch = [
        [index[d.server_of(name)] for name in gated.compiled.op_names]
        for d in candidates
    ]
    scores_plain = BatchEvaluator(plain.compiled).evaluate(batch)
    scores_gated = BatchEvaluator(gated.compiled).evaluate(batch)
    assert scores_gated.migration is None
    assert list(scores_gated.objective) == list(scores_plain.objective)


@settings(max_examples=40, deadline=None)
@given(sizes, server_counts, seeds, modes)
def test_transition_aware_four_way_parity(size, servers, seed, mode):
    """Every evaluator prices the same migration term, exactly."""
    workflow, network, rng = _instance(size, servers, seed)
    baseline = Deployment.random(workflow, network, rng)
    spec = TransitionObjective(
        penalty_mode=mode,
        migration_weight=rng.uniform(0.05, 2.0),
        migration=_model(rng),
        baseline=baseline,
    )
    model = CostModel(workflow, network, objective=spec)
    compiled = model.compiled
    assert compiled.transition_aware
    scorer = TableScorer(model)
    index = compiled.server_index

    # the baseline placement never pays a migration cost
    assert (
        compiled.migration_cost(
            [index[baseline.server_of(name)] for name in compiled.op_names]
        )
        == 0.0
    )

    candidates = [
        Deployment.random(workflow, network, rng) for _ in range(5)
    ]
    rows = []
    for deployment in candidates:
        servers_vec = [
            index[deployment.server_of(name)] for name in compiled.op_names
        ]
        rows.append(servers_vec)
        execution, penalty, objective = compiled.components(servers_vec)
        migration = compiled.migration_cost(servers_vec)

        result = model.evaluate(deployment)
        assert result.execution_time == execution
        assert result.time_penalty == penalty
        assert result.objective == objective
        assert result.migration_cost == migration
        assert model.objective(deployment) == objective

        genome = [deployment.server_of(name) for name in scorer.operations]
        assert scorer.components(genome) == (execution, penalty, objective)

    scores = BatchEvaluator(compiled).evaluate(rows)
    for k, deployment in enumerate(candidates):
        reference = model.evaluate(deployment)
        assert scores.execution[k] == reference.execution_time
        assert scores.penalty[k] == reference.time_penalty
        assert scores.objective[k] == reference.objective
        assert scores.migration[k] == reference.migration_cost


@settings(max_examples=25, deadline=None)
@given(sizes, server_counts, seeds, modes)
def test_move_evaluator_migration_delta_is_exact(size, servers, seed, mode):
    """The O(1) migration delta equals the from-scratch table sum."""
    workflow, network, rng = _instance(size, servers, seed)
    baseline = Deployment.random(workflow, network, rng)
    spec = TransitionObjective(
        penalty_mode=mode,
        migration_weight=rng.uniform(0.05, 2.0),
        migration=_model(rng),
        baseline=baseline,
    )
    model = CostModel(workflow, network, objective=spec)
    compiled = model.compiled
    index = compiled.server_index
    deployment = Deployment(baseline.as_dict())
    evaluator = MoveEvaluator(model, deployment)
    assert evaluator.breakdown().migration_cost == 0.0

    names = list(compiled.op_names)
    server_names = network.server_names
    for _ in range(8):
        operation = rng.choice(names)
        target = rng.choice(server_names)
        outcome = evaluator.apply(operation, target)
        servers_vec = [
            index[deployment.server_of(name)] for name in compiled.op_names
        ]
        scratch = compiled.migration_cost(servers_vec)
        # migration is a plain table sum, immune to running-sum drift:
        # the incremental delta must land within one float rounding
        assert abs(outcome.migration_cost - scratch) <= TOLERANCE * max(
            1.0, scratch
        )
        reference = model.evaluate(deployment)
        assert abs(outcome.objective - reference.objective) <= (
            TOLERANCE * max(1.0, abs(reference.objective))
        )
