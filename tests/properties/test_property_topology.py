"""Property tests: heterogeneous routing parity and route invalidation.

The frozen-oracle contract of the real-topology layer:

* **Four-way parity** -- ``CostModel.evaluate``,
  ``MoveEvaluator.propose``, ``TableScorer.components`` and the
  ``BatchEvaluator`` kernel price the same mapping identically (within
  ``1e-9``) on genuinely heterogeneous, multi-hop networks: the bundled
  Abilene backbone, seeded geo-region fleets, and parsed SNDlib-style
  topologies. All four consume the one shared
  ``CompiledInstance.routes`` table, so any drift between them means
  someone grew a private routing model.
* **Invalidation equals recompilation** -- after an in-place link
  change (degrade/upgrade/removal), ``invalidate_routes()`` must make
  the existing compiled instance price every mapping exactly like a
  fresh ``CompiledInstance`` built from the modified network; and on an
  *unchanged* network it must be a perfect no-op.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiled import PENALTY_MODES, CompiledInstance
from repro.core.cost import CostModel
from repro.core.incremental import MoveEvaluator, TableScorer
from repro.core.mapping import Deployment
from repro.exceptions import DeploymentError
from repro.network.topology import Link, Server
from repro.scenarios import abilene_network, parse_topology, random_geo_network
from repro.workloads.generator import (
    GraphStructure,
    line_workflow,
    random_graph_workflow,
)

TOLERANCE = 1e-9

sizes = st.integers(min_value=2, max_value=14)
seeds = st.integers(min_value=0, max_value=10_000)
structures = st.sampled_from([None, GraphStructure.HYBRID])
modes = st.sampled_from(PENALTY_MODES)

TRIANGLE = """
NODES (
  A ( -74.0 40.7 )
  B ( -87.6 41.9 )
  C ( -118.2 34.1 )
)
LINKS (
  L1 ( A B ) 100.0
  L2 ( B C ) 20.0
  L3 ( C A ) 5.0 40.0
)
"""


def make_workflow(size, seed, structure):
    if structure is None:
        return line_workflow(size, seed=seed)
    return random_graph_workflow(size, structure, seed=seed)


def make_network(kind, seed):
    if kind == "abilene":
        network = abilene_network()
        rng = random.Random(seed)
        for name in network.server_names:
            network.replace_server(Server(name, rng.uniform(1e9, 4e9)))
        return network
    if kind == "geo":
        return random_geo_network(3, servers_per_region=2, seed=seed)
    return parse_topology(TRIANGLE, name="triangle")


def random_rows(rng, operations, servers, count):
    return [
        [rng.randrange(len(servers)) for _ in operations]
        for _ in range(count)
    ]


@given(
    size=sizes,
    seed=seeds,
    structure=structures,
    mode=modes,
    kind=st.sampled_from(["abilene", "geo", "sndlib"]),
)
@settings(max_examples=30, deadline=None)
def test_four_way_parity_on_heterogeneous_networks(
    size, seed, structure, mode, kind
):
    workflow = make_workflow(size, seed, structure)
    network = make_network(kind, seed)
    model = CostModel(workflow, network, penalty_mode=mode)
    compiled = model.compiled
    scorer = TableScorer(model)
    batch = compiled.batch_evaluator()
    rng = random.Random(seed + 7)
    servers = network.server_names
    rows = random_rows(rng, compiled.op_names, servers, 4)
    scores = batch.evaluate(rows).objective
    for row, score in zip(rows, scores):
        genome = tuple(servers[index] for index in row)
        deployment = Deployment(
            dict(zip(compiled.op_names, genome))
        )
        oracle = model.evaluate(deployment)
        # batch kernel vs full model
        assert abs(score - oracle.objective) <= TOLERANCE
        # table scorer vs full model
        execution, penalty, objective = scorer.components(genome)
        assert abs(execution - oracle.execution_time) <= TOLERANCE
        assert abs(penalty - oracle.time_penalty) <= TOLERANCE
        assert abs(objective - oracle.objective) <= TOLERANCE
        # move evaluator vs full model: re-price one random move
        evaluator = MoveEvaluator(model, deployment.copy())
        operation = rng.choice(compiled.op_names)
        target = rng.choice(servers)
        outcome = evaluator.propose(operation, target)
        trial = deployment.copy()
        trial.assign(operation, target)
        trial_cost = model.evaluate(trial)
        assert abs(outcome.objective - trial_cost.objective) <= TOLERANCE


@given(size=sizes, seed=seeds, mode=modes)
@settings(max_examples=25, deadline=None)
def test_invalidate_routes_equals_fresh_recompile(size, seed, mode):
    workflow = make_workflow(size, seed, None)
    network = make_network("abilene", seed)
    compiled = CompiledInstance(workflow, network, penalty_mode=mode)
    rng = random.Random(seed + 11)
    rows = random_rows(
        rng, compiled.op_names, network.server_names, 3
    )
    # warm the lazy route table so stale state would actually bite
    for row in rows:
        compiled.components(row)
    # in-place link change: degrade one trunk, upgrade another
    link = rng.choice(network.links)
    network.replace_link(
        Link(link.a, link.b, link.speed_bps * 0.1, link.propagation_s * 2)
    )
    other = rng.choice(network.links)
    network.replace_link(
        Link(other.a, other.b, other.speed_bps * 4, other.propagation_s)
    )
    compiled.invalidate_routes()
    fresh = CompiledInstance(workflow, network, penalty_mode=mode)
    for row in rows:
        assert compiled.components(row) == fresh.components(row)
        assert compiled.forward_pass(row) == fresh.forward_pass(row)


@given(size=sizes, seed=seeds, mode=modes)
@settings(max_examples=25, deadline=None)
def test_invalidate_routes_is_noop_on_unchanged_network(size, seed, mode):
    workflow = make_workflow(size, seed, GraphStructure.HYBRID)
    network = random_geo_network(2, servers_per_region=2, seed=seed)
    compiled = CompiledInstance(workflow, network, penalty_mode=mode)
    rng = random.Random(seed + 13)
    rows = random_rows(
        rng, compiled.op_names, network.server_names, 3
    )
    before = [compiled.components(row) for row in rows]
    compiled.invalidate_routes()
    after = [compiled.components(row) for row in rows]
    assert before == after  # byte-identical, not merely close


def test_invalidate_routes_rejects_server_set_changes():
    workflow = line_workflow(4, seed=0)
    network = random_geo_network(2, servers_per_region=2, seed=0)
    compiled = CompiledInstance(workflow, network)
    network.add_server(Server("late/1", 1e9))
    with pytest.raises(DeploymentError, match="recompile"):
        compiled.invalidate_routes()
