"""Property-based tests: the simulator agrees with the analytic model.

The analytic cost model (Table 1 semantics) is exact for workflows
without XOR splits when servers are uncontended; the discrete-event
simulator must reproduce it to floating-point accuracy on any such
instance and any complete deployment. XOR workflows must agree in
expectation. These are the strongest cross-validation properties in the
suite: two independent implementations of the paper's semantics.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import CostModel
from repro.core.mapping import Deployment
from repro.core.workflow import NodeKind
from repro.simulation.engine import SimulationEngine
from repro.workloads.generator import (
    GraphStructure,
    line_workflow,
    random_bus_network,
    random_graph_workflow,
)

sizes = st.integers(min_value=1, max_value=20)
server_counts = st.integers(min_value=1, max_value=5)
seeds = st.integers(min_value=0, max_value=10_000)

#: AND/OR regions only: the analytic forward pass is exact for these.
NO_XOR = ((NodeKind.AND_SPLIT, 0.6), (NodeKind.OR_SPLIT, 0.4))


@given(size=sizes, servers=server_counts, seed=seeds)
@settings(max_examples=40, deadline=None)
def test_simulator_matches_model_on_lines(size, servers, seed):
    workflow = line_workflow(size, seed=seed)
    network = random_bus_network(servers, seed=seed + 1)
    deployment = Deployment.random(workflow, network, random.Random(seed))
    analytic = CostModel(workflow, network).execution_time(deployment)
    measured = SimulationEngine(workflow, network, deployment).run().makespan
    assert abs(measured - analytic) <= 1e-9 * max(1.0, analytic)


@given(size=sizes, servers=server_counts, seed=seeds)
@settings(max_examples=40, deadline=None)
def test_simulator_matches_model_on_and_or_graphs(size, servers, seed):
    workflow = random_graph_workflow(
        size, GraphStructure.HYBRID, seed=seed, kind_weights=NO_XOR
    )
    network = random_bus_network(servers, seed=seed + 1)
    deployment = Deployment.random(workflow, network, random.Random(seed))
    analytic = CostModel(workflow, network).execution_time(deployment)
    measured = SimulationEngine(workflow, network, deployment).run().makespan
    assert abs(measured - analytic) <= 1e-9 * max(1.0, analytic)


@given(size=sizes, servers=server_counts, seed=seeds)
@settings(max_examples=40, deadline=None)
def test_busy_time_matches_loads_without_xor(size, servers, seed):
    workflow = random_graph_workflow(
        size, GraphStructure.HYBRID, seed=seed, kind_weights=NO_XOR
    )
    network = random_bus_network(servers, seed=seed + 1)
    deployment = Deployment.random(workflow, network, random.Random(seed))
    loads = CostModel(workflow, network).loads(deployment)
    result = SimulationEngine(workflow, network, deployment).run()
    for server, load in loads.items():
        assert abs(result.busy_time[server] - load) <= 1e-9 * max(1.0, load)


@given(size=sizes, servers=server_counts, seed=seeds)
@settings(max_examples=20, deadline=None)
def test_contention_only_slows_things_down(size, servers, seed):
    workflow = random_graph_workflow(
        size, GraphStructure.BUSHY, seed=seed, kind_weights=NO_XOR
    )
    network = random_bus_network(servers, seed=seed + 1)
    deployment = Deployment.random(workflow, network, random.Random(seed))
    unbounded = SimulationEngine(workflow, network, deployment).run()
    single = SimulationEngine(
        workflow, network, deployment, server_concurrency=1
    ).run()
    assert single.makespan >= unbounded.makespan - 1e-12


@given(size=st.integers(min_value=4, max_value=16), seed=seeds)
@settings(max_examples=8, deadline=None)
def test_xor_expectation_within_monte_carlo_error(size, seed):
    workflow = random_graph_workflow(
        size,
        GraphStructure.BUSHY,
        seed=seed,
        kind_weights=((NodeKind.XOR_SPLIT, 1.0),),
    )
    network = random_bus_network(3, seed=seed + 1)
    deployment = Deployment.random(workflow, network, random.Random(seed))
    model = CostModel(workflow, network)
    engine = SimulationEngine(workflow, network, deployment)
    results = engine.run_many(600, rng=seed)
    measured = sum(r.makespan for r in results) / len(results)
    analytic = model.execution_time(deployment)
    # makespans are bounded by the all-branches time; 600 runs keep the
    # Monte-Carlo error well under 15% for these sizes
    assert abs(measured - analytic) <= 0.15 * analytic + 1e-9


@given(size=sizes, seed=seeds)
@settings(max_examples=20, deadline=None)
def test_executed_set_respects_probabilities(size, seed):
    """Ops the model deems certain always execute; zero-probability never."""
    workflow = random_graph_workflow(size, GraphStructure.BUSHY, seed=seed)
    network = random_bus_network(2, seed=seed + 1)
    deployment = Deployment.random(workflow, network, random.Random(seed))
    model = CostModel(workflow, network)
    result = SimulationEngine(workflow, network, deployment).run(rng=seed)
    for op in workflow:
        probability = model.node_probability(op.name)
        if probability >= 1.0 - 1e-12:
            assert op.name in result.executed_operations
