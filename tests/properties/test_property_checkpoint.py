"""Property-based tests: checkpoint codecs and restore-resume equality."""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.runtime import SearchBudget
from repro.core.clock import StepClock
from repro.service.checkpoint import (
    budget_from_dict,
    budget_to_dict,
    config_from_dict,
    config_to_dict,
    event_from_dict,
    event_to_dict,
    record_from_dict,
    record_to_dict,
    restore_controller,
    snapshot_from_dict,
    snapshot_to_dict,
    write_checkpoint,
)
from repro.service.controller import FleetController
from repro.service.events import (
    DeployRequest,
    ServerFailed,
    ServerJoined,
    Tick,
    UndeployRequest,
)
from repro.service.log import LogRecord
from repro.service.scenarios import build_scenario
from repro.service.state import FleetSnapshot
from repro.workloads.generator import line_workflow

names = st.text(
    alphabet=st.characters(
        whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=0x7F
    ),
    min_size=1,
    max_size=12,
)
finite_floats = st.floats(
    min_value=1e-6, max_value=1e12, allow_nan=False, allow_infinity=False
)
seeds = st.integers(min_value=0, max_value=10_000)


def _workflow(seed: int):
    return line_workflow(5, seed=seed)


events = st.one_of(
    st.builds(
        DeployRequest,
        tenant=names,
        workflow=seeds.map(_workflow),
        algorithm=st.none() | st.just("HeavyOps-LargeMsgs"),
    ),
    st.builds(UndeployRequest, tenant=names),
    st.builds(ServerFailed, server=names),
    st.builds(
        ServerJoined,
        server=names,
        power_hz=finite_floats,
        link_speed_bps=finite_floats,
        propagation_s=st.floats(
            min_value=0, max_value=10, allow_nan=False
        ),
    ),
    st.builds(Tick),
)


@given(event=events)
@settings(max_examples=40, deadline=None)
def test_event_round_trip_through_json_is_identity(event):
    document = json.loads(json.dumps(event_to_dict(event), sort_keys=True))
    decoded = event_from_dict(document)
    assert type(decoded) is type(event)
    assert event_to_dict(decoded) == event_to_dict(event)


budgets = st.none() | st.builds(
    SearchBudget,
    max_steps=st.none() | st.integers(min_value=1, max_value=10**6),
    max_evals=st.none() | st.integers(min_value=1, max_value=10**6),
    deadline_s=st.none()
    | st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
)


@given(budget=budgets)
@settings(max_examples=40, deadline=None)
def test_budget_round_trip_is_identity(budget):
    document = budget_to_dict(budget)
    if document is not None:
        document = json.loads(json.dumps(document))
    assert budget_from_dict(document) == budget


records = st.builds(
    LogRecord,
    seq=st.integers(min_value=0, max_value=10**6),
    event=names,
    subject=names,
    action=names,
    latency_s=st.floats(min_value=0, max_value=1e3, allow_nan=False),
    details=st.lists(
        st.tuples(names, names), max_size=4, unique_by=lambda kv: kv[0]
    ).map(lambda pairs: tuple(sorted(pairs))),
)


@given(record=records)
@settings(max_examples=40, deadline=None)
def test_record_round_trip_preserves_canonical_line(record):
    document = json.loads(json.dumps(record_to_dict(record)))
    assert record_from_dict(document).to_line() == record.to_line()


snapshots = st.builds(
    FleetSnapshot,
    execution_time=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    time_penalty=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    objective=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    loads=st.dictionaries(names, finite_floats, max_size=5),
    balance_index=st.floats(min_value=0, max_value=1, allow_nan=False),
    tenants=st.integers(min_value=0, max_value=1000),
)


@given(snapshot=snapshots)
@settings(max_examples=40, deadline=None)
def test_snapshot_round_trip_through_json_is_exact(snapshot):
    """JSON float repr round-trips exactly -- snapshots compare equal."""
    document = json.loads(json.dumps(snapshot_to_dict(snapshot)))
    assert snapshot_from_dict(document) == snapshot


@given(seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=10, deadline=None)
def test_config_round_trip_from_scenario(seed):
    config = build_scenario("steady", seed=seed).config
    document = json.loads(json.dumps(config_to_dict(config)))
    assert config_from_dict(document) == config


@given(
    name=st.sampled_from(["steady", "churn"]),
    seed=st.integers(min_value=0, max_value=20),
    cut_fraction=st.floats(min_value=0, max_value=1),
)
@settings(max_examples=8, deadline=None)
def test_restore_then_resume_equals_uninterrupted(name, seed, cut_fraction):
    """Crash at a random boundary; the resumed log is byte-identical."""
    scenario = build_scenario(name, seed=seed)
    uninterrupted = FleetController(
        build_scenario(name, seed=seed).network,
        config=scenario.config,
        clock=StepClock(),
    )
    for event in scenario.events:
        uninterrupted.handle(event)

    cut = round(cut_fraction * len(scenario.events))
    crashed = FleetController(
        build_scenario(name, seed=seed).network,
        config=scenario.config,
        clock=StepClock(),
    )
    for event in scenario.events[:cut]:
        crashed.handle(event)

    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        path = write_checkpoint(
            crashed, Path(tmp) / "fleet.json", pending=scenario.events[cut:]
        )
        resumed, pending = restore_controller(path)
    for event in pending:
        resumed.handle(event)
    assert resumed.log.to_text() == uninterrupted.log.to_text()
    assert resumed.state.snapshot() == uninterrupted.state.snapshot()
