"""Property-based tests: the exact solvers agree with each other.

Branch and bound must return the same optimum full enumeration finds, on
any instance small enough to enumerate -- this is simultaneously the
soundness check for its two pruning bounds (an unsound bound would cut
the true optimum and show up here immediately).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.branch_and_bound import BranchAndBound
from repro.algorithms.exhaustive import Exhaustive
from repro.core.cost import CostModel
from repro.workloads.generator import (
    GraphStructure,
    line_workflow,
    random_bus_network,
    random_graph_workflow,
)

tiny_sizes = st.integers(min_value=1, max_value=6)
server_counts = st.integers(min_value=1, max_value=3)
seeds = st.integers(min_value=0, max_value=10_000)
structures = st.sampled_from(list(GraphStructure))


@given(size=tiny_sizes, servers=server_counts, seed=seeds)
@settings(max_examples=25, deadline=None)
def test_branch_and_bound_matches_exhaustive_on_lines(size, servers, seed):
    workflow = line_workflow(size, seed=seed)
    network = random_bus_network(servers, seed=seed + 1)
    model = CostModel(workflow, network)
    optimum = Exhaustive().best(workflow, network, model).cost.objective
    deployment = BranchAndBound().deploy(workflow, network, cost_model=model)
    assert abs(model.objective(deployment) - optimum) <= 1e-12


@given(size=tiny_sizes, servers=server_counts, seed=seeds, structure=structures)
@settings(max_examples=20, deadline=None)
def test_branch_and_bound_matches_exhaustive_on_graphs(
    size, servers, seed, structure
):
    workflow = random_graph_workflow(size, structure, seed=seed)
    network = random_bus_network(servers, seed=seed + 1)
    model = CostModel(workflow, network)
    optimum = Exhaustive().best(workflow, network, model).cost.objective
    deployment = BranchAndBound().deploy(workflow, network, cost_model=model)
    assert abs(model.objective(deployment) - optimum) <= 1e-12


@given(size=tiny_sizes, servers=server_counts, seed=seeds)
@settings(max_examples=20, deadline=None)
def test_exact_optimum_lower_bounds_every_heuristic(size, servers, seed):
    from repro.algorithms.base import algorithm_registry

    workflow = line_workflow(size, seed=seed)
    network = random_bus_network(servers, seed=seed + 1)
    model = CostModel(workflow, network)
    optimum = model.objective(
        BranchAndBound().deploy(workflow, network, cost_model=model)
    )
    registry = algorithm_registry()
    for name in ("FairLoad", "HeavyOps-LargeMsgs", "Genetic"):
        algorithm = registry[name]()
        if name == "Genetic":
            algorithm = registry[name](generations=3, population_size=6)
        value = model.objective(
            algorithm.deploy(workflow, network, cost_model=model, rng=seed)
        )
        assert value >= optimum - 1e-12, name
