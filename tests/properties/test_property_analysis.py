"""Property-based tests: analysis tools over generated workflows."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import (
    critical_path,
    extract_region,
    region_tree,
    workflow_statistics,
)
from repro.core.cost import CostModel
from repro.core.mapping import Deployment
from repro.core.validation import check_well_formed
from repro.workloads.generator import (
    GraphStructure,
    random_bus_network,
    random_graph_workflow,
)

sizes = st.integers(min_value=1, max_value=25)
seeds = st.integers(min_value=0, max_value=10_000)
structures = st.sampled_from(list(GraphStructure))


@given(size=sizes, seed=seeds, structure=structures)
@settings(max_examples=40, deadline=None)
def test_region_tree_counts_every_split(size, seed, structure):
    workflow = random_graph_workflow(size, structure, seed=seed)
    splits = sum(1 for op in workflow if op.kind.is_split)
    tree = region_tree(workflow)
    assert tree.count() == splits
    assert tree.depth() <= max(splits, 0)


@given(size=st.integers(min_value=4, max_value=25), seed=seeds)
@settings(max_examples=25, deadline=None)
def test_every_region_extracts_to_a_well_formed_workflow(size, seed):
    workflow = random_graph_workflow(size, GraphStructure.BUSHY, seed=seed)
    report = check_well_formed(workflow)
    for split, join in report.matches.items():
        region = extract_region(workflow, split)
        assert region.entries == (split,)
        assert region.exits == (join,)
        sub_report = check_well_formed(region)
        assert sub_report.ok, sub_report.problems
        # nested structure carried over intact
        assert set(sub_report.matches.items()) <= set(
            report.matches.items()
        )


@given(size=sizes, seed=seeds, structure=structures)
@settings(max_examples=30, deadline=None)
def test_statistics_are_internally_consistent(size, seed, structure):
    workflow = random_graph_workflow(size, structure, seed=seed)
    stats = workflow_statistics(workflow)
    assert stats["operations"] == len(workflow)
    assert stats["messages"] == len(workflow.messages)
    assert 1 <= stats["depth"] <= len(workflow)
    assert sum(stats["kind_counts"].values()) == len(workflow)
    assert stats["total_cycles"] == workflow.total_cycles


@given(size=sizes, seed=seeds, structure=structures)
@settings(max_examples=25, deadline=None)
def test_critical_path_is_a_real_chain_ending_at_texecute(
    size, seed, structure
):
    workflow = random_graph_workflow(size, structure, seed=seed)
    network = random_bus_network(3, seed=seed + 1)
    model = CostModel(workflow, network)
    deployment = Deployment.random(workflow, network, random.Random(seed))
    path = critical_path(workflow, deployment, model)
    # chain is connected, starts at an entry, ends at an exit
    assert path.operations[0] in workflow.entries
    assert path.operations[-1] in workflow.exits
    for a, b in zip(path.operations, path.operations[1:]):
        assert workflow.has_message(a, b)
    assert path.length_s > 0
    assert abs(
        path.length_s - model.execution_time(deployment)
    ) <= 1e-12 * max(1.0, path.length_s)
