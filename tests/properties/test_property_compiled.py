"""Property tests: the compiled IR reproduces the pre-refactor cost path.

:class:`~repro.core.cost.CostModel` is now a façade over
:class:`~repro.core.compiled.CompiledInstance`; these tests pin the
compiled array-index path to a self-contained re-implementation of the
pre-refactor name-dict evaluation (the *oracle* below) within ``1e-9``
-- ``evaluate``, ``objective``, ``loads`` and ``response_times`` alike
-- across random well-formed workflows, every penalty mode, and the
deployments produced by every registered algorithm. Seeded algorithm
runs are additionally required to be byte-identical between repeated
invocations and between a freshly-built model and a
``CostModel.from_compiled`` façade sharing the same artifact.
"""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.algorithms  # noqa: F401 -- populate the registry
from repro.algorithms.base import algorithm_registry
from repro.core.compiled import CompiledInstance
from repro.core.cost import PENALTY_MODES, CostModel
from repro.core.mapping import Deployment
from repro.core.workflow import NodeKind
from repro.network.routing import Router
from repro.core.probability import execution_probabilities
from repro.workloads.generator import (
    GraphStructure,
    line_workflow,
    random_bus_network,
    random_graph_workflow,
)

TOLERANCE = 1e-9

sizes = st.integers(min_value=2, max_value=18)
server_counts = st.integers(min_value=1, max_value=6)
seeds = st.integers(min_value=0, max_value=10_000)
structures = st.sampled_from([None] + list(GraphStructure))
modes = st.sampled_from(PENALTY_MODES)

#: Algorithms exercised for byte-identical seeded runs. Exhaustive and
#: BranchAndBound explode on larger instances and are covered by their
#: own exactness properties; ConstraintAware needs a constraint set.
SEEDED_SUITE = (
    "FairLoad",
    "FL-TieResolver",
    "FL-TieResolver2",
    "FL-MergeMsgEnds",
    "HeavyOps-LargeMsgs",
    "Random",
    "HillClimbing",
    "SimulatedAnnealing",
    "Genetic",
)


class OracleCostModel:
    """The pre-refactor cost evaluation, verbatim, as a reference.

    A frozen re-implementation of the name-keyed dict path that
    ``CostModel`` ran before the compiled IR existed: per-query
    ``cycles / power`` divisions, router calls per message, and dict
    lookups throughout. Deliberately self-contained so the production
    code can never drift under it unnoticed.
    """

    def __init__(self, workflow, network, mode):
        self.workflow = workflow
        self.network = network
        self.mode = mode
        self.router = Router(network)
        has_xor = any(op.kind is NodeKind.XOR_SPLIT for op in workflow)
        if has_xor:
            self.node_prob = execution_probabilities(workflow)
        else:
            self.node_prob = {n: 1.0 for n in workflow.operation_names}

    def loads(self, deployment):
        totals = {name: 0.0 for name in self.network.server_names}
        for operation in self.workflow:
            server = deployment.server_of(operation.name)
            totals[server] += (
                operation.cycles * self.node_prob[operation.name]
            )
        return {
            name: cycles / self.network.server(name).power_hz
            for name, cycles in totals.items()
        }

    def penalty(self, loads):
        values = list(loads.values())
        if not values:
            return 0.0
        mean = sum(values) / len(values)
        deviations = [abs(v - mean) for v in values]
        if self.mode == "mad":
            return sum(deviations) / len(values)
        if self.mode == "sum_abs":
            return sum(deviations)
        if self.mode == "max":
            return max(deviations)
        return math.sqrt(sum(d * d for d in deviations) / len(values))

    def response_times(self, deployment):
        finish = {}
        for name in self.workflow.topological_order():
            operation = self.workflow.operation(name)
            incoming = self.workflow.incoming(name)
            if not incoming:
                ready = 0.0
            else:
                arrivals = [
                    finish[m.source]
                    + self.router.transmission_time(
                        deployment.server_of(m.source),
                        deployment.server_of(name),
                        m.size_bits,
                    )
                    for m in incoming
                ]
                if operation.kind is NodeKind.XOR_JOIN:
                    weights = [
                        self.node_prob[m.source] * m.probability
                        for m in incoming
                    ]
                    total = sum(weights)
                    if total <= 0:
                        ready = max(arrivals)
                    else:
                        ready = (
                            sum(w * a for w, a in zip(weights, arrivals))
                            / total
                        )
                elif operation.kind is NodeKind.OR_JOIN:
                    ready = min(arrivals)
                else:
                    ready = max(arrivals)
            server = self.network.server(deployment.server_of(name))
            finish[name] = ready + operation.cycles / server.power_hz
        return finish

    def evaluate(self, deployment):
        loads = self.loads(deployment)
        finish = self.response_times(deployment)
        execution = max(finish[n] for n in self.workflow.exits)
        penalty = self.penalty(loads)
        return execution, penalty, 0.5 * execution + 0.5 * penalty


def make_instance(size, servers, seed, structure, mode):
    if structure is None:
        workflow = line_workflow(size, seed=seed)
    else:
        workflow = random_graph_workflow(size, structure, seed=seed)
    network = random_bus_network(servers, seed=seed + 1)
    model = CostModel(workflow, network, penalty_mode=mode)
    oracle = OracleCostModel(workflow, network, mode)
    return workflow, network, model, oracle


@given(
    size=sizes, servers=server_counts, seed=seeds,
    structure=structures, mode=modes,
)
@settings(max_examples=60, deadline=None)
def test_compiled_path_matches_oracle(size, servers, seed, structure, mode):
    workflow, network, model, oracle = make_instance(
        size, servers, seed, structure, mode
    )
    rng = random.Random(seed)
    for _ in range(3):
        deployment = Deployment.random(workflow, network, rng)
        execution, penalty, objective = oracle.evaluate(deployment)
        breakdown = model.evaluate(deployment)
        assert abs(breakdown.execution_time - execution) <= TOLERANCE
        assert abs(breakdown.time_penalty - penalty) <= TOLERANCE
        if mode == "mad":
            assert abs(model.objective(deployment) - objective) <= TOLERANCE
        loads = oracle.loads(deployment)
        model_loads = model.loads(deployment)
        assert set(loads) == set(model_loads)
        for server in loads:
            assert abs(loads[server] - model_loads[server]) <= TOLERANCE
        finish = oracle.response_times(deployment)
        model_finish = model.response_times(deployment)
        assert set(finish) == set(model_finish)
        for name in finish:
            assert abs(finish[name] - model_finish[name]) <= TOLERANCE


@given(size=sizes, servers=server_counts, seed=seeds, structure=structures)
@settings(max_examples=20, deadline=None)
def test_seeded_algorithms_are_byte_identical(size, servers, seed, structure):
    if structure is None:
        workflow = line_workflow(size, seed=seed)
    else:
        workflow = random_graph_workflow(size, structure, seed=seed)
    network = random_bus_network(servers, seed=seed + 1)
    model = CostModel(workflow, network)
    shared = CostModel.from_compiled(model.compiled)
    registry = algorithm_registry()
    for name in SEEDED_SUITE:
        algorithm = registry[name]()
        first = algorithm.deploy(workflow, network, model, rng=seed)
        again = algorithm.deploy(workflow, network, model, rng=seed)
        assert first.as_dict() == again.as_dict(), name
        # a façade over the same artifact prices identically, so the
        # seeded search walks the exact same trajectory
        via_shared = algorithm.deploy(workflow, network, shared, rng=seed)
        assert first.as_dict() == via_shared.as_dict(), name


@given(size=sizes, servers=server_counts, seed=seeds, mode=modes)
@settings(max_examples=20, deadline=None)
def test_facade_shares_one_artifact(size, servers, seed, mode):
    workflow = random_graph_workflow(size, GraphStructure.HYBRID, seed=seed)
    network = random_bus_network(servers, seed=seed + 1)
    compiled = CompiledInstance(workflow, network, penalty_mode=mode)
    model = CostModel.from_compiled(compiled)
    assert model.compiled is compiled
    assert model.router is compiled.router
    assert model.penalty_mode == mode
    rng = random.Random(seed)
    deployment = Deployment.random(workflow, network, rng)
    direct = compiled.components(compiled.server_vector(deployment))
    breakdown = model.evaluate(deployment)
    assert breakdown.execution_time == direct[0]
    assert breakdown.time_penalty == direct[1]
    assert breakdown.objective == direct[2]
