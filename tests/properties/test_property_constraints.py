"""Property-based tests: constraint excess measures and the aware search."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import (
    ConstraintSet,
    MaxExecutionTime,
    MaxResponseTime,
    MaxServerLoad,
    MaxTimePenalty,
)
from repro.core.cost import CostModel
from repro.core.mapping import Deployment
from repro.workloads.generator import line_workflow, random_bus_network

sizes = st.integers(min_value=2, max_value=15)
server_counts = st.integers(min_value=2, max_value=4)
seeds = st.integers(min_value=0, max_value=10_000)
limits = st.floats(min_value=1e-6, max_value=10.0, allow_nan=False)


def evaluated(size, servers, seed):
    workflow = line_workflow(size, seed=seed)
    network = random_bus_network(servers, seed=seed + 1)
    model = CostModel(workflow, network)
    deployment = Deployment.random(workflow, network, random.Random(seed))
    return workflow, model.evaluate(deployment)


@given(size=sizes, servers=server_counts, seed=seeds, limit=limits)
@settings(max_examples=40, deadline=None)
def test_excess_zero_iff_satisfied(size, servers, seed, limit):
    """For every numeric constraint: excess == 0 exactly when satisfied."""
    workflow, cost = evaluated(size, servers, seed)
    constraints = [
        MaxExecutionTime(limit),
        MaxTimePenalty(limit),
        MaxServerLoad(limit),
        MaxResponseTime(workflow.operation_names[-1], limit),
    ]
    for constraint in constraints:
        excess = constraint.excess(cost)
        assert excess >= 0
        assert (excess == 0) == constraint.satisfied(cost), constraint


@given(size=sizes, servers=server_counts, seed=seeds)
@settings(max_examples=30, deadline=None)
def test_excess_monotone_in_limit(size, servers, seed):
    """Loosening a limit never increases the excess."""
    _, cost = evaluated(size, servers, seed)
    tight = MaxExecutionTime(cost.execution_time * 0.5)
    loose = MaxExecutionTime(cost.execution_time * 0.9)
    satisfied = MaxExecutionTime(cost.execution_time * 1.1)
    assert tight.excess(cost) >= loose.excess(cost) >= satisfied.excess(cost)
    assert satisfied.excess(cost) == 0.0


@given(size=sizes, servers=server_counts, seed=seeds)
@settings(max_examples=30, deadline=None)
def test_set_excess_is_sum_of_parts(size, servers, seed):
    workflow, cost = evaluated(size, servers, seed)
    parts = [
        MaxExecutionTime(cost.execution_time * 0.5),
        MaxTimePenalty(max(cost.time_penalty * 0.5, 1e-12)),
    ]
    combined = ConstraintSet(parts)
    assert combined.total_excess(cost) == sum(
        p.excess(cost) for p in parts
    )
    assert combined.satisfied(cost) == (combined.total_excess(cost) == 0)


@given(size=st.integers(min_value=4, max_value=12), seed=seeds)
@settings(max_examples=10, deadline=None)
def test_constraint_aware_search_never_increases_excess(size, seed):
    """The repair loop's first lexicographic key must not regress."""
    from repro.algorithms.constrained import ConstraintAwareSearch
    from repro.algorithms.heavy_ops import HeavyOpsLargeMsgs

    workflow = line_workflow(size, seed=seed)
    network = random_bus_network(3, seed=seed + 1)
    model = CostModel(workflow, network)
    seeded = HeavyOpsLargeMsgs().deploy(workflow, network, cost_model=model)
    seeded_cost = model.evaluate(seeded)
    constraints = ConstraintSet(
        [MaxTimePenalty(max(seeded_cost.time_penalty * 0.6, 1e-12))]
    )
    repaired = ConstraintAwareSearch(constraints=constraints).deploy(
        workflow, network, cost_model=model
    )
    assert constraints.total_excess(
        model.evaluate(repaired)
    ) <= constraints.total_excess(seeded_cost) + 1e-15
