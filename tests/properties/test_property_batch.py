"""Property tests: the batch kernel reproduces the scalar compiled path.

The determinism contract of the vectorized
:class:`~repro.core.batch.BatchEvaluator` (same shape as PRs 2-4):

* the kernel's per-row execution / loads / penalty / objective are
  pinned against ``CompiledInstance.forward_pass`` / ``load_values`` /
  ``penalty`` -- **exact** equality where the operation order matches
  (which the kernel engineers everywhere), and ``<= 1e-9`` relative as
  the outer tolerance -- across random well-formed workflows, every
  penalty mode and every graph structure;
* seeded GA / sampler / hill-climbing runs through the batch path must
  return deployments with identical objective values, and identical
  RNG streams, as their scalar counterparts.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.genetic import GeneticAlgorithm
from repro.algorithms.local_search import HillClimbing
from repro.algorithms.sampling import SolutionSampler
from repro.core.compiled import PENALTY_MODES, CompiledInstance
from repro.core.cost import CostModel
from repro.workloads.generator import (
    GraphStructure,
    line_workflow,
    random_bus_network,
    random_graph_workflow,
)

TOLERANCE = 1e-9

sizes = st.integers(min_value=2, max_value=18)
server_counts = st.integers(min_value=1, max_value=6)
seeds = st.integers(min_value=0, max_value=10_000)
structures = st.sampled_from([None] + list(GraphStructure))
modes = st.sampled_from(PENALTY_MODES)
batch_sizes = st.integers(min_value=0, max_value=24)


def make_workflow(size, seed, structure):
    if structure is None:
        return line_workflow(size, seed=seed)
    return random_graph_workflow(size, structure, seed=seed)


def make_compiled(size, servers, seed, structure, mode):
    workflow = make_workflow(size, seed, structure)
    network = random_bus_network(servers, seed=seed + 1)
    return CompiledInstance(workflow, network, penalty_mode=mode)


def random_rows(compiled, count, seed):
    rng = random.Random(seed)
    return [
        [rng.randrange(compiled.num_servers) for _ in range(compiled.num_ops)]
        for _ in range(count)
    ]


@given(
    size=sizes, servers=server_counts, seed=seeds,
    structure=structures, mode=modes, count=batch_sizes,
)
@settings(max_examples=60, deadline=None)
def test_kernel_matches_scalar_path(
    size, servers, seed, structure, mode, count
):
    compiled = make_compiled(size, servers, seed, structure, mode)
    batch = compiled.batch_evaluator()
    rows = random_rows(compiled, count, seed)
    scores = batch.evaluate(rows)
    assert len(scores) == count
    for k, row in enumerate(rows):
        execution = compiled.execution_from(compiled.forward_pass(row))
        penalty = compiled.penalty(compiled.load_values(row))
        objective = compiled.objective_value(execution, penalty)
        # the kernel replicates the scalar operation order, so the
        # match is exact -- the 1e-9 relative bound is the contract's
        # outer tolerance, the equality assertions the actual behaviour
        assert scores.execution[k] == execution
        assert scores.penalty[k] == penalty
        assert scores.objective[k] == objective
        assert abs(scores.objective[k] - objective) <= TOLERANCE * max(
            1.0, abs(objective)
        )


@given(
    size=sizes, servers=server_counts, seed=seeds,
    structure=structures, mode=modes,
)
@settings(max_examples=40, deadline=None)
def test_neighborhood_grid_matches_scalar_moves(
    size, servers, seed, structure, mode
):
    compiled = make_compiled(size, servers, seed, structure, mode)
    batch = compiled.batch_evaluator()
    base = random_rows(compiled, 1, seed)[0]
    scores = batch.evaluate(batch.neighborhood(base))
    for op in range(compiled.num_ops):
        for server in range(compiled.num_servers):
            row = list(base)
            row[op] = server
            expected = compiled.components(row)[2]
            assert scores.objective[op * compiled.num_servers + server] == (
                expected
            )


@given(size=sizes, servers=server_counts, seed=seeds, structure=structures)
@settings(max_examples=15, deadline=None)
def test_seeded_genetic_identical_through_batch(size, servers, seed, structure):
    workflow = make_workflow(size, seed, structure)
    network = random_bus_network(servers, seed=seed + 1)
    model = CostModel(workflow, network)
    kwargs = dict(population_size=8, generations=4)
    rng_batch = random.Random(seed)
    rng_scalar = random.Random(seed)
    batched = GeneticAlgorithm(use_batch=True, **kwargs).deploy(
        workflow, network, cost_model=model, rng=rng_batch
    )
    scalar = GeneticAlgorithm(use_batch=False, **kwargs).deploy(
        workflow, network, cost_model=model, rng=rng_scalar
    )
    assert batched.as_dict() == scalar.as_dict()
    assert model.objective(batched) == model.objective(scalar)
    # identical RNG streams: both paths consumed exactly the same draws
    assert rng_batch.getstate() == rng_scalar.getstate()


@given(size=sizes, servers=server_counts, seed=seeds, structure=structures)
@settings(max_examples=15, deadline=None)
def test_seeded_sampler_identical_through_batch(size, servers, seed, structure):
    workflow = make_workflow(size, seed, structure)
    network = random_bus_network(servers, seed=seed + 1)
    model = CostModel(workflow, network)
    rng_batch = random.Random(seed)
    rng_scalar = random.Random(seed)
    batched = SolutionSampler(samples=50, block=16).run(
        workflow, network, model, rng_batch
    )
    scalar = SolutionSampler(samples=50, use_batch=False).run(
        workflow, network, model, rng_scalar
    )
    assert batched.samples == scalar.samples
    assert batched.best_execution_time == scalar.best_execution_time
    assert batched.best_time_penalty == scalar.best_time_penalty
    assert batched.worst_objective_value == scalar.worst_objective_value
    assert (
        batched.best_objective[0].as_dict()
        == scalar.best_objective[0].as_dict()
    )
    assert batched.best_objective[1].objective == (
        scalar.best_objective[1].objective
    )
    assert rng_batch.getstate() == rng_scalar.getstate()


@given(size=sizes, servers=server_counts, seed=seeds, structure=structures)
@settings(max_examples=15, deadline=None)
def test_seeded_hill_climbing_identical_through_batch(
    size, servers, seed, structure
):
    # the kernel's exact twin is *full* evaluation (it replicates the
    # scalar IEEE operation order); the incremental MoveEvaluator path
    # only promises 1e-9-approx values, so its accumulated ULP drift
    # can legitimately flip a last-ULP accept/reject decision -- it is
    # compared on objective quality below, not on the exact trajectory
    workflow = make_workflow(size, seed, structure)
    network = random_bus_network(servers, seed=seed + 1)
    model = CostModel(workflow, network)
    kwargs = dict(max_iterations=30)
    rng_batch = random.Random(seed)
    rng_scalar = random.Random(seed)
    rng_incremental = random.Random(seed)
    batched = HillClimbing(sweep="batch", **kwargs).deploy(
        workflow, network, cost_model=model, rng=rng_batch
    )
    scalar = HillClimbing(
        sweep="scalar", use_incremental=False, **kwargs
    ).deploy(workflow, network, cost_model=model, rng=rng_scalar)
    incremental = HillClimbing(sweep="scalar", **kwargs).deploy(
        workflow, network, cost_model=model, rng=rng_incremental
    )
    assert batched.as_dict() == scalar.as_dict()
    assert model.objective(batched) == model.objective(scalar)
    assert rng_batch.getstate() == rng_scalar.getstate()
    assert rng_batch.getstate() == rng_incremental.getstate()
    # quality, not equality: when a last-ULP flip does occur the two
    # trajectories walk to *different local optima*, so the finals are
    # only comparable as solution quality (the per-move 1e-9 numeric
    # contract itself is pinned in test_property_incremental)
    assert model.objective(incremental) == pytest.approx(
        model.objective(batched), rel=1e-3
    )
