"""Property-based tests: generated workflows and their invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.probability import execution_probabilities
from repro.core.validation import check_well_formed
from repro.core.workflow import NodeKind
from repro.workloads.generator import (
    GraphStructure,
    line_workflow,
    random_graph_workflow,
)

sizes = st.integers(min_value=1, max_value=35)
seeds = st.integers(min_value=0, max_value=10_000)
structures = st.sampled_from(list(GraphStructure))


@given(size=sizes, seed=seeds)
@settings(max_examples=40, deadline=None)
def test_line_workflows_are_lines(size, seed):
    workflow = line_workflow(size, seed=seed)
    assert len(workflow) == size
    assert workflow.is_line()
    assert len(workflow.messages) == size - 1
    assert check_well_formed(workflow).ok


@given(size=sizes, seed=seeds, structure=structures)
@settings(max_examples=60, deadline=None)
def test_generated_graphs_are_well_formed_with_exact_size(size, seed, structure):
    workflow = random_graph_workflow(size, structure, seed=seed)
    assert len(workflow) == size
    report = check_well_formed(workflow)
    assert report.ok, report.problems


@given(size=sizes, seed=seeds, structure=structures)
@settings(max_examples=40, deadline=None)
def test_generated_graphs_never_exceed_target_decision_fraction(
    size, seed, structure
):
    workflow = random_graph_workflow(size, structure, seed=seed)
    regions = sum(1 for op in workflow if op.kind.is_split)
    target = round(structure.decision_fraction * size / 2)
    assert regions <= target


@given(size=sizes, seed=seeds, structure=structures)
@settings(max_examples=40, deadline=None)
def test_execution_probabilities_bounded_and_consistent(size, seed, structure):
    workflow = random_graph_workflow(size, structure, seed=seed)
    probs = execution_probabilities(workflow)
    assert set(probs) == set(workflow.operation_names)
    assert all(0.0 <= p <= 1.0 for p in probs.values())
    for entry in workflow.entries:
        assert probs[entry] == 1.0


@given(size=sizes, seed=seeds, structure=structures)
@settings(max_examples=40, deadline=None)
def test_join_probability_equals_split_probability(size, seed, structure):
    """A region's join fires exactly when its split fired."""
    workflow = random_graph_workflow(size, structure, seed=seed)
    report = check_well_formed(workflow)
    probs = execution_probabilities(workflow)
    for split, join in report.matches.items():
        assert abs(probs[split] - probs[join]) < 1e-9


@given(size=sizes, seed=seeds, structure=structures)
@settings(max_examples=40, deadline=None)
def test_split_and_join_degrees(size, seed, structure):
    """Splits fan out to >= 2 branches; matched joins collect them all."""
    workflow = random_graph_workflow(size, structure, seed=seed)
    report = check_well_formed(workflow)
    for split, join in report.matches.items():
        out_degree = len(workflow.successors(split))
        in_degree = len(workflow.predecessors(join))
        assert out_degree >= 2
        assert in_degree == out_degree  # branches are linear chains


@given(size=sizes, seed=seeds)
@settings(max_examples=40, deadline=None)
def test_xor_splits_have_normalised_branch_probabilities(size, seed):
    only_xor = ((NodeKind.XOR_SPLIT, 1.0),)
    workflow = random_graph_workflow(
        size, GraphStructure.BUSHY, seed=seed, kind_weights=only_xor
    )
    workflow.validate_xor_probabilities()
    for op in workflow:
        if op.kind is NodeKind.XOR_SPLIT:
            total = sum(m.probability for m in workflow.outgoing(op.name))
            assert abs(total - 1.0) < 1e-9
