"""Property-based tests for the extension modules.

Failover, incremental adaptation and monitoring must preserve the core
invariants (completeness, work conservation, probability consistency)
on arbitrary generated instances, not just the handcrafted unit cases.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.fair_load import FairLoad
from repro.core.cost import CostModel
from repro.core.mapping import Deployment
from repro.core.workflow import Operation
from repro.experiments.failover import analyze_failure, remove_server
from repro.experiments.incremental import patch_deployment
from repro.workloads.generator import (
    GraphStructure,
    line_workflow,
    random_bus_network,
    random_graph_workflow,
)
from repro.workloads.monitoring import (
    calibrated_workflow,
    observe_branch_frequencies,
)

sizes = st.integers(min_value=2, max_value=20)
server_counts = st.integers(min_value=2, max_value=5)
seeds = st.integers(min_value=0, max_value=10_000)


@given(size=sizes, servers=server_counts, seed=seeds)
@settings(max_examples=25, deadline=None)
def test_failover_recovery_is_always_complete(size, servers, seed):
    workflow = line_workflow(size, seed=seed)
    network = random_bus_network(servers, seed=seed + 1)
    deployment = FairLoad().deploy(workflow, network)
    failed = network.server_names[seed % servers]
    report = analyze_failure(workflow, network, deployment, failed)
    survivor = remove_server(network, failed)
    report.recovered.validate(workflow, survivor)
    assert failed not in report.recovered.as_dict().values()


@given(size=sizes, servers=server_counts, seed=seeds)
@settings(max_examples=25, deadline=None)
def test_failover_conserves_work(size, servers, seed):
    workflow = line_workflow(size, seed=seed)
    network = random_bus_network(servers, seed=seed + 1)
    deployment = FairLoad().deploy(workflow, network)
    failed = network.server_names[seed % servers]
    report = analyze_failure(workflow, network, deployment, failed)
    survivor = remove_server(network, failed)
    recovered_cycles = sum(
        report.after.loads[s.name] * s.power_hz for s in survivor
    )
    assert abs(recovered_cycles - workflow.total_cycles) <= 1e-3


@given(size=sizes, servers=server_counts, seed=seeds)
@settings(max_examples=25, deadline=None)
def test_incremental_patch_preserves_survivor_assignments(size, servers, seed):
    workflow = line_workflow(size, seed=seed)
    network = random_bus_network(servers, seed=seed + 1)
    old = Deployment.random(workflow, network, random.Random(seed))
    grown = workflow.copy(f"{workflow.name}-grown")
    grown.add_operation(Operation("EXTRA", 15e6))
    grown.connect(workflow.operation_names[-1], "EXTRA", 1_000)
    patched = patch_deployment(grown, network, old)
    patched.validate(grown, network)
    for operation, server in old:
        assert patched.server_of(operation) == server


@given(size=st.integers(min_value=5, max_value=18), seed=seeds)
@settings(max_examples=10, deadline=None)
def test_monitoring_frequencies_normalised_per_split(size, seed):
    from repro.core.workflow import NodeKind

    workflow = random_graph_workflow(
        size,
        GraphStructure.BUSHY,
        seed=seed,
        kind_weights=((NodeKind.XOR_SPLIT, 1.0),),
    )
    network = random_bus_network(3, seed=seed + 1)
    deployment = Deployment.random(workflow, network, random.Random(seed))
    frequencies = observe_branch_frequencies(
        workflow, network, deployment, runs=60, rng=seed
    )
    per_split: dict[str, float] = {}
    for (split, _head), value in frequencies.items():
        per_split[split] = per_split.get(split, 0.0) + value
    for split, total in per_split.items():
        assert abs(total - 1.0) <= 1e-9, split


@given(size=st.integers(min_value=5, max_value=18), seed=seeds)
@settings(max_examples=10, deadline=None)
def test_calibrated_workflows_stay_valid_and_deployable(size, seed):
    from repro.core.validation import check_well_formed
    from repro.core.workflow import NodeKind

    workflow = random_graph_workflow(
        size,
        GraphStructure.HYBRID,
        seed=seed,
        kind_weights=((NodeKind.XOR_SPLIT, 1.0),),
    )
    network = random_bus_network(3, seed=seed + 1)
    deployment = Deployment.random(workflow, network, random.Random(seed))
    frequencies = observe_branch_frequencies(
        workflow, network, deployment, runs=40, rng=seed
    )
    calibrated = calibrated_workflow(workflow, frequencies)
    assert check_well_formed(calibrated).ok
    CostModel(calibrated, network)  # constructible => probabilities valid
    redeployed = FairLoad().deploy(calibrated, network)
    assert redeployed.is_complete(calibrated)
