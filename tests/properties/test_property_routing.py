"""Property tests: the frozen per-pair Dijkstra oracle for repro.network.apsp.

The routing kernel's exactness contract (DESIGN.md §15): every
coefficient, representative path and classification the batched
all-pairs compiler produces must equal -- to the last bit -- what the
pre-compilation per-pair implementation computed with networkx Dijkstra
behind a Python-lambda weight. That original implementation is *frozen
into this file* as the oracle, so the kernel can never drift from it
unnoticed:

* **Classification parity** -- on random continuous-weight networks,
  heterogeneous detour topologies, the bundled Abilene backbone and
  seeded geo fleets: ``compile_all_pairs`` (dense fast path included)
  and the lazy query path both match the oracle's path, coefficients
  and size-independence flag exactly, for every *canonical* pair --
  and reverse queries return the same floats with the reversed path
  (the canonical-direction build rule).
* **Sized parity** -- per-size fallback paths equal the oracle's sized
  networkx query.
* **Invalidation equivalence** -- after random sequences of worsenings
  and improvements, link-scoped invalidation, full invalidation and a
  fresh compile agree exactly on every pair.
"""

import random

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.routing import Router
from repro.network.topology import Link, Server, ServerNetwork
from repro.scenarios import abilene_network, random_geo_network

seeds = st.integers(min_value=0, max_value=10_000)


# ----------------------------------------------------------------------
# the frozen oracle: the pre-apsp per-pair classification, verbatim
# ----------------------------------------------------------------------
def _oracle_sized_path(network, source, target, size_bits):
    """The original sized query: networkx Dijkstra, lambda weight."""
    return tuple(
        nx.dijkstra_path(
            network.graph,
            source,
            target,
            weight=lambda a, b, _attrs: (
                size_bits / network.link(a, b).speed_bps
                + network.link(a, b).propagation_s
            ),
        )
    )


def _oracle_coefficients(network, nodes):
    propagation = 0.0
    transfer = 0.0
    for a, b in zip(nodes, nodes[1:]):
        link = network.link(a, b)
        propagation += link.propagation_s
        transfer += 1.0 / link.speed_bps
    return propagation, transfer


def _oracle_route(network, source, target):
    """The original ``Router._build_route``, frozen.

    Returns ``(path, propagation_s, transfer_s_per_bit,
    size_independent)`` classified with the pinned branch order.
    """
    path_zero = _oracle_sized_path(network, source, target, 0.0)
    prop_zero, transfer_zero = _oracle_coefficients(network, path_zero)
    path_large = tuple(
        nx.dijkstra_path(
            network.graph,
            source,
            target,
            weight=lambda a, b, _attrs: (
                1.0 / network.link(a, b).speed_bps
            ),
        )
    )
    prop_large, transfer_large = _oracle_coefficients(network, path_large)
    if transfer_zero <= transfer_large:
        return (path_zero, prop_zero, transfer_zero, True)
    if prop_large <= prop_zero:
        return (path_large, prop_large, transfer_large, True)
    return (path_zero, prop_zero, transfer_zero, False)


# ----------------------------------------------------------------------
# network generators: continuous weights make float ties measure-zero
# ----------------------------------------------------------------------
def random_network(seed, servers=None, extra_links=None):
    rng = random.Random(seed)
    n = servers if servers is not None else rng.randint(3, 9)
    network = ServerNetwork(f"prop-{seed}")
    names = [f"S{i}" for i in range(n)]
    network.add_servers([Server(name, rng.uniform(1e9, 4e9)) for name in names])
    # a random spanning tree keeps it connected ...
    for i in range(1, n):
        j = rng.randrange(i)
        network.connect(
            names[i],
            names[j],
            rng.uniform(1e6, 1e9),
            propagation_s=rng.uniform(1e-4, 5e-2),
        )
    # ... plus extra chords for genuine route choice
    extra = extra_links if extra_links is not None else rng.randint(0, 2 * n)
    for _ in range(extra):
        a, b = rng.sample(names, 2)
        if not network.has_link(a, b):
            network.connect(
                a,
                b,
                rng.uniform(1e6, 1e9),
                propagation_s=rng.uniform(1e-4, 5e-2),
            )
    return network


def assert_matches_oracle(router, network):
    """Every pair equals the frozen oracle, bit for bit."""
    names = network.server_names
    index = {name: i for i, name in enumerate(names)}
    for a in names:
        for b in names:
            if a == b:
                continue
            got = router.cached_route(a, b)
            assert got is not None, f"pair {(a, b)} missing from the table"
            # the canonical-direction build rule: the pair's floats are
            # the oracle's for its canonical direction; the reverse
            # query shares them with the path reversed
            ca, cb = (a, b) if index[a] < index[b] else (b, a)
            path, propagation, transfer, independent = _oracle_route(
                network, ca, cb
            )
            expected_path = path if (a, b) == (ca, cb) else path[::-1]
            assert got.path == expected_path
            assert got.propagation_s == propagation
            assert got.transfer_s_per_bit == transfer
            assert got.size_independent == independent


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_compile_all_pairs_matches_oracle_on_random_networks(seed):
    network = random_network(seed)
    router = Router(network)
    router.compile_all_pairs()
    assert_matches_oracle(router, network)


@settings(max_examples=20, deadline=None)
@given(seed=seeds)
def test_lazy_queries_match_oracle_on_random_networks(seed):
    network = random_network(seed)
    router = Router(network)
    rng = random.Random(seed + 1)
    names = list(network.server_names)
    # query in random order and direction: the canonical build rule
    # must make the cache identical no matter who asked first
    pairs = [(a, b) for a in names for b in names if a != b]
    rng.shuffle(pairs)
    for a, b in pairs:
        router.pair_coefficients(a, b)
    assert_matches_oracle(router, network)


def test_compile_matches_oracle_on_abilene():
    network = abilene_network()
    router = Router(network)
    router.compile_all_pairs()
    assert_matches_oracle(router, network)


@settings(max_examples=10, deadline=None)
@given(seed=seeds)
def test_compile_matches_oracle_on_geo(seed):
    # complete heterogeneous graphs: exercises the dense fast path
    network = random_geo_network(3, servers_per_region=2, seed=seed)
    router = Router(network)
    router.compile_all_pairs()
    assert_matches_oracle(router, network)


@settings(max_examples=15, deadline=None)
@given(seed=seeds, size=st.floats(min_value=1.0, max_value=1e9))
def test_sized_paths_match_oracle(seed, size):
    network = random_network(seed)
    router = Router(network)
    names = network.server_names
    for a in names:
        for b in names:
            if a != b:
                assert router.path(a, b, size) == _oracle_sized_path(
                    network, a, b, size
                )


# ----------------------------------------------------------------------
# invalidation equivalence: scoped == full == fresh compile
# ----------------------------------------------------------------------
def _table(router, network):
    return {
        (a, b): (
            route.path,
            route.propagation_s,
            route.transfer_s_per_bit,
            route.size_independent,
        )
        for a in network.server_names
        for b in network.server_names
        if a != b
        for route in (router.cached_route(a, b),)
    }


def _mutate(network, rng):
    """One random link change; ``(changed_link, worsening, flags)``."""
    link = rng.choice(network.links)
    kind = rng.randrange(3)
    if kind == 0:  # strict worsening: slower and laggier
        speed_factor = rng.uniform(0.2, 0.9)
        prop_factor = rng.uniform(1.0, 2.0)
    elif kind == 1:  # speed-only worsening (propagation untouched)
        speed_factor = rng.uniform(0.2, 0.9)
        prop_factor = 1.0
    else:  # improvement: full invalidation required
        speed_factor = rng.uniform(1.1, 3.0)
        prop_factor = rng.uniform(0.5, 1.0)
    network.replace_link(
        Link(
            link.a,
            link.b,
            link.speed_bps * speed_factor,
            link.propagation_s * prop_factor,
        )
    )
    worsening = speed_factor <= 1.0 and prop_factor >= 1.0
    return (
        (link.a, link.b),
        worsening,
        speed_factor != 1.0,
        prop_factor != 1.0,
    )


@settings(max_examples=25, deadline=None)
@given(seed=seeds)
def test_invalidation_equals_fresh_compile(seed):
    rng = random.Random(seed)
    network = random_network(seed)
    scoped = Router(network)
    scoped.compile_all_pairs()
    full = Router(network)
    full.compile_all_pairs()
    for _ in range(rng.randint(1, 4)):
        changed, worsening, speed_changed, prop_changed = _mutate(
            network, rng
        )
        scoped.invalidate(
            changed_links=(changed,),
            worsening=worsening,
            speed_changed=speed_changed,
            propagation_changed=prop_changed,
        )
        full.invalidate()  # always the drop-everything recompile
        fresh = Router(network)
        fresh.compile_all_pairs()
        reference = _table(fresh, network)
        assert _table(scoped, network) == reference
        assert _table(full, network) == reference


@settings(max_examples=15, deadline=None)
@given(seed=seeds)
def test_invalidation_keeps_sized_queries_exact(seed):
    rng = random.Random(seed)
    network = random_network(seed)
    router = Router(network)
    router.compile_all_pairs()
    names = network.server_names
    sizes = [1e3, 1e6, 1e8]
    for a in names[:3]:
        for b in names[:3]:
            if a != b:
                for size in sizes:
                    router.transmission_time(a, b, size)
    changed, worsening, speed_changed, prop_changed = _mutate(network, rng)
    router.invalidate(
        changed_links=(changed,),
        worsening=worsening,
        speed_changed=speed_changed,
        propagation_changed=prop_changed,
    )
    fresh = Router(network)
    for a in names:
        for b in names:
            if a != b:
                for size in sizes:
                    assert router.transmission_time(
                        a, b, size
                    ) == fresh.transmission_time(a, b, size)
