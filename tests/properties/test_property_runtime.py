"""Property tests: the search runtime preserved every algorithm's output.

Two families of guarantees:

* **frozen oracle** -- the pre-runtime implementations of hill
  climbing, simulated annealing, exhaustive enumeration and the
  solution sampler are embedded here *verbatim* (modulo being free
  functions); over random seeded instances the runtime-driven
  algorithms must return byte-identical deployments and statistics
  whenever the budget is non-binding. This pins the refactor: the
  runtime owns the loop, but no published experiment may move.
* **anytime contract** -- under *binding* budgets (evaluation caps,
  step caps, deterministic deadlines) every search still returns a
  valid complete deployment whose objective equals the report's
  incumbent value, the report names the binding limit, and the
  best-so-far curve is monotonically non-increasing.
"""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.exhaustive import Exhaustive
from repro.algorithms.genetic import GeneticAlgorithm
from repro.algorithms.local_search import HillClimbing, SimulatedAnnealing
from repro.algorithms.runtime import (
    STOP_DEADLINE,
    STOP_EXHAUSTED,
    STOP_MAX_EVALS,
    STOP_MAX_STEPS,
    SearchBudget,
)
from repro.algorithms.sampling import SolutionSampler
from repro.core.clock import StepClock
from repro.core.cost import CostModel
from repro.core.incremental import MoveEvaluator, TableScorer
from repro.core.mapping import Deployment
from repro.workloads.generator import (
    GraphStructure,
    line_workflow,
    random_bus_network,
    random_graph_workflow,
)

TOLERANCE = 1e-9

sizes = st.integers(min_value=2, max_value=14)
server_counts = st.integers(min_value=2, max_value=5)
seeds = st.integers(min_value=0, max_value=10_000)
structures = st.sampled_from([None] + list(GraphStructure))


def instance(size, servers, seed, structure):
    if structure is None:
        workflow = line_workflow(size, seed=seed)
    else:
        workflow = random_graph_workflow(size, structure, seed=seed)
    network = random_bus_network(servers, seed=seed + 1)
    return workflow, network, CostModel(workflow, network)


# ----------------------------------------------------------------------
# frozen oracles: the pre-runtime loops, verbatim
# ----------------------------------------------------------------------
def oracle_hill_climbing(workflow, network, model, rng, max_iterations):
    """HillClimbing._deploy_full as it was before the runtime refactor."""
    current = Deployment.random(workflow, network, rng)
    current_value = model.objective(current)
    for _ in range(max_iterations):
        best_move = None
        best_value = current_value
        for operation in workflow.operation_names:
            original = current.server_of(operation)
            for server in network.server_names:
                if server == original:
                    continue
                current.assign(operation, server)
                value = model.objective(current)
                if value < best_value:
                    best_value = value
                    best_move = (operation, server)
            current.assign(operation, original)
        if best_move is None:
            break
        current.assign(*best_move)
        current_value = best_value
    return current


def oracle_hill_climbing_incremental(
    workflow, network, model, rng, max_iterations
):
    """HillClimbing._deploy_incremental as it was before the refactor.

    Kept separate from the full-evaluation oracle: incremental deltas
    differ from full re-evaluations in the last ulp, so the two paths
    legitimately take different trajectories on some instances.
    """
    current = Deployment.random(workflow, network, rng)
    evaluator = MoveEvaluator(model, current)
    for _ in range(max_iterations):
        best_move = None
        best_value = evaluator.objective
        for operation in workflow.operation_names:
            original = current.server_of(operation)
            for server in network.server_names:
                if server == original:
                    continue
                value = evaluator.propose_value(operation, server)
                if value < best_value:
                    best_value = value
                    best_move = (operation, server)
        if best_move is None:
            break
        evaluator.apply(*best_move)
    return current


def oracle_simulated_annealing(
    workflow, network, model, rng, initial_temperature, cooling, steps
):
    """SimulatedAnnealing._deploy_full as it was before the refactor."""
    current = Deployment.random(workflow, network, rng)
    operations = workflow.operation_names
    servers = network.server_names
    current_value = model.objective(current)
    best = current.copy()
    best_value = current_value
    if len(servers) == 1:
        return best
    temperature = initial_temperature * max(current_value, 1e-12)
    for _ in range(steps):
        operation = rng.choice(operations)
        original = current.server_of(operation)
        alternatives = [s for s in servers if s != original]
        server = rng.choice(alternatives)
        current.assign(operation, server)
        value = model.objective(current)
        delta = value - current_value
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            current_value = value
            if value < best_value:
                best_value = value
                best = current.copy()
        else:
            current.assign(operation, original)
        temperature *= cooling
    return best


def oracle_simulated_annealing_incremental(
    workflow, network, model, rng, initial_temperature, cooling, steps
):
    """SimulatedAnnealing._deploy_incremental as it was before."""
    current = Deployment.random(workflow, network, rng)
    operations = workflow.operation_names
    servers = network.server_names
    evaluator = MoveEvaluator(model, current)
    best = current.copy()
    best_value = evaluator.objective
    if len(servers) == 1:
        return best
    temperature = initial_temperature * max(evaluator.objective, 1e-12)
    for _ in range(steps):
        operation = rng.choice(operations)
        original = current.server_of(operation)
        alternatives = [s for s in servers if s != original]
        server = rng.choice(alternatives)
        outcome = evaluator.propose(operation, server)
        delta = outcome.delta
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            evaluator.commit()
            if outcome.objective < best_value:
                best_value = outcome.objective
                best = current.copy()
        temperature *= cooling
    return best


def oracle_exhaustive_best(workflow, network, model):
    """Exhaustive._deploy as it was: min() over the full enumeration."""
    return min(
        Exhaustive().enumerate(workflow, network, model),
        key=lambda em: em.cost.objective,
    ).deployment


def oracle_sampler(workflow, network, model, rng, samples):
    """SolutionSampler.run as it was before the refactor."""
    operations = workflow.operation_names
    servers = network.server_names
    scorer = TableScorer(model, operations)
    best_genome = None
    best_objective = float("inf")
    best_execution = float("inf")
    best_penalty = float("inf")
    worst_objective = float("-inf")
    for _ in range(samples):
        genome = tuple(rng.choice(servers) for _ in operations)
        execution, penalty, objective = scorer.components(genome)
        if best_genome is None or objective < best_objective:
            best_genome = genome
            best_objective = objective
        best_execution = min(best_execution, execution)
        best_penalty = min(best_penalty, penalty)
        worst_objective = max(worst_objective, objective)
    best_deployment = Deployment(dict(zip(operations, best_genome)))
    return best_deployment, best_execution, best_penalty, worst_objective


# ----------------------------------------------------------------------
# byte-identity with non-binding budgets
# ----------------------------------------------------------------------
@given(size=sizes, servers=server_counts, seed=seeds, structure=structures)
@settings(max_examples=25, deadline=None)
def test_hill_climbing_matches_frozen_oracle(size, servers, seed, structure):
    workflow, network, model = instance(size, servers, seed, structure)
    oracles = {
        False: oracle_hill_climbing,
        True: oracle_hill_climbing_incremental,
    }
    for use_incremental, oracle in oracles.items():
        expected = oracle(
            workflow, network, model, random.Random(seed), max_iterations=50
        )
        algorithm = HillClimbing(
            max_iterations=50, use_incremental=use_incremental
        )
        deployment, report = algorithm.deploy_with_report(
            workflow, network, cost_model=model, rng=random.Random(seed)
        )
        assert deployment.as_dict() == expected.as_dict()
        assert report is not None and report.exhausted


@given(size=sizes, servers=server_counts, seed=seeds, structure=structures)
@settings(max_examples=25, deadline=None)
def test_annealing_matches_frozen_oracle(size, servers, seed, structure):
    workflow, network, model = instance(size, servers, seed, structure)
    oracles = {
        False: oracle_simulated_annealing,
        True: oracle_simulated_annealing_incremental,
    }
    for use_incremental, oracle in oracles.items():
        expected = oracle(
            workflow,
            network,
            model,
            random.Random(seed),
            initial_temperature=0.5,
            cooling=0.99,
            steps=120,
        )
        algorithm = SimulatedAnnealing(
            cooling=0.99, steps=120, use_incremental=use_incremental
        )
        deployment, report = algorithm.deploy_with_report(
            workflow, network, cost_model=model, rng=random.Random(seed)
        )
        assert deployment.as_dict() == expected.as_dict()
        assert report is not None and report.exhausted


@given(
    size=st.integers(min_value=2, max_value=6),
    servers=st.integers(min_value=2, max_value=3),
    seed=seeds,
)
@settings(max_examples=15, deadline=None)
def test_exhaustive_matches_frozen_oracle(size, servers, seed):
    workflow, network, model = instance(size, servers, seed, None)
    expected = oracle_exhaustive_best(workflow, network, model)
    deployment, report = Exhaustive().deploy_with_report(
        workflow, network, cost_model=model, rng=random.Random(seed)
    )
    assert deployment.as_dict() == expected.as_dict()
    assert report is not None
    assert report.steps == len(network) ** len(workflow)


@given(size=sizes, servers=server_counts, seed=seeds, structure=structures)
@settings(max_examples=20, deadline=None)
def test_sampler_matches_frozen_oracle(size, servers, seed, structure):
    workflow, network, model = instance(size, servers, seed, structure)
    expected_best, execution, penalty, worst = oracle_sampler(
        workflow, network, model, random.Random(seed), samples=200
    )
    statistics = SolutionSampler(samples=200).run(
        workflow, network, model, random.Random(seed)
    )
    assert statistics.best_objective[0].as_dict() == expected_best.as_dict()
    assert statistics.samples == 200
    assert abs(statistics.best_execution_time - execution) <= TOLERANCE
    assert abs(statistics.best_time_penalty - penalty) <= TOLERANCE
    assert abs(statistics.worst_objective_value - worst) <= TOLERANCE
    assert statistics.report is not None and statistics.report.exhausted


# ----------------------------------------------------------------------
# the anytime contract under binding budgets
# ----------------------------------------------------------------------
def assert_curve_monotone(report):
    values = [value for _, value in report.curve]
    assert values, "curve must contain at least the starting state"
    assert all(b < a for a, b in zip(values, values[1:])), (
        "curve must be strictly improving at every stamp"
    )
    assert values[-1] == report.best_value


ANYTIME_ALGORITHMS = [
    lambda: HillClimbing(max_iterations=50),
    lambda: HillClimbing(max_iterations=50, use_incremental=False),
    lambda: SimulatedAnnealing(steps=150),
    lambda: GeneticAlgorithm(population_size=8, generations=10),
]


@given(
    size=sizes,
    servers=server_counts,
    seed=seeds,
    structure=structures,
    max_evals=st.integers(min_value=1, max_value=40),
    algorithm_index=st.integers(
        min_value=0, max_value=len(ANYTIME_ALGORITHMS) - 1
    ),
)
@settings(max_examples=40, deadline=None)
def test_binding_eval_budget_returns_valid_incumbent(
    size, servers, seed, structure, max_evals, algorithm_index
):
    workflow, network, model = instance(size, servers, seed, structure)
    algorithm = ANYTIME_ALGORITHMS[algorithm_index]()
    deployment, report = algorithm.deploy_with_report(
        workflow,
        network,
        cost_model=model,
        rng=random.Random(seed),
        budget=SearchBudget(max_evals=max_evals),
    )
    # the incumbent is always a valid, complete deployment
    assert deployment.is_complete(workflow)
    assert report is not None
    assert report.stop_reason in (STOP_MAX_EVALS, STOP_EXHAUSTED)
    assert report.evaluations >= 1
    assert_curve_monotone(report)
    # the reported incumbent value is the deployment's actual objective
    assert (
        abs(model.evaluate(deployment).objective - report.best_value)
        <= TOLERANCE
    )


@given(
    size=sizes,
    servers=server_counts,
    seed=seeds,
    max_steps=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=20, deadline=None)
def test_binding_step_budget(size, servers, seed, max_steps):
    workflow, network, model = instance(size, servers, seed, None)
    deployment, report = SimulatedAnnealing(steps=200).deploy_with_report(
        workflow,
        network,
        cost_model=model,
        rng=random.Random(seed),
        budget=SearchBudget(max_steps=max_steps),
    )
    assert deployment.is_complete(workflow)
    assert report.stop_reason == STOP_MAX_STEPS
    assert report.steps == max_steps
    assert_curve_monotone(report)


@given(size=sizes, servers=server_counts, seed=seeds)
@settings(max_examples=20, deadline=None)
def test_deterministic_deadline_mid_search(size, servers, seed):
    """A deadline firing mid-search still yields a complete incumbent."""
    workflow, network, model = instance(size, servers, seed, None)
    # StepClock advances 1 ms per reading; with a 5 ms deadline the run
    # is cut after a handful of steps, deterministically
    deployment, report = SimulatedAnnealing(steps=500).deploy_with_report(
        workflow,
        network,
        cost_model=model,
        rng=random.Random(seed),
        budget=SearchBudget(deadline_s=0.005),
        clock=StepClock(step_s=0.001),
    )
    assert deployment.is_complete(workflow)
    assert report.stop_reason == STOP_DEADLINE
    assert report.steps < 500
    assert_curve_monotone(report)
    assert (
        abs(model.evaluate(deployment).objective - report.best_value)
        <= TOLERANCE
    )


@given(size=sizes, servers=server_counts, seed=seeds, structure=structures)
@settings(max_examples=20, deadline=None)
def test_unbudgeted_curves_monotone(size, servers, seed, structure):
    workflow, network, model = instance(size, servers, seed, structure)
    for make in ANYTIME_ALGORITHMS:
        _, report = make().deploy_with_report(
            workflow, network, cost_model=model, rng=random.Random(seed)
        )
        assert report.exhausted
        assert_curve_monotone(report)
