"""Property-based tests: algorithm contracts over random instances."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import algorithm_registry
from repro.algorithms.exhaustive import Exhaustive
from repro.algorithms.fair_load import FairLoad
from repro.algorithms.heavy_ops import HeavyOpsLargeMsgs
from repro.algorithms.line_line import LineLine
from repro.core.cost import CostModel
from repro.workloads.generator import (
    GraphStructure,
    line_workflow,
    random_bus_network,
    random_graph_workflow,
    random_line_network,
)
from repro.workloads.parameters import ClassCParameters

sizes = st.integers(min_value=1, max_value=22)
server_counts = st.integers(min_value=1, max_value=5)
seeds = st.integers(min_value=0, max_value=10_000)
structures = st.sampled_from(list(GraphStructure))

BUS_SUITE = (
    "FairLoad",
    "FL-TieResolver",
    "FL-TieResolver2",
    "FL-MergeMsgEnds",
    "HeavyOps-LargeMsgs",
    "Random",
    "HillClimbing",
    "SimulatedAnnealing",
)


@given(size=sizes, servers=server_counts, seed=seeds, structure=structures)
@settings(max_examples=25, deadline=None)
def test_every_bus_algorithm_returns_valid_complete_mappings(
    size, servers, seed, structure
):
    workflow = random_graph_workflow(size, structure, seed=seed)
    network = random_bus_network(servers, seed=seed + 1)
    model = CostModel(workflow, network)
    registry = algorithm_registry()
    for name in BUS_SUITE:
        algorithm = registry[name]()
        if name == "SimulatedAnnealing":
            algorithm = registry[name](steps=50)
        deployment = algorithm.deploy(
            workflow, network, cost_model=model, rng=seed
        )
        deployment.validate(workflow, network)  # raises on violation


@given(size=sizes, servers=server_counts, seed=seeds)
@settings(max_examples=25, deadline=None)
def test_bus_algorithms_deterministic_per_seed(size, servers, seed):
    workflow = line_workflow(size, seed=seed)
    network = random_bus_network(servers, seed=seed + 1)
    registry = algorithm_registry()
    for name in ("FL-TieResolver", "FL-TieResolver2", "FL-MergeMsgEnds"):
        algorithm = registry[name]()
        d1 = algorithm.deploy(workflow, network, rng=seed)
        d2 = algorithm.deploy(workflow, network, rng=seed)
        assert d1 == d2, name


@given(size=sizes, servers=server_counts, seed=seeds)
@settings(max_examples=25, deadline=None)
def test_fair_load_budget_conservation(size, servers, seed):
    """After Fair Load, assigned cycles equal the total exactly."""
    workflow = line_workflow(size, seed=seed)
    network = random_bus_network(servers, seed=seed + 1)
    deployment = FairLoad().deploy(workflow, network)
    assigned = sum(
        workflow.operation(op).cycles for op, _ in deployment
    )
    assert abs(assigned - workflow.total_cycles) <= 1e-6


@given(size=st.integers(min_value=2, max_value=22), seed=seeds)
@settings(max_examples=25, deadline=None)
def test_fair_load_no_server_exceeds_ideal_by_more_than_one_op(size, seed):
    """Worst-fit bound: a server's overshoot is less than its last op."""
    workflow = line_workflow(size, seed=seed)
    network = random_bus_network(3, seed=seed + 1)
    model = CostModel(workflow, network)
    deployment = FairLoad().deploy(workflow, network, cost_model=model)
    heaviest = max(op.cycles for op in workflow)
    for server in network:
        assigned = sum(
            workflow.operation(op).cycles
            for op in deployment.operations_on(server.name)
        )
        assert assigned <= model.ideal_cycles(server.name) + heaviest


@given(size=st.integers(min_value=1, max_value=7), seed=seeds)
@settings(max_examples=15, deadline=None)
def test_exhaustive_dominates_heuristics_on_tiny_instances(size, seed):
    workflow = line_workflow(size, seed=seed)
    network = random_bus_network(2, seed=seed + 1)
    model = CostModel(workflow, network)
    optimum = Exhaustive().best(workflow, network, model).cost.objective
    for name in ("FairLoad", "HeavyOps-LargeMsgs", "FL-TieResolver2"):
        deployment = algorithm_registry()[name]().deploy(
            workflow, network, cost_model=model, rng=seed
        )
        assert model.objective(deployment) >= optimum - 1e-12, name


@given(size=sizes, seed=seeds)
@settings(max_examples=25, deadline=None)
def test_holm_equals_fair_load_on_gigabit_bus(size, seed):
    """With cheap communication nothing is 'large': HOLM == Fair Load."""
    parameters = ClassCParameters.paper().with_fixed_bus_speed(1000e6)
    workflow = line_workflow(size, seed=seed)
    network = random_bus_network(3, seed=seed + 1, parameters=parameters)
    holm = HeavyOpsLargeMsgs().deploy(workflow, network)
    fair = FairLoad().deploy(workflow, network)
    assert holm.as_dict() == fair.as_dict()


@given(size=st.integers(min_value=2, max_value=15), seed=seeds, structure=structures)
@settings(max_examples=20, deadline=None)
def test_holm_collapses_when_every_transfer_dominates(size, seed, structure):
    """When every message's transfer time dwarfs all processing, HOLM's
    large-message rule must fire on every step, so the whole (connected)
    workflow ends on a single server."""
    workflow = random_graph_workflow(size, structure, seed=seed)
    huge = workflow.scaled(message_factor=1e6, name="huge-messages")
    network = random_bus_network(
        3,
        seed=seed + 1,
        parameters=ClassCParameters.paper().with_fixed_bus_speed(1e6),
    )
    deployment = HeavyOpsLargeMsgs().deploy(huge, network)
    if len(huge.messages) > 0:
        assert len(set(deployment.as_dict().values())) == 1
        from repro.core.cost import CostModel

        model = CostModel(huge, network)
        assert model.total_communication_time(deployment) == 0.0


@given(
    size=st.integers(min_value=3, max_value=22),
    servers=st.integers(min_value=2, max_value=5),
    seed=seeds,
)
@settings(max_examples=25, deadline=None)
def test_line_line_blocks_are_contiguous(size, servers, seed):
    workflow = line_workflow(size, seed=seed)
    network = random_line_network(servers, seed=seed + 1)
    deployment = LineLine(direction="ltr").deploy(workflow, network)
    order = workflow.line_order()
    seen = [deployment.server_of(op) for op in order]
    compact = [s for i, s in enumerate(seen) if i == 0 or seen[i - 1] != s]
    assert len(compact) == len(set(compact))
    if size >= servers:
        assert len(set(seen)) == servers  # every server hosts something
