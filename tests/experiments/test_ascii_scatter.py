"""Unit tests for the ASCII scatter renderer."""

import pytest

from repro.experiments.reporting import ascii_scatter


def test_markers_and_legend():
    plot = ascii_scatter(
        {"FairLoad": [(0.1, 0.01)], "HOLM": [(0.2, 0.005)]},
        width=40,
        height=10,
    )
    assert "A=FairLoad" in plot and "B=HOLM" in plot
    assert "A" in plot and "B" in plot
    assert "execution time" in plot and "time penalty" in plot


def test_title_rendered():
    plot = ascii_scatter({"X": [(1.0, 1.0)]}, title="fig6")
    assert plot.splitlines()[0] == "fig6"


def test_empty_points():
    plot = ascii_scatter({})
    assert "(no points)" in plot


def test_overlap_marker():
    plot = ascii_scatter(
        {"one": [(0.5, 0.5)], "two": [(0.5, 0.5)]}, width=10, height=5
    )
    assert "*" in plot


def test_same_algorithm_overlap_keeps_marker():
    plot = ascii_scatter({"one": [(0.5, 0.5), (0.5, 0.5)]}, width=10, height=5)
    grid_rows = [line for line in plot.splitlines() if line.startswith("|")]
    assert all("*" not in row for row in grid_rows)


def test_extent_in_axis_labels():
    plot = ascii_scatter({"X": [(0.25, 0.004)]})
    assert "0.25" in plot and "0.004" in plot


def test_plot_area_validated():
    with pytest.raises(ValueError):
        ascii_scatter({"X": [(1, 1)]}, width=4, height=2)


def test_grid_dimensions():
    plot = ascii_scatter({"X": [(1.0, 1.0)]}, width=30, height=8)
    rows = [line for line in plot.splitlines() if line.startswith("|")]
    assert len(rows) == 8
    assert all(len(row) == 31 for row in rows)  # '|' + width


def test_origin_anchoring():
    """A point at (max, 0) must land in the bottom-right corner."""
    plot = ascii_scatter(
        {"X": [(2.0, 0.0)], "Y": [(1.0, 1.0)]}, width=20, height=6
    )
    rows = [line for line in plot.splitlines() if line.startswith("|")]
    assert rows[-1].rstrip().endswith("A")  # X is marker A, y=0 -> bottom
