"""Unit tests for the experiment configuration and runner."""

import pytest

from repro.algorithms.fair_load import FairLoad
from repro.exceptions import ExperimentError
from repro.experiments.runner import (
    DEFAULT_ALGORITHMS,
    RANDOM_BASELINE,
    ExperimentConfig,
    ExperimentRunner,
)


class TestExperimentConfig:
    def test_validation(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(workflow_kind="spiral")
        with pytest.raises(ExperimentError):
            ExperimentConfig(network_kind="torus")
        with pytest.raises(ExperimentError):
            ExperimentConfig(num_operations=0)
        with pytest.raises(ExperimentError):
            ExperimentConfig(repetitions=0)

    def test_instances_are_deterministic(self):
        config = ExperimentConfig(repetitions=2, seed=5)
        w1, n1 = config.instance(0)
        w2, n2 = config.instance(0)
        assert [op.cycles for op in w1] == [op.cycles for op in w2]
        assert [s.power_hz for s in n1] == [s.power_hz for s in n2]

    def test_instances_vary_by_index(self):
        config = ExperimentConfig(num_operations=30, seed=5)
        w0, _ = config.instance(0)
        w1, _ = config.instance(1)
        assert [op.cycles for op in w0] != [op.cycles for op in w1]

    def test_bus_speed_pinning(self):
        config = ExperimentConfig(bus_speed_bps=1e6, seed=1)
        for index in range(3):
            _, network = config.instance(index)
            assert network.uniform_speed_bps == 1e6

    def test_workflow_kinds(self):
        for kind in ("line", "bushy", "lengthy", "hybrid"):
            config = ExperimentConfig(workflow_kind=kind, num_operations=15)
            workflow, _ = config.instance(0)
            assert len(workflow) == 15
            assert workflow.is_line() == (kind == "line")

    def test_network_kinds(self):
        line_config = ExperimentConfig(network_kind="line")
        _, network = line_config.instance(0)
        assert network.is_line()

    def test_describe_and_k(self):
        config = ExperimentConfig(
            num_operations=19, num_servers=5, bus_speed_bps=1e6
        )
        assert config.operations_per_server == pytest.approx(3.8)
        assert "1Mbps" in config.describe()
        labelled = config.with_overrides(label="custom")
        assert labelled.describe() == "custom"


class TestExperimentRunner:
    def test_rejects_empty_suite(self):
        with pytest.raises(ExperimentError):
            ExperimentRunner([])

    def test_accepts_names_and_instances(self):
        runner = ExperimentRunner(["FairLoad", FairLoad()])
        assert runner.algorithm_names == ("FairLoad", "FairLoad")

    def test_run_produces_records_for_all(self):
        runner = ExperimentRunner(DEFAULT_ALGORITHMS)
        config = ExperimentConfig(
            num_operations=8, num_servers=3, repetitions=2, seed=1
        )
        result = runner.run(config)
        assert len(result.records) == len(DEFAULT_ALGORITHMS) * 2
        assert set(result.algorithms()) == set(DEFAULT_ALGORITHMS)
        for record in result.records:
            assert record.cost.execution_time > 0
            assert record.cost.time_penalty >= 0

    def test_random_baseline_appends_records(self):
        runner = ExperimentRunner(
            ["FairLoad"], random_baseline_samples=64
        )
        config = ExperimentConfig(
            num_operations=6, num_servers=3, repetitions=2, seed=3
        )
        result = runner.run(config)
        baseline = [
            r for r in result.records if r.algorithm == RANDOM_BASELINE
        ]
        assert len(baseline) == 2
        for record in baseline:
            assert record.deployment is not None
            assert record.cost.execution_time > 0
        # the baseline is seeded off (seed, repetition): reruns agree
        again = runner.run(config)
        assert [
            r.cost.objective
            for r in again.records
            if r.algorithm == RANDOM_BASELINE
        ] == [r.cost.objective for r in baseline]

    def test_random_baseline_samples_validated(self):
        with pytest.raises(ExperimentError):
            ExperimentRunner(["FairLoad"], random_baseline_samples=-1)

    def test_results_reproducible(self):
        runner = ExperimentRunner(["FairLoad", "HeavyOps-LargeMsgs"])
        config = ExperimentConfig(
            num_operations=8, num_servers=3, repetitions=2, seed=2
        )
        r1 = runner.run(config)
        r2 = runner.run(config)
        assert [rec.cost.execution_time for rec in r1.records] == [
            rec.cost.execution_time for rec in r2.records
        ]

    def test_scatter_points_shape(self):
        runner = ExperimentRunner(["FairLoad"])
        config = ExperimentConfig(
            num_operations=6, num_servers=2, repetitions=3, seed=3
        )
        points = runner.run(config).scatter_points()
        assert list(points) == ["FairLoad"]
        assert len(points["FairLoad"]) == 3

    def test_means_and_winners(self):
        runner = ExperimentRunner(["FairLoad", "HeavyOps-LargeMsgs"])
        config = ExperimentConfig(
            num_operations=10,
            num_servers=3,
            repetitions=3,
            seed=4,
            bus_speed_bps=1e6,
        )
        result = runner.run(config)
        for name in result.algorithms():
            assert result.mean_execution_time(name) > 0
            assert result.mean_objective(name) > 0
        assert result.winner_by_execution() in result.algorithms()
        assert result.winner_by_penalty() in result.algorithms()
        with pytest.raises(ExperimentError):
            result.mean_execution_time("nope")

    def test_summary_table(self):
        runner = ExperimentRunner(["FairLoad"])
        config = ExperimentConfig(
            num_operations=6, num_servers=2, repetitions=2, seed=5
        )
        table = runner.run(config).summary_table()
        assert len(table) == 1
        assert "FairLoad" in table.render()

    def test_sweep_table(self):
        runner = ExperimentRunner(["FairLoad"])
        configs = [
            ExperimentConfig(
                num_operations=6,
                num_servers=2,
                repetitions=1,
                seed=6,
                bus_speed_bps=speed,
                label=f"{speed:g}",
            )
            for speed in (1e6, 100e6)
        ]
        table = runner.sweep_table(configs, metric="execution")
        assert len(table) == 2
        with pytest.raises(ExperimentError):
            runner.sweep_table(configs, metric="beauty")
