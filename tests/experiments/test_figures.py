"""Unit tests for the one-call figure reproduction API."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.figures import (
    FIGURES,
    ReproductionScale,
    fig6,
    quality_tables,
    reproduce_all,
)


def tiny_scale():
    return ReproductionScale(
        repetitions=2, quality_experiments=1, quality_samples=50
    )


class TestScale:
    def test_named_scales(self):
        quick = ReproductionScale.named("quick")
        paper = ReproductionScale.named("paper")
        assert paper.quality_samples == 32_000
        assert paper.quality_experiments == 50
        assert quick.quality_samples < paper.quality_samples

    def test_unknown_scale_rejected(self):
        with pytest.raises(ExperimentError):
            ReproductionScale.named("galactic")


class TestProducers:
    def test_fig6_writes_expected_files(self, tmp_path):
        paths = fig6(tmp_path, tiny_scale())
        names = {path.name for path in paths}
        assert "fig6_line_bus_1Mbps.txt" in names
        assert "fig6_line_bus_100Mbps.txt" in names
        assert "fig6_weight_sensitivity.txt" in names
        for path in paths:
            assert path.exists() and path.stat().st_size > 0

    def test_quality_tables_cover_both_shapes(self, tmp_path):
        paths = quality_tables(tmp_path, tiny_scale())
        names = {path.name for path in paths}
        assert "quality_line_1Mbps.txt" in names
        assert "quality_hybrid_100Mbps.txt" in names
        content = (tmp_path / "quality_line_1Mbps.txt").read_text()
        assert "HeavyOps-LargeMsgs" in content

    def test_fig7_fig8_writes_pooled_and_per_structure(self, tmp_path):
        from repro.experiments.figures import fig7_fig8

        paths = fig7_fig8(tmp_path, tiny_scale())
        names = {path.name for path in paths}
        assert "fig7_graph_bus_1Mbps.txt" in names
        assert "fig8_bushy_1Mbps.txt" in names
        assert "fig8_lengthy_100Mbps.txt" in names
        pooled = (tmp_path / "fig7_graph_bus_1Mbps.txt").read_text()
        assert "HeavyOps-LargeMsgs" in pooled
        assert "legend:" in pooled  # the ASCII scatter rendering

    def test_registry_covers_all_producers(self):
        assert set(FIGURES) == {"fig6", "fig7_fig8", "quality"}


def test_reproduce_all_quick_substitute(tmp_path, monkeypatch):
    """reproduce_all drives every producer with the resolved scale."""
    calls = []

    def fake_producer(output_dir, scale):
        calls.append((output_dir, scale))
        return []

    monkeypatch.setitem(FIGURES, "fig6", fake_producer)
    monkeypatch.setitem(FIGURES, "fig7_fig8", fake_producer)
    monkeypatch.setitem(FIGURES, "quality", fake_producer)
    paths = reproduce_all(tmp_path, scale="quick")
    assert paths == []
    assert len(calls) == 3
    assert all(s == ReproductionScale.named("quick") for _, s in calls)


def test_cli_figures_command(tmp_path, capsys, monkeypatch):
    from repro.cli import main
    import repro.experiments.figures as figures_module

    def fake_reproduce_all(output, scale="quick"):
        target = tmp_path / "one.txt"
        target.write_text("data")
        return [target]

    monkeypatch.setattr(
        figures_module, "reproduce_all", fake_reproduce_all
    )
    code = main(["figures", "--output", str(tmp_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "1 files under" in out
