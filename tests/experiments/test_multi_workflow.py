"""Unit tests for the multi-workflow deployment extension."""

import pytest

from repro.algorithms.fair_load import FairLoad
from repro.algorithms.heavy_ops import HeavyOpsLargeMsgs
from repro.core.cost import CostModel
from repro.exceptions import ExperimentError
from repro.experiments.multi_workflow import (
    combine_workflows,
    deploy_workflows,
    split_deployment,
)
from repro.workloads.generator import line_workflow


class TestCombine:
    def test_rejects_empty(self):
        with pytest.raises(ExperimentError):
            combine_workflows([])

    def test_disjoint_union(self, line3, line5):
        combined = combine_workflows([line3, line5])
        assert len(combined) == len(line3) + len(line5)
        assert len(combined.messages) == len(line3.messages) + len(
            line5.messages
        )
        assert "w0.A" in combined and "w1.O1" in combined
        # components stay disconnected
        assert combined.predecessors("w1.O1") == ()
        assert combined.successors("w0.C") == ()

    def test_name_collisions_resolved_by_prefix(self, line3):
        combined = combine_workflows([line3, line3.copy()])
        assert "w0.A" in combined and "w1.A" in combined

    def test_structure_preserved(self, xor_diamond, line3):
        combined = combine_workflows([xor_diamond, line3])
        assert combined.message(
            "w0.choice", "w0.left"
        ).probability == pytest.approx(0.7)
        assert (
            combined.operation("w0.choice").kind
            is xor_diamond.operation("choice").kind
        )


class TestSplit:
    def test_roundtrip(self, line3, line5, bus3):
        workflows = [line3, line5]
        combined = combine_workflows(workflows)
        deployment = FairLoad().deploy(combined, bus3)
        parts = split_deployment(deployment, workflows)
        assert parts[0].is_complete(line3)
        assert parts[1].is_complete(line5)
        assert parts[0].server_of("A") == deployment.server_of("w0.A")


class TestDeployWorkflows:
    def test_returns_per_workflow_mappings_and_loads(
        self, line3, line5, bus3
    ):
        parts, loads = deploy_workflows(
            [line3, line5], bus3, HeavyOpsLargeMsgs()
        )
        assert len(parts) == 2
        assert parts[0].is_complete(line3)
        assert set(loads) == set(bus3.server_names)
        assert sum(loads.values()) > 0

    def test_combined_execution_is_max_of_components(self, line3, bus3):
        """Disjoint components run concurrently: the union's Texecute is
        the max over the per-workflow times under the same placement."""
        other = line3.scaled(cycle_factor=5.0, name="heavy")
        combined = combine_workflows([line3, other])
        model = CostModel(combined, bus3)
        deployment = FairLoad().deploy(combined, bus3, cost_model=model)
        union_time = model.execution_time(deployment)
        parts = split_deployment(deployment, [line3, other])
        part_times = [
            CostModel(line3, bus3).execution_time(parts[0]),
            CostModel(other, bus3).execution_time(parts[1]),
        ]
        assert union_time == pytest.approx(max(part_times))

    def test_fairness_considers_total_portfolio(self, bus3):
        """Deploying jointly balances the combined load."""
        workflows = [line_workflow(8, seed=s) for s in range(3)]
        _, loads = deploy_workflows(workflows, bus3, FairLoad())
        values = list(loads.values())
        mean = sum(values) / len(values)
        # worst-fit keeps every server near the mean
        assert max(abs(v - mean) for v in values) <= mean
