"""Unit tests for the statistics helpers."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.runner import ExperimentConfig, ExperimentRunner
from repro.experiments.stats import (
    comparison_table,
    summarize,
    win_matrix,
)


class TestSummarize:
    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            summarize([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ExperimentError):
            summarize([1.0], confidence=1.0)

    def test_single_sample(self):
        stats = summarize([5.0])
        assert stats.mean == 5.0
        assert stats.std == 0.0
        assert stats.ci_low == stats.ci_high == 5.0

    def test_known_values(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        stats = summarize(samples)
        assert stats.count == 5
        assert stats.mean == pytest.approx(3.0)
        assert stats.std == pytest.approx(1.5811388, rel=1e-6)
        # t(0.975, df=4) = 2.7764; half-width = t * std / sqrt(5)
        assert stats.half_width == pytest.approx(
            2.7764451 * 1.5811388 / 5**0.5, rel=1e-5
        )
        assert stats.ci_low < stats.mean < stats.ci_high

    def test_interval_symmetric_about_mean(self):
        stats = summarize([0.1, 0.2, 0.15, 0.17])
        assert stats.mean - stats.ci_low == pytest.approx(
            stats.ci_high - stats.mean
        )

    def test_wider_confidence_wider_interval(self):
        samples = [1.0, 2.0, 3.0]
        assert (
            summarize(samples, 0.99).half_width
            > summarize(samples, 0.90).half_width
        )

    def test_format(self):
        text = summarize([0.001, 0.002]).format()
        assert "+/-" in text and "ms" in text


@pytest.fixture(scope="module")
def result():
    runner = ExperimentRunner(["FairLoad", "HeavyOps-LargeMsgs", "Random"])
    config = ExperimentConfig(
        num_operations=10,
        num_servers=3,
        bus_speed_bps=1e6,
        repetitions=6,
        seed=13,
    )
    return runner.run(config)


class TestWinMatrix:
    def test_unknown_metric_rejected(self, result):
        with pytest.raises(ExperimentError):
            win_matrix(result, metric="style")

    def test_counts_bounded_by_repetitions(self, result):
        matrix = win_matrix(result, metric="execution")
        assert all(0 <= count <= 6 for count in matrix.values())

    def test_antisymmetric_without_ties(self, result):
        matrix = win_matrix(result, metric="execution")
        for (a, b), wins in matrix.items():
            losses = matrix[(b, a)]
            assert wins + losses <= 6  # ties possible, never double counted

    def test_holm_beats_everything_on_slow_bus(self, result):
        matrix = win_matrix(result, metric="execution")
        assert matrix[("HeavyOps-LargeMsgs", "FairLoad")] == 6
        assert matrix[("HeavyOps-LargeMsgs", "Random")] == 6


class TestComparisonTable:
    def test_renders_all_algorithms(self, result):
        table = comparison_table(result, metric="execution")
        text = table.render()
        for name in ("FairLoad", "HeavyOps-LargeMsgs", "Random"):
            assert name in text
        assert "+/-" in text

    def test_unknown_metric_rejected(self, result):
        with pytest.raises(ExperimentError):
            comparison_table(result, metric="style")
