"""Unit tests for incremental deployment adaptation."""

import pytest

from repro.algorithms.fair_load import FairLoad
from repro.algorithms.heavy_ops import HeavyOpsLargeMsgs
from repro.core.cost import CostModel
from repro.core.mapping import Deployment
from repro.core.workflow import Operation
from repro.experiments.incremental import adaptation_report, patch_deployment


def grown(workflow, extra_cycles=25e6):
    """A copy of the line workflow with one appended operation."""
    new = workflow.copy(f"{workflow.name}-grown")
    tail = new.line_order()[-1]
    new.add_operation(Operation("NEW", extra_cycles))
    new.connect(tail, "NEW", 5_000)
    return new


def shrunk(workflow):
    """A copy of the line workflow with the last operation removed."""
    order = workflow.line_order()
    new_workflow = workflow.copy(f"{workflow.name}-shrunk")
    # rebuild without the tail (Workflow has no removal API by design:
    # workflows are immutable problem statements)
    from repro.core.workflow import Workflow

    rebuilt = Workflow(new_workflow.name)
    rebuilt.add_operations(
        workflow.operation(name) for name in order[:-1]
    )
    for a, b in zip(order[:-2], order[1:-1]):
        rebuilt.add_transition(workflow.message(a, b))
    return rebuilt


class TestPatchDeployment:
    def test_existing_assignments_kept(self, line5, bus3):
        old = FairLoad().deploy(line5, bus3)
        new_workflow = grown(line5)
        patched = patch_deployment(new_workflow, bus3, old)
        for operation, server in old:
            assert patched.server_of(operation) == server

    def test_new_operation_placed_and_complete(self, line5, bus3):
        old = FairLoad().deploy(line5, bus3)
        new_workflow = grown(line5)
        patched = patch_deployment(new_workflow, bus3, old)
        patched.validate(new_workflow, bus3)
        assert "NEW" in patched

    def test_new_operation_goes_to_emptiest_budget(self, line5):
        from repro.network.topology import bus_network

        network = bus_network([1e9, 1e9], speed_bps=100e6)
        old = Deployment(
            {"O1": "S1", "O2": "S1", "O3": "S1", "O4": "S1", "O5": "S1"}
        )
        new_workflow = grown(line5)
        patched = patch_deployment(new_workflow, network, old)
        assert patched.server_of("NEW") == "S2"

    def test_removed_operations_dropped(self, line5, bus3):
        old = FairLoad().deploy(line5, bus3)
        new_workflow = shrunk(line5)
        patched = patch_deployment(new_workflow, bus3, old)
        patched.validate(new_workflow, bus3)
        assert "O5" not in patched

    def test_noop_change_is_identity(self, line5, bus3):
        old = FairLoad().deploy(line5, bus3)
        patched = patch_deployment(line5, bus3, old)
        assert patched == old


class TestAdaptationReport:
    def test_report_shape(self, line5, bus3):
        old = FairLoad().deploy(line5, bus3)
        new_workflow = grown(line5)
        report = adaptation_report(
            new_workflow, bus3, old, HeavyOpsLargeMsgs(), rng=1
        )
        report.patched.validate(new_workflow, bus3)
        report.redeployed.validate(new_workflow, bus3)
        assert report.patched_cost.execution_time > 0
        assert isinstance(report.patch_overhead, float)
        # NEW is not a move: it had no previous assignment
        assert "NEW" not in report.moved_by_redeployment

    def test_moved_operations_counted(self, line5, bus3):
        old = Deployment.all_on_one(line5, "S1")
        report = adaptation_report(
            grown(line5), bus3, old, FairLoad(), rng=2
        )
        # Fair Load spreads what was lumped: most old ops move
        assert len(report.moved_by_redeployment) >= 3

    def test_patch_cheaper_in_churn(self, line5, bus3):
        """The whole point: the patch moves nothing that existed."""
        old = FairLoad().deploy(line5, bus3)
        new_workflow = grown(line5)
        report = adaptation_report(
            new_workflow, bus3, old, FairLoad(), rng=3
        )
        patched_moves = [
            name
            for name in new_workflow.operation_names
            if old.get(name) is not None
            and report.patched.server_of(name) != old.get(name)
        ]
        assert patched_moves == []
