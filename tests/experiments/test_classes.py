"""Unit tests for the Class A/B/C experiment definitions."""

import pytest

from repro.experiments.classes import (
    FIG6_BUS_SPEEDS,
    class_a_configs,
    class_b_configs,
    class_c_configs,
)
from repro.experiments.runner import ExperimentRunner


def test_fig6_speeds_match_paper():
    assert FIG6_BUS_SPEEDS == (1e6, 100e6)


class TestClassA:
    def test_sweep_dimensions(self):
        configs = class_a_configs(repetitions=1)
        assert len(configs) == 4 * 4  # speeds x message scales
        labels = {c.label for c in configs}
        assert len(labels) == len(configs)

    def test_cpu_side_is_pinned(self):
        for config in class_a_configs(repetitions=1):
            assert len(config.parameters.operation_cycles.values) == 1
            assert len(config.parameters.server_power_hz.values) == 1

    def test_speed_is_pinned_per_config(self):
        for config in class_a_configs(repetitions=1):
            assert config.bus_speed_bps is not None


class TestClassB:
    def test_sweep_dimensions(self):
        configs = class_b_configs(repetitions=1)
        assert len(configs) == 3 * 3  # cycles x powers

    def test_communication_side_is_pinned(self):
        for config in class_b_configs(repetitions=1):
            assert len(config.parameters.line_speed_bps.values) == 1
            assert len(config.parameters.message_mixture.classes) == 1


class TestClassC:
    def test_one_config_per_bus_speed(self):
        configs = class_c_configs(repetitions=1)
        assert [c.bus_speed_bps for c in configs] == list(FIG6_BUS_SPEEDS)

    def test_table6_mixtures_survive(self):
        for config in class_c_configs(repetitions=1):
            assert config.parameters.operation_cycles.values == (
                10e6,
                20e6,
                30e6,
            )
            assert config.parameters.server_power_hz.values == (1e9, 2e9, 3e9)

    def test_workflow_kind_parameter(self):
        configs = class_c_configs(workflow_kind="bushy", repetitions=1)
        assert all(c.workflow_kind == "bushy" for c in configs)


def test_all_classes_runnable_end_to_end():
    """Smoke: one tiny repetition of each class through the runner."""
    runner = ExperimentRunner(["FairLoad", "HeavyOps-LargeMsgs"])
    configs = (
        class_a_configs(
            num_operations=6, num_servers=2, repetitions=1,
            speeds=(1e6,), message_scales=("medium",),
        )
        + class_b_configs(
            num_operations=6, num_servers=2, repetitions=1,
            cycles=(50e6,), powers=(2e9,),
        )
        + class_c_configs(
            num_operations=6, num_servers=2, repetitions=1,
            bus_speeds=(100e6,),
        )
    )
    results = runner.run_many(configs)
    assert len(results) == 3
    for result in results:
        assert len(result.records) == 2
