"""Unit tests for the claims-as-code verification battery."""

import pytest

from repro.experiments.claims import (
    Claim,
    ClaimReport,
    PAPER_CLAIMS,
    verify_claims,
)


def test_every_paper_claim_reproduces():
    """The headline assertion of the whole repository."""
    report = verify_claims(repetitions=6, seed=42, quality_samples=500)
    failed = [claim.id for claim, ok in report.outcomes if not ok]
    assert report.all_pass, f"claims failed: {failed}"
    assert report.passed == len(PAPER_CLAIMS)


@pytest.mark.parametrize("seed", (7, 99, 2026))
def test_claims_hold_across_seeds(seed):
    """The narrative must not depend on a lucky seed."""
    report = verify_claims(repetitions=4, seed=seed, quality_samples=300)
    failed = [claim.id for claim, ok in report.outcomes if not ok]
    assert report.all_pass, f"seed {seed}: {failed}"


def test_claim_battery_covers_the_narrative():
    ids = {claim.id for claim in PAPER_CLAIMS}
    assert len(ids) == len(PAPER_CLAIMS) >= 8  # unique, comprehensive
    for claim in PAPER_CLAIMS:
        assert claim.text


def test_report_table_renders_verdicts():
    report = verify_claims(
        repetitions=2,
        seed=1,
        quality_samples=100,
        claims=PAPER_CLAIMS[:2],
    )
    text = report.table().render()
    assert "PASS" in text or "FAIL" in text
    assert PAPER_CLAIMS[0].id in text


def test_failing_claim_reported():
    impossible = Claim("never", "water flows uphill", lambda evidence: False)
    report = verify_claims(
        repetitions=2, seed=1, quality_samples=100, claims=(impossible,)
    )
    assert not report.all_pass
    assert report.passed == 0
    assert "FAIL" in report.table().render()


def test_evidence_is_cached_across_claims():
    """Claims sharing a panel must not re-run it (keeps the battery fast)."""
    calls = []

    def probe(evidence):
        result = evidence.result("line", 1e6)
        calls.append(id(result))
        return True

    claims = (Claim("a", "a", probe), Claim("b", "b", probe))
    verify_claims(repetitions=2, seed=1, quality_samples=100, claims=claims)
    assert len(set(calls)) == 1


def test_cli_claims_command(capsys):
    from repro.cli import main

    code = main(["claims", "--repetitions", "4", "--seed", "42"])
    out = capsys.readouterr().out
    assert "reproduction verdicts" in out
    assert code == 0
