"""Unit tests for the deviation-from-sampled-best quality protocol."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.quality import QualityProtocol
from repro.experiments.runner import ExperimentConfig


@pytest.fixture
def small_config():
    return ExperimentConfig(
        num_operations=7, num_servers=3, repetitions=1, seed=11,
        bus_speed_bps=1e6,
    )


def test_rejects_zero_experiments():
    with pytest.raises(ExperimentError):
        QualityProtocol(experiments=0)


def test_report_structure(small_config):
    protocol = QualityProtocol(
        algorithms=("FairLoad", "HeavyOps-LargeMsgs"),
        experiments=2,
        samples=100,
    )
    report = protocol.run(small_config)
    assert set(report.algorithms()) == {"FairLoad", "HeavyOps-LargeMsgs"}
    assert len(report.records) == 4  # 2 algorithms x 2 experiments
    for name in report.algorithms():
        worst = report.worst_case(name)
        mean = report.mean(name)
        assert worst[0] >= mean[0] >= 0
        assert worst[1] >= mean[1] >= 0
    with pytest.raises(ExperimentError):
        report.worst_case("nope")


def test_deviations_are_nonnegative(small_config):
    protocol = QualityProtocol(experiments=2, samples=100)
    report = protocol.run(small_config)
    for record in report.records:
        assert record.execution_deviation >= 0
        assert record.penalty_deviation >= 0


def test_reproducible(small_config):
    protocol = QualityProtocol(
        algorithms=("HeavyOps-LargeMsgs",), experiments=2, samples=100
    )
    r1 = protocol.run(small_config)
    r2 = protocol.run(small_config)
    assert [rec.execution_deviation for rec in r1.records] == [
        rec.execution_deviation for rec in r2.records
    ]


def test_more_samples_never_lower_deviation(small_config):
    """A larger sample can only find a better (or equal) reference, so a
    heuristic's measured deviation is monotonically non-decreasing."""
    small = QualityProtocol(
        algorithms=("HeavyOps-LargeMsgs",), experiments=1, samples=50
    ).run(small_config)
    large = QualityProtocol(
        algorithms=("HeavyOps-LargeMsgs",), experiments=1, samples=2_000
    ).run(small_config)
    assert (
        large.records[0].execution_deviation
        >= small.records[0].execution_deviation - 1e-12
    )


def test_penalty_gap_reported(small_config):
    """The scale-stable gap metric is recorded and bounded sensibly."""
    protocol = QualityProtocol(
        algorithms=("FairLoad", "HeavyOps-LargeMsgs"),
        experiments=2,
        samples=200,
    )
    report = protocol.run(small_config)
    for record in report.records:
        assert record.penalty_gap_vs_load >= 0
    for name in report.algorithms():
        assert report.worst_penalty_gap(name) >= 0
    # FairLoad is the fairness-optimal heuristic: its gap stays small
    assert report.worst_penalty_gap("FairLoad") < 0.5
    text = report.table().render()
    assert "worst_pen_gap/load" in text


def test_table_renders(small_config):
    protocol = QualityProtocol(
        algorithms=("FairLoad",), experiments=1, samples=50
    )
    table = protocol.run(small_config).table()
    text = table.render()
    assert "FairLoad" in text and "%" in text
