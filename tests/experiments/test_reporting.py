"""Unit tests for text tables and scatter output."""

import pytest

from repro.experiments.reporting import (
    TextTable,
    format_percent,
    format_seconds,
    scatter_table,
)


class TestFormatSeconds:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0.0, "0"),
            (1.5, "1.500 s"),
            (0.25, "250.000 ms"),
            (0.00025, "250.000 us"),
            (2.5e-7, "250.000 ns"),
            (-0.002, "-2.000 ms"),
        ],
    )
    def test_scaling(self, value, expected):
        assert format_seconds(value) == expected


def test_format_percent():
    assert format_percent(0.029) == "2.9%"
    assert format_percent(0.0) == "0.0%"


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable(["name", "value"], title="demo")
        table.add_row(["short", 1])
        table.add_row(["a-much-longer-name", 22])
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert lines[1].startswith("name")
        assert set(lines[2]) <= {"-", " "}
        # all data lines have equal visible width structure
        assert "a-much-longer-name" in lines[4]

    def test_row_arity_checked(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_to_csv(self):
        table = TextTable(["a", "b"])
        table.add_row([1, 2])
        table.add_row([3, 4])
        assert table.to_csv() == "a,b\n1,2\n3,4"

    def test_len_and_rows_copy(self):
        table = TextTable(["a"])
        table.add_row([1])
        assert len(table) == 1
        rows = table.rows
        rows[0][0] = "mutated"
        assert table.rows[0][0] == "1"

    def test_str_equals_render(self):
        table = TextTable(["a"])
        table.add_row([1])
        assert str(table) == table.render()


def test_scatter_table():
    points = {
        "FairLoad": [(0.1, 0.01), (0.2, 0.02)],
        "HOLM": [(0.05, 0.03)],
    }
    table = scatter_table(points, title="fig6")
    assert len(table) == 3
    csv = table.to_csv()
    assert "FairLoad,0.1,0.01" in csv
    assert "HOLM,0.05,0.03" in csv
