"""Unit tests for the server-failure analysis extension."""

import pytest

from repro.algorithms.fair_load import FairLoad
from repro.algorithms.heavy_ops import HeavyOpsLargeMsgs
from repro.core.cost import CostModel
from repro.core.mapping import Deployment
from repro.exceptions import (
    DisconnectedNetworkError,
    ExperimentError,
    UnknownServerError,
)
from repro.experiments.failover import (
    analyze_failure,
    failover_table,
    remove_server,
    replace_orphans,
)
from repro.network.topology import bus_network, line_network


class TestRemoveServer:
    def test_bus_stays_connected(self, bus5):
        survivor = remove_server(bus5, "S3")
        assert len(survivor) == 4
        assert "S3" not in survivor
        assert survivor.is_connected()
        assert survivor.is_uniform_bus()

    def test_interior_line_server_disconnects(self, chain3):
        survivor = remove_server(chain3, "S2")
        assert not survivor.is_connected()

    def test_endpoint_line_server_keeps_chain(self, chain3):
        survivor = remove_server(chain3, "S1")
        assert survivor.is_connected()
        assert survivor.is_line()

    def test_unknown_server_rejected(self, bus3):
        with pytest.raises(UnknownServerError):
            remove_server(bus3, "S9")

    def test_last_server_protected(self):
        network = bus_network([1e9], speed_bps=1e6)
        with pytest.raises(ExperimentError):
            remove_server(network, "S1")

    def test_original_untouched(self, bus3):
        remove_server(bus3, "S1")
        assert "S1" in bus3 and len(bus3) == 3


class TestReplaceOrphans:
    def test_survivors_stay_put(self, line5, bus3):
        deployment = FairLoad().deploy(line5, bus3)
        failed = "S3"
        survivor = remove_server(bus3, failed)
        recovered = replace_orphans(line5, survivor, deployment, failed)
        for operation, server in deployment:
            if server != failed:
                assert recovered.server_of(operation) == server

    def test_orphans_all_rehomed(self, line5, bus3):
        deployment = FairLoad().deploy(line5, bus3)
        survivor = remove_server(bus3, "S3")
        recovered = replace_orphans(line5, survivor, deployment, "S3")
        recovered.validate(line5, survivor)
        assert "S3" not in recovered.as_dict().values()

    def test_rehoming_is_load_aware(self, line5):
        """Orphans go to the emptiest surviving server first."""
        network = bus_network([1e9, 1e9, 1e9], speed_bps=100e6)
        deployment = Deployment(
            {"O1": "S1", "O2": "S1", "O3": "S1", "O4": "S1", "O5": "S3"}
        )
        survivor = remove_server(network, "S3")
        recovered = replace_orphans(line5, survivor, deployment, "S3")
        # S2 hosts nothing; the orphan O5 must land there, not on S1
        assert recovered.server_of("O5") == "S2"


class TestAnalyzeFailure:
    def test_report_shape(self, line5, bus3):
        deployment = FairLoad().deploy(line5, bus3)
        report = analyze_failure(line5, bus3, deployment, "S2")
        assert report.failed_server == "S2"
        assert set(report.orphaned_operations) == set(
            deployment.operations_on("S2")
        )
        report.recovered.validate(line5, remove_server(bus3, "S2"))
        assert report.execution_scale_up > 0
        assert report.peak_load_scale_up > 0

    def test_work_is_conserved_and_peak_bounded_below(self, line5, bus5):
        """Cycles are conserved across recovery, and the busiest survivor
        carries at least the capacity-proportional share (pigeonhole).

        Note the peak *can* drop when the failed server was a slow
        bottleneck and its orphans land on faster survivors -- so the
        naive 'peak never improves' claim is wrong; these bounds hold.
        """
        deployment = FairLoad().deploy(line5, bus5)
        total_cycles = line5.total_cycles
        for server in bus5.server_names:
            report = analyze_failure(line5, bus5, deployment, server)
            survivor = remove_server(bus5, server)
            recovered_cycles = sum(
                report.after.loads[s.name] * s.power_hz for s in survivor
            )
            assert recovered_cycles == pytest.approx(total_cycles), server
            assert max(report.after.loads.values()) >= (
                total_cycles / survivor.total_power_hz - 1e-12
            ), server

    def test_full_redeployment_policy(self, line5, bus3):
        deployment = FairLoad().deploy(line5, bus3)
        report = analyze_failure(
            line5, bus3, deployment, "S3", algorithm=HeavyOpsLargeMsgs()
        )
        report.recovered.validate(line5, remove_server(bus3, "S3"))

    def test_redeployment_at_least_as_good_as_patching(self, line5, bus5):
        """Full re-deployment with Fair Load cannot be less fair than
        orphan patching (it re-optimises everything)."""
        deployment = FairLoad().deploy(line5, bus5)
        patched = analyze_failure(line5, bus5, deployment, "S1")
        redeployed = analyze_failure(
            line5, bus5, deployment, "S1", algorithm=FairLoad()
        )
        assert (
            redeployed.after.time_penalty
            <= patched.after.time_penalty + 1e-12
        )

    def test_unknown_server_rejected(self, line5, bus3):
        deployment = FairLoad().deploy(line5, bus3)
        with pytest.raises(UnknownServerError):
            analyze_failure(line5, bus3, deployment, "S9")

    def test_disconnecting_failure_raises(self, line5, chain3):
        from repro.algorithms.line_line import LineLine

        deployment = LineLine().deploy(line5, chain3)
        with pytest.raises(DisconnectedNetworkError):
            analyze_failure(line5, chain3, deployment, "S2")


class TestFailoverTable:
    def test_one_row_per_server(self, line5, bus3):
        deployment = FairLoad().deploy(line5, bus3)
        table = failover_table(line5, bus3, deployment)
        assert len(table) == 3
        text = table.render()
        for server in bus3.server_names:
            assert server in text
