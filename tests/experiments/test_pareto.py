"""Unit tests for Pareto analysis and weighted distance measures."""

import pytest

from repro.core.cost import CostBreakdown
from repro.core.mapping import Deployment
from repro.exceptions import ExperimentError
from repro.experiments.pareto import (
    distance_to_origin,
    pareto_front,
    rank_by_distance,
    weight_sensitivity_table,
)
from repro.experiments.runner import ExperimentConfig, ExperimentRunner, RunRecord


def record(execution, penalty, algorithm="X", repetition=0):
    return RunRecord(
        algorithm=algorithm,
        repetition=repetition,
        cost=CostBreakdown(execution, penalty, execution + penalty),
        deployment=Deployment(),
    )


class TestParetoFront:
    def test_dominated_points_removed(self):
        records = [
            record(1.0, 1.0),
            record(2.0, 2.0),  # dominated by the first
            record(0.5, 3.0),
            record(3.0, 0.5),
        ]
        front = pareto_front(records)
        costs = {(r.cost.execution_time, r.cost.time_penalty) for r in front}
        assert costs == {(1.0, 1.0), (0.5, 3.0), (3.0, 0.5)}

    def test_sorted_by_execution(self):
        front = pareto_front([record(3.0, 0.5), record(0.5, 3.0)])
        times = [r.cost.execution_time for r in front]
        assert times == sorted(times)

    def test_duplicates_kept_once(self):
        front = pareto_front([record(1.0, 1.0), record(1.0, 1.0)])
        assert len(front) == 1

    def test_empty(self):
        assert pareto_front([]) == []

    def test_front_of_real_experiment_is_nondominated(self):
        runner = ExperimentRunner(["FairLoad", "HeavyOps-LargeMsgs", "Random"])
        result = runner.run(
            ExperimentConfig(
                num_operations=10,
                num_servers=3,
                bus_speed_bps=1e6,
                repetitions=4,
                seed=3,
            )
        )
        front = pareto_front(result.records)
        assert front
        for a in front:
            for b in front:
                if a is not b:
                    assert not a.cost.dominates(b.cost)


class TestDistance:
    def test_euclidean(self):
        cost = CostBreakdown(3.0, 4.0, 7.0)
        assert distance_to_origin(cost) == pytest.approx(5.0)

    def test_l1_recovers_weighted_sum(self):
        cost = CostBreakdown(3.0, 4.0, 7.0)
        assert distance_to_origin(cost, 0.5, 0.5, order=1) == pytest.approx(
            3.5
        )

    def test_infinity_order_is_weighted_max(self):
        cost = CostBreakdown(3.0, 4.0, 7.0)
        assert distance_to_origin(
            cost, order=float("inf")
        ) == pytest.approx(4.0)

    def test_weights_scale_axes(self):
        cost = CostBreakdown(3.0, 4.0, 7.0)
        assert distance_to_origin(cost, 1.0, 0.0) == pytest.approx(3.0)
        assert distance_to_origin(cost, 0.0, 1.0) == pytest.approx(4.0)

    def test_validation(self):
        cost = CostBreakdown(1.0, 1.0, 2.0)
        with pytest.raises(ExperimentError):
            distance_to_origin(cost, -1.0, 1.0)
        with pytest.raises(ExperimentError):
            distance_to_origin(cost, order=0.5)


class TestRankings:
    @pytest.fixture(scope="class")
    def result(self):
        runner = ExperimentRunner(["FairLoad", "HeavyOps-LargeMsgs"])
        return runner.run(
            ExperimentConfig(
                num_operations=12,
                num_servers=4,
                bus_speed_bps=1e6,
                repetitions=5,
                seed=8,
            )
        )

    def test_pure_execution_weighting_crowns_holm(self, result):
        rankings = rank_by_distance(result, 1.0, 0.0)
        assert rankings[0][0] == "HeavyOps-LargeMsgs"

    def test_pure_penalty_weighting_crowns_fair_load(self, result):
        rankings = rank_by_distance(result, 0.0, 1.0)
        assert rankings[0][0] == "FairLoad"

    def test_rankings_cover_all_algorithms(self, result):
        rankings = rank_by_distance(result)
        assert {name for name, _ in rankings} == set(result.algorithms())
        values = [value for _, value in rankings]
        assert values == sorted(values)

    def test_sensitivity_table(self, result):
        table = weight_sensitivity_table(result)
        assert len(table) == 4
        text = table.render()
        assert "winner" in text and ">" in text
