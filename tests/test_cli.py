"""Integration tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.io.json_codec import load_instance


@pytest.fixture
def instance_path(tmp_path):
    """A generated hybrid instance bundle on disk."""
    path = tmp_path / "instance.json"
    code = main(
        [
            "generate",
            "--workflow",
            "hybrid",
            "--operations",
            "12",
            "--servers",
            "3",
            "--bus-speed",
            "1e7",
            "--seed",
            "5",
            "--output",
            str(path),
        ]
    )
    assert code == 0
    return path


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in (
            "generate",
            "deploy",
            "compare",
            "simulate",
            "experiment",
            "quality",
            "analyze",
            "algorithms",
            "fleet",
        ):
            assert command in text

    def test_missing_command_is_an_argparse_error(self):
        with pytest.raises(SystemExit):
            main([])


class TestGenerate(object):
    def test_writes_valid_bundle(self, instance_path):
        workflow, network, deployment = load_instance(instance_path)
        assert len(workflow) == 12
        assert len(network) == 3
        assert deployment is None
        assert network.uniform_speed_bps == 1e7

    def test_deterministic(self, tmp_path):
        paths = []
        for name in ("a.json", "b.json"):
            path = tmp_path / name
            main(
                [
                    "generate",
                    "--operations",
                    "8",
                    "--servers",
                    "2",
                    "--seed",
                    "9",
                    "--output",
                    str(path),
                ]
            )
            paths.append(json.loads(path.read_text()))
        assert paths[0] == paths[1]


class TestDeploy:
    def test_prints_costs_and_mapping(self, instance_path, capsys):
        assert main(["deploy", "--instance", str(instance_path)]) == 0
        out = capsys.readouterr().out
        assert "execution time" in out
        assert "mapping:" in out

    def test_save_roundtrips(self, instance_path):
        main(["deploy", "--instance", str(instance_path), "--save"])
        workflow, network, deployment = load_instance(instance_path)
        assert deployment is not None
        deployment.validate(workflow, network)

    def test_dot_output(self, instance_path, tmp_path):
        dot_path = tmp_path / "deployment.dot"
        main(
            [
                "deploy",
                "--instance",
                str(instance_path),
                "--dot",
                str(dot_path),
            ]
        )
        assert dot_path.read_text().startswith("digraph")

    def test_unknown_algorithm_is_an_error(self, instance_path, capsys):
        code = main(
            [
                "deploy",
                "--instance",
                str(instance_path),
                "--algorithm",
                "Nonsense",
            ]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestTopologyOverride:
    SNDLIB = (
        "NODES (\n"
        "  A ( 0.0 0.0 )\n"
        "  B ( 1.0 0.0 )\n"
        "  C ( 0.0 1.0 )\n"
        ")\n"
        "LINKS (\n"
        "  L1 ( A B ) 100.0\n"
        "  L2 ( B C ) 50.0\n"
        "  L3 ( C A ) 10.0\n"
        ")\n"
    )

    def topology_path(self, tmp_path):
        path = tmp_path / "topo.txt"
        path.write_text(self.SNDLIB)
        return path

    def test_deploy_onto_topology_file(
        self, instance_path, tmp_path, capsys
    ):
        code = main(
            [
                "deploy",
                "--instance",
                str(instance_path),
                "--topology",
                str(self.topology_path(tmp_path)),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # the mapping is printed against the topology's servers, not
        # the instance bundle's S1..S3
        assert "A:" in out and "B:" in out and "C:" in out

    def test_compare_onto_topology_file(
        self, instance_path, tmp_path, capsys
    ):
        code = main(
            [
                "compare",
                "--instance",
                str(instance_path),
                "--topology",
                str(self.topology_path(tmp_path)),
                "--algorithms",
                "FairLoad",
            ]
        )
        assert code == 0
        assert "topo" in capsys.readouterr().out

    def test_missing_topology_is_one_line_error(
        self, instance_path, tmp_path, capsys
    ):
        code = main(
            [
                "deploy",
                "--instance",
                str(instance_path),
                "--topology",
                str(tmp_path / "nope.txt"),
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_malformed_topology_is_one_line_error(
        self, instance_path, tmp_path, capsys
    ):
        bad = tmp_path / "bad.txt"
        bad.write_text("NODES (\n A ( x y )\n)\n")
        code = main(
            [
                "deploy",
                "--instance",
                str(instance_path),
                "--topology",
                str(bad),
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "line 2" in err
        assert "Traceback" not in err


class TestCompare:
    def test_table_and_plot(self, instance_path, capsys):
        code = main(
            ["compare", "--instance", str(instance_path), "--plot"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FairLoad" in out and "HeavyOps-LargeMsgs" in out
        assert "legend:" in out

    def test_custom_suite(self, instance_path, capsys):
        main(
            [
                "compare",
                "--instance",
                str(instance_path),
                "--algorithms",
                "FairLoad",
                "Random",
            ]
        )
        out = capsys.readouterr().out
        assert "Random" in out
        assert "HeavyOps-LargeMsgs" not in out


class TestSimulate:
    def test_requires_deployment(self, instance_path, capsys):
        code = main(["simulate", "--instance", str(instance_path)])
        assert code == 2
        assert "no deployment" in capsys.readouterr().err

    def test_simulates_deployed_instance(self, instance_path, capsys):
        main(["deploy", "--instance", str(instance_path), "--save"])
        capsys.readouterr()
        code = main(
            [
                "simulate",
                "--instance",
                str(instance_path),
                "--runs",
                "50",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "analytic Texecute" in out
        assert "measured mean makespan" in out

    def test_concurrency_flag(self, instance_path, capsys):
        main(["deploy", "--instance", str(instance_path), "--save"])
        capsys.readouterr()
        code = main(
            [
                "simulate",
                "--instance",
                str(instance_path),
                "--runs",
                "20",
                "--concurrency",
                "1",
            ]
        )
        assert code == 0


class TestExperimentAndQuality:
    @pytest.mark.parametrize("klass", ("a", "b"))
    def test_class_a_and_b_sweeps(self, klass, capsys):
        code = main(
            [
                "experiment",
                "--klass",
                klass,
                "--operations",
                "6",
                "--servers",
                "2",
                "--repetitions",
                "1",
                "--metric",
                "penalty",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"{klass.upper()}: " in out  # sweep labels
        assert "FairLoad" in out

    def test_class_c_experiment(self, capsys):
        code = main(
            [
                "experiment",
                "--klass",
                "c",
                "--operations",
                "8",
                "--servers",
                "2",
                "--repetitions",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "HeavyOps-LargeMsgs" in out

    def test_quality(self, capsys):
        code = main(
            [
                "quality",
                "--operations",
                "6",
                "--servers",
                "2",
                "--experiments",
                "1",
                "--samples",
                "50",
            ]
        )
        assert code == 0
        assert "worst_exec_dev" in capsys.readouterr().out


class TestAnalyze:
    def test_statistics_and_regions(self, instance_path, capsys):
        code = main(["analyze", "--instance", str(instance_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "decision_fraction" in out
        assert "regions:" in out

    def test_critical_path_for_deployed(self, instance_path, capsys):
        main(["deploy", "--instance", str(instance_path), "--save"])
        capsys.readouterr()
        main(["analyze", "--instance", str(instance_path)])
        assert "critical path" in capsys.readouterr().out

    def test_dot_export(self, instance_path, tmp_path, capsys):
        dot_path = tmp_path / "workflow.dot"
        main(
            [
                "analyze",
                "--instance",
                str(instance_path),
                "--dot",
                str(dot_path),
            ]
        )
        assert dot_path.read_text().startswith("digraph")


class TestFailover:
    def test_requires_deployment(self, instance_path, capsys):
        code = main(["failover", "--instance", str(instance_path)])
        assert code == 2
        assert "no deployment" in capsys.readouterr().err

    def test_prints_per_server_impact(self, instance_path, capsys):
        main(["deploy", "--instance", str(instance_path), "--save"])
        capsys.readouterr()
        code = main(["failover", "--instance", str(instance_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "failed_server" in out
        assert "scale_up" in out

    def test_redeploy_policy(self, instance_path, capsys):
        main(["deploy", "--instance", str(instance_path), "--save"])
        capsys.readouterr()
        code = main(
            [
                "failover",
                "--instance",
                str(instance_path),
                "--redeploy",
                "FairLoad",
            ]
        )
        assert code == 0


class TestFleet:
    def test_replays_builtin_scenario(self, capsys):
        code = main(["fleet", "--scenario", "steady", "--seed", "7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario 'steady'" in out
        assert "fleet metrics" in out
        assert "final combined per-server loads" in out

    def test_log_flag_prints_decision_log(self, capsys):
        code = main(["fleet", "--scenario", "steady", "--seed", "1", "--log"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet decision log" in out
        assert "admitted" in out

    def test_rejects_unknown_scenario(self, capsys):
        with pytest.raises(SystemExit):
            main(["fleet", "--scenario", "nope"])

    def test_explicit_replay_action_matches_default(self, capsys):
        assert main(["fleet", "replay", "--scenario", "steady"]) == 0
        explicit = capsys.readouterr().out
        assert main(["fleet", "--scenario", "steady"]) == 0
        assert capsys.readouterr().out == explicit


class TestFleetDurability:
    def test_checkpoint_then_restore_resume(self, tmp_path, capsys):
        path = tmp_path / "fleet.json"
        code = main(
            [
                "fleet",
                "checkpoint",
                "--scenario",
                "churn",
                "--seed",
                "3",
                "--stop-after",
                "10",
                "--checkpoint",
                str(path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "10 events processed" in out and "15 pending" in out
        assert path.exists()

        code = main(
            ["fleet", "restore", "--checkpoint", str(path), "--resume"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "10 events replayed and verified" in out
        assert "resumed: processed 15 pending events" in out
        assert "fleet metrics" in out

    def test_checkpoint_full_scenario_has_no_pending(
        self, tmp_path, capsys
    ):
        path = tmp_path / "fleet.json"
        assert (
            main(
                [
                    "fleet",
                    "checkpoint",
                    "--scenario",
                    "steady",
                    "--checkpoint",
                    str(path),
                ]
            )
            == 0
        )
        assert "0 pending" in capsys.readouterr().out

    def test_missing_checkpoint_file_is_one_line_error(
        self, tmp_path, capsys
    ):
        """Satellite: ValidationError exits non-zero with one line on
        stderr, never a traceback."""
        code = main(
            [
                "fleet",
                "restore",
                "--checkpoint",
                str(tmp_path / "missing.json"),
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        err_lines = [
            line for line in captured.err.splitlines() if line.strip()
        ]
        assert len(err_lines) == 1
        assert err_lines[0].startswith("error:")
        assert "Traceback" not in captured.err

    def test_tampered_checkpoint_is_one_line_error(self, tmp_path, capsys):
        import json

        path = tmp_path / "fleet.json"
        main(
            [
                "fleet",
                "checkpoint",
                "--scenario",
                "steady",
                "--checkpoint",
                str(path),
            ]
        )
        capsys.readouterr()
        document = json.loads(path.read_text())
        document["log"][0]["action"] = "tampered"
        path.write_text(json.dumps(document))
        code = main(["fleet", "restore", "--checkpoint", str(path)])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and "diverged" in err
        assert "Traceback" not in err

    def test_stop_after_out_of_range_is_one_line_error(
        self, tmp_path, capsys
    ):
        """Satellite: ServiceError exits non-zero with one line."""
        code = main(
            [
                "fleet",
                "checkpoint",
                "--scenario",
                "steady",
                "--stop-after",
                "999",
                "--checkpoint",
                str(tmp_path / "fleet.json"),
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "--stop-after 999" in captured.err
        assert "Traceback" not in captured.err

    def test_checkpoint_without_path_is_one_line_error(self, capsys):
        code = main(["fleet", "checkpoint", "--scenario", "steady"])
        assert code == 1
        assert "needs --checkpoint" in capsys.readouterr().err


def test_algorithms_lists_registry(capsys):
    assert main(["algorithms"]) == 0
    out = capsys.readouterr().out
    for name in ("FairLoad", "HeavyOps-LargeMsgs", "BranchAndBound", "Genetic"):
        assert name in out


def test_algorithms_lists_class_and_description(capsys):
    assert main(["algorithms"]) == 0
    out = capsys.readouterr().out
    assert "description" in out
    # class names and the first docstring line ride along with each name
    assert "SimulatedAnnealing" in out
    assert "Metropolis search over single-operation moves." in out


class TestBudgetFlags:
    def test_deploy_with_binding_max_evals(self, instance_path, capsys):
        code = main(
            [
                "deploy",
                "--instance",
                str(instance_path),
                "--algorithm",
                "SimulatedAnnealing",
                "--max-evals",
                "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "search:" in out
        assert "stopped: max-evals" in out

    def test_deploy_with_generous_deadline_exhausts(
        self, instance_path, capsys
    ):
        code = main(
            [
                "deploy",
                "--instance",
                str(instance_path),
                "--algorithm",
                "HillClimbing",
                "--deadline-ms",
                "60000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stopped: exhausted" in out

    def test_deploy_bad_budget_is_an_error(self, instance_path, capsys):
        code = main(
            [
                "deploy",
                "--instance",
                str(instance_path),
                "--max-evals",
                "0",
            ]
        )
        assert code == 1
        assert "max_evals must be >= 1" in capsys.readouterr().err

    def test_compare_reports_budgeted_searches(self, instance_path, capsys):
        code = main(
            [
                "compare",
                "--instance",
                str(instance_path),
                "--algorithms",
                "SimulatedAnnealing",
                "HillClimbing",
                "--max-evals",
                "25",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "search[SimulatedAnnealing]:" in out
        assert "search[HillClimbing]:" in out
