"""Unit tests for shortest-delivery-time routing."""

import pytest

from repro.exceptions import DisconnectedNetworkError, UnknownServerError
from repro.network.routing import Router
from repro.network.topology import (
    Server,
    ServerNetwork,
    bus_network,
    line_network,
)


class TestBasicRouting:
    def test_same_server_path(self, bus3):
        router = Router(bus3)
        assert router.path("S1", "S1") == ("S1",)
        assert router.transmission_time("S1", "S1", 1e6) == 0.0
        assert router.hop_count("S1", "S1") == 0

    def test_direct_link_on_bus(self, bus3):
        router = Router(bus3)
        assert router.path("S1", "S3", 8_000) == ("S1", "S3")
        assert router.transmission_time("S1", "S3", 8_000) == pytest.approx(
            8_000 / 100e6
        )

    def test_multi_hop_on_line(self, chain3):
        router = Router(chain3)
        assert router.path("S1", "S3", 8_000) == ("S1", "S2", "S3")
        expected = 8_000 / 10e6 + 8_000 / 100e6
        assert router.transmission_time("S1", "S3", 8_000) == pytest.approx(
            expected
        )
        assert router.hop_count("S1", "S3") == 2

    def test_unknown_server_rejected(self, bus3):
        router = Router(bus3)
        with pytest.raises(UnknownServerError):
            router.path("S1", "S9")

    def test_disconnected_pair_rejected(self):
        network = ServerNetwork("disc")
        network.add_servers(
            [Server("S1", 1e9), Server("S2", 1e9), Server("S3", 1e9)]
        )
        network.connect("S1", "S2", 1e6)
        router = Router(network)
        with pytest.raises(DisconnectedNetworkError):
            router.path("S1", "S3")


class TestPropagationDelay:
    def test_propagation_added_per_link(self):
        network = line_network([1e9, 1e9, 1e9], 100e6, propagation_s=0.002)
        router = Router(network)
        expected = 2 * (8_000 / 100e6 + 0.002)
        assert router.transmission_time("S1", "S3", 8_000) == pytest.approx(
            expected
        )

    def test_zero_size_routes_by_propagation(self):
        network = line_network([1e9, 1e9], 100e6, propagation_s=0.001)
        router = Router(network)
        assert router.transmission_time("S1", "S2", 0.0) == pytest.approx(
            0.001
        )


class TestSizeDependentRouting:
    def _detour_network(self):
        """Direct slow link S1-S3 vs a two-hop fast detour via S2."""
        network = ServerNetwork("detour")
        network.add_servers(
            [Server("S1", 1e9), Server("S2", 1e9), Server("S3", 1e9)]
        )
        network.connect("S1", "S3", 1e6)  # slow direct
        network.connect("S1", "S2", 1e9)
        network.connect("S2", "S3", 1e9)
        return network

    def test_large_message_takes_fast_detour(self):
        router = Router(self._detour_network())
        # 1 Mbit: direct = 1 s; detour = 2 * 1 ms
        assert router.path("S1", "S3", 1e6) == ("S1", "S2", "S3")

    def test_route_is_symmetric(self):
        router = Router(self._detour_network())
        forward = router.path("S1", "S3", 1e6)
        backward = router.path("S3", "S1", 1e6)
        assert backward == forward[::-1]
        assert router.transmission_time(
            "S1", "S3", 1e6
        ) == router.transmission_time("S3", "S1", 1e6)


class TestCaching:
    def test_repeated_queries_hit_cache(self, bus3):
        router = Router(bus3)
        first = router.transmission_time("S1", "S2", 8_000)
        assert (router.hits, router.misses) == (0, 1)
        second = router.transmission_time("S1", "S2", 8_000)
        assert first == second
        assert (router.hits, router.misses) == (1, 1)
        assert router.cache_size() > 0

    def test_distinct_sizes_hit_the_route_cache(self, bus3):
        # the route is size-independent, so heterogeneous message sizes
        # must reuse the cached pair instead of growing a float-keyed cache
        router = Router(bus3)
        for size in (1_000, 2_000, 3_000, 4_000, 5_000):
            router.transmission_time("S1", "S2", size)
        assert router.misses == 1
        assert router.hits == 4
        assert router.hit_rate == pytest.approx(0.8)

    def test_clear_cache(self, bus3):
        router = Router(bus3)
        router.transmission_time("S1", "S2", 8_000)
        router.clear_cache()
        assert router.cache_size() == 0
        assert len(router._route_cache) == 0
        assert len(router._sized_path_cache) == 0

    def test_times_scale_with_size(self, chain3):
        router = Router(chain3)
        t_small = router.transmission_time("S1", "S3", 1_000)
        t_large = router.transmission_time("S1", "S3", 100_000)
        assert t_large > t_small

    def test_pair_coefficients_match_times(self, chain3):
        router = Router(chain3)
        coefficients = router.pair_coefficients("S1", "S3")
        assert coefficients is not None
        propagation, per_bit = coefficients
        for size in (0, 1_000, 100_000):
            expected = propagation + size * per_bit
            assert router.transmission_time("S1", "S3", size) == pytest.approx(
                expected
            )


def test_bus_pairs_share_cost(bus3):
    """The paper's bus assumption: every pair costs the same."""
    router = Router(bus3)
    times = {
        router.transmission_time(a, b, 10_000)
        for a in bus3.server_names
        for b in bus3.server_names
        if a != b
    }
    assert len(times) == 1


def test_router_exposes_network(bus3):
    assert Router(bus3).network is bus3
