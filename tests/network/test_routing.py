"""Unit tests for shortest-delivery-time routing."""

import pytest

from repro.exceptions import DisconnectedNetworkError, UnknownServerError
from repro.network.routing import Router
from repro.network.topology import (
    Link,
    Server,
    ServerNetwork,
    bus_network,
    line_network,
)


class TestBasicRouting:
    def test_same_server_path(self, bus3):
        router = Router(bus3)
        assert router.path("S1", "S1") == ("S1",)
        assert router.transmission_time("S1", "S1", 1e6) == 0.0
        assert router.hop_count("S1", "S1") == 0

    def test_direct_link_on_bus(self, bus3):
        router = Router(bus3)
        assert router.path("S1", "S3", 8_000) == ("S1", "S3")
        assert router.transmission_time("S1", "S3", 8_000) == pytest.approx(
            8_000 / 100e6
        )

    def test_multi_hop_on_line(self, chain3):
        router = Router(chain3)
        assert router.path("S1", "S3", 8_000) == ("S1", "S2", "S3")
        expected = 8_000 / 10e6 + 8_000 / 100e6
        assert router.transmission_time("S1", "S3", 8_000) == pytest.approx(
            expected
        )
        assert router.hop_count("S1", "S3") == 2

    def test_unknown_server_rejected(self, bus3):
        router = Router(bus3)
        with pytest.raises(UnknownServerError):
            router.path("S1", "S9")

    def test_disconnected_pair_rejected(self):
        network = ServerNetwork("disc")
        network.add_servers(
            [Server("S1", 1e9), Server("S2", 1e9), Server("S3", 1e9)]
        )
        network.connect("S1", "S2", 1e6)
        router = Router(network)
        with pytest.raises(DisconnectedNetworkError):
            router.path("S1", "S3")


class TestPropagationDelay:
    def test_propagation_added_per_link(self):
        network = line_network([1e9, 1e9, 1e9], 100e6, propagation_s=0.002)
        router = Router(network)
        expected = 2 * (8_000 / 100e6 + 0.002)
        assert router.transmission_time("S1", "S3", 8_000) == pytest.approx(
            expected
        )

    def test_zero_size_routes_by_propagation(self):
        network = line_network([1e9, 1e9], 100e6, propagation_s=0.001)
        router = Router(network)
        assert router.transmission_time("S1", "S2", 0.0) == pytest.approx(
            0.001
        )


class TestSizeDependentRouting:
    def _detour_network(self):
        """Direct slow link S1-S3 vs a two-hop fast detour via S2."""
        network = ServerNetwork("detour")
        network.add_servers(
            [Server("S1", 1e9), Server("S2", 1e9), Server("S3", 1e9)]
        )
        network.connect("S1", "S3", 1e6)  # slow direct
        network.connect("S1", "S2", 1e9)
        network.connect("S2", "S3", 1e9)
        return network

    def test_large_message_takes_fast_detour(self):
        router = Router(self._detour_network())
        # 1 Mbit: direct = 1 s; detour = 2 * 1 ms
        assert router.path("S1", "S3", 1e6) == ("S1", "S2", "S3")

    def test_route_is_symmetric(self):
        router = Router(self._detour_network())
        forward = router.path("S1", "S3", 1e6)
        backward = router.path("S3", "S1", 1e6)
        assert backward == forward[::-1]
        assert router.transmission_time(
            "S1", "S3", 1e6
        ) == router.transmission_time("S3", "S1", 1e6)


class TestCaching:
    def test_repeated_queries_hit_cache(self, bus3):
        router = Router(bus3)
        first = router.transmission_time("S1", "S2", 8_000)
        assert (router.hits, router.misses) == (0, 1)
        second = router.transmission_time("S1", "S2", 8_000)
        assert first == second
        assert (router.hits, router.misses) == (1, 1)
        assert router.cache_size() > 0

    def test_distinct_sizes_hit_the_route_cache(self, bus3):
        # the route is size-independent, so heterogeneous message sizes
        # must reuse the cached pair instead of growing a float-keyed cache
        router = Router(bus3)
        for size in (1_000, 2_000, 3_000, 4_000, 5_000):
            router.transmission_time("S1", "S2", size)
        assert router.misses == 1
        assert router.hits == 4
        assert router.hit_rate == pytest.approx(0.8)

    def test_clear_cache(self, bus3):
        router = Router(bus3)
        router.transmission_time("S1", "S2", 8_000)
        router.clear_cache()
        assert router.cache_size() == 0
        assert len(router._route_cache) == 0
        assert len(router._sized_path_cache) == 0

    def test_times_scale_with_size(self, chain3):
        router = Router(chain3)
        t_small = router.transmission_time("S1", "S3", 1_000)
        t_large = router.transmission_time("S1", "S3", 100_000)
        assert t_large > t_small

    def test_pair_coefficients_match_times(self, chain3):
        router = Router(chain3)
        coefficients = router.pair_coefficients("S1", "S3")
        assert coefficients is not None
        propagation, per_bit = coefficients
        for size in (0, 1_000, 100_000):
            expected = propagation + size * per_bit
            assert router.transmission_time("S1", "S3", size) == pytest.approx(
                expected
            )


class TestCounters:
    def test_clear_cache_resets_hit_miss_counters(self, bus3):
        # regression: clear_cache used to keep the old traffic counters,
        # so post-invalidation hit rates blended pre-change traffic
        router = Router(bus3)
        for _ in range(3):
            router.transmission_time("S1", "S2", 8_000)
        assert (router.hits, router.misses) == (2, 1)
        router.clear_cache()
        assert (router.hits, router.misses) == (0, 0)
        assert router.hit_rate == 0.0

    def test_clear_cache_keeps_work_counters(self, bus3):
        router = Router(bus3)
        router.transmission_time("S1", "S2", 8_000)
        runs = router.dijkstra_runs
        assert runs > 0
        router.clear_cache()
        assert router.dijkstra_runs == runs

    def test_reset_counters_zeroes_everything(self, bus3):
        router = Router(bus3)
        router.transmission_time("S1", "S2", 8_000)
        router.invalidate()
        router.reset_counters()
        assert (router.hits, router.misses) == (0, 0)
        assert router.dijkstra_runs == 0
        assert router.pairs_invalidated == 0
        assert router.pairs_recomputed == 0
        assert router.last_invalidation is None
        # caches survive: the next query is still a hit
        router.transmission_time("S1", "S2", 8_000)
        assert (router.hits, router.misses) == (1, 0)


class TestCompileAllPairs:
    def test_compile_fills_every_pair(self, chain3):
        router = Router(chain3)
        compiled = router.compile_all_pairs()
        assert compiled == 3  # canonical pairs of 3 servers
        for a in chain3.server_names:
            for b in chain3.server_names:
                if a != b:
                    assert router.cached_route(a, b) is not None
        # compiled entries serve queries as cache hits
        router.transmission_time("S1", "S3", 8_000)
        assert (router.hits, router.misses) == (1, 0)

    def test_compile_matches_lazy_fill(self, chain3):
        lazy = Router(chain3)
        batched = Router(chain3)
        batched.compile_all_pairs()
        for a in chain3.server_names:
            for b in chain3.server_names:
                if a == b:
                    continue
                lazy.pair_coefficients(a, b)
                left = lazy.cached_route(a, b)
                right = batched.cached_route(a, b)
                assert left.path == right.path
                assert left.propagation_s == right.propagation_s
                assert left.transfer_s_per_bit == right.transfer_s_per_bit
                assert left.size_independent == right.size_independent

    def test_compile_skips_cached_pairs(self, chain3):
        router = Router(chain3)
        router.pair_coefficients("S1", "S3")
        assert router.compile_all_pairs() == 2

    def test_cached_route_does_not_count_traffic(self, bus3):
        router = Router(bus3)
        assert router.cached_route("S1", "S2") is None
        router.compile_all_pairs()
        assert router.cached_route("S1", "S2") is not None
        assert (router.hits, router.misses) == (0, 0)


class TestInvalidate:
    def _square(self):
        """S1-S2-S4 and S1-S3-S4: two disjoint two-hop routes."""
        network = ServerNetwork("square")
        network.add_servers(
            [Server(f"S{i}", 1e9) for i in range(1, 5)]
        )
        network.connect("S1", "S2", 100e6, propagation_s=0.001)
        network.connect("S2", "S4", 100e6, propagation_s=0.001)
        network.connect("S1", "S3", 50e6, propagation_s=0.003)
        network.connect("S3", "S4", 50e6, propagation_s=0.003)
        return network

    def test_full_invalidation_recompiles_everything(self):
        network = self._square()
        router = Router(network)
        router.compile_all_pairs()
        affected = router.invalidate()
        assert affected is None  # None means "all pairs"
        assert router.last_invalidation["mode"] == "full"
        assert router.pairs_invalidated == 6
        assert router.pairs_recomputed == 6

    def test_scoped_invalidation_recomputes_only_crossing_pairs(self):
        network = self._square()
        router = Router(network)
        router.compile_all_pairs()
        # worsen the S1-S2 trunk: only routes through it are touched
        network.replace_link(
            Link("S1", "S2", 10e6, 0.001)
        )
        affected = router.invalidate(
            changed_links=(("S1", "S2"),), worsening=True
        )
        assert affected is not None and affected
        # the S3-S4 pair rides its own direct link: untouched
        assert ("S3", "S4") not in affected and ("S4", "S3") not in affected
        assert router.last_invalidation["mode"] == "scoped"
        # scoped results equal a fresh router's classification exactly
        fresh = Router(network)
        for a in network.server_names:
            for b in network.server_names:
                if a == b:
                    continue
                fresh.pair_coefficients(a, b)
                left = router.cached_route(a, b)
                right = fresh.cached_route(a, b)
                assert left.path == right.path
                assert left.propagation_s == right.propagation_s
                assert left.transfer_s_per_bit == right.transfer_s_per_bit
                assert left.size_independent == right.size_independent

    def test_improvement_forces_full_invalidation(self):
        network = self._square()
        router = Router(network)
        router.compile_all_pairs()
        network.replace_link(Link("S1", "S2", 200e6, 0.001))
        affected = router.invalidate(
            changed_links=(("S1", "S2"),), worsening=False
        )
        assert affected is None
        assert router.last_invalidation["mode"] == "full"

    def test_speed_only_worsening_reuses_propagation_passes(self):
        # a speed-only degrade leaves the propagation graph unchanged,
        # so the scoped recompute skips every min-propagation pass --
        # and must still match a fresh classification byte for byte
        network = self._square()
        router = Router(network)
        router.compile_all_pairs()
        runs_before = router.dijkstra_runs
        network.replace_link(Link("S1", "S2", 10e6, 0.001))
        router.invalidate(
            changed_links=(("S1", "S2"),),
            worsening=True,
            speed_changed=True,
            propagation_changed=False,
        )
        reuse_runs = router.dijkstra_runs - runs_before

        full = Router(self._square())
        full.compile_all_pairs()
        runs_before = full.dijkstra_runs
        full.network.replace_link(Link("S1", "S2", 10e6, 0.001))
        full.invalidate(changed_links=(("S1", "S2"),), worsening=True)
        both_runs = full.dijkstra_runs - runs_before
        assert reuse_runs < both_runs
        for a in network.server_names:
            for b in network.server_names:
                if a == b:
                    continue
                left = router.cached_route(a, b)
                right = full.cached_route(a, b)
                assert left.path == right.path
                assert left.propagation_s == right.propagation_s
                assert left.transfer_s_per_bit == right.transfer_s_per_bit
                assert left.size_independent == right.size_independent

    def test_invalidation_preserves_traffic_counters(self):
        network = self._square()
        router = Router(network)
        router.transmission_time("S1", "S4", 8_000)
        hits, misses = router.hits, router.misses
        router.invalidate(changed_links=(("S1", "S2"),), worsening=True)
        assert (router.hits, router.misses) == (hits, misses)

    def test_scoped_invalidation_reports_sized_only_pairs(
        self, pareto_triple
    ):
        # regression: a size-dependent pair's per-size optimum can be a
        # third Pareto path crossing the worsened link while both
        # classification paths avoid it -- the pair must appear in the
        # returned set so consumers re-derive its cached per-size
        # prices instead of restoring the stale (too optimistic) ones
        router = Router(pareto_triple)
        router.compile_all_pairs()
        before = router.transmission_time("A", "B", 5e6)
        assert before == pytest.approx(6.5)  # via z
        pareto_triple.replace_link(Link("A", "z", 1e3, 50.0))
        affected = router.invalidate(
            changed_links=(("A", "z"),), worsening=True
        )
        # both classification paths (via x, via y) avoid A-z, yet the
        # pair is reported because its sized-cache entry was dropped
        assert ("A", "B") in affected
        assert router.last_invalidation["sized_pairs_dropped"] == 1
        # the classification entry itself stood (it was never stale)
        route = router.cached_route("A", "B")
        assert route is not None and not route.size_independent
        # the re-derived per-size price equals a fresh router's exactly
        fresh = Router(pareto_triple)
        after = router.transmission_time("A", "B", 5e6)
        assert after == fresh.transmission_time("A", "B", 5e6)
        assert after == pytest.approx(10.01)  # re-routed via y

    def test_scoped_invalidation_off_path_sized_entries_survive(
        self, pareto_triple
    ):
        # the complement: worsening a link that no cached sized path
        # crosses reports nothing extra and keeps the sized cache warm
        router = Router(pareto_triple)
        router.compile_all_pairs()
        router.transmission_time("A", "B", 5e6)  # sized entry via z
        pareto_triple.replace_link(Link("A", "y", 1e8, 6.0))
        affected = router.invalidate(
            changed_links=(("A", "y"),), worsening=True
        )
        assert router.last_invalidation["sized_pairs_dropped"] == 0
        hits = router.hits
        assert router.transmission_time("A", "B", 5e6) == pytest.approx(6.5)
        assert router.hits == hits + 1  # served from the kept entry


class TestBulkTransmissionTimes:
    def test_bulk_equals_sequential(self):
        network = ServerNetwork("detour")
        network.add_servers(
            [Server("S1", 1e9), Server("S2", 1e9), Server("S3", 1e9)]
        )
        network.connect("S1", "S3", 1e6, propagation_s=0.0001)
        network.connect("S1", "S2", 1e9, propagation_s=0.001)
        network.connect("S2", "S3", 1e9, propagation_s=0.001)
        pairs = [
            (a, b)
            for a in network.server_names
            for b in network.server_names
        ]
        for size in (0.0, 1_000.0, 1e6):
            sequential = Router(network)
            expected = [
                sequential.transmission_time(a, b, size) for a, b in pairs
            ]
            bulk = Router(network)
            got = bulk.transmission_times(pairs, size)
            assert got == expected  # exact float equality
            # grouping must not run more passes than the sequential path
            assert bulk.dijkstra_runs <= sequential.dijkstra_runs

    def test_bulk_counters_match_sequential(self):
        # regression: both directions of an uncached size-dependent
        # pair in one batch counted two misses at queue time, although
        # the second direction resolves from the first's
        # reverse-direction store -- sequentially, a hit
        network = ServerNetwork("detour")
        network.add_servers(
            [Server("S1", 1e9), Server("S2", 1e9), Server("S3", 1e9)]
        )
        network.connect("S1", "S3", 1e6, propagation_s=0.0001)
        network.connect("S1", "S2", 1e9, propagation_s=0.001)
        network.connect("S2", "S3", 1e9, propagation_s=0.001)
        pairs = [("S1", "S3"), ("S3", "S1"), ("S1", "S3")]
        sequential = Router(network)
        expected = [
            sequential.transmission_time(a, b, 1_000.0) for a, b in pairs
        ]
        bulk = Router(network)
        assert bulk.transmission_times(pairs, 1_000.0) == expected
        assert (bulk.hits, bulk.misses) == (
            sequential.hits,
            sequential.misses,
        )

    def test_bulk_groups_sized_misses_per_source(self, bus3):
        router = Router(bus3)
        times = router.transmission_times(
            [("S1", "S2"), ("S1", "S3"), ("S2", "S3")], 8_000
        )
        assert len(times) == 3
        assert all(t > 0 for t in times)


def test_bus_pairs_share_cost(bus3):
    """The paper's bus assumption: every pair costs the same."""
    router = Router(bus3)
    times = {
        router.transmission_time(a, b, 10_000)
        for a in bus3.server_names
        for b in bus3.server_names
        if a != b
    }
    assert len(times) == 1


def test_router_exposes_network(bus3):
    assert Router(bus3).network is bus3
