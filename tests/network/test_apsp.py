"""Unit tests for the batched all-pairs routing kernel."""

import pytest

from repro.exceptions import DisconnectedNetworkError
from repro.network import apsp
from repro.network.topology import Server, ServerNetwork


def _diamond():
    """S0-S1-S3 fast two-hop vs S0-S2-S3 low-latency two-hop."""
    network = ServerNetwork("diamond")
    network.add_servers([Server(f"S{i}", 1e9) for i in range(4)])
    network.connect("S0", "S1", 1e9, propagation_s=0.010)
    network.connect("S1", "S3", 1e9, propagation_s=0.010)
    network.connect("S0", "S2", 1e6, propagation_s=0.001)
    network.connect("S2", "S3", 1e6, propagation_s=0.001)
    return network


def _complete(speeds=(100e6, 50e6, 25e6)):
    """A complete triangle with heterogeneous link speeds."""
    network = ServerNetwork("triangle")
    network.add_servers([Server(f"S{i}", 1e9) for i in range(3)])
    network.connect("S0", "S1", speeds[0], propagation_s=0.001)
    network.connect("S0", "S2", speeds[1], propagation_s=0.002)
    network.connect("S1", "S2", speeds[2], propagation_s=0.003)
    return network


class TestCompiledGraph:
    def test_snapshot_shape(self):
        graph = apsp.compile_graph(_diamond())
        assert graph.names == ("S0", "S1", "S2", "S3")
        assert len(graph) == 4
        assert not graph.is_complete()
        assert apsp.compile_graph(_complete()).is_complete()

    def test_coefficients_fold_matches_link_params(self):
        network = _diamond()
        graph = apsp.compile_graph(network)
        propagation, transfer = graph.coefficients((0, 1, 3))
        assert propagation == 0.010 + 0.010
        assert transfer == 1.0 / 1e9 + 1.0 / 1e9

    def test_to_names(self):
        graph = apsp.compile_graph(_diamond())
        assert graph.to_names((0, 2, 3)) == ("S0", "S2", "S3")


class TestDijkstra:
    def test_propagation_weight_prefers_low_latency(self):
        graph = apsp.compile_graph(_diamond())
        path = apsp.shortest_path(graph, 0, 3, apsp.WEIGHT_PROPAGATION)
        assert graph.to_names(path) == ("S0", "S2", "S3")

    def test_transfer_weight_prefers_fast_links(self):
        graph = apsp.compile_graph(_diamond())
        path = apsp.shortest_path(graph, 0, 3, apsp.WEIGHT_TRANSFER)
        assert graph.to_names(path) == ("S0", "S1", "S3")

    def test_matches_networkx(self):
        import networkx as nx

        network = _diamond()
        graph = apsp.compile_graph(network)
        g = network.graph

        def prop(a, b, _):
            return network.link(a, b).propagation_s

        for source in range(4):
            for target in range(4):
                if source == target:
                    continue
                expected = tuple(
                    nx.dijkstra_path(
                        g,
                        graph.names[source],
                        graph.names[target],
                        weight=prop,
                    )
                )
                got = graph.to_names(
                    apsp.shortest_path(
                        graph, source, target, apsp.WEIGHT_PROPAGATION
                    )
                )
                assert got == expected

    def test_disconnected_raises(self):
        network = ServerNetwork("disc")
        network.add_servers([Server("A", 1e9), Server("B", 1e9)])
        graph = apsp.compile_graph(network)
        with pytest.raises(DisconnectedNetworkError):
            apsp.shortest_path(graph, 0, 1, apsp.WEIGHT_PROPAGATION)

    def test_full_pass_equals_targeted_queries(self):
        graph = apsp.compile_graph(_diamond())
        size = 50_000.0
        paths = apsp.sized_source_paths(graph, 0, [1, 2, 3], size)
        for target in (1, 2, 3):
            assert paths[target] == apsp.shortest_sized_path(
                graph, 0, target, size
            )


class TestClassification:
    def test_dominant_pair_is_size_independent(self):
        graph = apsp.compile_graph(_complete())
        routes, runs = apsp.compile_source_routes(graph, 0, [1, 2])
        assert runs <= 2
        assert routes[1].size_independent
        assert routes[1].path == ("S0", "S1")

    def test_size_dependent_pair_keeps_both_paths(self):
        graph = apsp.compile_graph(_diamond())
        routes, _ = apsp.compile_source_routes(graph, 0, [3])
        record = routes[3]
        assert not record.size_independent
        assert record.path == ("S0", "S2", "S3")  # size-0 representative
        assert record.alt_path == ("S0", "S1", "S3")
        assert record.zero_path == record.path
        assert record.large_path == record.alt_path

    def test_reuse_substitutes_a_pass(self):
        graph = apsp.compile_graph(_diamond())
        baseline, _ = apsp.compile_source_routes(graph, 0, [1, 2, 3])
        zero_paths = {
            target: apsp.shortest_path(
                graph, 0, target, apsp.WEIGHT_PROPAGATION
            )
            for target in (1, 2, 3)
        }
        reused, runs = apsp.compile_source_routes(
            graph, 0, [1, 2, 3],
            reuse=(apsp.WEIGHT_PROPAGATION, zero_paths),
        )
        assert runs == 1  # only the transfer pass ran
        assert reused == baseline


class TestDenseFastPath:
    def test_dense_requires_complete_graph(self):
        assert apsp.dense_dominance(apsp.compile_graph(_diamond())) is None

    def test_dense_certificate_matches_dijkstra(self):
        pytest.importorskip("numpy")
        graph = apsp.compile_graph(_complete())
        dense = apsp.dense_dominance(graph)
        assert dense is not None
        with_dense, dense_runs = apsp.compile_source_routes(
            graph, 0, [1, 2], dense
        )
        without, full_runs = apsp.compile_source_routes(graph, 0, [1, 2])
        assert dense_runs <= full_runs
        assert with_dense == without

    def test_dense_skips_only_dominant_rows(self):
        pytest.importorskip("numpy")
        # S0-S2 relayed via S1 beats the slow direct link: row 0 must
        # NOT be certified for the transfer weight
        network = _complete(speeds=(1e9, 1e6, 1e9))
        graph = apsp.compile_graph(network)
        dense = apsp.dense_dominance(graph)
        assert dense is not None
        assert not dense.row_ok(0, apsp.WEIGHT_TRANSFER)
        routes, _ = apsp.compile_source_routes(graph, 0, [2], dense)
        plain, _ = apsp.compile_source_routes(graph, 0, [2])
        assert routes == plain
