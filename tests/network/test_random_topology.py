"""Unit and property tests for the random topology generator and routing
metric properties on arbitrary connected networks."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import NetworkError
from repro.network.routing import Router
from repro.network.topology import random_network


class TestRandomNetwork:
    def test_always_connected(self):
        for seed in range(10):
            network = random_network(
                [1e9] * 7,
                [1e6, 100e6],
                extra_edge_probability=0.0,  # spanning tree only
                rng=random.Random(seed),
            )
            assert network.is_connected()
            assert len(network.links) == 6  # exactly a tree

    def test_extra_edges_add_links(self):
        tree = random_network(
            [1e9] * 7, 1e6, extra_edge_probability=0.0, rng=random.Random(1)
        )
        dense = random_network(
            [1e9] * 7, 1e6, extra_edge_probability=1.0, rng=random.Random(1)
        )
        assert len(dense.links) == 7 * 6 // 2
        assert len(tree.links) < len(dense.links)

    def test_speeds_drawn_from_choices(self):
        network = random_network(
            [1e9] * 6, [5e6, 50e6], rng=random.Random(2)
        )
        assert {link.speed_bps for link in network.links} <= {5e6, 50e6}

    def test_scalar_speed(self):
        network = random_network([1e9] * 4, 7e6, rng=random.Random(3))
        assert all(link.speed_bps == 7e6 for link in network.links)

    def test_probability_validated(self):
        with pytest.raises(NetworkError):
            random_network([1e9] * 3, 1e6, extra_edge_probability=1.5)

    def test_default_rng_matches_historical_seed_zero(self):
        # rng=None must coerce to the seed-0 stream: byte-identical to
        # the historical inlined random.Random(0) default
        def fingerprint(network):
            return (
                network.server_names,
                tuple(
                    (link.endpoints, link.speed_bps, link.propagation_s)
                    for link in network.links
                ),
            )

        default = random_network([1e9] * 6, [1e6, 9e6])
        explicit = random_network([1e9] * 6, [1e6, 9e6], rng=random.Random(0))
        seeded = random_network([1e9] * 6, [1e6, 9e6], rng=0)
        assert fingerprint(default) == fingerprint(explicit)
        assert fingerprint(default) == fingerprint(seeded)

    def test_deterministic_per_seed(self):
        nets = [
            random_network([1e9] * 6, [1e6, 9e6], rng=random.Random(4))
            for _ in range(2)
        ]
        assert [l.endpoints for l in nets[0].links] == [
            l.endpoints for l in nets[1].links
        ]

    def test_single_server(self):
        network = random_network([1e9], 1e6, rng=random.Random(5))
        assert len(network) == 1 and not network.links


seeds = st.integers(min_value=0, max_value=10_000)
counts = st.integers(min_value=2, max_value=8)


@given(servers=counts, seed=seeds)
@settings(max_examples=30, deadline=None)
def test_routing_times_satisfy_triangle_inequality(servers, seed):
    """Best-path delivery time is a metric for any fixed message size."""
    rng = random.Random(seed)
    network = random_network(
        [1e9] * servers,
        [1e6, 10e6, 100e6],
        extra_edge_probability=0.4,
        rng=rng,
    )
    router = Router(network)
    size = 50_000.0
    names = network.server_names
    for a in names:
        for b in names:
            for c in names:
                direct = router.transmission_time(a, c, size)
                detour = router.transmission_time(
                    a, b, size
                ) + router.transmission_time(b, c, size)
                assert direct <= detour + 1e-12


@given(servers=counts, seed=seeds)
@settings(max_examples=30, deadline=None)
def test_routing_is_symmetric_on_random_networks(servers, seed):
    network = random_network(
        [1e9] * servers,
        [1e6, 100e6],
        extra_edge_probability=0.3,
        rng=random.Random(seed),
    )
    router = Router(network)
    names = network.server_names
    for a in names:
        for b in names:
            assert router.transmission_time(
                a, b, 10_000
            ) == pytest.approx(router.transmission_time(b, a, 10_000))


@given(servers=counts, seed=seeds)
@settings(max_examples=20, deadline=None)
def test_algorithms_work_on_random_topologies(servers, seed):
    """The Fair-Load family and HOLM accept arbitrary connected networks."""
    from repro.algorithms.base import algorithm_registry
    from repro.workloads.generator import line_workflow

    network = random_network(
        [1e9] * servers,
        [1e6, 100e6],
        extra_edge_probability=0.3,
        rng=random.Random(seed),
    )
    workflow = line_workflow(10, seed=seed)
    for name in ("FairLoad", "FL-TieResolver2", "HeavyOps-LargeMsgs"):
        deployment = algorithm_registry()[name]().deploy(
            workflow, network, rng=seed
        )
        deployment.validate(workflow, network)
