"""Unit tests for servers, links and network topologies."""

import pytest

from repro.exceptions import (
    DisconnectedNetworkError,
    DuplicateServerError,
    NetworkError,
    UnknownServerError,
)
from repro.network.topology import (
    Link,
    Server,
    ServerNetwork,
    bus_network,
    full_mesh_network,
    line_network,
    ring_network,
    star_network,
)


class TestServer:
    def test_valid(self):
        assert Server("S1", 1e9).power_hz == 1e9

    def test_rejects_empty_name(self):
        with pytest.raises(NetworkError):
            Server("", 1e9)

    @pytest.mark.parametrize("power", [0.0, -1e9, float("nan"), float("inf")])
    def test_rejects_bad_power(self, power):
        with pytest.raises(NetworkError):
            Server("S1", power)


class TestLink:
    def test_valid(self):
        link = Link("S1", "S2", 100e6, 0.001)
        assert link.endpoints == frozenset({"S1", "S2"})

    def test_rejects_self_link(self):
        with pytest.raises(NetworkError):
            Link("S1", "S1", 100e6)

    @pytest.mark.parametrize("speed", [0.0, -1.0, float("inf")])
    def test_rejects_bad_speed(self, speed):
        with pytest.raises(NetworkError):
            Link("S1", "S2", speed)

    def test_rejects_negative_propagation(self):
        with pytest.raises(NetworkError):
            Link("S1", "S2", 100e6, -0.1)


class TestServerNetwork:
    def test_duplicate_server_rejected(self, bus3):
        with pytest.raises(DuplicateServerError):
            bus3.add_server(Server("S1", 1e9))

    def test_duplicate_link_rejected(self, bus3):
        with pytest.raises(NetworkError):
            bus3.connect("S1", "S2", 10e6)
        with pytest.raises(NetworkError):
            bus3.connect("S2", "S1", 10e6)  # order-insensitive

    def test_link_requires_known_servers(self, bus3):
        with pytest.raises(UnknownServerError):
            bus3.connect("S1", "S9", 10e6)

    def test_unknown_topology_kind_rejected(self):
        with pytest.raises(NetworkError):
            ServerNetwork("x", topology_kind="torus")

    def test_queries(self, bus3):
        assert len(bus3) == 3
        assert "S1" in bus3 and "S9" not in bus3
        assert bus3.server_names == ("S1", "S2", "S3")
        assert bus3.server("S2").power_hz == 2e9
        assert bus3.total_power_hz == 6e9
        assert set(bus3.neighbors("S1")) == {"S2", "S3"}

    def test_link_lookup_is_order_insensitive(self, bus3):
        assert bus3.link("S1", "S2") is bus3.link("S2", "S1")
        assert bus3.has_link("S3", "S1")
        with pytest.raises(UnknownServerError):
            bus3.link("S1", "S9")

    def test_connectivity(self):
        network = ServerNetwork("disc")
        network.add_servers([Server("S1", 1e9), Server("S2", 1e9)])
        assert not network.is_connected()
        with pytest.raises(DisconnectedNetworkError):
            network.require_connected()
        network.connect("S1", "S2", 1e6)
        network.require_connected()

    def test_single_server_is_connected(self):
        network = ServerNetwork("solo")
        network.add_server(Server("S1", 1e9))
        assert network.is_connected()
        assert network.is_line()


class TestLineTopology:
    def test_factory_builds_chain(self, chain3):
        assert chain3.is_line()
        assert chain3.topology_kind == "line"
        assert chain3.line_order() == ("S1", "S2", "S3")
        assert chain3.link("S1", "S2").speed_bps == 10e6
        assert chain3.link("S2", "S3").speed_bps == 100e6
        assert not chain3.has_link("S1", "S3")

    def test_scalar_speed_broadcast(self):
        network = line_network([1e9, 1e9, 1e9, 1e9], speeds_bps=5e6)
        assert all(link.speed_bps == 5e6 for link in network.links)

    def test_speed_count_mismatch_rejected(self):
        with pytest.raises(NetworkError):
            line_network([1e9, 1e9, 1e9], speeds_bps=[1e6])

    def test_line_order_ignores_insertion_order(self):
        network = ServerNetwork("shuffled")
        network.add_servers(
            [Server("B", 1e9), Server("A", 1e9), Server("C", 1e9)]
        )
        network.connect("A", "B", 1e6)
        network.connect("B", "C", 1e6)
        # B was inserted first but is interior; endpoints are A and C, and
        # the first-inserted endpoint orients the chain
        assert network.line_order() == ("A", "B", "C")

    def test_line_order_rejects_non_line(self, bus3):
        with pytest.raises(NetworkError):
            bus3.line_order()

    def test_bus_is_not_line(self, bus3):
        assert not bus3.is_line()


class TestBusTopology:
    def test_factory_builds_complete_graph(self, bus3):
        assert bus3.topology_kind == "bus"
        assert len(bus3.links) == 3  # C(3, 2)
        assert bus3.is_uniform_bus()
        assert bus3.uniform_speed_bps == 100e6

    def test_heterogeneous_mesh_is_not_uniform_bus(self):
        network = full_mesh_network([1e9, 1e9, 1e9], [[1e6, 2e6], [3e6]])
        assert not network.is_uniform_bus()
        with pytest.raises(NetworkError):
            network.uniform_speed_bps

    def test_incomplete_graph_is_not_uniform_bus(self, chain3):
        assert not chain3.is_uniform_bus()

    def test_single_server_bus(self):
        network = bus_network([1e9], speed_bps=1e6)
        assert network.is_uniform_bus()
        with pytest.raises(NetworkError):
            network.uniform_speed_bps  # no links -> undefined


class TestOtherFactories:
    def test_star(self):
        network = star_network(3e9, [1e9, 1e9], speed_bps=1e6)
        assert network.topology_kind == "star"
        assert set(network.neighbors("HUB")) == {"S1", "S2"}
        assert not network.has_link("S1", "S2")

    def test_ring(self):
        network = ring_network([1e9] * 4, speed_bps=1e6)
        assert network.topology_kind == "ring"
        assert len(network.links) == 4
        assert network.has_link("S4", "S1")

    def test_ring_needs_three_servers(self):
        with pytest.raises(NetworkError):
            ring_network([1e9, 1e9], speed_bps=1e6)

    def test_mesh_per_pair_speeds(self):
        network = full_mesh_network([1e9, 1e9, 1e9], [[1e6, 2e6], [3e6]])
        assert network.link("S1", "S2").speed_bps == 1e6
        assert network.link("S1", "S3").speed_bps == 2e6
        assert network.link("S2", "S3").speed_bps == 3e6

    def test_factories_reject_empty(self):
        with pytest.raises(NetworkError):
            bus_network([], speed_bps=1e6)

    def test_summary(self, bus3):
        summary = bus3.summary()
        assert summary["servers"] == 3
        assert summary["links"] == 3
        assert summary["connected"] is True


class TestLiveMutation:
    """replace_server / remove_link / replace_link on a live network."""

    def test_replace_server_preserves_incident_links(self, chain3):
        links_before = chain3.links
        order_before = chain3.server_names
        chain3.replace_server(Server("S2", 9e9))
        assert chain3.server("S2").power_hz == 9e9
        assert chain3.links == links_before
        assert chain3.server_names == order_before
        assert set(chain3.neighbors("S2")) == {"S1", "S3"}
        assert chain3.line_order() == ("S1", "S2", "S3")

    def test_replace_server_unknown_rejected(self, chain3):
        with pytest.raises(UnknownServerError):
            chain3.replace_server(Server("S9", 1e9))

    def test_remove_link(self, bus3):
        removed = bus3.remove_link("S2", "S1")  # order-insensitive
        assert removed.endpoints == frozenset({"S1", "S2"})
        assert not bus3.has_link("S1", "S2")
        assert len(bus3.links) == 2
        assert bus3.is_connected()  # S1-S3-S2 still routes
        with pytest.raises(UnknownServerError):
            bus3.remove_link("S1", "S2")

    def test_remove_link_may_disconnect(self, chain3):
        chain3.remove_link("S1", "S2")
        assert not chain3.is_connected()

    def test_replace_link_swaps_parameters_only(self, chain3):
        old = chain3.link("S1", "S2")
        chain3.replace_link(Link("S1", "S2", old.speed_bps / 2, 0.25))
        link = chain3.link("S1", "S2")
        assert link.speed_bps == old.speed_bps / 2
        assert link.propagation_s == 0.25
        assert len(chain3.links) == 2
        assert chain3.is_line()

    def test_replace_link_unknown_rejected(self, chain3):
        with pytest.raises(UnknownServerError):
            chain3.replace_link(Link("S1", "S3", 1e6))


class TestHeterogeneousSummary:
    def test_uniform_bus_summary(self, bus3):
        summary = bus3.summary()
        assert summary["uniform_bus"] is True
        assert summary["min_link_speed_bps"] == 100e6
        assert summary["max_link_speed_bps"] == 100e6
        assert summary["max_propagation_s"] == 0.0

    def test_heterogeneous_summary(self):
        network = ServerNetwork("het")
        network.add_servers([Server("A", 1e9), Server("B", 2e9)])
        network.add_link(Link("A", "B", 5e6, 0.02))
        network.add_server(Server("C", 3e9))
        network.add_link(Link("B", "C", 50e6, 0.001))
        summary = network.summary()
        assert summary["uniform_bus"] is False
        assert summary["min_link_speed_bps"] == 5e6
        assert summary["max_link_speed_bps"] == 50e6
        assert summary["max_propagation_s"] == 0.02

    def test_linkless_summary(self):
        network = ServerNetwork("solo")
        network.add_server(Server("A", 1e9))
        summary = network.summary()
        assert summary["min_link_speed_bps"] is None
        assert summary["max_link_speed_bps"] is None
        assert summary["max_propagation_s"] is None
