"""Unit tests for the workflow and network generators."""

import random

import pytest

from repro.core.validation import check_well_formed
from repro.core.workflow import NodeKind
from repro.exceptions import ExperimentError
from repro.workloads.generator import (
    GraphStructure,
    line_workflow,
    random_bus_network,
    random_graph_workflow,
    random_line_network,
)
from repro.workloads.parameters import ClassCParameters


class TestLineWorkflow:
    def test_shape(self):
        workflow = line_workflow(19, seed=1)
        assert len(workflow) == 19
        assert workflow.is_line()
        assert len(workflow.messages) == 18

    def test_sampled_values_come_from_table6(self):
        workflow = line_workflow(30, seed=2)
        cycles = {op.cycles for op in workflow}
        assert cycles <= {10e6, 20e6, 30e6}
        sizes = {m.size_bits for m in workflow.messages}
        assert sizes <= {873 * 8, 7_581 * 8, 21_392 * 8}

    def test_deterministic_per_seed(self):
        w1 = line_workflow(10, seed=3)
        w2 = line_workflow(10, seed=3)
        assert [op.cycles for op in w1] == [op.cycles for op in w2]
        assert [m.size_bits for m in w1.messages] == [
            m.size_bits for m in w2.messages
        ]

    def test_single_operation(self):
        workflow = line_workflow(1, seed=0)
        assert len(workflow) == 1 and not workflow.messages

    def test_rejects_zero_operations(self):
        with pytest.raises(ExperimentError):
            line_workflow(0)

    def test_accepts_shared_rng(self):
        rng = random.Random(4)
        w1 = line_workflow(5, seed=rng)
        w2 = line_workflow(5, seed=rng)  # continues the stream
        assert len(w1) == len(w2) == 5


class TestGraphStructure:
    def test_paper_fractions(self):
        assert GraphStructure.BUSHY.decision_fraction == 0.50
        assert GraphStructure.LENGTHY.decision_fraction == 0.16
        assert GraphStructure.HYBRID.decision_fraction == 0.35


class TestRandomGraphWorkflow:
    @pytest.mark.parametrize("structure", list(GraphStructure))
    @pytest.mark.parametrize("size", [7, 19, 40])
    def test_well_formed_and_sized(self, structure, size):
        for seed in range(5):
            workflow = random_graph_workflow(size, structure, seed=seed)
            assert len(workflow) == size, (structure, size, seed)
            report = check_well_formed(workflow)
            assert report.ok, (structure, size, seed, report.problems)

    def test_decision_fraction_tracks_target(self):
        for structure in GraphStructure:
            fractions = [
                random_graph_workflow(40, structure, seed=s).decision_fraction()
                for s in range(10)
            ]
            mean = sum(fractions) / len(fractions)
            assert mean == pytest.approx(
                structure.decision_fraction, abs=0.08
            ), structure

    def test_bushy_has_more_decisions_than_lengthy(self):
        bushy = random_graph_workflow(30, GraphStructure.BUSHY, seed=1)
        lengthy = random_graph_workflow(30, GraphStructure.LENGTHY, seed=1)
        assert bushy.decision_fraction() > lengthy.decision_fraction()

    def test_xor_probabilities_valid(self):
        for seed in range(5):
            workflow = random_graph_workflow(
                25, GraphStructure.BUSHY, seed=seed
            )
            workflow.validate_xor_probabilities()

    def test_kind_weights_respected(self):
        only_xor = ((NodeKind.XOR_SPLIT, 1.0),)
        workflow = random_graph_workflow(
            30, GraphStructure.BUSHY, seed=2, kind_weights=only_xor
        )
        split_kinds = {op.kind for op in workflow if op.kind.is_split}
        assert split_kinds <= {NodeKind.XOR_SPLIT}

    def test_max_branches_respected(self):
        workflow = random_graph_workflow(
            40, GraphStructure.BUSHY, seed=3, max_branches=2
        )
        for op in workflow:
            if op.kind.is_split:
                assert len(workflow.successors(op.name)) <= 2

    def test_max_branches_validation(self):
        with pytest.raises(ExperimentError):
            random_graph_workflow(10, max_branches=1)

    def test_tiny_workflows_degrade_gracefully(self):
        for size in (1, 2, 3):
            workflow = random_graph_workflow(
                size, GraphStructure.BUSHY, seed=0
            )
            assert len(workflow) == size
            assert check_well_formed(workflow).ok

    def test_deterministic_per_seed(self):
        w1 = random_graph_workflow(20, GraphStructure.HYBRID, seed=7)
        w2 = random_graph_workflow(20, GraphStructure.HYBRID, seed=7)
        assert w1.operation_names == w2.operation_names
        assert [m.pair for m in w1.messages] == [m.pair for m in w2.messages]

    def test_single_entry_and_exit(self):
        workflow = random_graph_workflow(25, GraphStructure.HYBRID, seed=9)
        assert len(workflow.entries) == 1
        assert len(workflow.exits) == 1


class TestNetworkGenerators:
    def test_bus_network_sampling(self):
        network = random_bus_network(5, seed=1)
        assert len(network) == 5
        assert network.is_uniform_bus()
        powers = {s.power_hz for s in network}
        assert powers <= {1e9, 2e9, 3e9}
        assert network.uniform_speed_bps in {10e6, 100e6, 1000e6}

    def test_line_network_sampling(self):
        network = random_line_network(4, seed=2)
        assert network.is_line()
        assert len(network.links) == 3
        speeds = {link.speed_bps for link in network.links}
        assert speeds <= {10e6, 100e6, 1000e6}

    def test_single_server_network(self):
        assert len(random_bus_network(1, seed=0)) == 1
        assert len(random_line_network(1, seed=0)) == 1

    def test_rejects_zero_servers(self):
        with pytest.raises(ExperimentError):
            random_bus_network(0)
        with pytest.raises(ExperimentError):
            random_line_network(0)

    def test_custom_parameters(self):
        params = ClassCParameters.paper().with_fixed_bus_speed(5e6)
        network = random_bus_network(3, seed=3, parameters=params)
        assert network.uniform_speed_bps == 5e6
