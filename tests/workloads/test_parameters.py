"""Unit tests for the Class A/B/C parameter mixtures (Table 6)."""

import random

import pytest

from repro.exceptions import ExperimentError
from repro.workloads.parameters import (
    ClassAParameters,
    ClassBParameters,
    ClassCParameters,
    DiscreteMixture,
    HEAVY_OPERATION_CYCLES,
    MEDIUM_OPERATION_CYCLES,
    SIMPLE_OPERATION_CYCLES,
)


class TestDiscreteMixture:
    def test_rejects_empty(self):
        with pytest.raises(ExperimentError):
            DiscreteMixture([])

    def test_rejects_bad_weight(self):
        with pytest.raises(ExperimentError):
            DiscreteMixture([(1.0, -1.0)])

    def test_constant(self):
        mixture = DiscreteMixture.constant(42.0)
        rng = random.Random(0)
        assert all(mixture.sample(rng) == 42.0 for _ in range(10))
        assert mixture.mean() == 42.0

    def test_probabilities_normalised(self):
        mixture = DiscreteMixture([(1.0, 1), (2.0, 3)])
        assert mixture.probabilities() == pytest.approx((0.25, 0.75))
        assert mixture.values == (1.0, 2.0)

    def test_mean(self):
        mixture = DiscreteMixture([(10.0, 0.25), (20.0, 0.5), (30.0, 0.25)])
        assert mixture.mean() == pytest.approx(20.0)

    def test_sample_frequencies(self):
        mixture = DiscreteMixture([(1, 0.25), (2, 0.5), (3, 0.25)])
        rng = random.Random(5)
        n = 20_000
        counts = {1: 0, 2: 0, 3: 0}
        for _ in range(n):
            counts[mixture.sample(rng)] += 1
        assert counts[1] / n == pytest.approx(0.25, abs=0.02)
        assert counts[2] / n == pytest.approx(0.50, abs=0.02)

    def test_deterministic_per_seed(self):
        mixture = DiscreteMixture([(1, 1), (2, 1), (3, 1)])
        a = [mixture.sample(random.Random(9)) for _ in range(1)]
        b = [mixture.sample(random.Random(9)) for _ in range(1)]
        assert a == b


class TestOperationAnchors:
    def test_section_41_values(self):
        assert SIMPLE_OPERATION_CYCLES == 5e6
        assert MEDIUM_OPERATION_CYCLES == 50e6
        assert HEAVY_OPERATION_CYCLES == 500e6


class TestClassC:
    def test_table6_values(self):
        params = ClassCParameters.paper()
        assert params.line_speed_bps.values == (10e6, 100e6, 1000e6)
        assert params.line_speed_bps.probabilities() == pytest.approx(
            (0.25, 0.5, 0.25)
        )
        assert params.operation_cycles.values == (10e6, 20e6, 30e6)
        assert params.server_power_hz.values == (1e9, 2e9, 3e9)
        assert params.message_mixture.probability_of(
            params.message_mixture.classes[1]
        ) == pytest.approx(0.5)

    def test_with_fixed_bus_speed(self):
        pinned = ClassCParameters.paper().with_fixed_bus_speed(1e6)
        assert pinned.line_speed_bps.values == (1e6,)
        # the other mixtures survive unchanged
        assert pinned.operation_cycles.values == (10e6, 20e6, 30e6)


class TestClassA:
    def test_sweep_point_single_scale(self):
        params = ClassAParameters.sweep_point(10e6, "complex")
        assert params.line_speed_bps.values == (10e6,)
        assert len(params.message_mixture.classes) == 1
        assert params.message_mixture.classes[0].name == "complex"
        # CPU side pinned
        assert params.operation_cycles.values == (MEDIUM_OPERATION_CYCLES,)

    def test_sweep_point_mixed(self):
        params = ClassAParameters.sweep_point(100e6, "mixed")
        assert len(params.message_mixture.classes) == 3

    def test_unknown_scale_rejected(self):
        with pytest.raises(ExperimentError):
            ClassAParameters.sweep_point(1e6, "gigantic")

    def test_as_class_c_roundtrip(self):
        params = ClassAParameters.sweep_point(10e6, "simple")
        as_c = params.as_class_c()
        assert as_c.line_speed_bps.values == (10e6,)
        assert as_c.message_mixture is params.message_mixture


class TestClassB:
    def test_sweep_point(self):
        params = ClassBParameters.sweep_point(HEAVY_OPERATION_CYCLES, 3e9)
        assert params.operation_cycles.values == (HEAVY_OPERATION_CYCLES,)
        assert params.server_power_hz.values == (3e9,)
        # communication side pinned
        assert params.line_speed_bps.values == (100e6,)

    def test_as_class_c(self):
        as_c = ClassBParameters.sweep_point(5e6, 1e9).as_class_c()
        assert as_c.operation_cycles.values == (5e6,)
        assert as_c.server_power_hz.values == (1e9,)
