"""Unit tests for the SOAP message classes and mixtures."""

import random

import pytest

from repro.exceptions import ExperimentError
from repro.workloads.messages import (
    COMPLEX_MESSAGE,
    MEDIUM_MESSAGE,
    SIMPLE_MESSAGE,
    MessageClass,
    MessageMixture,
    PAPER_MESSAGE_MIXTURE,
)


class TestMessageClasses:
    def test_paper_byte_sizes(self):
        assert SIMPLE_MESSAGE.size_bytes == 873
        assert MEDIUM_MESSAGE.size_bytes == 7_581
        assert COMPLEX_MESSAGE.size_bytes == 21_392

    def test_bits_are_bytes_times_eight(self):
        assert SIMPLE_MESSAGE.size_bits == 873 * 8

    def test_paper_mbit_convention(self):
        """The paper's 'Mbits' figures use bytes*8/2**20."""
        assert SIMPLE_MESSAGE.size_mbits_paper == pytest.approx(
            0.00666, abs=5e-5
        )
        assert MEDIUM_MESSAGE.size_mbits_paper == pytest.approx(
            0.057838, abs=5e-5
        )
        assert COMPLEX_MESSAGE.size_mbits_paper == pytest.approx(
            0.163208, abs=5e-5
        )

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ExperimentError):
            MessageClass("bad", 0)


class TestMessageMixture:
    def test_rejects_empty(self):
        with pytest.raises(ExperimentError):
            MessageMixture([])

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ExperimentError):
            MessageMixture([(SIMPLE_MESSAGE, 0.0)])

    def test_probability_of(self):
        assert PAPER_MESSAGE_MIXTURE.probability_of(
            SIMPLE_MESSAGE
        ) == pytest.approx(0.25)
        assert PAPER_MESSAGE_MIXTURE.probability_of(
            MEDIUM_MESSAGE
        ) == pytest.approx(0.50)
        other = MessageClass("other", 1)
        assert PAPER_MESSAGE_MIXTURE.probability_of(other) == 0.0

    def test_weights_are_normalised(self):
        mixture = MessageMixture([(SIMPLE_MESSAGE, 2), (MEDIUM_MESSAGE, 6)])
        assert mixture.probability_of(SIMPLE_MESSAGE) == pytest.approx(0.25)

    def test_sample_distribution(self):
        rng = random.Random(0)
        counts = {"simple": 0, "medium": 0, "complex": 0}
        n = 20_000
        for _ in range(n):
            counts[PAPER_MESSAGE_MIXTURE.sample(rng).name] += 1
        assert counts["simple"] / n == pytest.approx(0.25, abs=0.02)
        assert counts["medium"] / n == pytest.approx(0.50, abs=0.02)
        assert counts["complex"] / n == pytest.approx(0.25, abs=0.02)

    def test_sample_bits(self):
        rng = random.Random(1)
        valid = {
            SIMPLE_MESSAGE.size_bits,
            MEDIUM_MESSAGE.size_bits,
            COMPLEX_MESSAGE.size_bits,
        }
        for _ in range(50):
            assert PAPER_MESSAGE_MIXTURE.sample_bits(rng) in valid

    def test_mean_bits(self):
        expected = (
            0.25 * SIMPLE_MESSAGE.size_bits
            + 0.50 * MEDIUM_MESSAGE.size_bits
            + 0.25 * COMPLEX_MESSAGE.size_bits
        )
        assert PAPER_MESSAGE_MIXTURE.mean_bits() == pytest.approx(expected)

    def test_single_class_mixture(self):
        mixture = MessageMixture([(MEDIUM_MESSAGE, 1.0)])
        rng = random.Random(2)
        assert all(
            mixture.sample(rng) == MEDIUM_MESSAGE for _ in range(20)
        )
        assert mixture.mean_bits() == MEDIUM_MESSAGE.size_bits
