"""Unit tests for the Fig. 1 healthcare workflow reconstruction."""

import pytest

from repro.core.cost import CostModel
from repro.core.validation import check_well_formed
from repro.core.workflow import NodeKind
from repro.workloads.gallery import healthcare_workflow, ministry_network


def test_fifteen_operations_like_figure_1():
    assert len(healthcare_workflow()) == 15


def test_well_formed():
    report = check_well_formed(healthcare_workflow())
    assert report.ok, report.problems


def test_has_xor_and_and_regions():
    workflow = healthcare_workflow()
    kinds = {op.kind for op in workflow}
    assert NodeKind.XOR_SPLIT in kinds and NodeKind.XOR_JOIN in kinds
    assert NodeKind.AND_SPLIT in kinds and NodeKind.AND_JOIN in kinds


def test_branch_probabilities():
    workflow = healthcare_workflow()
    assert workflow.message(
        "check_availability", "assign_slot"
    ).probability == pytest.approx(0.7)
    assert workflow.message(
        "check_availability", "propose_alternative"
    ).probability == pytest.approx(0.3)
    workflow.validate_xor_probabilities()


def test_ministry_network_shape():
    network = ministry_network()
    assert len(network) == 5
    assert network.is_uniform_bus()
    assert network.uniform_speed_bps == 100e6
    # 5**15 configurations, as the motivating example says
    assert len(network) ** len(healthcare_workflow()) == 5**15


def test_example_is_deployable_end_to_end():
    from repro.algorithms.heavy_ops import HeavyOpsLargeMsgs

    workflow = healthcare_workflow()
    network = ministry_network()
    model = CostModel(workflow, network)
    deployment = HeavyOpsLargeMsgs().deploy(workflow, network, cost_model=model)
    breakdown = model.evaluate(deployment)
    assert breakdown.execution_time > 0
    assert breakdown.time_penalty >= 0


def test_speed_parameter():
    assert ministry_network(speed_bps=1e6).uniform_speed_bps == 1e6
