"""Unit tests for branch-probability monitoring and calibration (§3.4)."""

import pytest

from repro.core.builder import WorkflowBuilder
from repro.core.mapping import Deployment
from repro.core.probability import execution_probabilities
from repro.core.workflow import NodeKind
from repro.exceptions import ExperimentError
from repro.network.topology import bus_network
from repro.workloads.monitoring import (
    calibrated_workflow,
    monitor_and_calibrate,
    observe_branch_frequencies,
)


def xor_workflow(p_left=0.8):
    builder = WorkflowBuilder("monitored", default_message_bits=1_000)
    builder.task("start", 1e6)
    builder.split(NodeKind.XOR_SPLIT, "x", 1e6)
    builder.branch(probability=p_left)
    builder.task("left", 1e6)
    builder.branch(probability=1.0 - p_left)
    builder.task("right", 1e6)
    builder.join("xe", 1e6)
    return builder.build()


@pytest.fixture
def deployed():
    workflow = xor_workflow()
    network = bus_network([1e9, 1e9], speed_bps=100e6)
    deployment = Deployment.round_robin(workflow, network)
    return workflow, network, deployment


class TestObserve:
    def test_frequencies_sum_to_one_per_split(self, deployed):
        workflow, network, deployment = deployed
        frequencies = observe_branch_frequencies(
            workflow, network, deployment, runs=500, rng=1
        )
        total = frequencies[("x", "left")] + frequencies[("x", "right")]
        assert total == pytest.approx(1.0)

    def test_frequencies_match_annotations(self, deployed):
        workflow, network, deployment = deployed
        frequencies = observe_branch_frequencies(
            workflow, network, deployment, runs=2_000, rng=2
        )
        assert frequencies[("x", "left")] == pytest.approx(0.8, abs=0.05)

    def test_runs_validated(self, deployed):
        workflow, network, deployment = deployed
        with pytest.raises(ExperimentError):
            observe_branch_frequencies(
                workflow, network, deployment, runs=0
            )

    def test_no_xor_yields_empty(self, line3, bus3):
        deployment = Deployment.all_on_one(line3, "S1")
        assert (
            observe_branch_frequencies(line3, bus3, deployment, runs=5)
            == {}
        )

    def test_shared_branch_head_rejected(self, bus3):
        """A branch head with several predecessors breaks the counting
        assumption and must be detected, not silently miscounted."""
        from repro.core.workflow import Operation, Workflow

        workflow = Workflow("shared-head")
        workflow.add_operations(
            [
                Operation("pre", 1e6),
                Operation("x", 1e6, NodeKind.XOR_SPLIT),
                Operation("a", 1e6),
                Operation("b", 1e6),
                Operation("j", 1e6, NodeKind.XOR_JOIN),
            ]
        )
        workflow.connect("pre", "x", 1)
        workflow.connect("x", "a", 1, probability=0.5)
        workflow.connect("x", "b", 1, probability=0.5)
        workflow.connect("a", "j", 1)
        workflow.connect("b", "j", 1)
        workflow.connect("pre", "a", 1)  # second predecessor of head 'a'
        deployment = Deployment.all_on_one(workflow, "S1")
        with pytest.raises(ExperimentError):
            observe_branch_frequencies(workflow, bus3, deployment, runs=5)


class TestCalibrate:
    def test_calibration_moves_probabilities_to_observations(self, deployed):
        workflow, network, deployment = deployed
        # pretend monitoring saw a very different world: left rare
        frequencies = {("x", "left"): 0.1, ("x", "right"): 0.9}
        calibrated = calibrated_workflow(
            workflow, frequencies, smoothing=0.0
        )
        assert calibrated.message("x", "left").probability == pytest.approx(
            0.1
        )
        probs = execution_probabilities(calibrated)
        assert probs["left"] == pytest.approx(0.1)
        # the original is untouched
        assert workflow.message("x", "left").probability == 0.8

    def test_smoothing_keeps_unseen_branches_positive(self, deployed):
        workflow, _, _ = deployed
        frequencies = {("x", "left"): 1.0, ("x", "right"): 0.0}
        calibrated = calibrated_workflow(workflow, frequencies, smoothing=0.05)
        assert calibrated.message("x", "right").probability > 0
        calibrated.validate_xor_probabilities()

    def test_unobserved_split_keeps_prior(self, deployed):
        workflow, _, _ = deployed
        calibrated = calibrated_workflow(workflow, {}, smoothing=0.05)
        assert calibrated.message("x", "left").probability == 0.8

    def test_negative_smoothing_rejected(self, deployed):
        workflow, _, _ = deployed
        with pytest.raises(ExperimentError):
            calibrated_workflow(workflow, {}, smoothing=-0.1)


class TestEndToEnd:
    def test_monitor_and_calibrate_recovers_probabilities(self, deployed):
        workflow, network, deployment = deployed
        calibrated = monitor_and_calibrate(
            workflow, network, deployment, runs=2_000, smoothing=0.01, rng=3
        )
        assert calibrated.message("x", "left").probability == pytest.approx(
            0.8, abs=0.05
        )
        calibrated.validate_xor_probabilities()

    def test_calibrated_workflow_is_deployable(self, deployed):
        from repro.algorithms.heavy_ops import HeavyOpsLargeMsgs

        workflow, network, deployment = deployed
        calibrated = monitor_and_calibrate(
            workflow, network, deployment, runs=100, rng=4
        )
        redeployed = HeavyOpsLargeMsgs().deploy(calibrated, network)
        assert redeployed.is_complete(calibrated)
