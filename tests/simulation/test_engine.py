"""Unit tests for the discrete-event simulation engine.

The key invariant: with unbounded server concurrency the simulator must
agree with the analytic cost model wherever the model is exact (line
workflows, AND/OR regions; XOR in expectation).
"""

import pytest

from repro.core.cost import CostModel
from repro.core.mapping import Deployment
from repro.core.workflow import Operation, Workflow
from repro.exceptions import SimulationError
from repro.network.topology import bus_network
from repro.simulation.engine import SimulationEngine

MS = 1e-3


class TestGuards:
    def test_incomplete_deployment_rejected(self, line3, bus3):
        from repro.exceptions import IncompleteMappingError

        with pytest.raises(IncompleteMappingError):
            SimulationEngine(line3, bus3, Deployment({"A": "S1"}))

    def test_bad_concurrency_rejected(self, line3, bus3):
        deployment = Deployment.all_on_one(line3, "S1")
        with pytest.raises(SimulationError):
            SimulationEngine(line3, bus3, deployment, server_concurrency=0)

    def test_cyclic_workflow_rejected(self, line3, bus3):
        deployment = Deployment.all_on_one(line3, "S1")
        line3.connect("C", "A", 1)
        with pytest.raises(SimulationError):
            SimulationEngine(line3, bus3, deployment)

    def test_run_many_validates_runs(self, line3, bus3):
        engine = SimulationEngine(line3, bus3, Deployment.all_on_one(line3, "S1"))
        with pytest.raises(SimulationError):
            engine.run_many(0)


class TestLineAgreement:
    def test_matches_analytic_all_on_one(self, line3, bus3):
        deployment = Deployment.all_on_one(line3, "S1")
        engine = SimulationEngine(line3, bus3, deployment)
        result = engine.run()
        analytic = CostModel(line3, bus3).execution_time(deployment)
        assert result.makespan == pytest.approx(analytic)

    def test_matches_analytic_spread(self, line3, bus3):
        deployment = Deployment({"A": "S1", "B": "S2", "C": "S3"})
        engine = SimulationEngine(line3, bus3, deployment)
        analytic = CostModel(line3, bus3).execution_time(deployment)
        assert engine.run().makespan == pytest.approx(analytic)

    def test_busy_time_matches_loads(self, line3, bus3):
        deployment = Deployment({"A": "S1", "B": "S2", "C": "S3"})
        engine = SimulationEngine(line3, bus3, deployment)
        result = engine.run()
        loads = CostModel(line3, bus3).loads(deployment)
        for server, load in loads.items():
            assert result.busy_time[server] == pytest.approx(load)

    def test_bits_sent_counts_cross_server_only(self, line3, bus3):
        colocated = SimulationEngine(
            line3, bus3, Deployment.all_on_one(line3, "S1")
        ).run()
        assert colocated.bits_sent == 0 and colocated.messages_sent == 0
        spread = SimulationEngine(
            line3, bus3, Deployment({"A": "S1", "B": "S2", "C": "S3"})
        ).run()
        assert spread.bits_sent == 8_000 + 16_000
        assert spread.messages_sent == 2


class TestDecisionSemantics:
    def test_and_join_waits_for_both(self, and_diamond, bus3):
        deployment = Deployment.all_on_one(and_diamond, "S1")
        engine = SimulationEngine(and_diamond, bus3, deployment)
        result = engine.run()
        assert result.makespan == pytest.approx(62 * MS)
        assert result.executed_operations == set(
            and_diamond.operation_names
        )

    def test_or_join_fires_on_first_arrival(self, or_diamond, bus3):
        deployment = Deployment.all_on_one(or_diamond, "S1")
        engine = SimulationEngine(or_diamond, bus3, deployment)
        result = engine.run()
        assert result.makespan == pytest.approx(27 * MS)
        # the slow branch still executed (and consumed busy time)
        assert "slow" in result.executed_operations

    def test_xor_executes_exactly_one_branch(self, xor_diamond, bus3):
        deployment = Deployment.all_on_one(xor_diamond, "S1")
        engine = SimulationEngine(xor_diamond, bus3, deployment)
        for seed in range(10):
            result = engine.run(rng=seed)
            executed = result.executed_operations
            assert ("left" in executed) != ("right" in executed)

    def test_xor_expectation_approaches_analytic(self, xor_diamond, bus3):
        deployment = Deployment.all_on_one(xor_diamond, "S1")
        engine = SimulationEngine(xor_diamond, bus3, deployment)
        analytic = CostModel(xor_diamond, bus3).execution_time(deployment)
        estimate = engine.expected_makespan(runs=2_000, rng=7)
        assert estimate == pytest.approx(analytic, rel=0.05)

    def test_xor_branch_frequencies(self, xor_diamond, bus3):
        deployment = Deployment.all_on_one(xor_diamond, "S1")
        engine = SimulationEngine(xor_diamond, bus3, deployment)
        results = engine.run_many(2_000, rng=3)
        lefts = sum(1 for r in results if "left" in r.executed_operations)
        assert lefts / len(results) == pytest.approx(0.7, abs=0.05)


class TestContention:
    def test_single_core_serialises_parallel_branches(self, and_diamond, bus3):
        deployment = Deployment.all_on_one(and_diamond, "S1")
        unbounded = SimulationEngine(and_diamond, bus3, deployment).run()
        single = SimulationEngine(
            and_diamond, bus3, deployment, server_concurrency=1
        ).run()
        # left (20ms) and right (40ms) overlap when unbounded, serialise
        # when the server has one core
        assert single.makespan == pytest.approx(
            unbounded.makespan + 20 * MS
        )
        assert single.total_queueing_delay() > 0
        assert unbounded.total_queueing_delay() == 0

    def test_contention_never_speeds_things_up(self, and_diamond, bus5):
        deployment = Deployment.round_robin(and_diamond, bus5)
        unbounded = SimulationEngine(and_diamond, bus5, deployment).run()
        single = SimulationEngine(
            and_diamond, bus5, deployment, server_concurrency=1
        ).run()
        assert single.makespan >= unbounded.makespan - 1e-15


class TestTraceRecords:
    def test_records_are_consistent(self, line3, bus3):
        deployment = Deployment({"A": "S1", "B": "S2", "C": "S3"})
        result = SimulationEngine(line3, bus3, deployment).run()
        assert [r.operation for r in result.records] == ["A", "B", "C"]
        for record in result.records:
            assert record.ready_time <= record.start_time < record.finish_time
            assert record.service_time > 0
        assert result.record_for("B").server == "S2"
        with pytest.raises(KeyError):
            result.record_for("ghost")

    def test_determinism_per_seed(self, xor_diamond, bus3):
        deployment = Deployment.round_robin(xor_diamond, bus3)
        engine = SimulationEngine(xor_diamond, bus3, deployment)
        r1 = engine.run(rng=42)
        r2 = engine.run(rng=42)
        assert r1.makespan == r2.makespan
        assert r1.executed_operations == r2.executed_operations
