"""Propagation delay (`Trefl`): model vs simulator agreement."""

import pytest

from repro.core.cost import CostModel
from repro.core.mapping import Deployment
from repro.network.topology import bus_network, line_network
from repro.simulation.engine import SimulationEngine


@pytest.fixture
def propagating_bus():
    return bus_network([1e9, 2e9, 3e9], speed_bps=100e6, propagation_s=0.005)


def test_cost_model_includes_propagation(line3, propagating_bus):
    deployment = Deployment({"A": "S1", "B": "S2", "C": "S3"})
    model = CostModel(line3, propagating_bus)
    # 30 ms processing + 2 transfers, each size/speed + 5 ms propagation
    expected = 0.030 + (8_000 / 100e6 + 0.005) + (16_000 / 100e6 + 0.005)
    assert model.execution_time(deployment) == pytest.approx(expected)


def test_simulator_matches_model_with_propagation(line3, propagating_bus):
    deployment = Deployment({"A": "S1", "B": "S2", "C": "S3"})
    model = CostModel(line3, propagating_bus)
    result = SimulationEngine(line3, propagating_bus, deployment).run()
    assert result.makespan == pytest.approx(
        model.execution_time(deployment)
    )


def test_multi_hop_propagation_accumulates(line3):
    network = line_network([1e9, 1e9, 1e9], 100e6, propagation_s=0.01)
    # A on S1, B on S1, C on S3: the B->C message crosses two links
    deployment = Deployment({"A": "S1", "B": "S1", "C": "S3"})
    model = CostModel(line3, network)
    expected_comm = 2 * (16_000 / 100e6 + 0.01)
    assert model.total_communication_time(deployment) == pytest.approx(
        expected_comm
    )
    result = SimulationEngine(line3, network, deployment).run()
    assert result.makespan == pytest.approx(
        model.execution_time(deployment)
    )


def test_colocated_pays_no_propagation(line3, propagating_bus):
    deployment = Deployment.all_on_one(line3, "S2")
    model = CostModel(line3, propagating_bus)
    assert model.total_communication_time(deployment) == 0.0
