"""Unit tests for the event queue primitives."""

import pytest

from repro.exceptions import SimulationError
from repro.simulation.events import Event, EventKind, EventQueue


def test_pop_orders_by_time():
    queue = EventQueue()
    queue.schedule(3.0, EventKind.MESSAGE_ARRIVAL, "late")
    queue.schedule(1.0, EventKind.MESSAGE_ARRIVAL, "early")
    queue.schedule(2.0, EventKind.OPERATION_FINISH, "middle")
    assert [queue.pop().payload for _ in range(3)] == [
        "early",
        "middle",
        "late",
    ]


def test_simultaneous_events_pop_in_schedule_order():
    queue = EventQueue()
    for i in range(5):
        queue.schedule(1.0, EventKind.MESSAGE_ARRIVAL, i)
    assert [queue.pop().payload for _ in range(5)] == [0, 1, 2, 3, 4]


def test_unorderable_payloads_do_not_break_heap():
    queue = EventQueue()
    queue.schedule(1.0, EventKind.MESSAGE_ARRIVAL, {"a": 1})
    queue.schedule(1.0, EventKind.MESSAGE_ARRIVAL, {"b": 2})
    assert queue.pop().payload == {"a": 1}


def test_len_and_bool():
    queue = EventQueue()
    assert not queue and len(queue) == 0
    queue.schedule(1.0, EventKind.MESSAGE_ARRIVAL)
    assert queue and len(queue) == 1


def test_peek_time():
    queue = EventQueue()
    queue.schedule(5.0, EventKind.MESSAGE_ARRIVAL)
    queue.schedule(2.0, EventKind.MESSAGE_ARRIVAL)
    assert queue.peek_time() == 2.0
    assert len(queue) == 2  # peek does not pop


def test_empty_pop_and_peek_raise():
    queue = EventQueue()
    with pytest.raises(SimulationError):
        queue.pop()
    with pytest.raises(SimulationError):
        queue.peek_time()


def test_negative_time_rejected():
    queue = EventQueue()
    with pytest.raises(SimulationError):
        queue.schedule(-0.1, EventKind.MESSAGE_ARRIVAL)


def test_event_ordering_ignores_payload():
    a = Event(1.0, 0, EventKind.MESSAGE_ARRIVAL, payload={"x": 1})
    b = Event(1.0, 1, EventKind.OPERATION_FINISH, payload={"y": 2})
    assert a < b  # sequence breaks the tie; payload never compared
