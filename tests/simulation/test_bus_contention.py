"""Unit tests for the shared-bus contention mode of the simulator."""

import pytest

from repro.core.builder import WorkflowBuilder
from repro.core.cost import CostModel
from repro.core.mapping import Deployment
from repro.core.workflow import NodeKind
from repro.network.topology import bus_network
from repro.simulation.engine import SimulationEngine


@pytest.fixture
def parallel_senders():
    """An AND region whose two branches each send a big cross-bus message.

    ``start -> fork -> (a | b) -> join``: with a, b on S1 and the join
    on S2, both branch results cross the bus at the same moment.
    """
    builder = WorkflowBuilder("senders", default_message_bits=1_000_000)
    builder.task("start", 1e6, message_bits=1_000)
    builder.split(NodeKind.AND_SPLIT, "fork", 1e6, message_bits=1_000)
    builder.branch()
    builder.task("a", 10e6, message_bits=1_000)
    builder.branch()
    builder.task("b", 10e6, message_bits=1_000)
    builder.join("join", 1e6)  # a->join and b->join carry 1 Mbit each
    workflow = builder.build()
    network = bus_network([1e9, 1e9], speed_bps=1e6)  # 1 s per message
    deployment = Deployment(
        {"start": "S1", "fork": "S1", "a": "S1", "b": "S1", "join": "S2"}
    )
    return workflow, network, deployment


def test_exclusive_bus_serialises_concurrent_transfers(parallel_senders):
    workflow, network, deployment = parallel_senders
    free = SimulationEngine(workflow, network, deployment).run()
    shared = SimulationEngine(
        workflow, network, deployment, exclusive_bus=True
    ).run()
    # both 1 Mbit messages leave at the same time; on an exclusive bus
    # the second waits a full transfer (~1 s) behind the first
    assert shared.makespan == pytest.approx(free.makespan + 1.0, rel=1e-6)


def test_exclusive_bus_matches_free_bus_without_overlap(line3, bus3):
    """A line never overlaps transfers, so the modes agree exactly."""
    deployment = Deployment({"A": "S1", "B": "S2", "C": "S3"})
    free = SimulationEngine(line3, bus3, deployment).run()
    shared = SimulationEngine(
        line3, bus3, deployment, exclusive_bus=True
    ).run()
    assert shared.makespan == pytest.approx(free.makespan)


def test_exclusive_bus_never_faster(parallel_senders):
    workflow, network, deployment = parallel_senders
    free = SimulationEngine(workflow, network, deployment).run()
    shared = SimulationEngine(
        workflow, network, deployment, exclusive_bus=True
    ).run()
    assert shared.makespan >= free.makespan - 1e-12


def test_colocated_messages_skip_the_bus(parallel_senders):
    """Local messages never occupy the shared medium."""
    workflow, network, _ = parallel_senders
    all_on_one = Deployment.all_on_one(workflow, "S1")
    shared = SimulationEngine(
        workflow, network, all_on_one, exclusive_bus=True
    ).run()
    free = SimulationEngine(workflow, network, all_on_one).run()
    assert shared.makespan == pytest.approx(free.makespan)
    assert shared.bits_sent == 0


def test_exclusive_bus_widens_holm_advantage():
    """Bus contention punishes communication even harder, so HOLM's lead
    over Fair Load can only grow on a congested shared bus."""
    from repro.algorithms.fair_load import FairLoad
    from repro.algorithms.heavy_ops import HeavyOpsLargeMsgs
    from repro.workloads.generator import line_workflow

    workflow = line_workflow(12, seed=3)
    network = bus_network([1e9, 2e9, 3e9], speed_bps=1e6)
    model = CostModel(workflow, network)
    results = {}
    for algorithm in (FairLoad(), HeavyOpsLargeMsgs()):
        deployment = algorithm.deploy(workflow, network, cost_model=model)
        results[algorithm.name] = SimulationEngine(
            workflow, network, deployment, exclusive_bus=True
        ).run()
    assert (
        results["HeavyOps-LargeMsgs"].makespan
        <= results["FairLoad"].makespan
    )
