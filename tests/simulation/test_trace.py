"""Unit tests for trace records and simulation results."""

import pytest

from repro.simulation.trace import OperationRecord, SimulationResult


def record(name="A", server="S1", ready=1.0, start=2.0, finish=5.0):
    return OperationRecord(
        operation=name,
        server=server,
        ready_time=ready,
        start_time=start,
        finish_time=finish,
    )


class TestOperationRecord:
    def test_queueing_delay(self):
        assert record(ready=1.0, start=3.0).queueing_delay == 2.0
        assert record(ready=1.0, start=1.0).queueing_delay == 0.0

    def test_service_time(self):
        assert record(start=2.0, finish=5.0).service_time == 3.0


class TestSimulationResult:
    def _result(self):
        return SimulationResult(
            makespan=5.0,
            records=(
                record("A", ready=0.0, start=0.0, finish=2.0),
                record("B", ready=2.0, start=3.0, finish=5.0),
            ),
            busy_time={"S1": 4.0},
            bits_sent=1_000.0,
            messages_sent=1,
            executed_operations=frozenset({"A", "B"}),
        )

    def test_record_for(self):
        result = self._result()
        assert result.record_for("A").finish_time == 2.0
        with pytest.raises(KeyError):
            result.record_for("Z")

    def test_total_queueing_delay(self):
        assert self._result().total_queueing_delay() == 1.0

    def test_fields(self):
        result = self._result()
        assert result.makespan == 5.0
        assert result.bits_sent == 1_000.0
        assert result.messages_sent == 1
        assert result.executed_operations == {"A", "B"}
