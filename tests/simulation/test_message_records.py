"""Unit tests for per-message trace records."""

import pytest

from repro.core.mapping import Deployment
from repro.simulation.engine import SimulationEngine
from repro.simulation.trace import MessageRecord


class TestMessageRecords:
    def test_line_records_every_message(self, line3, bus3):
        deployment = Deployment({"A": "S1", "B": "S2", "C": "S3"})
        result = SimulationEngine(line3, bus3, deployment).run()
        assert [(r.source, r.target) for r in result.message_records] == [
            ("A", "B"),
            ("B", "C"),
        ]
        assert all(r.crossed_network for r in result.message_records)
        assert result.network_messages() == result.message_records

    def test_latencies_match_link_speed(self, line3, bus3):
        deployment = Deployment({"A": "S1", "B": "S2", "C": "S3"})
        result = SimulationEngine(line3, bus3, deployment).run()
        ab = result.message_records[0]
        assert ab.latency == pytest.approx(8_000 / 100e6)
        assert ab.size_bits == 8_000
        assert ab.arrival_time == pytest.approx(
            ab.departure_time + ab.latency
        )

    def test_colocated_messages_have_zero_latency(self, line3, bus3):
        deployment = Deployment.all_on_one(line3, "S1")
        result = SimulationEngine(line3, bus3, deployment).run()
        assert len(result.message_records) == 2
        for record in result.message_records:
            assert not record.crossed_network
            assert record.latency == 0.0
        assert result.network_messages() == ()

    def test_xor_run_records_only_taken_branch(self, xor_diamond, bus3):
        deployment = Deployment.all_on_one(xor_diamond, "S1")
        result = SimulationEngine(xor_diamond, bus3, deployment).run(rng=1)
        pairs = {(r.source, r.target) for r in result.message_records}
        took_left = ("choice", "left") in pairs
        took_right = ("choice", "right") in pairs
        assert took_left != took_right

    def test_bits_sent_consistent_with_records(self, line5, bus3):
        deployment = Deployment.round_robin(line5, bus3)
        result = SimulationEngine(line5, bus3, deployment).run()
        assert result.bits_sent == pytest.approx(
            sum(r.size_bits for r in result.network_messages())
        )
        assert result.messages_sent == len(result.network_messages())

    def test_exclusive_bus_queueing_shows_in_latency(self):
        from repro.core.builder import WorkflowBuilder
        from repro.core.workflow import NodeKind
        from repro.network.topology import bus_network

        builder = WorkflowBuilder("two-senders", default_message_bits=1_000_000)
        builder.task("start", 1e6, message_bits=100)
        builder.split(NodeKind.AND_SPLIT, "fork", 1e6, message_bits=100)
        builder.branch()
        builder.task("a", 10e6, message_bits=100)
        builder.branch()
        builder.task("b", 10e6, message_bits=100)
        builder.join("join", 1e6)
        workflow = builder.build()
        network = bus_network([1e9, 1e9], speed_bps=1e6)
        deployment = Deployment(
            {"start": "S1", "fork": "S1", "a": "S1", "b": "S1", "join": "S2"}
        )
        result = SimulationEngine(
            workflow, network, deployment, exclusive_bus=True
        ).run()
        crossing = sorted(
            result.network_messages(), key=lambda r: r.arrival_time
        )
        big = [r for r in crossing if r.size_bits == 1_000_000]
        assert len(big) == 2
        first, second = big
        # first transfer is pure transmission; the second queued behind it
        assert first.latency == pytest.approx(1.0)
        assert second.latency == pytest.approx(2.0, rel=1e-6)


def test_message_record_latency_property():
    record = MessageRecord("a", "b", 1.0, 3.5, 100.0, True)
    assert record.latency == 2.5
