"""Documentation hygiene tests.

* every public module, class and function carries a docstring;
* the generated API reference (docs/API.md) is in sync with the code.
"""

import importlib.util
import inspect
import pkgutil
import sys
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_docgen():
    spec = importlib.util.spec_from_file_location(
        "gen_api_docs", REPO_ROOT / "tools" / "gen_api_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def all_repro_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "__main__" in info.name:
            continue
        names.append(info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", all_repro_modules())
def test_every_module_has_a_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", all_repro_modules())
def test_every_public_callable_has_a_docstring(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    for name, obj in inspect.getmembers(module):
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue
        if exported is not None and name not in exported:
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__ and obj.__doc__.strip(), (
                f"{module_name}.{name} has no docstring"
            )
            if inspect.isclass(obj):
                for method_name, method in inspect.getmembers(
                    obj, inspect.isfunction
                ):
                    if method_name.startswith("_"):
                        continue
                    if method.__qualname__.split(".")[0] != obj.__name__:
                        continue
                    assert method.__doc__ and method.__doc__.strip(), (
                        f"{module_name}.{name}.{method_name} has no docstring"
                    )


def test_api_reference_is_in_sync():
    """docs/API.md must match a fresh render of the docstrings.

    Regenerate with ``python tools/gen_api_docs.py`` after API changes.
    """
    docgen = _load_docgen()
    committed = (REPO_ROOT / "docs" / "API.md").read_text()
    assert committed == docgen.build_markdown()


def test_required_documents_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        path = REPO_ROOT / name
        assert path.exists() and path.stat().st_size > 1_000, name
