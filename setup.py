"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` on this machine has no network access and no
``wheel`` distribution, so the PEP 660 editable build (which produces an
editable *wheel*) cannot run. This shim keeps the legacy
``setup.py develop`` path available::

    pip install -e . --no-use-pep517 --no-build-isolation

All metadata lives in ``pyproject.toml``; this file adds nothing else.
"""

from setuptools import setup

setup()
