"""Shared helpers for the benchmark harness.

Every benchmark both *times* its experiment (pytest-benchmark) and
*regenerates the paper's data*: the tables/series are printed to stdout
(visible with ``pytest -s``) and persisted under ``benchmarks/output/``
so a full ``pytest benchmarks/ --benchmark-only`` run leaves the complete
set of reproduced figures on disk.

Perf numbers additionally land in machine-readable JSON
(``output/<name>.json`` via :func:`write_json`, plus a ``.json`` sidecar
of every :func:`emit` call) so successive PRs can diff the perf
trajectory instead of parsing tables.
"""

from __future__ import annotations

import json
import os
import pathlib

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def perf_floor(name: str, default: float) -> float:
    """The perf floor asserted by a benchmark, env-tunable per machine.

    ``BENCH_FLOOR_<NAME>`` overrides *default* (set it to ``0`` to turn
    an assertion into measurement-only). Defaults are chosen to pass on
    modest CI hardware; the measured values are always recorded in the
    benchmark's JSON output regardless of the floor, so perf
    trajectories stay comparable across machines.
    """
    raw = os.environ.get(f"BENCH_FLOOR_{name}", "").strip()
    return float(raw) if raw else default

#: Paper anchor numbers quoted in section 4.2, for side-by-side context
#: in the quality benchmarks: worst-case (execution, penalty) deviations
#: of HeavyOps-LargeMsgs from the best of 32 000 sampled solutions.
PAPER_QUALITY_ANCHORS = {
    ("line", 1e6): (0.029, 0.12),
    ("line", 100e6): (0.29, 0.003),
    ("graph", 1e6): (0.29, 0.018),
    ("graph", 100e6): (0.0, 0.0),
}


def write_json(name: str, payload) -> pathlib.Path:
    """Persist *payload* to ``output/<name>.json``; return the path.

    The machine-readable side of the benchmark outputs: stable key
    order, indented, trailing newline -- so perf trajectories diff
    cleanly across runs and PRs.
    """
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUTPUT_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def emit(name: str, *renderables) -> None:
    """Print tables/strings and persist them to ``output/<name>.txt``.

    Also dumps a machine-readable ``output/<name>.json`` sidecar holding
    the rendered chunks, via :func:`write_json`.
    """
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    chunks = []
    for renderable in renderables:
        text = renderable if isinstance(renderable, str) else str(renderable)
        chunks.append(text)
    body = "\n\n".join(chunks) + "\n"
    (OUTPUT_DIR / f"{name}.txt").write_text(body)
    write_json(name, {"name": name, "chunks": chunks})
    print(f"\n=== {name} ===\n{body}")
