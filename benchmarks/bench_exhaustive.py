"""Section 3.1 -- the exhaustive algorithm and its N**M wall.

Times full enumeration as M grows (N = 3), demonstrating the exponential
blow-up that motivates the heuristics, and measures the heuristics'
optimality gap on instances where the optimum is still computable.
"""

import pytest

from repro.algorithms.base import algorithm_registry
from repro.algorithms.exhaustive import Exhaustive
from repro.core.cost import CostModel
from repro.experiments.reporting import TextTable
from repro.workloads.generator import line_workflow, random_bus_network

from _common import emit


@pytest.mark.parametrize("operations", (4, 6, 8))
def bench_exhaustive_enumeration(benchmark, operations):
    """3**M full enumerations."""
    workflow = line_workflow(operations, seed=1)
    network = random_bus_network(3, seed=2)
    model = CostModel(workflow, network)
    algorithm = Exhaustive()
    best = benchmark(algorithm.best, workflow, network, model)
    assert best.cost.objective > 0


def bench_heuristic_optimality_gap(benchmark):
    """Objective gap of each heuristic vs the true optimum (3 servers)."""
    suite = (
        "FairLoad",
        "FL-TieResolver",
        "FL-TieResolver2",
        "FL-MergeMsgEnds",
        "HeavyOps-LargeMsgs",
        "HillClimbing",
    )

    def measure():
        registry = algorithm_registry()
        gaps = {name: [] for name in suite}
        for seed in range(8):
            workflow = line_workflow(7, seed=seed)
            network = random_bus_network(3, seed=seed + 100)
            model = CostModel(workflow, network)
            optimum = Exhaustive().best(workflow, network, model).cost.objective
            for name in suite:
                deployment = registry[name]().deploy(
                    workflow, network, cost_model=model, rng=seed
                )
                gaps[name].append(model.objective(deployment) / optimum - 1.0)
        return gaps

    gaps = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = TextTable(
        ["algorithm", "mean_gap", "worst_gap"],
        title="objective gap vs exhaustive optimum (7 ops, 3 servers, 8 seeds)",
    )
    for name in suite:
        values = gaps[name]
        table.add_row(
            [
                name,
                f"{sum(values) / len(values):.1%}",
                f"{max(values):.1%}",
            ]
        )
    emit("exhaustive_gap", table)
