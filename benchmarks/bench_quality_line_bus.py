"""Section 4.2 quality numbers, Line--Bus: deviation from sampled best.

The paper: "HeavyOps-LargeMsgs produces (2.9%, 12%) deviations for
execution time/time penalty for 1 Mbps bus, and (29%, 0.3%) for 100 Mbps
bus", measured as worst case over 50 experiments of 32 000 sampled
solutions each (5 servers, 19 operations).

The benchmark default is scaled down (10 experiments x 2 000 samples) so
the whole harness runs in seconds; set ``REPRO_PAPER_SCALE=1`` in the
environment to run the full 50 x 32 000 protocol.
"""

import os

import pytest

from repro.experiments.quality import QualityProtocol
from repro.experiments.runner import DEFAULT_ALGORITHMS, ExperimentConfig

from _common import PAPER_QUALITY_ANCHORS, emit

PAPER_SCALE = bool(int(os.environ.get("REPRO_PAPER_SCALE", "0")))
EXPERIMENTS = 50 if PAPER_SCALE else 10
SAMPLES = 32_000 if PAPER_SCALE else 2_000


@pytest.mark.parametrize("speed", (1e6, 100e6))
def bench_quality_line_bus(benchmark, speed):
    protocol = QualityProtocol(
        algorithms=DEFAULT_ALGORITHMS,
        experiments=EXPERIMENTS,
        samples=SAMPLES,
    )
    config = ExperimentConfig(
        workflow_kind="line",
        num_operations=19,
        num_servers=5,
        bus_speed_bps=speed,
        repetitions=1,
        seed=55,
    )
    report = benchmark.pedantic(protocol.run, args=(config,), rounds=1, iterations=1)
    anchor = PAPER_QUALITY_ANCHORS[("line", speed)]
    label = f"quality_line_bus_{speed / 1e6:g}Mbps"
    emit(
        label,
        report.table(),
        (
            f"paper anchor for HeavyOps-LargeMsgs (worst case, 50 x 32000): "
            f"execution {anchor[0]:.1%}, penalty {anchor[1]:.1%}"
        ),
        f"this run: {EXPERIMENTS} experiments x {SAMPLES} samples",
    )
