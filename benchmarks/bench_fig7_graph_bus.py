"""Fig. 7 -- Random Graph--Bus algorithms (overall performance).

The paper pools the three random-graph structures and scatters the
algorithms' (execution time, time penalty). Reproduction target: "For
almost all configurations, the HeavyOps-LargeMsgs algorithm appears to
be a clear winner" on execution time, staying close to the best fairness
on fast buses; FL-MergeMsgEnds comes close on execution time but is
unstable on fairness.
"""

import pytest

from repro.experiments.classes import FIG6_BUS_SPEEDS
from repro.experiments.reporting import TextTable, format_seconds, scatter_table
from repro.experiments.runner import (
    DEFAULT_ALGORITHMS,
    ExperimentConfig,
    ExperimentRunner,
)

from _common import emit

STRUCTURES = ("bushy", "lengthy", "hybrid")


@pytest.mark.parametrize("speed", FIG6_BUS_SPEEDS)
def bench_fig7_overall(benchmark, speed):
    runner = ExperimentRunner(DEFAULT_ALGORITHMS)

    def run_all():
        results = []
        for kind in STRUCTURES:
            config = ExperimentConfig(
                workflow_kind=kind,
                num_operations=19,
                num_servers=5,
                bus_speed_bps=speed,
                repetitions=6,
                seed=42,
            )
            results.append(runner.run(config))
        return results

    results = benchmark.pedantic(run_all, rounds=2, iterations=1)

    # pool the scatter points of all structures, as Fig. 7 does
    pooled: dict[str, list[tuple[float, float]]] = {}
    for result in results:
        for name, points in result.scatter_points().items():
            pooled.setdefault(name, []).extend(points)

    label = f"fig7_graph_bus_{speed / 1e6:g}Mbps"
    summary = TextTable(
        ["algorithm", "mean_Texecute", "mean_TimePenalty"],
        title=f"pooled over {STRUCTURES} ({label})",
    )
    for name in DEFAULT_ALGORITHMS:
        executions = [e for e, _ in pooled[name]]
        penalties = [p for _, p in pooled[name]]
        summary.add_row(
            [
                name,
                format_seconds(sum(executions) / len(executions)),
                format_seconds(sum(penalties) / len(penalties)),
            ]
        )
    emit(
        label,
        summary,
        scatter_table(pooled, title=f"scatter ({label})"),
    )
