"""Benches for the library's extensions beyond the paper's experiments.

* branch and bound vs full enumeration (how far pruning pushes the
  exactly-solvable frontier);
* genetic refinement vs the greedy suite;
* single-server failover impact per algorithm (the §2.1 motivation:
  fair deployments should degrade gracefully);
* multi-workflow portfolio deployment (§6 future work).
"""

import pytest

from repro.algorithms.branch_and_bound import BranchAndBound
from repro.algorithms.exhaustive import Exhaustive
from repro.algorithms.fair_load import FairLoad
from repro.algorithms.genetic import GeneticAlgorithm
from repro.algorithms.heavy_ops import HeavyOpsLargeMsgs
from repro.core.cost import CostModel
from repro.experiments.failover import analyze_failure
from repro.experiments.multi_workflow import combine_workflows
from repro.experiments.reporting import TextTable, format_seconds
from repro.network.topology import bus_network
from repro.workloads.gallery import healthcare_workflow, ministry_network
from repro.workloads.generator import line_workflow, random_bus_network

from _common import emit


@pytest.mark.parametrize("operations", (6, 8, 10))
def bench_branch_and_bound(benchmark, operations):
    """Exact optimum via pruning where enumeration needs 3**M."""
    workflow = line_workflow(operations, seed=1)
    network = random_bus_network(3, seed=2)
    model = CostModel(workflow, network)
    solver = BranchAndBound()
    deployment = benchmark(solver.deploy, workflow, network, model)
    assert deployment.is_complete(workflow)
    emit(
        f"bnb_{operations}ops",
        f"operations: {operations}; search space 3**{operations} = "
        f"{3 ** operations:,}; nodes explored: {solver.nodes_explored:,}",
    )


def bench_exact_frontier(benchmark):
    """Node counts of B&B vs enumeration sizes across M."""

    def measure():
        rows = []
        for operations in (6, 8, 10, 12):
            workflow = line_workflow(operations, seed=1)
            network = random_bus_network(3, seed=2)
            model = CostModel(workflow, network)
            solver = BranchAndBound()
            solver.deploy(workflow, network, cost_model=model)
            rows.append((operations, 3**operations, solver.nodes_explored))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = TextTable(
        ["M", "enumeration (3**M)", "B&B nodes", "reduction"],
        title="exactly-solvable frontier (3 servers)",
    )
    for operations, full, explored in rows:
        table.add_row(
            [operations, f"{full:,}", f"{explored:,}", f"{full / explored:,.0f}x"]
        )
    emit("exact_frontier", table)


def bench_genetic_refinement(benchmark):
    """GA objective vs its greedy seeds on congested-bus instances."""

    def measure():
        improvements = []
        for seed in range(5):
            workflow = line_workflow(14, seed=seed)
            network = random_bus_network(4, seed=seed + 30)
            model = CostModel(workflow, network)
            greedy = min(
                model.objective(
                    algorithm.deploy(workflow, network, cost_model=model, rng=seed)
                )
                for algorithm in (FairLoad(), HeavyOpsLargeMsgs())
            )
            genetic = model.objective(
                GeneticAlgorithm(generations=30).deploy(
                    workflow, network, cost_model=model, rng=seed
                )
            )
            improvements.append(1.0 - genetic / greedy)
        return improvements

    improvements = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = TextTable(["metric", "value"], title="genetic refinement vs greedy")
    table.add_row(
        ["mean objective improvement", f"{sum(improvements) / len(improvements):.1%}"]
    )
    table.add_row(["max objective improvement", f"{max(improvements):.1%}"])
    emit("genetic_refinement", table)


def bench_failover_impact(benchmark):
    """Worst single-failure degradation per deployment algorithm."""
    workflow = healthcare_workflow()
    network = ministry_network(speed_bps=10e6)
    model = CostModel(workflow, network)
    algorithms = [FairLoad(), HeavyOpsLargeMsgs()]

    def measure():
        rows = []
        for algorithm in algorithms:
            deployment = algorithm.deploy(
                workflow, network, cost_model=model, rng=1
            )
            worst_exec = 1.0
            worst_peak = 1.0
            for server in network.server_names:
                report = analyze_failure(
                    workflow, network, deployment, server
                )
                worst_exec = max(worst_exec, report.execution_scale_up)
                worst_peak = max(worst_peak, report.peak_load_scale_up)
            rows.append((algorithm.name, worst_exec, worst_peak))
        return rows

    rows = benchmark.pedantic(measure, rounds=2, iterations=1)
    table = TextTable(
        ["algorithm", "worst_exec_scale_up", "worst_peak_load_scale_up"],
        title="single-server failure impact (healthcare workflow, 10 Mbps)",
    )
    for name, worst_exec, worst_peak in rows:
        table.add_row([name, f"{worst_exec:.2f}x", f"{worst_peak:.2f}x"])
    emit("failover_impact", table)


def bench_constraint_price(benchmark):
    """What a fairness cap costs in execution time (§6 constraints).

    On a congested bus HOLM buys speed with unfairness; tightening a
    MaxTimePenalty cap forces the constraint-aware search to give speed
    back. The sweep shows the price curve."""
    from repro.algorithms.constrained import ConstraintAwareSearch
    from repro.core.constraints import ConstraintSet, MaxTimePenalty

    workflow = line_workflow(14, seed=2)
    network = bus_network([1e9, 2e9, 3e9], speed_bps=1e6)
    model = CostModel(workflow, network)
    unconstrained = HeavyOpsLargeMsgs().deploy(
        workflow, network, cost_model=model
    )
    base = model.evaluate(unconstrained)

    def measure():
        rows = []
        for fraction in (1.0, 0.5, 0.25, 0.1):
            limit = base.time_penalty * fraction
            constraints = ConstraintSet([MaxTimePenalty(limit)])
            deployment = ConstraintAwareSearch(constraints=constraints).deploy(
                workflow, network, cost_model=model
            )
            cost = model.evaluate(deployment)
            rows.append(
                (fraction, constraints.satisfied(cost), cost.execution_time)
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = TextTable(
        ["penalty cap (x HOLM's)", "admissible", "Texecute"],
        title=(
            f"price of fairness caps (HOLM baseline: "
            f"{format_seconds(base.execution_time)} at penalty "
            f"{format_seconds(base.time_penalty)})"
        ),
    )
    for fraction, admissible, execution in rows:
        table.add_row(
            [f"{fraction:g}", "yes" if admissible else "NO", format_seconds(execution)]
        )
    emit("constraint_price", table)


def bench_incremental_adaptation(benchmark):
    """Patch-in-place vs full re-deployment after adding an operation."""
    from repro.core.workflow import Operation
    from repro.experiments.incremental import adaptation_report

    def measure():
        overheads, churn = [], []
        for seed in range(6):
            workflow = line_workflow(15, seed=seed)
            network = random_bus_network(4, seed=seed + 60)
            old = HeavyOpsLargeMsgs().deploy(workflow, network, rng=seed)
            grown = workflow.copy(f"{workflow.name}-grown")
            grown.add_operation(Operation("NEW", 25e6))
            grown.connect(workflow.operation_names[-1], "NEW", 5_000)
            report = adaptation_report(
                grown, network, old, HeavyOpsLargeMsgs(), rng=seed
            )
            overheads.append(report.patch_overhead)
            churn.append(len(report.moved_by_redeployment))
        return overheads, churn

    overheads, churn = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = TextTable(
        ["metric", "value"],
        title="incremental patch vs full re-deployment (one op added)",
    )
    table.add_row(
        ["mean patch overhead", f"{sum(overheads) / len(overheads):+.1%}"]
    )
    table.add_row(["max patch overhead", f"{max(overheads):+.1%}"])
    table.add_row(
        [
            "mean ops moved by re-deployment",
            f"{sum(churn) / len(churn):.1f} (patch moves 0)",
        ]
    )
    emit("incremental_adaptation", table)


def bench_multi_workflow_portfolio(benchmark):
    """Joint deployment of a 3-workflow portfolio (section 6)."""
    workflows = [
        healthcare_workflow(),
        line_workflow(12, seed=21),
        line_workflow(10, seed=22),
    ]
    network = ministry_network()
    combined = combine_workflows(workflows)
    model = CostModel(combined, network)

    def deploy():
        return HeavyOpsLargeMsgs().deploy(combined, network, cost_model=model)

    deployment = benchmark(deploy)
    cost = model.evaluate(deployment)
    table = TextTable(["metric", "value"], title="portfolio deployment")
    table.add_row(["workflows", len(workflows)])
    table.add_row(["operations", len(combined)])
    table.add_row(["Texecute (max over workflows)", format_seconds(cost.execution_time)])
    table.add_row(["TimePenalty (combined loads)", format_seconds(cost.time_penalty)])
    emit("multi_workflow_portfolio", table)
