"""Micro-benchmarks of the library's hot paths.

Not a paper experiment -- these watch the costs the experiment harness
pays per instance: cost evaluation (the 32 000-sample quality protocol
multiplies this), deployment algorithms, and a full simulation run.
"""

import random

import pytest

from repro.algorithms.base import algorithm_registry
from repro.core.cost import CostModel
from repro.core.mapping import Deployment
from repro.simulation.engine import SimulationEngine
from repro.workloads.generator import (
    GraphStructure,
    line_workflow,
    random_bus_network,
    random_graph_workflow,
)


@pytest.fixture(scope="module")
def line_instance():
    workflow = line_workflow(19, seed=1)
    network = random_bus_network(5, seed=2)
    return workflow, network, CostModel(workflow, network)


@pytest.fixture(scope="module")
def graph_instance():
    workflow = random_graph_workflow(19, GraphStructure.HYBRID, seed=3)
    network = random_bus_network(5, seed=4)
    return workflow, network, CostModel(workflow, network)


def bench_cost_evaluation_line(benchmark, line_instance):
    workflow, network, model = line_instance
    deployment = Deployment.random(workflow, network, random.Random(5))
    breakdown = benchmark(model.evaluate, deployment)
    assert breakdown.execution_time > 0


def bench_cost_evaluation_graph(benchmark, graph_instance):
    workflow, network, model = graph_instance
    deployment = Deployment.random(workflow, network, random.Random(5))
    breakdown = benchmark(model.evaluate, deployment)
    assert breakdown.execution_time > 0


@pytest.mark.parametrize(
    "name",
    ["FairLoad", "FL-TieResolver2", "FL-MergeMsgEnds", "HeavyOps-LargeMsgs"],
)
def bench_algorithm_deploy(benchmark, line_instance, name):
    workflow, network, model = line_instance
    algorithm = algorithm_registry()[name]()
    deployment = benchmark(
        algorithm.deploy, workflow, network, model, 7
    )
    assert deployment.is_complete(workflow)


def bench_simulation_run(benchmark, graph_instance):
    workflow, network, model = graph_instance
    deployment = Deployment.random(workflow, network, random.Random(6))
    engine = SimulationEngine(workflow, network, deployment)
    result = benchmark(engine.run, 9)
    assert result.makespan > 0
