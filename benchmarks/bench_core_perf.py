"""Micro-benchmarks of the library's hot paths.

Not a paper experiment -- these watch the costs the experiment harness
pays per instance: cost evaluation (the 32 000-sample quality protocol
multiplies this), deployment algorithms, a full simulation run, and --
since the compiled-IR refactor -- the compiled array-index evaluation
against a reproduction of the legacy name-dict path it replaced, on the
reference 20-operation x 10-server instance.

Set ``BENCH_SMOKE=1`` to shrink instance sizes and repeat counts for CI
smoke runs: the compiled-vs-legacy parity is still asserted, the
no-regression floor only on the full instance.
"""

import math
import os
import random
import time

import pytest

from repro.algorithms.base import algorithm_registry
from repro.core.cost import CostModel
from repro.core.mapping import Deployment
from repro.core.probability import execution_probabilities
from repro.core.workflow import NodeKind
from repro.network.routing import Router
from repro.simulation.engine import SimulationEngine
from repro.workloads.generator import (
    GraphStructure,
    line_workflow,
    random_bus_network,
    random_graph_workflow,
)

from _common import emit

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

#: Reference instance for the compiled-vs-legacy comparison.
REF_OPERATIONS = 6 if SMOKE else 20
REF_SERVERS = 3 if SMOKE else 10
REF_EVALUATIONS = 20 if SMOKE else 2_000
REF_REPEATS = 1 if SMOKE else 5
PARITY_TOLERANCE = 1e-9


@pytest.fixture(scope="module")
def line_instance():
    workflow = line_workflow(19, seed=1)
    network = random_bus_network(5, seed=2)
    return workflow, network, CostModel(workflow, network)


@pytest.fixture(scope="module")
def graph_instance():
    workflow = random_graph_workflow(19, GraphStructure.HYBRID, seed=3)
    network = random_bus_network(5, seed=4)
    return workflow, network, CostModel(workflow, network)


def bench_cost_evaluation_line(benchmark, line_instance):
    workflow, network, model = line_instance
    deployment = Deployment.random(workflow, network, random.Random(5))
    breakdown = benchmark(model.evaluate, deployment)
    assert breakdown.execution_time > 0


def bench_cost_evaluation_graph(benchmark, graph_instance):
    workflow, network, model = graph_instance
    deployment = Deployment.random(workflow, network, random.Random(5))
    breakdown = benchmark(model.evaluate, deployment)
    assert breakdown.execution_time > 0


@pytest.mark.parametrize(
    "name",
    ["FairLoad", "FL-TieResolver2", "FL-MergeMsgEnds", "HeavyOps-LargeMsgs"],
)
def bench_algorithm_deploy(benchmark, line_instance, name):
    workflow, network, model = line_instance
    algorithm = algorithm_registry()[name]()
    deployment = benchmark(
        algorithm.deploy, workflow, network, model, 7
    )
    assert deployment.is_complete(workflow)


def bench_simulation_run(benchmark, graph_instance):
    workflow, network, model = graph_instance
    deployment = Deployment.random(workflow, network, random.Random(6))
    engine = SimulationEngine(workflow, network, deployment)
    result = benchmark(engine.run, 9)
    assert result.makespan > 0


# ----------------------------------------------------------------------
# compiled IR vs the legacy name-dict evaluation it replaced
# ----------------------------------------------------------------------
class _LegacyCostModel:
    """The pre-compiled-IR evaluation path, reproduced for comparison.

    Name-keyed dicts, per-query ``cycles / power`` divisions and a
    router call per message -- what ``CostModel.objective`` cost before
    the refactor. Kept here (not in the library) purely so the bench can
    price the old path against the compiled one on equal terms.
    """

    def __init__(self, workflow, network):
        self.workflow = workflow
        self.network = network
        self.router = Router(network)
        has_xor = any(
            op.kind is NodeKind.XOR_SPLIT for op in workflow
        )
        if has_xor:
            self.node_prob = execution_probabilities(workflow)
        else:
            self.node_prob = {n: 1.0 for n in workflow.operation_names}
        self.order = workflow.topological_order()

    def objective(self, deployment):
        totals = {name: 0.0 for name in self.network.server_names}
        for operation in self.workflow:
            server = deployment.server_of(operation.name)
            totals[server] += (
                operation.cycles * self.node_prob[operation.name]
            )
        values = [
            cycles / self.network.server(name).power_hz
            for name, cycles in totals.items()
        ]
        mean = sum(values) / len(values)
        deviations = [abs(v - mean) for v in values]
        penalty = sum(deviations) / len(values)  # mad, the default

        finish = {}
        for name in self.order:
            operation = self.workflow.operation(name)
            incoming = self.workflow.incoming(name)
            if not incoming:
                ready = 0.0
            else:
                arrivals = [
                    finish[m.source]
                    + self.router.transmission_time(
                        deployment.server_of(m.source),
                        deployment.server_of(name),
                        m.size_bits,
                    )
                    for m in incoming
                ]
                if operation.kind is NodeKind.XOR_JOIN:
                    weights = [
                        self.node_prob[m.source] * m.probability
                        for m in incoming
                    ]
                    total = sum(weights)
                    if total <= 0:
                        ready = max(arrivals)
                    else:
                        ready = (
                            sum(w * a for w, a in zip(weights, arrivals))
                            / total
                        )
                elif operation.kind is NodeKind.OR_JOIN:
                    ready = min(arrivals)
                else:
                    ready = max(arrivals)
            server = self.network.server(deployment.server_of(name))
            finish[name] = ready + operation.cycles / server.power_hz
        execution = max(finish[n] for n in self.workflow.exits)
        return 0.5 * execution + 0.5 * penalty


@pytest.fixture(scope="module")
def reference_instance():
    workflow = random_graph_workflow(
        REF_OPERATIONS, GraphStructure.HYBRID, seed=17
    )
    network = random_bus_network(REF_SERVERS, seed=18)
    return workflow, network


def _best_time(fn, repeats=REF_REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_compiled_vs_legacy_evaluation(benchmark, reference_instance):
    """Compiled array-index objective vs the legacy name-dict path."""
    workflow, network = reference_instance
    model = CostModel(workflow, network)
    legacy = _LegacyCostModel(workflow, network)
    rng = random.Random(21)
    deployments = [
        Deployment.random(workflow, network, rng)
        for _ in range(REF_EVALUATIONS)
    ]

    # parity first: the compiled path must reproduce the legacy floats
    for deployment in deployments[: min(50, len(deployments))]:
        compiled_value = model.objective(deployment)
        legacy_value = legacy.objective(deployment)
        assert math.isclose(
            compiled_value, legacy_value,
            rel_tol=PARITY_TOLERANCE, abs_tol=PARITY_TOLERANCE,
        )

    def run_legacy():
        for deployment in deployments:
            legacy.objective(deployment)

    def run_compiled():
        for deployment in deployments:
            model.objective(deployment)

    run_compiled()  # warm the lazy route table before timing
    t_legacy = _best_time(run_legacy)
    t_compiled = _best_time(run_compiled)
    ratio = t_legacy / t_compiled if t_compiled > 0 else float("inf")
    emit(
        "compiled_vs_legacy",
        f"instance: {REF_OPERATIONS} operations x {REF_SERVERS} servers"
        + (" (smoke)" if SMOKE else ""),
        f"legacy name-dict objective:  {t_legacy * 1e3:10.3f} ms "
        f"/ {REF_EVALUATIONS} evaluations",
        f"compiled array objective:    {t_compiled * 1e3:10.3f} ms "
        f"/ {REF_EVALUATIONS} evaluations",
        f"legacy/compiled ratio: {ratio:.2f}x (no-regression floor on "
        f"the full instance: 1.0x)",
    )
    if not SMOKE:
        # no regression: compiled must not be slower than what it replaced
        assert ratio >= 1.0
    benchmark(model.objective, deployments[0])
