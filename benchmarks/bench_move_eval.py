"""Benchmark: incremental move pricing vs full re-evaluation.

The hill climber scans ``M x (N - 1)`` candidate moves per round; with
full evaluation each candidate costs a complete cost-model sweep, while
:class:`~repro.core.incremental.MoveEvaluator` prices it from the dirty
region alone. This bench times both code paths of the *same* algorithm
on the reference 20-operation x 10-server instance, checks they return
the identical deployment, and records the speedup.

The asserted floor defaults to 2x -- conservative enough to pass on
modest shared CI hardware -- and is env-tunable via
``BENCH_FLOOR_MOVE_EVAL`` (set a higher bar on dedicated perf boxes, or
``0`` for measurement-only). The measured speedup is always recorded in
``output/move_eval_speedup.json``.

Set ``BENCH_SMOKE=1`` to shrink the instance and repeat count for CI
smoke runs; the speedup floor is only asserted on the full instance.
"""

import os
import random
import time

import pytest

from repro.algorithms.local_search import HillClimbing
from repro.core.cost import CostModel
from repro.core.incremental import MoveEvaluator
from repro.core.mapping import Deployment
from repro.workloads.generator import (
    GraphStructure,
    random_bus_network,
    random_graph_workflow,
)

from _common import emit, perf_floor, write_json

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

#: Reference instance from the issue: 20 operations on 10 servers.
NUM_OPERATIONS = 6 if SMOKE else 20
NUM_SERVERS = 3 if SMOKE else 10
REPEATS = 1 if SMOKE else 5
PROPOSE_ROUNDS = 50 if SMOKE else 2_000
SPEEDUP_FLOOR = perf_floor("MOVE_EVAL", 2.0)


@pytest.fixture(scope="module")
def instance():
    workflow = random_graph_workflow(
        NUM_OPERATIONS, GraphStructure.HYBRID, seed=17
    )
    network = random_bus_network(NUM_SERVERS, seed=18)
    return workflow, network, CostModel(workflow, network)


def _run_hill_climbing(instance, use_incremental):
    workflow, network, model = instance
    algorithm = HillClimbing(use_incremental=use_incremental)
    return algorithm.deploy(
        workflow, network, cost_model=model, rng=random.Random(23)
    )


def _best_time(fn, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_hill_climbing_speedup(benchmark, instance):
    """Same seeded search, incremental vs full pricing."""
    t_full, full_result = _best_time(
        lambda: _run_hill_climbing(instance, use_incremental=False)
    )
    t_incremental, incremental_result = _best_time(
        lambda: _run_hill_climbing(instance, use_incremental=True)
    )
    # the rewiring is purely a pricing change: identical deployments out
    assert incremental_result.as_dict() == full_result.as_dict()
    speedup = t_full / t_incremental if t_incremental > 0 else float("inf")
    emit(
        "move_eval_speedup",
        f"instance: {NUM_OPERATIONS} operations x {NUM_SERVERS} servers"
        + (" (smoke)" if SMOKE else ""),
        f"hill climbing, full evaluation:  {t_full * 1e3:10.3f} ms",
        f"hill climbing, incremental:      {t_incremental * 1e3:10.3f} ms",
        f"speedup: {speedup:.1f}x (floor on the full instance: "
        f"{SPEEDUP_FLOOR}x)",
    )
    write_json(
        "move_eval_speedup",
        {
            "smoke": SMOKE,
            "operations": NUM_OPERATIONS,
            "servers": NUM_SERVERS,
            "full_s": t_full,
            "incremental_s": t_incremental,
            "speedup": speedup,
            "floor": SPEEDUP_FLOOR,
        },
    )
    if not SMOKE:
        assert speedup >= SPEEDUP_FLOOR
    benchmark(_run_hill_climbing, instance, True)


def bench_propose_vs_full_evaluation(benchmark, instance):
    """Per-move cost: MoveEvaluator.propose vs copy + CostModel.evaluate."""
    workflow, network, model = instance
    deployment = Deployment.random(workflow, network, random.Random(29))
    evaluator = MoveEvaluator(model, deployment)
    rng = random.Random(31)
    moves = [
        (rng.choice(workflow.operation_names), rng.choice(network.server_names))
        for _ in range(PROPOSE_ROUNDS)
    ]

    def price_full():
        for operation, server in moves:
            trial = deployment.copy()
            trial.assign(operation, server)
            model.evaluate(trial)

    def price_incremental():
        for operation, server in moves:
            evaluator.propose(operation, server)

    t_full, _ = _best_time(price_full)
    t_incremental, _ = _best_time(price_incremental)
    per_move_full = t_full / len(moves) * 1e6
    per_move_incremental = t_incremental / len(moves) * 1e6
    speedup = t_full / t_incremental if t_incremental > 0 else float("inf")
    emit(
        "move_eval_per_move",
        f"{len(moves)} priced moves on {NUM_OPERATIONS} operations x "
        f"{NUM_SERVERS} servers" + (" (smoke)" if SMOKE else ""),
        f"full evaluation per move:  {per_move_full:10.2f} us",
        f"incremental per move:      {per_move_incremental:10.2f} us",
        f"speedup: {speedup:.1f}x",
    )
    benchmark(price_incremental)
