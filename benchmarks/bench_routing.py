"""Benchmark: batched route compilation and link-scoped invalidation.

Two experiments over the routing layer (see DESIGN.md §15):

* **compile** -- filling the full all-pairs route table of a 50-server
  geo fleet (complete, heterogeneous graph) two ways: the lazy path
  (every pair classified by its own targeted Dijkstra queries) versus
  :meth:`~repro.network.routing.Router.compile_all_pairs` (per-source
  sweeps plus the dense direct-dominance fast path). Both tables must
  be *byte-identical*; the compiled path must win on Dijkstra count
  (deterministic -- asserted even in smoke) and on wall clock
  (hardware-dependent -- asserted only in full runs, floor env-tunable
  via ``BENCH_FLOOR_ROUTING``).

* **invalidation** -- replaying the seeded ``abilene`` scenario under
  the ``scoped`` versus the ``lazy`` route-invalidation mode and
  summing the router's Dijkstra runs across the link events
  (brownouts/failures). Scoped invalidation recomputes only the pairs
  whose classification paths crossed a changed link, so it must spend
  at least ``BENCH_FLOOR_ROUTING_EVENTS`` times fewer runs per link
  event -- a deterministic, seeded count asserted even in smoke. The
  two replays' decision logs must match byte for byte (route
  maintenance must never change a decision).

Results land in ``output/BENCH_routing.json``. ``BENCH_SMOKE=1`` runs
the compile arm on a smaller 20-server fleet and skips only the
wall-clock floor.
"""

import os
import time
from dataclasses import replace

from repro.core.clock import StepClock
from repro.network.routing import Router
from repro.scenarios import random_geo_network
from repro.service.controller import FleetController
from repro.service.scenarios import build_scenario

from _common import emit, perf_floor, write_json

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

#: Compile arm: regions x servers-per-region of the geo fleet.
REGIONS = 5
SERVERS_PER_REGION = 4 if SMOKE else 10
SCENARIO = "abilene"
SEED = 0

#: Wall-clock floor for full-table compile vs lazy per-pair fill
#: (hardware-dependent; skipped in smoke, env-tunable, 0 disables).
COMPILE_WALL_FLOOR = perf_floor("ROUTING", 3.0)
#: Dijkstra-count floor for the same comparison (deterministic).
COMPILE_RUNS_FLOOR = perf_floor("ROUTING_RUNS", 5.0)
#: Per-link-event Dijkstra-count floor, scoped vs full invalidation
#: (deterministic: seeded replay, counted work).
EVENTS_RUNS_FLOOR = perf_floor("ROUTING_EVENTS", 5.0)

_RESULTS: dict = {
    "smoke": SMOKE,
    "regions": REGIONS,
    "servers_per_region": SERVERS_PER_REGION,
    "scenario": SCENARIO,
    "seed": SEED,
    "compile_wall_floor": COMPILE_WALL_FLOOR,
    "compile_runs_floor": COMPILE_RUNS_FLOOR,
    "events_runs_floor": EVENTS_RUNS_FLOOR,
}


def _flush_results() -> None:
    write_json("BENCH_routing", _RESULTS)


def _geo_network():
    return random_geo_network(
        REGIONS,
        servers_per_region=SERVERS_PER_REGION,
        seed=SEED,
        name="bench-routing",
    )


def _route_table(router: Router) -> dict:
    """Every pair's ``(path, coefficients, classification)`` snapshot."""
    names = router.network.server_names
    table = {}
    for a in names:
        for b in names:
            if a == b:
                continue
            route = router.cached_route(a, b)
            table[(a, b)] = (
                route.path,
                route.propagation_s,
                route.transfer_s_per_bit,
                route.size_independent,
            )
    return table


def _lazy_fill(network) -> tuple[Router, float]:
    """The per-pair path: classify every pair through its own queries."""
    router = Router(network)
    names = network.server_names
    start = time.perf_counter()
    for a in names:
        for b in names:
            if a != b:
                router.pair_coefficients(a, b)
    return router, time.perf_counter() - start


def _compiled_fill(network) -> tuple[Router, float]:
    router = Router(network)
    start = time.perf_counter()
    router.compile_all_pairs()
    return router, time.perf_counter() - start


def bench_routing_compile(benchmark):
    """Full-table compile vs lazy per-pair fill on a geo fleet."""
    network = _geo_network()
    servers = len(network.server_names)

    benchmark(lambda: _compiled_fill(_geo_network()))

    lazy_router, lazy_wall = _lazy_fill(_geo_network())
    compiled_router, compiled_wall = _compiled_fill(_geo_network())

    # exactness: both fills produce the identical route table
    assert _route_table(lazy_router) == _route_table(compiled_router), (
        "compile_all_pairs diverged from the per-pair lazy fill"
    )

    lazy_runs = lazy_router.dijkstra_runs
    compiled_runs = compiled_router.dijkstra_runs
    runs_ratio = (
        lazy_runs / compiled_runs if compiled_runs else float("inf")
    )
    wall_ratio = lazy_wall / compiled_wall if compiled_wall > 0 else float("inf")

    _RESULTS["compile_servers"] = servers
    _RESULTS["compile_lazy_runs"] = lazy_runs
    _RESULTS["compile_batched_runs"] = compiled_runs
    # None, not Infinity: the dense fast path can certify every row of
    # a complete graph, leaving zero runs -- keep the JSON standard
    _RESULTS["compile_runs_ratio"] = runs_ratio if compiled_runs else None
    _RESULTS["compile_lazy_wall_s"] = lazy_wall
    _RESULTS["compile_batched_wall_s"] = compiled_wall
    _RESULTS["compile_wall_ratio"] = wall_ratio
    _flush_results()

    emit(
        "routing_compile",
        f"{servers}-server geo fleet (seed {SEED})"
        + (" (smoke)" if SMOKE else ""),
        f"lazy per-pair fill:    {lazy_runs:6d} Dijkstra runs "
        f"{lazy_wall * 1e3:9.2f} ms",
        f"compile_all_pairs:     {compiled_runs:6d} Dijkstra runs "
        f"{compiled_wall * 1e3:9.2f} ms",
        f"Dijkstra-count ratio:  {runs_ratio:8.2f}x "
        f"(floor {COMPILE_RUNS_FLOOR:.2f})",
        f"wall-clock ratio:      {wall_ratio:8.2f}x "
        f"(floor {COMPILE_WALL_FLOOR:.2f}, "
        + ("not asserted in smoke)" if SMOKE else "asserted)"),
    )
    if COMPILE_RUNS_FLOOR > 0:
        assert runs_ratio >= COMPILE_RUNS_FLOOR, (
            f"batched compile saved too few Dijkstra runs: "
            f"{runs_ratio:.2f}x < floor {COMPILE_RUNS_FLOOR:.2f}x"
        )
    if not SMOKE and COMPILE_WALL_FLOOR > 0:
        assert wall_ratio >= COMPILE_WALL_FLOOR, (
            f"batched compile too slow: {wall_ratio:.2f}x < floor "
            f"{COMPILE_WALL_FLOOR:.2f}x"
        )


LINK_EVENTS = ("link-failed", "link-degraded")


def _replay_counting(mode: str):
    """Replay abilene under *mode*; per-link-event Dijkstra-run deltas."""
    scenario = build_scenario(SCENARIO, seed=SEED)
    config = replace(scenario.config, route_invalidation=mode)
    controller = FleetController(
        scenario.network, config=config, clock=StepClock()
    )
    link_runs = 0
    link_events = 0
    for event in scenario.events:
        before = controller.state.router_dijkstra_runs
        controller.handle(event)
        if event.kind in LINK_EVENTS:
            link_runs += controller.state.router_dijkstra_runs - before
            link_events += 1
    return controller, link_runs, link_events


def bench_routing_invalidation(benchmark):
    """Dijkstra runs per link event: scoped vs full invalidation."""

    def run_both():
        return _replay_counting("scoped"), _replay_counting("lazy")

    benchmark(run_both)

    (scoped, scoped_runs, events), (lazy, lazy_runs, _) = run_both()

    # route maintenance must never change a fleet decision
    assert scoped.log.to_text() == lazy.log.to_text(), (
        "scoped and full invalidation produced different decision logs"
    )

    ratio = lazy_runs / scoped_runs if scoped_runs else float("inf")
    scoped_metrics = scoped.metrics()

    _RESULTS["events_link_count"] = events
    _RESULTS["events_scoped_runs"] = scoped_runs
    _RESULTS["events_full_runs"] = lazy_runs
    _RESULTS["events_runs_ratio"] = ratio
    _RESULTS["events_scoped_total_runs"] = scoped_metrics.route_dijkstra_runs
    _RESULTS["events_pairs_invalidated"] = (
        scoped_metrics.route_pairs_invalidated
    )
    _RESULTS["events_pairs_recomputed"] = (
        scoped_metrics.route_pairs_recomputed
    )
    _flush_results()

    emit(
        "routing_invalidation",
        f"scenario {SCENARIO!r} (seed {SEED}), {events} link events"
        + (" (smoke)" if SMOKE else ""),
        f"full invalidation:     {lazy_runs:6d} Dijkstra runs on link events",
        f"scoped invalidation:   {scoped_runs:6d} Dijkstra runs on link "
        f"events ({scoped_metrics.route_pairs_invalidated} pairs "
        f"invalidated, {scoped_metrics.route_pairs_recomputed} recomputed)",
        f"per-event run ratio:   {ratio:8.2f}x "
        f"(floor {EVENTS_RUNS_FLOOR:.2f})",
    )
    if EVENTS_RUNS_FLOOR > 0:
        assert ratio >= EVENTS_RUNS_FLOOR, (
            f"scoped invalidation saved too few Dijkstra runs: "
            f"{ratio:.2f}x < floor {EVENTS_RUNS_FLOOR:.2f}x"
        )
