"""Class B experiments: vary CPU power and workload (§4.1).

Reproduction target: with communication pinned (medium messages on a
100 Mbps bus), execution time scales with operation cost over server
power, and all fairness-aware heuristics behave alike -- the CPU side
alone does not differentiate the algorithms.
"""

from repro.experiments.classes import class_b_configs
from repro.experiments.runner import DEFAULT_ALGORITHMS, ExperimentRunner

from _common import emit


def bench_class_b_sweep(benchmark):
    runner = ExperimentRunner(DEFAULT_ALGORITHMS)
    configs = class_b_configs(
        num_operations=19, num_servers=5, repetitions=4, seed=202
    )
    table = benchmark.pedantic(
        runner.sweep_table,
        args=(configs,),
        kwargs={"metric": "execution"},
        rounds=1,
        iterations=1,
    )
    penalty_table = runner.sweep_table(configs, metric="penalty")
    emit("class_b_sweep", table, penalty_table)
