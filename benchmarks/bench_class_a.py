"""Class A experiments: vary link capacity and message sizes (§4.1).

The paper describes (without plotting) experiments that sweep the
communication side while the CPU side stays fixed. Reproduction target:
algorithm differentiation grows as links slow down or messages grow --
on gigabit links all heuristics converge, on congested links the
message-aware ones (FLMME, HOLM) pull ahead on execution time.
"""

from repro.experiments.classes import class_a_configs
from repro.experiments.runner import DEFAULT_ALGORITHMS, ExperimentRunner

from _common import emit


def bench_class_a_sweep(benchmark):
    runner = ExperimentRunner(DEFAULT_ALGORITHMS)
    configs = class_a_configs(
        num_operations=19, num_servers=5, repetitions=4, seed=101
    )
    table = benchmark.pedantic(
        runner.sweep_table,
        args=(configs,),
        kwargs={"metric": "execution"},
        rounds=1,
        iterations=1,
    )
    penalty_table = runner.sweep_table(configs, metric="penalty")
    emit("class_a_sweep", table, penalty_table)
