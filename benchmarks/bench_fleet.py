"""Fleet-controller throughput benchmark.

Replays the built-in ``surge`` scenario -- 200 events against a 20-server
fleet -- through :class:`~repro.service.controller.FleetController` and
reports sustained events/second together with the router and cost-model
cache hit rates. The numbers land in
``benchmarks/output/fleet_throughput.txt``.
"""

import time

from repro.experiments.reporting import TextTable
from repro.service.scenarios import build_scenario, replay

from _common import emit

SEED = 7


def _replay_surge():
    controller = replay("surge", seed=SEED)
    return controller


def bench_fleet_surge_throughput(benchmark):
    controller = benchmark(_replay_surge)
    metrics = controller.metrics()
    assert metrics.events == 200

    # a separate timed pass for the headline events/sec figure (the
    # pytest-benchmark stats time the same callable with warmup)
    start = time.perf_counter()
    fresh = replay("surge", seed=SEED)
    elapsed = time.perf_counter() - start
    fresh_metrics = fresh.metrics()

    scenario = build_scenario("surge", seed=SEED)
    table = TextTable(
        ["metric", "value"], title="fleet surge throughput (seed 7)"
    )
    table.add_row(["servers (initial)", len(scenario.network)])
    table.add_row(["events", fresh_metrics.events])
    table.add_row(["elapsed", f"{elapsed:.3f} s"])
    table.add_row(["events/sec", f"{fresh_metrics.events / elapsed:.1f}"])
    table.add_row(["admitted", fresh_metrics.admitted])
    table.add_row(["rejected", fresh_metrics.rejected])
    table.add_row(["rebalances", fresh_metrics.rebalances])
    table.add_row(
        ["router hit rate", f"{fresh_metrics.router_hit_rate:.3f}"]
    )
    table.add_row(
        [
            "cost-model hit rate",
            f"{fresh_metrics.cost_model_hit_rate:.3f}",
        ]
    )
    table.add_row(
        ["placement evaluations", fresh_metrics.placement_evaluations]
    )
    emit("fleet_throughput", table)

    # caching sanity: with batch candidate pricing (the default) route
    # pairs are materialised into the kernel's delay matrices instead of
    # being queried per message, so the *cost-model* cache is the hot
    # path now -- the router hit rate is reported above but not asserted
    assert fresh_metrics.cost_model_hit_rate > 0.5
