"""Benchmark: transition-aware rebalancing under parameter drift.

Replays the seeded ``drift`` scenario twice through the fleet
controller -- once *migration-blind* (the historical objective: every
strictly-improving move is taken, churn is free) and once
*transition-aware* (the hysteresis policy of
:class:`~repro.service.controller.FleetConfig`: a move must beat the
weighted one-time cost of hauling its operation state over the current
links). Both runs are billed identically afterwards:

    total = sum(objective after every event) + migration_paid

so the blind controller pays for the churn it ignored while deciding.
The headline number is ``naive_total / aware_total`` -- > 1 means
pricing migrations into the objective beats chasing every drifted
estimate. The ratio is a pure function of the seed (deterministic
replay), so the floor assertion holds on any hardware; override with
``BENCH_FLOOR_MIGRATION`` (0 disables).

Also asserts the frozen-oracle contract on the way: configuring a
migration model at weight 0 must leave the decision log byte-identical
to a run with no model at all.

Results land in ``output/BENCH_migration.json`` with the per-event
objective-over-time series for both modes. ``BENCH_SMOKE=1`` runs the
same scenario (it is already small) -- the CI smoke step executes every
path including the floor assertion.
"""

import os
import time
from dataclasses import replace

from repro.core.clock import StepClock
from repro.core.migration import MigrationCostModel
from repro.service.controller import FleetController
from repro.service.scenarios import build_scenario

from _common import emit, perf_floor, write_json

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

SCENARIO = "drift"
SEED = 0

#: State hauled per operation: 2 Mb of base checkpoint plus 0.1 bit per
#: cycle of accumulated state, and 100 ms of downtime per move -- heavy
#: enough that chasing every drifted estimate is a losing strategy.
MIGRATION = MigrationCostModel(
    state_bits_per_cycle=0.1,
    state_bits_base=2e6,
    downtime_s=0.1,
)

#: Decision weight of the aware controller: the one-time cost amortised
#: over the rebalance horizon (the billing weight below stays 1.0).
DECISION_WEIGHT = 0.05
COOLDOWN_TICKS = 1

#: Both modes are billed the full migration cost after the fact.
BILL_WEIGHT = 1.0

#: naive/aware total-objective ratio floor. Deterministic (seeded
#: replay), so asserted even in smoke mode; env-tunable regardless.
RATIO_FLOOR = perf_floor("MIGRATION", 1.0)

_RESULTS: dict = {
    "smoke": SMOKE,
    "scenario": SCENARIO,
    "seed": SEED,
    "migration": {
        "state_bits_per_cycle": MIGRATION.state_bits_per_cycle,
        "state_bits_base": MIGRATION.state_bits_base,
        "downtime_s": MIGRATION.downtime_s,
    },
    "decision_weight": DECISION_WEIGHT,
    "cooldown_ticks": COOLDOWN_TICKS,
    "bill_weight": BILL_WEIGHT,
    "ratio_floor": RATIO_FLOOR,
}


def _flush_results() -> None:
    write_json("BENCH_migration", _RESULTS)


def _replay(**overrides):
    """Run the drift scenario under config *overrides*.

    Returns ``(controller, objective_series)`` where the series holds
    the fleet objective after every handled event.
    """
    scenario = build_scenario(SCENARIO, seed=SEED)
    config = replace(scenario.config, **overrides)
    controller = FleetController(
        scenario.network, config=config, clock=StepClock()
    )
    series = []
    for event in scenario.events:
        controller.handle(event)
        series.append(controller.snapshot().objective)
    return controller, series


def _billed_total(controller, series) -> float:
    return sum(series) + BILL_WEIGHT * controller.migration_paid


def bench_migration_hysteresis(benchmark):
    """Objective-over-time: migration-blind vs hysteresis controller."""

    def run_both():
        naive = _replay(migration=MIGRATION)
        aware = _replay(
            migration=MIGRATION,
            migration_weight=DECISION_WEIGHT,
            rebalance_cooldown_ticks=COOLDOWN_TICKS,
        )
        return naive, aware

    benchmark(run_both)

    start = time.perf_counter()
    (naive, naive_series), (aware, aware_series) = run_both()
    elapsed = time.perf_counter() - start

    # frozen-oracle: a weight-0 migration model must not change one
    # byte of the decisions relative to no model at all
    plain, _ = _replay()
    assert plain.log.to_text() == naive.log.to_text(), (
        "a migration model at weight 0 changed the decision log"
    )
    assert plain.migration_paid == 0.0

    naive_total = _billed_total(naive, naive_series)
    aware_total = _billed_total(aware, aware_series)
    ratio = naive_total / aware_total if aware_total > 0 else float("inf")

    _RESULTS["events"] = len(naive_series)
    _RESULTS["naive_objective_sum"] = sum(naive_series)
    _RESULTS["naive_migration_paid"] = naive.migration_paid
    _RESULTS["naive_moves"] = naive.metrics().rebalance_moves
    _RESULTS["naive_total"] = naive_total
    _RESULTS["aware_objective_sum"] = sum(aware_series)
    _RESULTS["aware_migration_paid"] = aware.migration_paid
    _RESULTS["aware_moves"] = aware.metrics().rebalance_moves
    _RESULTS["aware_total"] = aware_total
    _RESULTS["ratio"] = ratio
    _RESULTS["naive_objective_series"] = naive_series
    _RESULTS["aware_objective_series"] = aware_series
    _RESULTS["wall_s"] = elapsed
    _flush_results()

    emit(
        "migration_hysteresis",
        f"scenario {SCENARIO!r} (seed {SEED})"
        + (" (smoke)" if SMOKE else ""),
        f"events replayed:            {len(naive_series):10d}",
        f"naive: objective sum        {sum(naive_series):10.4f} s, "
        f"migration paid {naive.migration_paid:.4f} s "
        f"({naive.metrics().rebalance_moves} moves)",
        f"aware: objective sum        {sum(aware_series):10.4f} s, "
        f"migration paid {aware.migration_paid:.4f} s "
        f"({aware.metrics().rebalance_moves} moves)",
        f"billed totals (w={BILL_WEIGHT}):    naive {naive_total:.4f} s, "
        f"aware {aware_total:.4f} s",
        f"naive/aware ratio:          {ratio:10.4f} "
        f"(floor {RATIO_FLOOR:.3f})",
    )
    if RATIO_FLOOR > 0:
        assert ratio >= RATIO_FLOOR, (
            f"transition-aware controller did not pay off: "
            f"naive/aware ratio {ratio:.4f} < floor {RATIO_FLOOR:.3f}"
        )
