"""Fig. 8 -- Graph--Bus algorithms organised per graph structure.

One panel per structure (bushy 50/50, lengthy 16/84, hybrid 35/65
decision/operational balance). Reproduction target: the algorithm
ordering of Fig. 7 holds within every structure -- the winner does not
change with the decision-node density.
"""

import pytest

from repro.experiments.reporting import scatter_table
from repro.experiments.runner import (
    DEFAULT_ALGORITHMS,
    ExperimentConfig,
    ExperimentRunner,
)
from repro.workloads.generator import GraphStructure

from _common import emit

PANELS = [
    ("bushy", 1e6),
    ("bushy", 100e6),
    ("lengthy", 1e6),
    ("lengthy", 100e6),
    ("hybrid", 1e6),
    ("hybrid", 100e6),
]


@pytest.mark.parametrize("kind,speed", PANELS)
def bench_fig8_panel(benchmark, kind, speed):
    runner = ExperimentRunner(DEFAULT_ALGORITHMS)
    config = ExperimentConfig(
        workflow_kind=kind,
        num_operations=19,
        num_servers=5,
        bus_speed_bps=speed,
        repetitions=8,
        seed=99,
    )
    result = benchmark(runner.run, config)
    fraction = GraphStructure[kind.upper()].decision_fraction
    label = f"fig8_{kind}_{speed / 1e6:g}Mbps"
    emit(
        label,
        f"structure: {kind} (target decision fraction {fraction:.0%})",
        result.summary_table(),
        scatter_table(result.scatter_points(), title=f"scatter ({label})"),
        f"winner by execution time: {result.winner_by_execution()}",
        f"winner by time penalty:  {result.winner_by_penalty()}",
    )
