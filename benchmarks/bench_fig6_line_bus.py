"""Fig. 6 -- Line--Bus algorithms with 19 operations in the workflow.

The paper's figure scatters (execution time, time penalty) per algorithm
for Class C instances on 1 Mbps and 100 Mbps buses, and notes that
HeavyOps-LargeMsgs stays stable as K = M/N grows. This bench regenerates
both: the per-algorithm scatter/summary for each bus speed, and the K
sweep. Reproduction targets (shape, not absolute values):

* 1 Mbps: HOLM clearly fastest; Fair Load fairest; FLMME trades fairness
  for speed; tie resolvers improve on Fair Load in both dimensions.
* 100 Mbps: execution times converge; fairness differentiates.
"""

import pytest

from repro.experiments.classes import FIG6_BUS_SPEEDS
from repro.experiments.reporting import scatter_table
from repro.experiments.runner import (
    DEFAULT_ALGORITHMS,
    ExperimentConfig,
    ExperimentRunner,
)

from _common import emit

SUITE = DEFAULT_ALGORITHMS + ("Random",)


@pytest.mark.parametrize("speed", FIG6_BUS_SPEEDS)
def bench_fig6_scatter(benchmark, speed):
    """One Fig. 6 panel: the full suite on Class C line workflows."""
    runner = ExperimentRunner(SUITE)
    config = ExperimentConfig(
        workflow_kind="line",
        num_operations=19,
        num_servers=5,
        bus_speed_bps=speed,
        repetitions=10,
        seed=42,
    )
    result = benchmark(runner.run, config)
    label = f"fig6_line_bus_{speed / 1e6:g}Mbps"
    emit(
        label,
        result.summary_table(),
        scatter_table(result.scatter_points(), title=f"scatter ({label})"),
        f"winner by execution time: {result.winner_by_execution()}",
        f"winner by time penalty:  {result.winner_by_penalty()}",
    )


def bench_fig6_weight_sensitivity(benchmark):
    """'Assuming different weights for the two measures, different
    distance measures could also be considered' -- who wins as fairness
    gains weight, on the congested bus."""
    from repro.experiments.pareto import weight_sensitivity_table

    runner = ExperimentRunner(SUITE)
    config = ExperimentConfig(
        workflow_kind="line",
        num_operations=19,
        num_servers=5,
        bus_speed_bps=1e6,
        repetitions=8,
        seed=42,
    )
    result = benchmark.pedantic(runner.run, args=(config,), rounds=1, iterations=1)
    emit("fig6_weight_sensitivity", weight_sensitivity_table(result))


def bench_fig6_k_sweep(benchmark):
    """HOLM stability as K = M/N increases (1 Mbps bus)."""
    runner = ExperimentRunner(DEFAULT_ALGORITHMS)

    def sweep():
        rows = []
        for operations in (10, 15, 19, 25, 30):
            config = ExperimentConfig(
                workflow_kind="line",
                num_operations=operations,
                num_servers=5,
                bus_speed_bps=1e6,
                repetitions=6,
                seed=77,
                label=f"K={operations / 5:g}",
            )
            rows.append((config.label, runner.run(config)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    from repro.experiments.reporting import TextTable, format_seconds

    table = TextTable(
        ["K", *DEFAULT_ALGORITHMS],
        title="mean Texecute as K = M/N grows (1 Mbps bus)",
    )
    for label, result in rows:
        table.add_row(
            [
                label,
                *(
                    format_seconds(result.mean_execution_time(name))
                    for name in DEFAULT_ALGORITHMS
                ),
            ]
        )
    emit("fig6_k_sweep", table)
