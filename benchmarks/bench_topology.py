"""Benchmark: rebalancing under link failures on a real topology.

Replays the seeded ``abilene`` scenario twice through the fleet
controller -- tenants on the bundled Abilene backbone
(:func:`repro.scenarios.abilene_network`) hit by trunk brownouts and a
link failure. The *naive* run pins ``drift_threshold`` to 1.0, which
the time-penalty share of the objective can never reach, so placements
are frozen at admission time and every network event is simply
absorbed. The *rebalancing* run keeps the scenario's hysteresis
controller, which re-checks drift after every topology patch and moves
the worst-hit tenants over the surviving links.

The headline number is ``naive_total / rebalancing_total`` over the
per-event objective series -- > 1 means reacting to topology changes
beats riding them out. The ratio is a pure function of the seed
(deterministic replay), so the floor assertion holds on any hardware;
override with ``BENCH_FLOOR_TOPOLOGY`` (0 disables).

Also asserts the replay contract on the way: two replays of the same
``(scenario, seed)`` must produce byte-identical decision logs.

Results land in ``output/BENCH_topology.json`` with the per-event
objective-over-time series for both modes. ``BENCH_SMOKE=1`` runs the
same scenario (it is already small) -- the CI smoke step executes every
path including the floor assertion.
"""

import os
import time
from dataclasses import replace

from repro.core.clock import StepClock
from repro.service.controller import FleetController
from repro.service.scenarios import build_scenario

from _common import emit, perf_floor, write_json

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

SCENARIO = "abilene"
SEED = 0

#: The time-penalty share of the objective is strictly below 1 whenever
#: any operation executes at all, so this threshold never fires: the
#: naive controller admits tenants and then never moves anything again.
NAIVE_DRIFT_THRESHOLD = 1.0

#: naive/rebalancing total-objective ratio floor. Deterministic (seeded
#: replay), so asserted even in smoke mode; env-tunable regardless.
RATIO_FLOOR = perf_floor("TOPOLOGY", 1.05)

_RESULTS: dict = {
    "smoke": SMOKE,
    "scenario": SCENARIO,
    "seed": SEED,
    "naive_drift_threshold": NAIVE_DRIFT_THRESHOLD,
    "ratio_floor": RATIO_FLOOR,
}


def _flush_results() -> None:
    write_json("BENCH_topology", _RESULTS)


def _replay(**overrides):
    """Run the abilene scenario under config *overrides*.

    Returns ``(controller, objective_series)`` where the series holds
    the fleet objective after every handled event.
    """
    scenario = build_scenario(SCENARIO, seed=SEED)
    config = replace(scenario.config, **overrides)
    controller = FleetController(
        scenario.network, config=config, clock=StepClock()
    )
    series = []
    for event in scenario.events:
        controller.handle(event)
        series.append(controller.snapshot().objective)
    return controller, series


def bench_topology_rebalance(benchmark):
    """Objective-over-time under link failures: naive vs rebalancing."""

    def run_both():
        naive = _replay(drift_threshold=NAIVE_DRIFT_THRESHOLD)
        rebalancing = _replay()
        return naive, rebalancing

    benchmark(run_both)

    start = time.perf_counter()
    (naive, naive_series), (rebal, rebal_series) = run_both()
    elapsed = time.perf_counter() - start

    # replay contract: the same (scenario, seed) twice is byte-identical
    again, _ = _replay()
    assert again.log.to_text() == rebal.log.to_text(), (
        "replaying the abilene scenario twice diverged"
    )
    assert naive.metrics().rebalance_moves == 0, (
        "the naive controller was supposed to never move anything"
    )

    naive_total = sum(naive_series)
    rebal_total = sum(rebal_series)
    ratio = naive_total / rebal_total if rebal_total > 0 else float("inf")

    _RESULTS["events"] = len(naive_series)
    _RESULTS["naive_total"] = naive_total
    _RESULTS["naive_moves"] = naive.metrics().rebalance_moves
    _RESULTS["rebalancing_total"] = rebal_total
    _RESULTS["rebalancing_moves"] = rebal.metrics().rebalance_moves
    _RESULTS["ratio"] = ratio
    _RESULTS["naive_objective_series"] = naive_series
    _RESULTS["rebalancing_objective_series"] = rebal_series
    _RESULTS["wall_s"] = elapsed
    _flush_results()

    emit(
        "topology_rebalance",
        f"scenario {SCENARIO!r} (seed {SEED})"
        + (" (smoke)" if SMOKE else ""),
        f"events replayed:             {len(naive_series):10d}",
        f"naive: objective sum         {naive_total:10.4f} s "
        f"({naive.metrics().rebalance_moves} moves)",
        f"rebalancing: objective sum   {rebal_total:10.4f} s "
        f"({rebal.metrics().rebalance_moves} moves)",
        f"naive/rebalancing ratio:     {ratio:10.4f} "
        f"(floor {RATIO_FLOOR:.3f})",
    )
    if RATIO_FLOOR > 0:
        assert ratio >= RATIO_FLOOR, (
            f"rebalancing under link failures did not pay off: "
            f"naive/rebalancing ratio {ratio:.4f} < floor {RATIO_FLOOR:.3f}"
        )
