"""Benchmark: the multiprocess shard & portfolio runtime.

Three measurements on the 100-operation x 50-server scaling instance
(the parallel layer's reference size):

* **GA islands throughput scaling** -- generations/second of the
  island-model genetic search at 1 worker vs ``SCALE_WORKERS`` workers.
  On a multi-core box the acceptance floor is >= 2.5x at 4 workers
  (env-tunable via ``BENCH_FLOOR_PARALLEL_GA``); on machines with fewer
  cores than ``SCALE_WORKERS`` the assertion is skipped -- there is no
  parallel hardware to measure -- but both throughputs are still
  recorded in ``output/BENCH_parallel.json``.
* **Portfolio race** -- wall-clock and winner of the default portfolio
  under a shared evaluation budget, serial (workers=1 inline) vs the
  process pool.
* **workers=1 byte-identity** -- the ``deploy_parallel(workers=1)``
  escape hatch produces the same deployment and report as the direct
  serial ``deploy_with_report`` call, for every wrapped algorithm
  family (asserted here so the contract is re-checked on every bench
  run, smoke included).

Set ``BENCH_SMOKE=1`` for the CI smoke run: a small instance, 2
workers, few generations -- it exercises the process pool and the
identity checks without asserting the scaling floor.
"""

import dataclasses
import os
import time

import pytest

from repro.algorithms.runtime import SearchBudget
from repro.core.cost import CostModel
from repro.core.rng import coerce_rng
from repro.parallel import deploy_parallel, race_portfolio
from repro.parallel.specs import AlgorithmSpec
from repro.workloads.generator import (
    GraphStructure,
    random_bus_network,
    random_graph_workflow,
)

from _common import emit, perf_floor, write_json

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

#: Scaling reference instance: 100 operations on 50 servers.
NUM_OPERATIONS = 12 if SMOKE else 100
NUM_SERVERS = 5 if SMOKE else 50
GENERATIONS = 6 if SMOKE else 40
POPULATION = 12 if SMOKE else 30
SCALE_WORKERS = 2 if SMOKE else 4
PORTFOLIO_EVALS = 2_000 if SMOKE else 20_000

#: GA generations/sec floor at SCALE_WORKERS vs 1 worker, asserted only
#: when the machine actually has that many cores (and not in smoke).
GA_SCALING_FLOOR = perf_floor("PARALLEL_GA", 2.5)

_RESULTS: dict = {
    "smoke": SMOKE,
    "operations": NUM_OPERATIONS,
    "servers": NUM_SERVERS,
    "cpu_count": os.cpu_count(),
    "scale_workers": SCALE_WORKERS,
    "ga_scaling_floor": GA_SCALING_FLOOR,
}


@pytest.fixture(scope="module")
def instance():
    workflow = random_graph_workflow(
        NUM_OPERATIONS, GraphStructure.HYBRID, seed=101
    )
    network = random_bus_network(NUM_SERVERS, seed=102)
    return workflow, network, CostModel(workflow, network)


def _flush_results() -> None:
    write_json("BENCH_parallel", _RESULTS)


def bench_ga_islands_scaling(benchmark, instance):
    """GA generations/sec: 1 worker vs SCALE_WORKERS island workers."""
    workflow, network, model = instance
    ga = AlgorithmSpec.of(
        "Genetic", generations=GENERATIONS, population_size=POPULATION
    )

    def run(workers: int) -> float:
        start = time.perf_counter()
        outcome = deploy_parallel(
            ga,
            workflow,
            network,
            cost_model=model,
            workers=workers,
            seed=7,
            plan="islands" if workers > 1 else None,
        )
        elapsed = time.perf_counter() - start
        assert outcome.best_value > 0
        # every worker evolves GENERATIONS generations; throughput is
        # total generations evolved across the fleet per second
        return GENERATIONS * workers / elapsed

    serial_gps = run(1)
    parallel_gps = run(SCALE_WORKERS)
    scaling = parallel_gps / serial_gps if serial_gps > 0 else float("inf")
    cores = os.cpu_count() or 1
    enough_cores = cores >= SCALE_WORKERS
    _RESULTS["ga_generations_per_s_1w"] = serial_gps
    _RESULTS[f"ga_generations_per_s_{SCALE_WORKERS}w"] = parallel_gps
    _RESULTS["ga_scaling"] = scaling
    _RESULTS["ga_scaling_asserted"] = bool(not SMOKE and enough_cores)
    _flush_results()
    emit(
        "parallel_ga_scaling",
        f"instance: {NUM_OPERATIONS} operations x {NUM_SERVERS} servers"
        + (" (smoke)" if SMOKE else ""),
        f"GA generations/sec, 1 worker:           {serial_gps:10.2f}",
        f"GA generations/sec, {SCALE_WORKERS} island workers:   "
        f"{parallel_gps:10.2f}",
        f"scaling: {scaling:.2f}x (floor {GA_SCALING_FLOOR}x, "
        f"{cores} cores available"
        + ("" if enough_cores else " -- assertion skipped")
        + ")",
    )
    if not SMOKE and enough_cores:
        assert scaling >= GA_SCALING_FLOOR
    benchmark(run, SCALE_WORKERS)


def bench_portfolio_race(benchmark, instance):
    """Default-portfolio race under a shared evaluation budget."""
    workflow, network, model = instance
    budget = SearchBudget(max_evals=PORTFOLIO_EVALS)

    def run(inline: bool):
        start = time.perf_counter()
        outcome = race_portfolio(
            workflow,
            network,
            cost_model=model,
            workers=SCALE_WORKERS,
            seed=11,
            budget=budget,
            inline=inline,
        )
        return outcome, time.perf_counter() - start

    serial_outcome, serial_s = run(inline=True)
    parallel_outcome, parallel_s = run(inline=False)
    # shared-budget racing is deterministic for eval-capped runs: the
    # pool and the sequential execution elect the same winner
    assert (
        parallel_outcome.best.as_dict() == serial_outcome.best.as_dict()
    )
    winner = serial_outcome.parallel.runs[serial_outcome.parallel.winner]
    _RESULTS["portfolio_evals"] = PORTFOLIO_EVALS
    _RESULTS["portfolio_serial_s"] = serial_s
    _RESULTS["portfolio_parallel_s"] = parallel_s
    _RESULTS["portfolio_winner"] = winner.label
    _RESULTS["portfolio_best_value"] = serial_outcome.best_value
    _flush_results()
    emit(
        "parallel_portfolio",
        f"portfolio of {len(serial_outcome.parallel.runs)} racers, "
        f"{PORTFOLIO_EVALS} shared evaluations"
        + (" (smoke)" if SMOKE else ""),
        f"sequential (inline):  {serial_s * 1e3:10.1f} ms",
        f"{SCALE_WORKERS}-worker pool:        {parallel_s * 1e3:10.1f} ms",
        f"winner: {winner.label} (objective {serial_outcome.best_value:.6g})",
    )
    benchmark(run, False)


def bench_workers1_identity(benchmark, instance):
    """deploy_parallel(workers=1) == the direct serial call, per family."""
    workflow, network, model = instance
    specs = (
        "HillClimbing@HeavyOps-LargeMsgs",
        "SimulatedAnnealing",
        "Genetic",
        "HeavyOps-LargeMsgs",
    )

    def check_all():
        for text in specs:
            spec = AlgorithmSpec.parse(text)
            outcome = deploy_parallel(
                spec, workflow, network, cost_model=model, workers=1, seed=3
            )
            deployment, report = spec.build().deploy_with_report(
                workflow, network, cost_model=model, rng=coerce_rng(3)
            )
            assert outcome.best.as_dict() == deployment.as_dict(), text
            if report is None:
                assert outcome.report is None, text
            else:
                assert dataclasses.replace(
                    outcome.report, elapsed_s=0.0
                ) == dataclasses.replace(report, elapsed_s=0.0), text

    check_all()
    _RESULTS["workers1_identity"] = list(specs)
    _flush_results()
    emit(
        "parallel_workers1_identity",
        "workers=1 byte-identity verified for: " + ", ".join(specs),
    )
    benchmark(check_all)
