"""Section 3.2 -- the four Line--Line variants.

The paper introduces Line--Line mainly for its observations (contiguous
blocks, critical bridges); no figure is given, so this bench produces
the comparison the text implies: the four variants (phase 2 on/off,
one-direction vs best-of-both) on Class C line workflows over line
networks with heterogeneous link speeds -- the setting where critical
bridges exist.
"""

from repro.algorithms.line_line import LineLine
from repro.core.cost import CostModel
from repro.experiments.reporting import TextTable, format_seconds
from repro.workloads.generator import line_workflow, random_line_network

from _common import emit

VARIANTS = [
    ("phase1 only, L->R", LineLine(fix_bridges=False, direction="ltr")),
    ("phase1+bridges, L->R", LineLine(fix_bridges=True, direction="ltr")),
    ("phase1 only, best dir", LineLine(fix_bridges=False, direction="best")),
    ("phase1+bridges, best dir", LineLine(fix_bridges=True, direction="best")),
]

REPETITIONS = 12


def bench_line_line_variants(benchmark):
    def run_all():
        sums = {label: [0.0, 0.0] for label, _ in VARIANTS}
        for seed in range(REPETITIONS):
            workflow = line_workflow(19, seed=seed)
            network = random_line_network(5, seed=seed + 1000)
            model = CostModel(workflow, network)
            for label, algorithm in VARIANTS:
                cost = model.evaluate(
                    algorithm.deploy(workflow, network, cost_model=model)
                )
                sums[label][0] += cost.execution_time
                sums[label][1] += cost.time_penalty
        return sums

    sums = benchmark.pedantic(run_all, rounds=2, iterations=1)
    table = TextTable(
        ["variant", "mean_Texecute", "mean_TimePenalty"],
        title=f"Line-Line variants over {REPETITIONS} Class C instances",
    )
    for label, _ in VARIANTS:
        execution, penalty = sums[label]
        table.add_row(
            [
                label,
                format_seconds(execution / REPETITIONS),
                format_seconds(penalty / REPETITIONS),
            ]
        )
    emit("line_line_variants", table)
