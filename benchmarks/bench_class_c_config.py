"""Table 6 -- the Class C experimental configuration.

Validates (and times) the parameter machinery itself: draws large samples
from each Table 6 mixture and prints the empirical frequencies next to
the configured ones, plus the workflow/network generator throughput the
whole harness rests on.
"""

import random

from repro.experiments.reporting import TextTable
from repro.workloads.generator import line_workflow, random_bus_network
from repro.workloads.parameters import ClassCParameters

from _common import emit

DRAWS = 40_000


def bench_class_c_mixtures(benchmark):
    parameters = ClassCParameters.paper()

    def empirical():
        rows = []
        specs = [
            ("MsgSize (bits)", parameters.message_mixture, "message"),
            ("Line_Speed (bps)", parameters.line_speed_bps, "plain"),
            ("C(O) (cycles)", parameters.operation_cycles, "plain"),
            ("P(S) (Hz)", parameters.server_power_hz, "plain"),
        ]
        rng = random.Random(12)
        for title, mixture, kind in specs:
            counts: dict[object, int] = {}
            for _ in range(DRAWS):
                if kind == "message":
                    value = mixture.sample(rng).size_bits
                else:
                    value = mixture.sample(rng)
                counts[value] = counts.get(value, 0) + 1
            rows.append((title, counts))
        return rows

    rows = benchmark.pedantic(empirical, rounds=1, iterations=1)
    table = TextTable(
        ["parameter", "value", "configured", "empirical"],
        title=f"Table 6 mixtures: configured vs {DRAWS} draws",
    )
    parameters_by_title = {
        "MsgSize (bits)": [
            (c.size_bits, 0.25 if c.name != "medium" else 0.50)
            for c in ClassCParameters.paper().message_mixture.classes
        ],
        "Line_Speed (bps)": list(
            zip(
                ClassCParameters.paper().line_speed_bps.values,
                ClassCParameters.paper().line_speed_bps.probabilities(),
            )
        ),
        "C(O) (cycles)": list(
            zip(
                ClassCParameters.paper().operation_cycles.values,
                ClassCParameters.paper().operation_cycles.probabilities(),
            )
        ),
        "P(S) (Hz)": list(
            zip(
                ClassCParameters.paper().server_power_hz.values,
                ClassCParameters.paper().server_power_hz.probabilities(),
            )
        ),
    }
    for title, counts in rows:
        for value, probability in parameters_by_title[title]:
            table.add_row(
                [
                    title,
                    f"{value:g}",
                    f"{probability:.2f}",
                    f"{counts.get(value, 0) / DRAWS:.3f}",
                ]
            )
    emit("class_c_config", table)


def bench_instance_generation(benchmark):
    """Throughput of one full Class C instance (workflow + network)."""

    def generate():
        workflow = line_workflow(19, seed=1)
        network = random_bus_network(5, seed=2)
        return workflow, network

    workflow, network = benchmark(generate)
    assert len(workflow) == 19 and len(network) == 5
