"""Ablation benches for the design choices called out in DESIGN.md.

1. Critical-bridge phase 2 on/off (Line--Line).
2. Random initial mapping for the tie resolvers vs an empty start proxy
   (tie resolution on/off, i.e. FLTR vs Fair Load on tie-heavy loads).
3. HOLM's adaptive large-message threshold across bus speeds (where does
   grouping start to trigger?).
4. Analytic model vs discrete-event simulation: agreement without
   contention, slowdown with single-core servers (what the paper's model
   ignores).
5. Local-search polish on top of HOLM (how much is left on the table).
"""

import random

from repro.algorithms.fair_load import FairLoad
from repro.algorithms.heavy_ops import HeavyOpsLargeMsgs
from repro.algorithms.line_line import LineLine
from repro.algorithms.local_search import HillClimbing
from repro.algorithms.tie_resolver import FairLoadTieResolver
from repro.core.cost import CostModel
from repro.core.workflow import Operation, Workflow
from repro.experiments.reporting import TextTable, format_seconds
from repro.network.topology import bus_network
from repro.simulation.engine import SimulationEngine
from repro.workloads.generator import line_workflow, random_line_network
from repro.workloads.parameters import ClassCParameters

from _common import emit


def bench_ablation_bridge_fixing(benchmark):
    """Phase 2 of Line--Line: execution time with and without."""

    def measure():
        with_fix, without_fix = 0.0, 0.0
        for seed in range(10):
            workflow = line_workflow(19, seed=seed)
            network = random_line_network(5, seed=seed + 50)
            model = CostModel(workflow, network)
            with_fix += model.execution_time(
                LineLine(fix_bridges=True, direction="ltr").deploy(
                    workflow, network, cost_model=model
                )
            )
            without_fix += model.execution_time(
                LineLine(fix_bridges=False, direction="ltr").deploy(
                    workflow, network, cost_model=model
                )
            )
        return with_fix / 10, without_fix / 10

    with_fix, without_fix = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = TextTable(["variant", "mean_Texecute"], title="bridge fixing")
    table.add_row(["phase 1 only", format_seconds(without_fix)])
    table.add_row(["phase 1 + Fix_Bad_Bridges", format_seconds(with_fix)])
    emit("ablation_bridge_fixing", table)


def bench_ablation_tie_resolution(benchmark):
    """Gain-based tie resolution on a worst case: all costs equal."""
    workflow = Workflow("all-ties")
    names = [f"O{i}" for i in range(1, 20)]
    workflow.add_operations(Operation(n, 20e6) for n in names)
    rng = random.Random(3)
    for a, b in zip(names, names[1:]):
        workflow.connect(a, b, rng.choice([6_984.0, 60_648.0, 171_136.0]))
    network = bus_network([1e9, 2e9, 2e9, 3e9, 2e9], speed_bps=1e6)
    model = CostModel(workflow, network)

    def measure():
        fair = model.total_communication_time(
            FairLoad().deploy(workflow, network, cost_model=model)
        )
        resolver = sum(
            model.total_communication_time(
                FairLoadTieResolver().deploy(
                    workflow, network, cost_model=model, rng=seed
                )
            )
            for seed in range(10)
        ) / 10
        return fair, resolver

    fair, resolver = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = TextTable(
        ["algorithm", "total_Tcomm"],
        title="tie resolution on an all-equal-cost workflow (1 Mbps bus)",
    )
    table.add_row(["FairLoad (tie-blind)", format_seconds(fair)])
    table.add_row(["FL-TieResolver (mean of 10 seeds)", format_seconds(resolver)])
    emit("ablation_tie_resolution", table)


def bench_ablation_random_start(benchmark):
    """The paper's random initial mapping vs an empty start.

    With a random start the gain function sees (provisional) neighbours
    from the first step; empty-start gains are blind until real
    assignments accumulate. Measured on tie-heavy workloads where the
    gain function actually decides."""
    workflow = Workflow("ties")
    names = [f"O{i}" for i in range(1, 20)]
    workflow.add_operations(Operation(n, 20e6) for n in names)
    rng = random.Random(9)
    for a, b in zip(names, names[1:]):
        workflow.connect(a, b, rng.choice([6_984.0, 60_648.0, 171_136.0]))
    network = bus_network([1e9, 2e9, 2e9, 3e9, 2e9], speed_bps=1e6)
    model = CostModel(workflow, network)

    def measure():
        rows = []
        for random_start in (True, False):
            total = 0.0
            seeds = 10
            for seed in range(seeds):
                deployment = FairLoadTieResolver(
                    random_start=random_start
                ).deploy(workflow, network, cost_model=model, rng=seed)
                total += model.execution_time(deployment)
            rows.append((random_start, total / seeds))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = TextTable(
        ["initial mapping", "mean_Texecute"],
        title="FLTR initialisation ablation (all-ties workload, 1 Mbps)",
    )
    for random_start, execution in rows:
        label = "random (paper)" if random_start else "empty"
        table.add_row([label, format_seconds(execution)])
    emit("ablation_random_start", table)


def bench_ablation_holm_threshold(benchmark):
    """HOLM's adaptive threshold: grouping degree across bus speeds."""
    parameters = ClassCParameters.paper()

    def measure():
        rows = []
        for speed in (1e6, 10e6, 100e6, 1000e6):
            pinned = parameters.with_fixed_bus_speed(speed)
            used, execution = 0.0, 0.0
            runs = 8
            for seed in range(runs):
                workflow = line_workflow(19, seed=seed, parameters=pinned)
                network = bus_network(
                    [1e9, 2e9, 2e9, 3e9, 2e9], speed_bps=speed
                )
                model = CostModel(workflow, network)
                deployment = HeavyOpsLargeMsgs().deploy(
                    workflow, network, cost_model=model
                )
                used += len(deployment.used_servers())
                execution += model.execution_time(deployment)
            rows.append((speed, used / runs, execution / runs))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = TextTable(
        ["bus_speed", "mean_servers_used", "mean_Texecute"],
        title="HOLM grouping vs bus speed (5 servers, 19 ops)",
    )
    for speed, used, execution in rows:
        table.add_row(
            [f"{speed / 1e6:g} Mbps", f"{used:.1f}", format_seconds(execution)]
        )
    emit("ablation_holm_threshold", table)


def bench_ablation_model_vs_simulation(benchmark):
    """Analytic Texecute vs DES makespan; contention slowdown."""

    from repro.core.workflow import NodeKind
    from repro.workloads.generator import GraphStructure, random_graph_workflow

    def measure():
        agreement_error = 0.0
        slowdown = 0.0
        runs = 8
        for seed in range(runs):
            # bushy AND/OR graphs have parallel branches, so single-core
            # servers actually queue (a line never does)
            workflow = random_graph_workflow(
                19,
                GraphStructure.BUSHY,
                seed=seed,
                kind_weights=((NodeKind.AND_SPLIT, 0.7), (NodeKind.OR_SPLIT, 0.3)),
            )
            network = bus_network([1e9, 2e9, 2e9, 3e9, 2e9], speed_bps=10e6)
            model = CostModel(workflow, network)
            deployment = HeavyOpsLargeMsgs().deploy(
                workflow, network, cost_model=model
            )
            analytic = model.execution_time(deployment)
            free = SimulationEngine(workflow, network, deployment).run()
            contended = SimulationEngine(
                workflow, network, deployment, server_concurrency=1
            ).run()
            agreement_error = max(
                agreement_error, abs(free.makespan - analytic) / analytic
            )
            slowdown += contended.makespan / free.makespan
        return agreement_error, slowdown / runs

    error, slowdown = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = TextTable(["metric", "value"], title="model vs simulation")
    table.add_row(["worst relative |DES - analytic| (uncontended)", f"{error:.2e}"])
    table.add_row(["mean single-core slowdown factor", f"{slowdown:.3f}x"])
    emit("ablation_model_vs_simulation", table)


def bench_ablation_bus_contention(benchmark):
    """What the paper's independent-transfer assumption hides.

    Simulate Fair Load and HOLM deployments of bushy AND-graphs on a
    congested shared bus: transfers serialise, so communication-heavy
    mappings pay even more than the analytic model predicts.
    """
    from repro.core.workflow import NodeKind
    from repro.workloads.generator import GraphStructure, random_graph_workflow

    def measure():
        rows = []
        for algorithm in (FairLoad(), HeavyOpsLargeMsgs()):
            free_total, shared_total = 0.0, 0.0
            runs = 6
            for seed in range(runs):
                workflow = random_graph_workflow(
                    15,
                    GraphStructure.BUSHY,
                    seed=seed,
                    kind_weights=((NodeKind.AND_SPLIT, 1.0),),
                )
                network = bus_network([1e9, 2e9, 3e9], speed_bps=1e6)
                model = CostModel(workflow, network)
                deployment = algorithm.deploy(
                    workflow, network, cost_model=model
                )
                free_total += SimulationEngine(
                    workflow, network, deployment
                ).run().makespan
                shared_total += SimulationEngine(
                    workflow, network, deployment, exclusive_bus=True
                ).run().makespan
            rows.append(
                (algorithm.name, free_total / runs, shared_total / runs)
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = TextTable(
        ["algorithm", "free-bus makespan", "exclusive-bus makespan", "slowdown"],
        title="shared-bus contention (AND-graphs, 1 Mbps)",
    )
    for name, free, shared in rows:
        table.add_row(
            [
                name,
                format_seconds(free),
                format_seconds(shared),
                f"{shared / free:.2f}x",
            ]
        )
    emit("ablation_bus_contention", table)


def bench_ablation_local_search_polish(benchmark):
    """How much hill climbing still improves HOLM's mappings."""

    def measure():
        improvements = []
        for seed in range(6):
            workflow = line_workflow(12, seed=seed)
            network = bus_network([1e9, 2e9, 3e9], speed_bps=1e6)
            model = CostModel(workflow, network)
            base = model.objective(
                HeavyOpsLargeMsgs().deploy(workflow, network, cost_model=model)
            )
            polished = model.objective(
                HillClimbing(seed_algorithm=HeavyOpsLargeMsgs()).deploy(
                    workflow, network, cost_model=model, rng=seed
                )
            )
            improvements.append(1.0 - polished / base)
        return improvements

    improvements = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = TextTable(
        ["metric", "value"], title="hill-climbing polish on HOLM (12 ops)"
    )
    table.add_row(
        ["mean objective improvement", f"{sum(improvements) / len(improvements):.1%}"]
    )
    table.add_row(["max objective improvement", f"{max(improvements):.1%}"])
    emit("ablation_local_search_polish", table)
