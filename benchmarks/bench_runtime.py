"""Benchmark: SearchRuntime driver overhead vs the pre-refactor loops.

Every iterative algorithm now runs as a step generator under
:class:`~repro.algorithms.runtime.SearchRuntime` -- one driver owning
incumbent tracking, budgets, cancellation and progress. The refactor's
perf bargain is that the driver costs (almost) nothing when no budget
binds. This bench replays the *pre-refactor* hand-rolled loops of hill
climbing (full and incremental pricing) and simulated annealing
verbatim, times them against the runtime-driven algorithms with the
same seeds on the 20-operation x 10-server reference instance, checks
the deployments are identical, and asserts the aggregate overhead stays
under 5%.

Simulated annealing is the worst case -- ~2000 steps of microsecond
work, so the per-step driver cost (one ``SearchStep`` plus a generator
resume) is maximally visible; the climbers amortise the driver over a
full neighbourhood scan per step. Per-algorithm numbers are emitted for
context, the floor is asserted on the suite total (and only on the full
instance: set ``BENCH_SMOKE=1`` for the CI smoke run, which shrinks the
instance and skips the floor while keeping the parity checks).
"""

import math
import os
import random
import time

import pytest

from repro.algorithms.local_search import HillClimbing, SimulatedAnnealing
from repro.core.cost import CostModel
from repro.core.incremental import MoveEvaluator
from repro.core.mapping import Deployment
from repro.workloads.generator import (
    GraphStructure,
    random_bus_network,
    random_graph_workflow,
)

from _common import emit

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

#: Reference instance: 20 operations on 10 servers.
NUM_OPERATIONS = 6 if SMOKE else 20
NUM_SERVERS = 3 if SMOKE else 10
REPEATS = 1 if SMOKE else 9
SA_STEPS = 100 if SMOKE else 2_000
HC_ITERATIONS = 20 if SMOKE else 200
OVERHEAD_CEILING = 0.05


@pytest.fixture(scope="module")
def instance():
    workflow = random_graph_workflow(
        NUM_OPERATIONS, GraphStructure.HYBRID, seed=17
    )
    network = random_bus_network(NUM_SERVERS, seed=18)
    return workflow, network, CostModel(workflow, network)


# ----------------------------------------------------------------------
# the pre-refactor loops, replayed verbatim
# ----------------------------------------------------------------------
def _legacy_hill_climbing_full(instance, rng):
    workflow, network, model = instance
    current = Deployment.random(workflow, network, rng)
    current_value = model.objective(current)
    for _ in range(HC_ITERATIONS):
        best_move = None
        best_value = current_value
        for operation in workflow.operation_names:
            original = current.server_of(operation)
            for server in network.server_names:
                if server == original:
                    continue
                current.assign(operation, server)
                value = model.objective(current)
                if value < best_value:
                    best_value = value
                    best_move = (operation, server)
            current.assign(operation, original)
        if best_move is None:
            break
        current.assign(*best_move)
        current_value = best_value
    return current


def _legacy_hill_climbing_incremental(instance, rng):
    workflow, network, model = instance
    current = Deployment.random(workflow, network, rng)
    evaluator = MoveEvaluator(model, current)
    for _ in range(HC_ITERATIONS):
        best_move = None
        best_value = evaluator.objective
        for operation in workflow.operation_names:
            original = current.server_of(operation)
            for server in network.server_names:
                if server == original:
                    continue
                value = evaluator.propose_value(operation, server)
                if value < best_value:
                    best_value = value
                    best_move = (operation, server)
        if best_move is None:
            break
        evaluator.apply(*best_move)
    return current


def _legacy_annealing_incremental(
    instance, rng, initial_temperature=0.5, cooling=0.995
):
    workflow, network, model = instance
    current = Deployment.random(workflow, network, rng)
    operations = workflow.operation_names
    servers = network.server_names
    evaluator = MoveEvaluator(model, current)
    best = current.copy()
    best_value = evaluator.objective
    temperature = initial_temperature * max(evaluator.objective, 1e-12)
    for _ in range(SA_STEPS):
        operation = rng.choice(operations)
        original = current.server_of(operation)
        alternatives = [s for s in servers if s != original]
        server = rng.choice(alternatives)
        outcome = evaluator.propose(operation, server)
        delta = outcome.delta
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            evaluator.commit()
            if outcome.objective < best_value:
                best_value = outcome.objective
                best = current.copy()
        temperature *= cooling
    return best


CASES = [
    (
        "hill climbing, full pricing",
        _legacy_hill_climbing_full,
        lambda: HillClimbing(
            max_iterations=HC_ITERATIONS, use_incremental=False
        ),
    ),
    (
        "hill climbing, incremental",
        _legacy_hill_climbing_incremental,
        lambda: HillClimbing(
            max_iterations=HC_ITERATIONS, use_incremental=True
        ),
    ),
    (
        "simulated annealing",
        _legacy_annealing_incremental,
        lambda: SimulatedAnnealing(steps=SA_STEPS),
    ),
]


def _best_time(fn, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_runtime_driver_overhead(benchmark, instance):
    """Pre-refactor loops vs runtime-driven searches, same seeds."""
    workflow, network, model = instance
    lines = [
        f"instance: {NUM_OPERATIONS} operations x {NUM_SERVERS} servers"
        + (" (smoke)" if SMOKE else "")
    ]
    total_legacy = total_driven = 0.0
    for label, legacy, make_algorithm in CASES:
        algorithm = make_algorithm()
        t_legacy, legacy_result = _best_time(
            lambda: legacy(instance, random.Random(23))
        )
        t_driven, driven_result = _best_time(
            lambda: algorithm.deploy(
                workflow, network, cost_model=model, rng=random.Random(23)
            )
        )
        # the runtime owns the loop now, but the search is the same:
        # identical seeded deployments out
        assert driven_result.as_dict() == legacy_result.as_dict()
        overhead = t_driven / t_legacy - 1.0 if t_legacy > 0 else 0.0
        total_legacy += t_legacy
        total_driven += t_driven
        lines.append(
            f"{label:32s} legacy {t_legacy * 1e3:8.3f} ms   "
            f"runtime {t_driven * 1e3:8.3f} ms   "
            f"overhead {overhead * 100:+6.2f}%"
        )
    total = total_driven / total_legacy - 1.0 if total_legacy > 0 else 0.0
    lines.append(
        f"{'suite total':32s} legacy {total_legacy * 1e3:8.3f} ms   "
        f"runtime {total_driven * 1e3:8.3f} ms   "
        f"overhead {total * 100:+6.2f}%  "
        f"(ceiling on the full instance: {OVERHEAD_CEILING:.0%})"
    )
    emit("runtime_overhead", *lines)
    if not SMOKE:
        assert total < OVERHEAD_CEILING
    algorithm = SimulatedAnnealing(steps=SA_STEPS)
    benchmark(
        algorithm.deploy,
        workflow,
        network,
        cost_model=model,
        rng=random.Random(23),
    )
