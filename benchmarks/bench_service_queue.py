"""Benchmark: the durable fleet-service tier.

Three measurements, recorded in ``output/BENCH_service.json``:

* **Queue throughput** -- submit + drain jobs/second through a
  :class:`~repro.service.queue.FleetService` processing a seeded
  scenario's event trace, including the built-in reprioritization
  policies (failure preemption, drift boosts).
* **Reprioritization cost** -- ``update_priorities`` sweeps/second over
  a large queued backlog (the stable-heap lazy-invalidation path).
* **Checkpoint/restore latency** -- wall-clock to write a checkpoint of
  a fully-replayed scenario and to restore it (restore includes the
  verification replay, so it is the honest recovery-time number).

Set ``BENCH_SMOKE=1`` for the CI smoke run: the small ``steady``
scenario and a reduced backlog -- every path still executes, no floors
asserted.
"""

import os
import time

from repro.core.clock import StepClock
from repro.service.checkpoint import restore_controller, write_checkpoint
from repro.service.controller import FleetController
from repro.service.events import DeployRequest, ServerFailed
from repro.service.queue import FleetService, WorkQueue
from repro.service.scenarios import build_scenario
from repro.workloads.generator import line_workflow

from _common import emit, perf_floor, write_json

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

SCENARIO = "steady" if SMOKE else "surge"
SEED = 7
BACKLOG = 200 if SMOKE else 5_000
SWEEPS = 10 if SMOKE else 100

#: Queue-mechanics floor (jobs/second through submit+pop on a large
#: backlog, controller excluded) -- env-tunable, generous for CI boxes.
QUEUE_FLOOR = perf_floor("SERVICE_QUEUE", 50_000.0)

_RESULTS: dict = {
    "smoke": SMOKE,
    "scenario": SCENARIO,
    "seed": SEED,
    "backlog": BACKLOG,
    "queue_floor_jobs_per_s": QUEUE_FLOOR,
}


def _flush_results() -> None:
    write_json("BENCH_service", _RESULTS)


def _service_for_scenario():
    scenario = build_scenario(SCENARIO, seed=SEED)
    controller = FleetController(
        scenario.network, config=scenario.config, clock=StepClock()
    )
    service = FleetService(controller)
    for event in scenario.events:
        service.submit(event)
    return service


def bench_service_drain_throughput(benchmark):
    """End-to-end jobs/second: queue + controller on a full scenario."""

    def drain():
        service = _service_for_scenario()
        return service.drain()

    processed = benchmark(drain)
    start = time.perf_counter()
    processed = _service_for_scenario().drain()
    elapsed = time.perf_counter() - start
    jobs_per_s = len(processed) / elapsed if elapsed > 0 else float("inf")
    assert all(job.state == "done" for job in processed)
    _RESULTS["drain_jobs"] = len(processed)
    _RESULTS["drain_jobs_per_s"] = jobs_per_s
    _flush_results()
    emit(
        "service_drain_throughput",
        f"scenario {SCENARIO!r} (seed {SEED})"
        + (" (smoke)" if SMOKE else ""),
        f"jobs drained:     {len(processed):10d}",
        f"jobs/second:      {jobs_per_s:10.1f}",
    )


def bench_queue_mechanics(benchmark):
    """Pure queue throughput: submit + reprioritize + pop, no controller."""
    workflow = line_workflow(3, seed=1)

    def churn() -> int:
        queue = WorkQueue()
        for index in range(BACKLOG):
            queue.submit(
                DeployRequest(f"tenant-{index:05d}", workflow),
                priority=index % 7,
            )
        queue.update_priorities(
            lambda job: 1 if job.seq % 3 == 0 else None
        )
        drained = 0
        while queue.pop() is not None:
            drained += 1
        return drained

    drained = benchmark(churn)

    start = time.perf_counter()
    drained = churn()
    elapsed = time.perf_counter() - start
    jobs_per_s = drained / elapsed if elapsed > 0 else float("inf")
    assert drained == BACKLOG
    _RESULTS["queue_jobs_per_s"] = jobs_per_s
    _flush_results()
    emit(
        "service_queue_mechanics",
        f"backlog {BACKLOG} jobs, 1/3 reprioritized"
        + (" (smoke)" if SMOKE else ""),
        f"jobs/second:      {jobs_per_s:10.1f} (floor {QUEUE_FLOOR:.0f})",
    )
    if not SMOKE:
        assert jobs_per_s >= QUEUE_FLOOR


def bench_reprioritization_sweeps(benchmark):
    """update_priorities sweeps/second over a standing queued backlog."""
    workflow = line_workflow(3, seed=1)
    queue = WorkQueue()
    for index in range(BACKLOG):
        queue.submit(
            DeployRequest(f"tenant-{index:05d}", workflow),
            priority=50,
        )
    flips = {"on": False}

    def sweep():
        flips["on"] = not flips["on"]
        target = 10 if flips["on"] else 50
        return queue.update_priorities(lambda job: target)

    changed = benchmark(sweep)
    start = time.perf_counter()
    for _ in range(SWEEPS):
        changed = sweep()
    elapsed = time.perf_counter() - start
    sweeps_per_s = SWEEPS / elapsed if elapsed > 0 else float("inf")
    assert len(changed) == BACKLOG
    _RESULTS["reprioritize_sweeps_per_s"] = sweeps_per_s
    _flush_results()
    emit(
        "service_reprioritization",
        f"{SWEEPS} sweeps over {BACKLOG} queued jobs",
        f"sweeps/second:    {sweeps_per_s:10.2f}",
    )


def bench_checkpoint_restore_latency(benchmark, tmp_path_factory):
    """Checkpoint write and verified-restore wall clock."""
    scenario = build_scenario(SCENARIO, seed=SEED)
    controller = FleetController(
        scenario.network, config=scenario.config, clock=StepClock()
    )
    for event in scenario.events:
        controller.handle(event)
    # keep one failure pending so the pending codec is exercised
    pending = (ServerFailed("S1"),)
    directory = tmp_path_factory.mktemp("service-bench")
    path = directory / "fleet-checkpoint.json"

    start = time.perf_counter()
    write_checkpoint(controller, path, pending=pending)
    write_s = time.perf_counter() - start

    def restore():
        return restore_controller(path)

    restored, restored_pending = benchmark(restore)
    start = time.perf_counter()
    restored, restored_pending = restore()
    restore_s = time.perf_counter() - start
    assert restored.log.to_text() == controller.log.to_text()
    assert len(restored_pending) == 1
    _RESULTS["checkpoint_events"] = len(controller.history)
    _RESULTS["checkpoint_bytes"] = path.stat().st_size
    _RESULTS["checkpoint_write_s"] = write_s
    _RESULTS["checkpoint_restore_s"] = restore_s
    _flush_results()
    emit(
        "service_checkpoint_latency",
        f"scenario {SCENARIO!r}: {len(controller.history)} events, "
        f"{path.stat().st_size:,} bytes on disk",
        f"checkpoint write:          {write_s * 1e3:10.2f} ms",
        f"verified restore (replay): {restore_s * 1e3:10.2f} ms",
    )
