"""Benchmark: batched deployment scoring vs the scalar paths.

The batch kernel's two hot call shapes, timed against the scalar code
they replace on the reference 20-operation x 10-server instance:

* **GA generation** -- scoring a population of K genomes: one
  :class:`~repro.core.batch.BatchEvaluator` call vs the per-genome
  :class:`~repro.core.incremental.TableScorer` loop (the PR's
  acceptance floor is 5x for K >= 64);
* **neighbourhood sweep** -- scoring all ``M x (S - 1)`` single-op
  moves of a hill-climbing round: one kernel call over the move grid vs
  the per-move ``MoveEvaluator.propose_value`` scan.

Both checks assert the batch scores are bit-identical to the scalar
ones before timing anything. Results land in the perf trajectory file
``output/BENCH_batch.json`` (plus the usual text tables).

Set ``BENCH_SMOKE=1`` to shrink the instance and repeat count for CI
smoke runs; the speedup floor is only asserted on the full instance.
"""

import os
import random
import time

import pytest

from repro.core.cost import CostModel
from repro.core.incremental import MoveEvaluator, TableScorer
from repro.core.mapping import Deployment
from repro.workloads.generator import (
    GraphStructure,
    random_bus_network,
    random_graph_workflow,
)

from _common import emit, write_json

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

#: Reference instance from the issue: 20 operations on 10 servers.
NUM_OPERATIONS = 6 if SMOKE else 20
NUM_SERVERS = 3 if SMOKE else 10
REPEATS = 1 if SMOKE else 5
#: Population sizes timed for the GA-generation shape; the speedup
#: floor applies from 64 up.
POPULATION_SIZES = (16, 64) if SMOKE else (64, 256, 1024)
SPEEDUP_FLOOR = 5.0
FLOOR_POPULATION = 64

#: Perf-trajectory payload, accumulated across the bench functions and
#: rewritten after each (so a partial run still leaves valid JSON).
_TRAJECTORY = {
    "instance": {
        "operations": NUM_OPERATIONS,
        "servers": NUM_SERVERS,
        "smoke": SMOKE,
    },
    "speedup_floor": SPEEDUP_FLOOR,
}


@pytest.fixture(scope="module")
def instance():
    workflow = random_graph_workflow(
        NUM_OPERATIONS, GraphStructure.HYBRID, seed=17
    )
    network = random_bus_network(NUM_SERVERS, seed=18)
    return workflow, network, CostModel(workflow, network)


def _best_time(fn, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _random_population(workflow, network, size, seed):
    rng = random.Random(seed)
    servers = network.server_names
    return [
        tuple(rng.choice(servers) for _ in workflow.operation_names)
        for _ in range(size)
    ]


def bench_ga_generation_scoring(benchmark, instance):
    """One GA generation: kernel call vs per-genome TableScorer loop."""
    workflow, network, model = instance
    scorer = TableScorer(model, workflow.operation_names)
    batch = model.compiled.batch_evaluator()
    lines = [
        f"instance: {NUM_OPERATIONS} operations x {NUM_SERVERS} servers"
        + (" (smoke)" if SMOKE else "")
    ]
    results = {}
    floor_speedup = None
    for size in POPULATION_SIZES:
        population = _random_population(workflow, network, size, seed=41)
        indexed = batch.index_batch(population)

        def score_scalar(population=population):
            return [scorer.objective(genome) for genome in population]

        def score_batch(indexed=indexed):
            return batch.evaluate(indexed).objective

        # parity first: the kernel must reproduce the scalar floats
        scalar_scores = score_scalar()
        batch_scores = score_batch()
        assert list(batch_scores) == scalar_scores
        t_scalar, _ = _best_time(score_scalar)
        t_batch, _ = _best_time(score_batch)
        speedup = t_scalar / t_batch if t_batch > 0 else float("inf")
        if size >= FLOOR_POPULATION and floor_speedup is None:
            floor_speedup = speedup
        results[str(size)] = {
            "scalar_ms": t_scalar * 1e3,
            "batch_ms": t_batch * 1e3,
            "speedup": speedup,
        }
        lines.append(
            f"K={size:5d}: scalar {t_scalar * 1e3:9.3f} ms, "
            f"batch {t_batch * 1e3:9.3f} ms, speedup {speedup:6.1f}x"
        )
    lines.append(
        f"floor: {SPEEDUP_FLOOR}x at K>={FLOOR_POPULATION} "
        f"(asserted on the full instance only)"
    )
    emit("batch_eval_ga_generation", *lines)
    _TRAJECTORY["ga_generation"] = results
    write_json("BENCH_batch", _TRAJECTORY)
    if not SMOKE:
        assert floor_speedup is not None
        assert floor_speedup >= SPEEDUP_FLOOR
    population = _random_population(
        workflow, network, FLOOR_POPULATION, seed=41
    )
    indexed = batch.index_batch(population)
    benchmark(lambda: batch.evaluate(indexed))


def bench_neighborhood_sweep_scoring(benchmark, instance):
    """One hill-climbing round: move grid in one call vs propose_value."""
    workflow, network, model = instance
    deployment = Deployment.random(workflow, network, random.Random(29))
    compiled = model.compiled
    batch = compiled.batch_evaluator()
    servers = compiled.server_vector(deployment)
    operations = workflow.operation_names
    server_names = network.server_names

    def sweep_scalar():
        evaluator = MoveEvaluator(model, deployment)
        values = []
        for operation in operations:
            original = deployment.server_of(operation)
            for server in server_names:
                if server == original:
                    continue
                values.append(evaluator.propose_value(operation, server))
        return values

    def sweep_batch():
        return batch.evaluate(batch.neighborhood(servers)).objective

    # parity: the grid rows that encode real moves must match the
    # scalar proposals (row op*S + s is operation op onto server s)
    scalar_values = sweep_scalar()
    grid_values = sweep_batch()
    expected = iter(scalar_values)
    for op in range(compiled.num_ops):
        for s in range(compiled.num_servers):
            if s == servers[op]:
                continue
            assert grid_values[op * compiled.num_servers + s] == next(expected)

    t_scalar, _ = _best_time(sweep_scalar)
    t_batch, _ = _best_time(sweep_batch)
    moves = compiled.num_ops * (compiled.num_servers - 1)
    speedup = t_scalar / t_batch if t_batch > 0 else float("inf")
    emit(
        "batch_eval_neighborhood",
        f"{moves} moves per sweep on {NUM_OPERATIONS} operations x "
        f"{NUM_SERVERS} servers" + (" (smoke)" if SMOKE else ""),
        f"scalar propose_value sweep:  {t_scalar * 1e3:10.3f} ms",
        f"batched grid evaluation:     {t_batch * 1e3:10.3f} ms",
        f"speedup: {speedup:.1f}x",
    )
    _TRAJECTORY["neighborhood_sweep"] = {
        "moves": moves,
        "scalar_ms": t_scalar * 1e3,
        "batch_ms": t_batch * 1e3,
        "speedup": speedup,
    }
    write_json("BENCH_batch", _TRAJECTORY)
    benchmark(sweep_batch)
