"""Empirical validation of the section 3.3 complexity claims.

The paper states Fair Load is ``O(M logM + N logN + MN)`` and the other
Line--Bus variants ``O(M (M logM + N logN + MN))`` (with MN -> 1 for
HOLM). This bench measures wall-clock deploy time across M at fixed N
and reports the growth ratio per doubling -- near 2x indicates the
quasi-linear family, near 4x the quadratic one. (pytest-benchmark times
each point; the summary table shows the shape.)
"""

import time

from repro.algorithms.base import algorithm_registry
from repro.core.cost import CostModel
from repro.experiments.reporting import TextTable
from repro.workloads.generator import line_workflow, random_bus_network

from _common import emit

SIZES = (25, 50, 100, 200)
SUITE = (
    "FairLoad",
    "FL-TieResolver",
    "FL-TieResolver2",
    "FL-MergeMsgEnds",
    "HeavyOps-LargeMsgs",
)


def bench_deploy_time_growth(benchmark):
    registry = algorithm_registry()

    def measure():
        timings: dict[str, list[float]] = {name: [] for name in SUITE}
        for operations in SIZES:
            workflow = line_workflow(operations, seed=1)
            network = random_bus_network(5, seed=2)
            model = CostModel(workflow, network)
            for name in SUITE:
                algorithm = registry[name]()
                start = time.perf_counter()
                algorithm.deploy(workflow, network, cost_model=model, rng=0)
                timings[name].append(time.perf_counter() - start)
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = TextTable(
        ["algorithm", *(f"M={m}" for m in SIZES), "ratio/doubling"],
        title="deploy wall time vs M (N=5); the paper's complexity shapes",
    )
    for name in SUITE:
        values = timings[name]
        ratios = [
            values[i + 1] / values[i]
            for i in range(len(values) - 1)
            if values[i] > 0
        ]
        mean_ratio = (
            sum(ratios) / len(ratios) if ratios else float("nan")
        )
        table.add_row(
            [
                name,
                *(f"{v * 1e3:.2f}ms" for v in values),
                f"{mean_ratio:.1f}x",
            ]
        )
    emit("complexity_growth", table)


def bench_cost_evaluation_scaling(benchmark):
    """Cost of one evaluate() as M grows (the quality protocol's unit)."""

    def measure():
        rows = []
        for operations in SIZES:
            workflow = line_workflow(operations, seed=3)
            network = random_bus_network(5, seed=4)
            model = CostModel(workflow, network)
            from repro.core.mapping import Deployment
            import random as _random

            deployment = Deployment.random(
                workflow, network, _random.Random(5)
            )
            start = time.perf_counter()
            iterations = 50
            for _ in range(iterations):
                model.evaluate(deployment)
            rows.append(
                (operations, (time.perf_counter() - start) / iterations)
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = TextTable(
        ["M", "evaluate() time"],
        title="cost evaluation scaling (line workflows, N=5)",
    )
    for operations, seconds in rows:
        table.add_row([operations, f"{seconds * 1e6:.0f}us"])
    emit("complexity_evaluate", table)
