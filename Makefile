# Convenience targets; everything is also runnable directly with pytest.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: install test lint bench bench-smoke figures claims docs examples all clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

# static checks (config in pyproject.toml [tool.ruff]); install with
# `pip install -e .[lint]`
lint:
	$(PYTHON) -m ruff check src tests benchmarks examples tools

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# tiny-parameter smoke run of the move-evaluation, core-perf,
# runtime-overhead, batch-kernel, parallel, service, migration,
# topology and routing benches (used by CI): exercises both pricing
# code paths, the compiled-vs-legacy parity check, the legacy-loop
# parity of the search runtime, the batch-vs-scalar parity of the
# vectorized kernel, the 2-worker process pool (islands/portfolio +
# workers=1 identity), the transition-aware-vs-blind drift replay, the
# naive-vs-rebalancing Abilene link-failure replay, and the batched
# route-compile / scoped-invalidation comparison (the deterministic
# ratio and Dijkstra-count floors ARE asserted) without asserting the
# hardware perf floors
bench-smoke:
	BENCH_SMOKE=1 $(PYTHON) -m pytest benchmarks/bench_move_eval.py benchmarks/bench_core_perf.py benchmarks/bench_runtime.py benchmarks/bench_batch_eval.py benchmarks/bench_parallel.py benchmarks/bench_service_queue.py benchmarks/bench_migration.py benchmarks/bench_topology.py benchmarks/bench_routing.py --benchmark-disable -q

figures:
	$(PYTHON) -m repro figures --output benchmarks/output

claims:
	$(PYTHON) -m repro claims

docs:
	$(PYTHON) tools/gen_api_docs.py

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

all: install test bench claims docs

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
