"""Failover drill: how gracefully does each deployment degrade?

Section 2.1 motivates fair deployments with resilience: "whenever
additional workflows are deployed, or a server fails, a reasonable load
scale-up is still possible." This script runs the drill: deploy the
healthcare workflow with each algorithm, kill every server in turn,
patch the mapping (orphans re-homed worst-fit, survivors untouched), and
report the worst-case degradation. It then contrasts patching with a
full re-deployment for the worst failure.

Run with::

    python examples/failover_drill.py
"""

from repro import CostModel, algorithm_registry, healthcare_workflow
from repro.experiments.failover import analyze_failure, failover_table
from repro.experiments.reporting import TextTable, format_seconds
from repro.workloads.gallery import ministry_network

SUITE = ("FairLoad", "FL-TieResolver2", "HeavyOps-LargeMsgs")


def main() -> None:
    workflow = healthcare_workflow()
    network = ministry_network(speed_bps=10e6)
    model = CostModel(workflow, network)
    registry = algorithm_registry()

    summary = TextTable(
        [
            "algorithm",
            "Texecute (healthy)",
            "worst exec scale-up",
            "worst peak-load scale-up",
        ],
        title="worst single-server failure per deployment algorithm",
    )
    deployments = {}
    for name in SUITE:
        deployment = registry[name]().deploy(
            workflow, network, cost_model=model, rng=11
        )
        deployments[name] = deployment
        healthy = model.evaluate(deployment)
        worst_exec, worst_peak = 1.0, 1.0
        for server in network.server_names:
            report = analyze_failure(workflow, network, deployment, server)
            worst_exec = max(worst_exec, report.execution_scale_up)
            worst_peak = max(worst_peak, report.peak_load_scale_up)
        summary.add_row(
            [
                name,
                format_seconds(healthy.execution_time),
                f"{worst_exec:.2f}x",
                f"{worst_peak:.2f}x",
            ]
        )
    print(summary)

    # per-server detail for the paper's winner
    print()
    print(
        failover_table(
            workflow, network, deployments["HeavyOps-LargeMsgs"]
        )
    )

    # patching vs full re-deployment for the most damaging failure
    deployment = deployments["HeavyOps-LargeMsgs"]
    worst_server = max(
        network.server_names,
        key=lambda server: analyze_failure(
            workflow, network, deployment, server
        ).execution_scale_up,
    )
    patched = analyze_failure(workflow, network, deployment, worst_server)
    redeployed = analyze_failure(
        workflow,
        network,
        deployment,
        worst_server,
        algorithm=registry["HeavyOps-LargeMsgs"](),
        rng=11,
    )
    print(
        f"\nworst failure is {worst_server}: patching gives "
        f"{format_seconds(patched.after.execution_time)}, full "
        f"re-deployment {format_seconds(redeployed.after.execution_time)} "
        f"(moves {len(patched.orphaned_operations)} vs "
        f"{len(deployment.diff(redeployed.recovered))} operations)"
    )


if __name__ == "__main__":
    main()
