"""Capacity planning: how many servers / how fast a bus does a provider need?

A service provider hosts a *portfolio* of workflows (the section 6
multi-workflow extension): the healthcare rendezvous system plus two
batch pipelines. This script sweeps the two provisioning levers --
server count and bus speed -- deploys the whole portfolio jointly with
HeavyOps-LargeMsgs at each point, and reports completion time, fairness
and the load headroom left on the busiest server.

Run with::

    python examples/capacity_planning.py
"""

from repro import CostModel, HeavyOpsLargeMsgs, bus_network, line_workflow
from repro.experiments.multi_workflow import combine_workflows
from repro.experiments.reporting import TextTable, format_seconds
from repro.workloads.gallery import healthcare_workflow
from repro.workloads.generator import GraphStructure, random_graph_workflow

SERVER_COUNTS = (3, 5, 8)
BUS_SPEEDS = (10e6, 100e6, 1000e6)
SERVER_POWER_HZ = 2e9


def portfolio():
    """The provider's hosted workflows."""
    return [
        healthcare_workflow(),
        line_workflow(12, seed=21, name="billing-pipeline"),
        random_graph_workflow(
            14, GraphStructure.HYBRID, seed=22, name="claims-audit"
        ),
    ]


def main() -> None:
    workflows = portfolio()
    combined = combine_workflows(workflows, name="portfolio")
    print(
        f"portfolio: {len(workflows)} workflows, "
        f"{len(combined)} operations total\n"
    )

    table = TextTable(
        [
            "servers",
            "bus",
            "Texecute",
            "TimePenalty",
            "busiest_load",
            "mean_load",
        ],
        title="joint deployment with HeavyOps-LargeMsgs",
    )
    for count in SERVER_COUNTS:
        for speed in BUS_SPEEDS:
            network = bus_network(
                [SERVER_POWER_HZ] * count,
                speed_bps=speed,
                name=f"bus-{count}",
            )
            model = CostModel(combined, network)
            deployment = HeavyOpsLargeMsgs().deploy(
                combined, network, cost_model=model
            )
            cost = model.evaluate(deployment)
            loads = list(cost.loads.values())
            table.add_row(
                [
                    count,
                    f"{speed / 1e6:g} Mbps",
                    format_seconds(cost.execution_time),
                    format_seconds(cost.time_penalty),
                    format_seconds(max(loads)),
                    format_seconds(sum(loads) / len(loads)),
                ]
            )
    print(table)

    print(
        "\nReading the table: more servers cut the busiest load (headroom "
        "for failover and growth), while a faster bus cuts execution time "
        "-- on a 10 Mbps bus HeavyOps-LargeMsgs co-locates heavily, so "
        "added servers help less until the bus is upgraded."
    )


if __name__ == "__main__":
    main()
