"""Topology study: how the server interconnect shapes the deployment.

The paper evaluates line and bus interconnects; the library also models
star, ring and mesh (extension topologies). This script deploys the same
Class C workflow onto each topology (same total compute, same link
speed), and separately demonstrates the Line--Line algorithm's
critical-bridge repair on a line with one congested link.

Run with::

    python examples/topology_study.py
"""

from repro import (
    CostModel,
    HeavyOpsLargeMsgs,
    LineLine,
    bus_network,
    line_network,
    line_workflow,
    ring_network,
    star_network,
)
from repro.experiments.reporting import TextTable, format_seconds

POWERS = [1e9, 2e9, 2e9, 3e9, 2e9]
SPEED = 10e6


def topologies():
    return [
        ("bus", bus_network(POWERS, speed_bps=SPEED)),
        ("line", line_network(POWERS, speeds_bps=SPEED)),
        ("ring", ring_network(POWERS, speed_bps=SPEED)),
        (
            "star",
            star_network(POWERS[3], POWERS[:3] + POWERS[4:], speed_bps=SPEED),
        ),
    ]


def main() -> None:
    workflow = line_workflow(19, seed=3)

    table = TextTable(
        ["topology", "Texecute", "TimePenalty", "servers_used"],
        title="HeavyOps-LargeMsgs across interconnects (same compute, 10 Mbps links)",
    )
    for name, network in topologies():
        model = CostModel(workflow, network)
        deployment = HeavyOpsLargeMsgs().deploy(
            workflow, network, cost_model=model
        )
        cost = model.evaluate(deployment)
        table.add_row(
            [
                name,
                format_seconds(cost.execution_time),
                format_seconds(cost.time_penalty),
                len(deployment.used_servers()),
            ]
        )
    print(table)
    print(
        "\nMulti-hop topologies (line, ring, star) pay routing costs a bus "
        "does not, so the same algorithm consolidates more aggressively "
        "there.\n"
    )

    # --- the critical-bridge repair of section 3.2 -----------------------
    network = line_network(POWERS, speeds_bps=[100e6, 100e6, 1e6, 100e6])
    model = CostModel(workflow, network)
    table = TextTable(
        ["Line-Line variant", "Texecute", "TimePenalty"],
        title="critical-bridge repair on a line with one 1 Mbps link",
    )
    for label, algorithm in [
        ("phase 1 only", LineLine(fix_bridges=False, direction="ltr")),
        ("with Fix_Bad_Bridges", LineLine(fix_bridges=True, direction="ltr")),
        ("best of both directions", LineLine(fix_bridges=True, direction="best")),
    ]:
        cost = model.evaluate(
            algorithm.deploy(workflow, network, cost_model=model)
        )
        table.add_row(
            [
                label,
                format_seconds(cost.execution_time),
                format_seconds(cost.time_penalty),
            ]
        )
    print(table)


if __name__ == "__main__":
    main()
