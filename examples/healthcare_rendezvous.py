"""The paper's motivating example (Fig. 1): the ministry rendezvous system.

A ministry of health runs a 15-operation patient-rendezvous workflow
(XOR on doctor availability, AND fan-out for medicine registration and
social-security notification) over its 5 servers. This script answers
the section 2.1 question -- which of the 5**15 configurations to pick --
three ways:

1. run every deployment algorithm and compare the two cost metrics;
2. filter the candidates through a fairness constraint (section 2.2's
   constraint set C) and pick the fastest admissible one;
3. validate the winner by actually *executing* the workflow 500 times in
   the discrete-event simulator and comparing measured makespans with
   the analytic prediction.

Run with::

    python examples/healthcare_rendezvous.py
"""

from repro import (
    ConstraintSet,
    CostModel,
    MaxTimePenalty,
    SimulationEngine,
    algorithm_registry,
    healthcare_workflow,
)
from repro.experiments.reporting import TextTable, format_seconds
from repro.workloads.gallery import ministry_network

SUITE = (
    "Random",
    "FairLoad",
    "FL-TieResolver",
    "FL-TieResolver2",
    "FL-MergeMsgEnds",
    "HeavyOps-LargeMsgs",
)

#: fairness budget: no more than 45 ms mean absolute load deviation (the
#: 500 Mcycle conduct_meeting operation makes perfect balance impossible)
FAIRNESS_LIMIT_S = 0.045


def main() -> None:
    workflow = healthcare_workflow()
    network = ministry_network(speed_bps=10e6)  # a modest ministry LAN
    model = CostModel(workflow, network)
    registry = algorithm_registry()

    print(f"search space: {len(network)}**{len(workflow)} = "
          f"{len(network) ** len(workflow):,} configurations\n")

    # 1. compare the suite
    table = TextTable(
        ["algorithm", "Texecute", "TimePenalty", "objective"],
        title="candidate deployments",
    )
    candidates = {}
    for name in SUITE:
        deployment = registry[name]().deploy(
            workflow, network, cost_model=model, rng=7
        )
        cost = model.evaluate(deployment)
        candidates[name] = (deployment, cost)
        table.add_row(
            [
                name,
                format_seconds(cost.execution_time),
                format_seconds(cost.time_penalty),
                format_seconds(cost.objective),
            ]
        )
    print(table)

    # 2. constraint-filtered selection
    constraints = ConstraintSet([MaxTimePenalty(FAIRNESS_LIMIT_S)])
    admissible = {
        name: (deployment, cost)
        for name, (deployment, cost) in candidates.items()
        if constraints.satisfied(cost)
    }
    if admissible:
        winner = min(
            admissible, key=lambda name: admissible[name][1].execution_time
        )
        print(
            f"\nfastest deployment with penalty <= "
            f"{format_seconds(FAIRNESS_LIMIT_S)}: {winner}"
        )
    else:
        # no candidate satisfies the constraint; fall back to the best
        # scalar objective and report the violation explicitly
        winner = min(
            candidates, key=lambda name: candidates[name][1].objective
        )
        violations = ConstraintSet(
            [MaxTimePenalty(FAIRNESS_LIMIT_S)]
        ).violations(candidates[winner][1])
        print(
            f"\nno candidate satisfies the fairness budget "
            f"({'; '.join(violations)}); falling back to the best "
            f"objective: {winner}"
        )
        admissible = {winner: candidates[winner]}

    # 3. validate with the simulator
    deployment, cost = admissible[winner]
    engine = SimulationEngine(workflow, network, deployment)
    measured = engine.expected_makespan(runs=500, rng=1)
    print(f"analytic expected completion: {format_seconds(cost.execution_time)}")
    print(f"simulated mean over 500 runs: {format_seconds(measured)}")

    single = SimulationEngine(
        workflow, network, deployment, server_concurrency=1
    ).expected_makespan(runs=500, rng=1)
    print(f"with single-core servers:     {format_seconds(single)} "
          f"(queueing the model ignores)")

    print("\nchosen mapping:")
    for server in network.server_names:
        operations = deployment.operations_on(server)
        print(f"  {server}: {', '.join(operations) or '-'}")


if __name__ == "__main__":
    main()
