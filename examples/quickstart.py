"""Quickstart: deploy a 19-operation workflow onto a 5-server bus.

Builds a Class C line workflow (Table 6 parameters), runs the paper's
winning algorithm (HeavyOps-LargeMsgs), and prints the two cost metrics
plus the per-server mapping. Run with::

    python examples/quickstart.py
"""

from repro import CostModel, HeavyOpsLargeMsgs, bus_network, line_workflow


def main() -> None:
    # a workflow of 19 chained web-service operations, costs and message
    # sizes sampled from the paper's Table 6 mixtures
    workflow = line_workflow(19, seed=7)

    # five provider servers (1-3 GHz) sharing a 100 Mbps bus
    network = bus_network([1e9, 2e9, 2e9, 3e9, 2e9], speed_bps=100e6)

    # deploy with the paper's overall winner
    mapping = HeavyOpsLargeMsgs().deploy(workflow, network)

    model = CostModel(workflow, network)
    cost = model.evaluate(mapping)

    print(f"workflow:        {workflow.name} ({len(workflow)} operations)")
    print(f"network:         {network.name} ({len(network)} servers)")
    print(f"execution time:  {cost.execution_time * 1e3:.2f} ms")
    print(f"time penalty:    {cost.time_penalty * 1e3:.2f} ms")
    print(f"objective:       {cost.objective * 1e3:.2f} ms")
    print()
    print("deployment:")
    for server in network.server_names:
        operations = mapping.operations_on(server)
        load = cost.loads[server]
        print(
            f"  {server} ({network.server(server).power_hz / 1e9:.0f} GHz, "
            f"load {load * 1e3:6.2f} ms): {', '.join(operations) or '-'}"
        )


if __name__ == "__main__":
    main()
