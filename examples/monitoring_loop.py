"""The §3.4 monitoring loop: observe, recalibrate, redeploy.

The paper's graph algorithms weight costs by XOR branch probabilities
obtained "by monitoring initial executions of the workflow". This script
plays that story end to end:

1. deploy a workflow whose annotated XOR probabilities are *wrong*
   (the designers guessed 50/50; production traffic is 95/5);
2. observe 1 000 simulated executions of the initial deployment and
   estimate the real branch frequencies;
3. recalibrate the workflow and redeploy with HeavyOps-LargeMsgs;
4. compare the *true* expected execution time before and after.

Run with::

    python examples/monitoring_loop.py
"""

from repro import (
    CostModel,
    Deployment,
    HeavyOpsLargeMsgs,
    NodeKind,
    WorkflowBuilder,
    bus_network,
)
from repro.experiments.reporting import format_seconds
from repro.workloads.messages import COMPLEX_MESSAGE, SIMPLE_MESSAGE
from repro.workloads.monitoring import (
    calibrated_workflow,
    observe_branch_frequencies,
)

TRUE_P_EXPRESS = 0.95  # what production traffic actually does


def claims_workflow(p_express: float, name: str):
    """An insurance-claims pipeline with one routing decision.

    The express path is light; the audit path is heavy *and* ships a
    complex document -- where the deployment decision actually matters.
    """
    builder = WorkflowBuilder(name, default_message_bits=SIMPLE_MESSAGE.size_bits)
    builder.task("intake", 5e6)
    builder.split(NodeKind.XOR_SPLIT, "route", 1e6)
    builder.branch(probability=p_express)
    builder.task("express_check", 20e6)
    builder.branch(probability=1.0 - p_express)
    builder.task("full_audit", 500e6, message_bits=COMPLEX_MESSAGE.size_bits)
    builder.task("legal_review", 200e6, message_bits=COMPLEX_MESSAGE.size_bits)
    builder.join("routed", 1e6)
    builder.task("settle", 10e6)
    return builder.build()


def main() -> None:
    network = bus_network([1e9, 2e9, 2e9], speed_bps=10e6)

    # the world as production sees it (ground truth for evaluation)
    truth = claims_workflow(TRUE_P_EXPRESS, "claims-truth")
    truth_model = CostModel(truth, network)

    # the world as the designers annotated it: 50/50
    guessed = claims_workflow(0.5, "claims-guessed")
    initial = HeavyOpsLargeMsgs().deploy(guessed, network)
    initial_cost = truth_model.evaluate(initial)
    print(
        f"deployment under guessed 50/50 probabilities: "
        f"true expected Texecute = {format_seconds(initial_cost.execution_time)}"
    )

    # monitor production (simulated with the true probabilities)
    frequencies = observe_branch_frequencies(
        truth, network, initial, runs=1_000, rng=7
    )
    observed = frequencies[("route", "express_check")]
    print(f"observed express-path frequency over 1000 runs: {observed:.1%}")

    # recalibrate the *guessed* model with the observations and redeploy
    calibrated = calibrated_workflow(guessed, frequencies, name="claims-calibrated")
    recalibrated = HeavyOpsLargeMsgs().deploy(calibrated, network)
    final_cost = truth_model.evaluate(recalibrated)
    print(
        f"deployment after recalibration:               "
        f"true expected Texecute = {format_seconds(final_cost.execution_time)}"
    )

    moved = initial.diff(recalibrated)
    improvement = 1.0 - final_cost.execution_time / initial_cost.execution_time
    print(
        f"\nrecalibration moved {len(moved)} operation(s) and changed the "
        f"true expected execution time by {improvement:+.1%}"
    )
    print(
        "why: under 50/50 the heavy audit path looks ~10x more frequent "
        "than it is, so the planner spreads it across servers and pays "
        "bus transfers for its complex documents; the observed 95/5 "
        "weights let it co-locate the rare heavy chain and keep the "
        "express path (the case that almost always happens) lean."
    )


if __name__ == "__main__":
    main()
