"""Message routing over a server network.

``Path(s, s')`` in Table 1 is the route a message follows between two
servers, and ``Tcomm`` sums transmission plus propagation time along that
route. On the paper's topologies routes are trivial (a bus connects every
pair directly, a line has a unique path), but the router works on any
connected network by picking the route that minimises total delivery time
for the given message size -- which can depend on the size: a large
message may prefer a longer path of fast links over a short path with a
slow hop.

The delivery time of a fixed path is affine in the message size::

    time(path, size) = sum(propagation) + size * sum(1/speed)

so a path that simultaneously minimises both coefficients is optimal for
*every* message size. The router detects that (very common) case on the
first query for a server pair and caches the two coefficients per
``(source, target)`` -- after which any message size is answered in O(1)
without touching Dijkstra and without growing the cache. Only genuinely
size-dependent pairs (a short slow path versus a long fast one, where
neither dominates) fall back to a bounded per-size cache.

Pair classification runs on the compiled kernel in
:mod:`repro.network.apsp` -- integer-indexed adjacency with precomputed
weights, networkx-faithful tie-breaking -- instead of per-query networkx
lambdas, and each pair is *built in canonical direction* (the endpoint
that comes first in the network's server order is the Dijkstra source)
so that lazily-filled, batch-compiled and incrementally-refreshed caches
hold bit-identical coefficients no matter which query arrived first.
:meth:`Router.compile_all_pairs` fills the whole table in ``2 * (S - 1)``
single-source passes (fewer when the dense fast path certifies rows of a
complete graph) instead of ``S * (S - 1)`` targeted pair builds.

The router is the *single owner of path selection*: every route-delay
consumer -- :class:`~repro.core.compiled.CompiledInstance`'s lazy
route table (and through it ``CostModel``/``MoveEvaluator``/
``TableScorer``/``BatchEvaluator``), the simulator, the fleet -- reads
paths and affine coefficients from here, over arbitrary weighted graphs
with heterogeneous per-link speeds and propagation delays. Nothing
downstream assumes a uniform bus or a line; those are just the easy
special cases.

Cache effectiveness is observable through :attr:`Router.hits` /
:attr:`Router.misses` / :attr:`Router.hit_rate`; recompute effort
through :attr:`Router.dijkstra_runs`, :attr:`Router.pairs_invalidated`,
:attr:`Router.pairs_recomputed` and :attr:`Router.last_invalidation`.
Link parameters may change at runtime (the fleet's link
failure/degradation events). Two invalidation hooks exist:

* :meth:`Router.clear_cache` -- the lazy hook: drop everything (and
  reset the hit/miss counters, so :attr:`hit_rate` never blends pre- and
  post-invalidation traffic); the next query re-runs Dijkstra against
  the current links.
* :meth:`Router.invalidate` -- the eager hook: recompute immediately.
  Given ``changed_links`` and ``worsening=True`` it drops *only* the
  pairs whose classification paths traverse a changed link (a strict
  worsening cannot make an untouched path sub-optimal) and recomputes
  just those; improvements or additions can re-route *any* pair, so
  they always fall back to a full recompile. That asymmetry is the
  core of link-scoped invalidation -- see DESIGN.md §15.

Between mutations the network is treated as frozen.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network import apsp
from repro.network.topology import ServerNetwork

__all__ = ["Router"]

#: Per-size fallback entries kept for size-*dependent* server pairs
#: before the oldest half is evicted (bounds memory on adversarial
#: workloads; size-independent pairs never consume these entries).
SIZED_CACHE_LIMIT = 4096


@dataclass(frozen=True)
class _Route:
    """One cached route: its path and affine time coefficients."""

    path: tuple[str, ...]
    propagation_s: float
    transfer_s_per_bit: float
    size_independent: bool

    def time(self, size_bits: float) -> float:
        return self.propagation_s + size_bits * self.transfer_s_per_bit


class Router:
    """Shortest-delivery-time routing with per-pair memoisation.

    Parameters
    ----------
    network:
        The server network to route over. The router snapshots the
        topology lazily on first query (into a
        :class:`repro.network.apsp.CompiledGraph`) and assumes links do
        not change until :meth:`clear_cache` or :meth:`invalidate`.

    Attributes
    ----------
    hits, misses:
        Cache counters over non-co-located :meth:`transmission_time` and
        :meth:`path` queries: a *hit* is answered from the per-pair (or
        per-size fallback) cache, a *miss* runs Dijkstra.
    dijkstra_runs:
        Cumulative single-source Dijkstra passes executed (lazy builds,
        batched compiles and scoped recomputes alike) -- the unit of
        routing work the benchmarks compare.
    pairs_invalidated, pairs_recomputed:
        Cumulative counts over :meth:`invalidate` calls: how many cached
        pairs were dropped, and how many were eagerly recomputed.
    last_invalidation:
        A summary dict of the most recent :meth:`invalidate` call
        (``mode``/``changed_links``/``pairs_invalidated``/
        ``pairs_recomputed``/``dijkstra_runs``, plus
        ``sized_pairs_dropped`` in scoped mode), or ``None``.
    """

    def __init__(self, network: ServerNetwork):
        self._network = network
        self._graph: apsp.CompiledGraph | None = None
        self._route_cache: dict[tuple[str, str], _Route] = {}
        self._sized_path_cache: dict[tuple[str, str, float], tuple[str, ...]] = {}
        # link-scoped invalidation reverse index: which cached pairs have
        # a classification path traversing a given link, and the inverse
        self._link_pairs: dict[frozenset[str], set[tuple[str, str]]] = {}
        self._pair_links: dict[tuple[str, str], frozenset[frozenset[str]]] = {}
        # raw (zero_path, large_path) per canonical pair, kept so a
        # change touching only one weight can reuse the other's pass
        self._pair_paths: dict[
            tuple[str, str], tuple[tuple[str, ...], tuple[str, ...]]
        ] = {}
        self._compiled_all = False
        self.hits = 0
        self.misses = 0
        self.dijkstra_runs = 0
        self.pairs_invalidated = 0
        self.pairs_recomputed = 0
        self.last_invalidation: dict[str, object] | None = None

    @property
    def network(self) -> ServerNetwork:
        """The network this router operates on."""
        return self._network

    @property
    def hit_rate(self) -> float:
        """Fraction of non-co-located queries served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------
    # compiled-graph plumbing
    # ------------------------------------------------------------------
    def _compiled_graph(self) -> apsp.CompiledGraph:
        graph = self._graph
        if graph is None:
            graph = self._graph = apsp.compile_graph(self._network)
        return graph

    def _coefficients(self, nodes: tuple[str, ...]) -> tuple[float, float]:
        """``(sum propagation, sum 1/speed)`` along *nodes*."""
        propagation = 0.0
        transfer = 0.0
        for a, b in zip(nodes, nodes[1:]):
            link = self._network.link(a, b)
            propagation += link.propagation_s
            transfer += 1.0 / link.speed_bps
        return propagation, transfer

    def _store(
        self, a: str, b: str, record: apsp.PairRoute
    ) -> None:
        """Cache one classified canonical pair (both directions)."""
        route = _Route(
            record.path,
            record.propagation_s,
            record.transfer_s_per_bit,
            record.size_independent,
        )
        self._route_cache[(a, b)] = route
        # symmetric network: the reverse path is optimal in reverse,
        # with the *same* coefficient floats
        self._route_cache[(b, a)] = _Route(
            route.path[::-1],
            route.propagation_s,
            route.transfer_s_per_bit,
            route.size_independent,
        )
        paths = (record.path,)
        if record.alt_path is not None:
            paths += (record.alt_path,)
        links = frozenset(
            frozenset(edge) for path in paths for edge in zip(path, path[1:])
        )
        self._pair_links[(a, b)] = links
        for link in links:
            self._link_pairs.setdefault(link, set()).add((a, b))
        self._pair_paths[(a, b)] = (record.zero_path, record.large_path)

    def _build_route(self, source: str, target: str) -> _Route:
        """Classify the (source, target) pair on its first query.

        Runs Dijkstra twice -- once by propagation delay (the size-0
        optimum) and once by transfer coefficient (the size-infinity
        optimum). When one of the two paths minimises *both* affine
        coefficients it is optimal for every message size and the pair is
        cached as size-independent; otherwise neither path dominates and
        per-size queries must fall back to Dijkstra.

        The pair is always *built* from its canonical direction (network
        server order), whichever way the query ran, so every code path
        that can populate the cache produces identical floats.
        """
        graph = self._compiled_graph()
        index = graph.index
        a, b = source, target
        if index[a] > index[b]:
            a, b = b, a
        try:
            path_zero = apsp.shortest_path(
                graph, index[a], index[b], apsp.WEIGHT_PROPAGATION
            )
            path_large = apsp.shortest_path(
                graph, index[a], index[b], apsp.WEIGHT_TRANSFER
            )
        except apsp.DisconnectedNetworkError:
            raise apsp.DisconnectedNetworkError(
                f"no route from {source!r} to {target!r} in "
                f"{self._network.name!r}"
            ) from None
        self.dijkstra_runs += 2
        self._store(a, b, apsp.classify_pair(graph, path_zero, path_large))
        return self._route_cache[(source, target)]

    def _sized_path(self, source: str, target: str, size_bits: float) -> tuple[str, ...]:
        """Per-size fallback for size-dependent pairs (bounded cache)."""
        key = (source, target, size_bits)
        cached = self._sized_path_cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        graph = self._compiled_graph()
        index = graph.index
        path = graph.to_names(
            apsp.shortest_sized_path(graph, index[source], index[target], size_bits)
        )
        self.dijkstra_runs += 1
        self._store_sized(key, path)
        return path

    def _store_sized(
        self, key: tuple[str, str, float], path: tuple[str, ...]
    ) -> None:
        """Cache one sized path (both directions, bounded)."""
        if len(self._sized_path_cache) >= SIZED_CACHE_LIMIT:
            # drop the oldest half; simple and O(1) amortised
            for stale in list(self._sized_path_cache)[: SIZED_CACHE_LIMIT // 2]:
                del self._sized_path_cache[stale]
        source, target, size_bits = key
        self._sized_path_cache[key] = path
        self._sized_path_cache[(target, source, size_bits)] = path[::-1]

    def _sized_time(self, path: tuple[str, ...], size_bits: float) -> float:
        propagation, transfer = self._coefficients(path)
        return propagation + size_bits * transfer

    # ------------------------------------------------------------------
    # public queries
    # ------------------------------------------------------------------
    def path(self, source: str, target: str, size_bits: float = 0.0) -> tuple[str, ...]:
        """``Path(s, s')``: server names along the fastest route.

        A message of zero size is routed by propagation delay alone (with
        hop count as the tie-breaker via Dijkstra's behaviour). Source and
        target equal yields the single-element path ``(source,)``.
        """
        self._network.server(source)
        self._network.server(target)
        if source == target:
            return (source,)
        route = self._route_cache.get((source, target))
        if route is None:
            self.misses += 1
            route = self._build_route(source, target)
        elif route.size_independent:
            self.hits += 1
        if route.size_independent:
            return route.path
        return self._sized_path(source, target, size_bits)

    def transmission_time(
        self, source: str, target: str, size_bits: float
    ) -> float:
        """``Ttrans`` along the best path: sum of per-link size/speed + Trefl.

        Zero when source and target coincide (co-located operations talk
        through local memory, the paper's key lever for saving cost).
        Size-independent pairs are answered from the cached affine
        coefficients in O(1) regardless of how many distinct message
        sizes are queried.
        """
        if source == target:
            return 0.0
        route = self._route_cache.get((source, target))
        if route is None:
            self._network.server(source)
            self._network.server(target)
            self.misses += 1
            route = self._build_route(source, target)
        elif route.size_independent:
            self.hits += 1
        if route.size_independent:
            return route.time(size_bits)
        path = self._sized_path(source, target, size_bits)
        return self._sized_time(path, size_bits)

    def transmission_times(
        self, pairs: list[tuple[str, str]], size_bits: float
    ) -> list[float]:
        """:meth:`transmission_time` for many pairs at one message size.

        Returns the delivery times in input order, byte-identical to
        per-pair calls made in the same order -- but the sized-Dijkstra
        fallbacks of size-dependent pairs are *grouped*: one full
        single-source sized pass per distinct source answers every
        queried target at once, instead of one targeted run per pair.
        (A full pass finalises exactly the paths the targeted runs
        would; the early break only stops sooner.) The hit/miss
        counters match the sequential calls too: a queued pair that an
        earlier queued pair's (reverse-direction) store would have
        answered is counted as the cache hit it would have been. This
        is the bulk entry point
        :class:`~repro.core.batch.BatchEvaluator` uses to fill and
        refresh its dense per-size delay matrices.
        """
        times: list[float] = [0.0] * len(pairs)
        queued: dict[str, list[tuple[int, str]]] = {}
        queued_keys: set[tuple[str, str]] = set()
        for slot, (source, target) in enumerate(pairs):
            if source == target:
                continue
            route = self._route_cache.get((source, target))
            if route is None:
                self._network.server(source)
                self._network.server(target)
                self.misses += 1
                route = self._build_route(source, target)
            elif route.size_independent:
                self.hits += 1
            if route.size_independent:
                times[slot] = route.time(size_bits)
                continue
            cached = self._sized_path_cache.get((source, target, size_bits))
            if cached is not None:
                self.hits += 1
                times[slot] = self._sized_time(cached, size_bits)
            else:
                # counters are settled here, in query order: if this
                # pair (either direction) is already queued, a
                # sequential call at this position would be answered
                # from the earlier miss's store -- a hit
                if (source, target) in queued_keys:
                    self.hits += 1
                else:
                    self.misses += 1
                    queued_keys.add((source, target))
                    queued_keys.add((target, source))
                queued.setdefault(source, []).append((slot, target))
        if not queued:
            return times
        graph = self._compiled_graph()
        index = graph.index
        for source, wanted in queued.items():  # insertion (= query) order
            pending: list[tuple[int, str]] = []
            for slot, target in wanted:
                # an earlier group's reverse-direction store may already
                # have answered this pair, exactly as a sequential query
                # after it would have hit the cache (already counted as
                # a hit at queue time above)
                path = self._sized_path_cache.get((source, target, size_bits))
                if path is not None:
                    times[slot] = self._sized_time(path, size_bits)
                else:
                    pending.append((slot, target))
            if not pending:
                continue
            paths = apsp.sized_source_paths(
                graph,
                index[source],
                [index[target] for _slot, target in pending],
                size_bits,
            )
            self.dijkstra_runs += 1
            for slot, target in pending:
                path = graph.to_names(paths[index[target]])
                self._store_sized((source, target, size_bits), path)
                times[slot] = self._sized_time(path, size_bits)
        return times

    def pair_coefficients(
        self, source: str, target: str
    ) -> tuple[float, float] | None:
        """``(propagation_s, transfer_s_per_bit)`` for a size-independent pair.

        The per-server-pair transmission-time table entry shared with the
        incremental move evaluator: ``time = a + b * size`` for every
        message size. Returns ``None`` for size-dependent pairs (the
        caller must fall back to :meth:`transmission_time`). Co-located
        pairs are ``(0.0, 0.0)``.
        """
        if source == target:
            return (0.0, 0.0)
        route = self._route_cache.get((source, target))
        if route is None:
            self._network.server(source)
            self._network.server(target)
            self.misses += 1
            route = self._build_route(source, target)
        if route.size_independent:
            return (route.propagation_s, route.transfer_s_per_bit)
        return None

    def cached_route(self, source: str, target: str) -> _Route | None:
        """The cached entry for a pair, without counting a query.

        The bulk-refill accessor: after :meth:`compile_all_pairs` or
        :meth:`invalidate` the compiled-instance route table reads every
        pair through here so eager refreshes do not distort the
        hit/miss telemetry of real pricing traffic.
        """
        return self._route_cache.get((source, target))

    def hop_count(self, source: str, target: str, size_bits: float = 0.0) -> int:
        """Number of links on the chosen route (0 when co-located)."""
        return len(self.path(source, target, size_bits)) - 1

    def cache_size(self) -> int:
        """Number of cached route entries (pairs plus sized fallbacks)."""
        return len(self._route_cache) + len(self._sized_path_cache)

    # ------------------------------------------------------------------
    # batched compilation and invalidation
    # ------------------------------------------------------------------
    def compile_all_pairs(self) -> int:
        """Eagerly classify every server pair; returns pairs compiled.

        One batched sweep: at most two single-source Dijkstra passes per
        source server (the dense direct-dominance certificate skips
        whole passes on complete graphs), instead of two *targeted* runs
        per pair. Already-cached pairs are kept -- their entries are
        bit-identical to what recompilation would produce, because every
        build path is canonical.
        """
        graph = self._compiled_graph()
        names = graph.names
        dense = apsp.dense_dominance(graph)
        compiled = 0
        for si in range(len(names) - 1):
            targets = [
                ti
                for ti in range(si + 1, len(names))
                if (names[si], names[ti]) not in self._route_cache
            ]
            if not targets:
                continue
            routes, runs = apsp.compile_source_routes(graph, si, targets, dense)
            self.dijkstra_runs += runs
            for ti, record in routes.items():
                self._store(names[si], names[ti], record)
                compiled += 1
        self._compiled_all = True
        return compiled

    def invalidate(
        self,
        changed_links: tuple[tuple[str, str], ...] | None = None,
        worsening: bool = False,
        speed_changed: bool = True,
        propagation_changed: bool = True,
    ) -> set[tuple[str, str]] | None:
        """Eagerly refresh routes after a link change.

        With *changed_links* (endpoint pairs) and ``worsening=True`` --
        a link failure, or a degrade that is slower and/or laggier --
        only the cached pairs whose classification paths traverse a
        changed link are dropped and recomputed: a path untouched by a
        strict worsening keeps exactly its coefficients and stays
        optimal, because every alternative only got worse. The returned
        set of canonical pairs is everything whose *route-derived state*
        may have changed: the recomputed pairs, plus any size-dependent
        pair whose cached per-size fallback path crossed a changed link
        -- a pair's per-size optimum can be a third Pareto path through
        the change while both classification paths avoid it, so its
        classification stands but consumers caching per-size prices
        (dense delay matrices, migration rows) must re-derive them.

        Anything else -- no link set, an improvement, a new link -- can
        re-route pairs whose cached paths *avoid* the change, so the
        whole table is dropped and recompiled via
        :meth:`compile_all_pairs`; ``None`` is returned meaning "all
        pairs". Hit/miss counters are preserved either way (this is
        maintenance, not traffic); the work done is recorded in
        :attr:`last_invalidation` and the cumulative counters.

        *speed_changed* / *propagation_changed* scope the recompute
        further: when a worsening touched only link speeds (a
        speed-only degrade), the propagation-weight graph is unchanged,
        so the affected pairs' stored min-propagation paths are exactly
        what a fresh pass would return and only the min-transfer passes
        re-run (and symmetrically). Leave both ``True`` -- the
        conservative default -- for failures or mixed degrades.
        """
        links: frozenset[frozenset[str]] | None = None
        if changed_links is not None:
            links = frozenset(frozenset(pair) for pair in changed_links)
        if links and worsening:
            reuse_weight: int | None = None
            if not propagation_changed and speed_changed:
                reuse_weight = apsp.WEIGHT_PROPAGATION
            elif not speed_changed and propagation_changed:
                reuse_weight = apsp.WEIGHT_TRANSFER
            return self._invalidate_scoped(links, reuse_weight)
        return self._invalidate_full(len(links) if links else 0)

    def _invalidate_full(self, changed: int) -> None:
        invalidated = len(self._route_cache) // 2
        runs_before = self.dijkstra_runs
        self._drop_all_routes()
        recomputed = self.compile_all_pairs()
        self.pairs_invalidated += invalidated
        self.pairs_recomputed += recomputed
        self.last_invalidation = {
            "mode": "full",
            "changed_links": changed,
            "pairs_invalidated": invalidated,
            "pairs_recomputed": recomputed,
            "dijkstra_runs": self.dijkstra_runs - runs_before,
        }
        return None

    def _invalidate_scoped(
        self,
        links: frozenset[frozenset[str]],
        reuse_weight: int | None = None,
    ) -> set[tuple[str, str]]:
        runs_before = self.dijkstra_runs
        affected: set[tuple[str, str]] = set()
        for link in links:
            affected |= self._link_pairs.get(link, set())
        reusable: dict[tuple[str, str], tuple[str, ...]] = {}
        for pair in affected:
            if reuse_weight is not None:
                reusable[pair] = self._pair_paths[pair][reuse_weight]
            self._pair_paths.pop(pair, None)
            for link in self._pair_links.pop(pair, ()):  # clean the index
                owners = self._link_pairs.get(link)
                if owners is not None:
                    owners.discard(pair)
                    if not owners:
                        del self._link_pairs[link]
            a, b = pair
            del self._route_cache[(a, b)]
            del self._route_cache[(b, a)]
        # sized fallbacks: only entries whose stored path crosses a
        # changed link can be stale under a strict worsening. Their
        # pairs are not necessarily in `affected` -- a size-dependent
        # pair's optimum at one size can be a third Pareto path through
        # a changed link while both classification paths avoid it -- so
        # the dropped pairs are reported alongside the recomputed ones,
        # or eager consumers would restore the dropped sizes' old (now
        # too optimistic) prices verbatim.
        sized_dropped: set[tuple[str, str]] = set()
        stale = [
            key
            for key, path in self._sized_path_cache.items()
            if any(frozenset(edge) in links for edge in zip(path, path[1:]))
        ]
        for key in stale:
            del self._sized_path_cache[key]
            sized_dropped.add(key[:2])
        # link weights changed: re-snapshot, then recompute the affected
        # pairs in batched per-source sweeps (canonical direction); when
        # only one weight changed the other's stored paths stand in for
        # its pass -- a deterministic rerun over an unchanged weight
        # graph could only reproduce them
        self._graph = None
        graph = self._compiled_graph()
        index = graph.index
        sized_only = {
            pair if index[pair[0]] < index[pair[1]] else pair[::-1]
            for pair in sized_dropped
        } - affected
        by_source: dict[int, list[int]] = {}
        for a, b in affected:
            by_source.setdefault(graph.index[a], []).append(graph.index[b])
        dense = apsp.dense_dominance(graph)
        for si in sorted(by_source):
            targets = sorted(by_source[si])
            reuse = None
            if reuse_weight is not None:
                source_name = graph.names[si]
                reuse = (
                    reuse_weight,
                    {
                        ti: tuple(
                            graph.index[name]
                            for name in reusable[
                                (source_name, graph.names[ti])
                            ]
                        )
                        for ti in targets
                    },
                )
            routes, runs = apsp.compile_source_routes(
                graph, si, targets, dense, reuse
            )
            self.dijkstra_runs += runs
            for ti, record in routes.items():
                self._store(graph.names[si], graph.names[ti], record)
        self.pairs_invalidated += len(affected)
        self.pairs_recomputed += len(affected)
        self.last_invalidation = {
            "mode": "scoped",
            "changed_links": len(links),
            "pairs_invalidated": len(affected),
            "pairs_recomputed": len(affected),
            "sized_pairs_dropped": len(sized_only),
            "dijkstra_runs": self.dijkstra_runs - runs_before,
        }
        return affected | sized_only

    def _drop_all_routes(self) -> None:
        self._route_cache.clear()
        self._sized_path_cache.clear()
        self._link_pairs.clear()
        self._pair_links.clear()
        self._pair_paths.clear()
        self._graph = None
        self._compiled_all = False

    def clear_cache(self) -> None:
        """Drop memoised routes: the lazy invalidation hook.

        Call after mutating the network's links (or servers); the next
        query re-runs Dijkstra against the current topology. The
        hit/miss counters reset with the cache -- a post-invalidation
        :attr:`hit_rate` describes post-invalidation traffic only, never
        a blend (callers that want lifetime totals must accumulate
        before clearing). The cumulative work counters
        (:attr:`dijkstra_runs` and friends) are *not* reset; use
        :meth:`reset_counters` for a full telemetry reset. Consumers
        holding a :class:`~repro.core.compiled.CompiledInstance` should
        call its ``invalidate_routes`` instead, which clears this cache
        *and* resets the compiled route-delay table reading through it.
        """
        self._drop_all_routes()
        self.hits = 0
        self.misses = 0

    def reset_counters(self) -> None:
        """Zero every telemetry counter (caches are left alone)."""
        self.hits = 0
        self.misses = 0
        self.dijkstra_runs = 0
        self.pairs_invalidated = 0
        self.pairs_recomputed = 0
        self.last_invalidation = None
