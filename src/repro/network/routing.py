"""Message routing over a server network.

``Path(s, s')`` in Table 1 is the route a message follows between two
servers, and ``Tcomm`` sums transmission plus propagation time along that
route. On the paper's topologies routes are trivial (a bus connects every
pair directly, a line has a unique path), but the router works on any
connected network by picking the route that minimises total delivery time
for the given message size -- which can depend on the size: a large
message may prefer a longer path of fast links over a short path with a
slow hop.

Results are memoised per ``(source, target, size)`` triple; the cache is
invalidated by constructing a new router (networks are treated as frozen
once routing starts).
"""

from __future__ import annotations

import networkx as nx

from repro.exceptions import DisconnectedNetworkError, UnknownServerError
from repro.network.topology import ServerNetwork

__all__ = ["Router"]


class Router:
    """Shortest-delivery-time routing with memoisation.

    Parameters
    ----------
    network:
        The server network to route over. The router snapshots nothing --
        it reads the network lazily -- but assumes links do not change
        after the first query.
    """

    def __init__(self, network: ServerNetwork):
        self._network = network
        self._path_cache: dict[tuple[str, str, float], tuple[str, ...]] = {}
        self._time_cache: dict[tuple[str, str, float], float] = {}

    @property
    def network(self) -> ServerNetwork:
        """The network this router operates on."""
        return self._network

    def _link_time(self, a: str, b: str, size_bits: float) -> float:
        link = self._network.link(a, b)
        return size_bits / link.speed_bps + link.propagation_s

    def path(self, source: str, target: str, size_bits: float = 0.0) -> tuple[str, ...]:
        """``Path(s, s')``: server names along the fastest route.

        A message of zero size is routed by propagation delay alone (with
        hop count as the tie-breaker via Dijkstra's behaviour). Source and
        target equal yields the single-element path ``(source,)``.
        """
        self._network.server(source)
        self._network.server(target)
        if source == target:
            return (source,)
        key = (source, target, size_bits)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        try:
            nodes = nx.dijkstra_path(
                self._network.graph,
                source,
                target,
                weight=lambda a, b, _attrs: self._link_time(a, b, size_bits),
            )
        except nx.NetworkXNoPath:
            raise DisconnectedNetworkError(
                f"no route from {source!r} to {target!r} in "
                f"{self._network.name!r}"
            ) from None
        except nx.NodeNotFound as exc:  # pragma: no cover - guarded above
            raise UnknownServerError(str(exc)) from None
        path = tuple(nodes)
        self._path_cache[key] = path
        # symmetric network: the reverse path is optimal in reverse
        self._path_cache[(target, source, size_bits)] = path[::-1]
        return path

    def transmission_time(
        self, source: str, target: str, size_bits: float
    ) -> float:
        """``Ttrans`` along the best path: sum of per-link size/speed + Trefl.

        Zero when source and target coincide (co-located operations talk
        through local memory, the paper's key lever for saving cost).
        """
        if source == target:
            return 0.0
        key = (source, target, size_bits)
        cached = self._time_cache.get(key)
        if cached is not None:
            return cached
        route = self.path(source, target, size_bits)
        total = sum(
            self._link_time(a, b, size_bits) for a, b in zip(route, route[1:])
        )
        self._time_cache[key] = total
        self._time_cache[(target, source, size_bits)] = total
        return total

    def hop_count(self, source: str, target: str, size_bits: float = 0.0) -> int:
        """Number of links on the chosen route (0 when co-located)."""
        return len(self.path(source, target, size_bits)) - 1

    def clear_cache(self) -> None:
        """Drop memoised paths and times (call after mutating the network)."""
        self._path_cache.clear()
        self._time_cache.clear()
