"""Message routing over a server network.

``Path(s, s')`` in Table 1 is the route a message follows between two
servers, and ``Tcomm`` sums transmission plus propagation time along that
route. On the paper's topologies routes are trivial (a bus connects every
pair directly, a line has a unique path), but the router works on any
connected network by picking the route that minimises total delivery time
for the given message size -- which can depend on the size: a large
message may prefer a longer path of fast links over a short path with a
slow hop.

The delivery time of a fixed path is affine in the message size::

    time(path, size) = sum(propagation) + size * sum(1/speed)

so a path that simultaneously minimises both coefficients is optimal for
*every* message size. The router detects that (very common) case on the
first query for a server pair and caches the two coefficients per
``(source, target)`` -- after which any message size is answered in O(1)
without touching Dijkstra and without growing the cache. Only genuinely
size-dependent pairs (a short slow path versus a long fast one, where
neither dominates) fall back to a bounded per-size cache.

The router is the *single owner of path selection*: every route-delay
consumer -- :class:`~repro.core.compiled.CompiledInstance`'s lazy
route table (and through it ``CostModel``/``MoveEvaluator``/
``TableScorer``/``BatchEvaluator``), the simulator, the fleet -- reads
paths and affine coefficients from here, over arbitrary weighted graphs
with heterogeneous per-link speeds and propagation delays. Nothing
downstream assumes a uniform bus or a line; those are just the easy
special cases.

Cache effectiveness is observable through :attr:`Router.hits` /
:attr:`Router.misses` / :attr:`Router.hit_rate`. Link parameters may
change at runtime (the fleet's link failure/degradation events):
:meth:`Router.clear_cache` is the invalidation hook -- call it (or let
:meth:`repro.core.compiled.CompiledInstance.invalidate_routes` call it)
after mutating the network, and the next query re-runs Dijkstra against
the current links. Between mutations the network is treated as frozen.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.exceptions import DisconnectedNetworkError, UnknownServerError
from repro.network.topology import ServerNetwork

__all__ = ["Router"]

#: Per-size fallback entries kept for size-*dependent* server pairs
#: before the oldest half is evicted (bounds memory on adversarial
#: workloads; size-independent pairs never consume these entries).
SIZED_CACHE_LIMIT = 4096


@dataclass(frozen=True)
class _Route:
    """One cached route: its path and affine time coefficients."""

    path: tuple[str, ...]
    propagation_s: float
    transfer_s_per_bit: float
    size_independent: bool

    def time(self, size_bits: float) -> float:
        return self.propagation_s + size_bits * self.transfer_s_per_bit


class Router:
    """Shortest-delivery-time routing with per-pair memoisation.

    Parameters
    ----------
    network:
        The server network to route over. The router snapshots nothing --
        it reads the network lazily -- but assumes links do not change
        after the first query.

    Attributes
    ----------
    hits, misses:
        Cache counters over non-co-located :meth:`transmission_time` and
        :meth:`path` queries: a *hit* is answered from the per-pair (or
        per-size fallback) cache, a *miss* runs Dijkstra.
    """

    def __init__(self, network: ServerNetwork):
        self._network = network
        self._route_cache: dict[tuple[str, str], _Route] = {}
        self._sized_path_cache: dict[tuple[str, str, float], tuple[str, ...]] = {}
        self.hits = 0
        self.misses = 0

    @property
    def network(self) -> ServerNetwork:
        """The network this router operates on."""
        return self._network

    @property
    def hit_rate(self) -> float:
        """Fraction of non-co-located queries served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------
    # path costs
    # ------------------------------------------------------------------
    def _link_time(self, a: str, b: str, size_bits: float) -> float:
        link = self._network.link(a, b)
        return size_bits / link.speed_bps + link.propagation_s

    def _coefficients(self, nodes: tuple[str, ...]) -> tuple[float, float]:
        """``(sum propagation, sum 1/speed)`` along *nodes*."""
        propagation = 0.0
        transfer = 0.0
        for a, b in zip(nodes, nodes[1:]):
            link = self._network.link(a, b)
            propagation += link.propagation_s
            transfer += 1.0 / link.speed_bps
        return propagation, transfer

    def _dijkstra(self, source: str, target: str, size_bits: float) -> tuple[str, ...]:
        try:
            nodes = nx.dijkstra_path(
                self._network.graph,
                source,
                target,
                weight=lambda a, b, _attrs: self._link_time(a, b, size_bits),
            )
        except nx.NetworkXNoPath:
            raise DisconnectedNetworkError(
                f"no route from {source!r} to {target!r} in "
                f"{self._network.name!r}"
            ) from None
        except nx.NodeNotFound as exc:  # pragma: no cover - guarded above
            raise UnknownServerError(str(exc)) from None
        return tuple(nodes)

    def _dijkstra_by_transfer(self, source: str, target: str) -> tuple[str, ...]:
        """Fastest route for an arbitrarily large message (1/speed weights)."""
        try:
            nodes = nx.dijkstra_path(
                self._network.graph,
                source,
                target,
                weight=lambda a, b, _attrs: 1.0 / self._network.link(a, b).speed_bps,
            )
        except nx.NetworkXNoPath:  # pragma: no cover - caught by size-0 pass
            raise DisconnectedNetworkError(
                f"no route from {source!r} to {target!r} in "
                f"{self._network.name!r}"
            ) from None
        return tuple(nodes)

    def _build_route(self, source: str, target: str) -> _Route:
        """Classify the (source, target) pair on its first query.

        Runs Dijkstra twice -- once by propagation delay (the size-0
        optimum) and once by transfer coefficient (the size-infinity
        optimum). When one of the two paths minimises *both* affine
        coefficients it is optimal for every message size and the pair is
        cached as size-independent; otherwise neither path dominates and
        per-size queries must fall back to Dijkstra.
        """
        path_zero = self._dijkstra(source, target, 0.0)
        prop_zero, transfer_zero = self._coefficients(path_zero)
        path_large = self._dijkstra_by_transfer(source, target)
        prop_large, transfer_large = self._coefficients(path_large)
        if transfer_zero <= transfer_large:
            # the min-propagation path also has the minimal transfer
            # coefficient: it dominates every alternative at every size
            route = _Route(path_zero, prop_zero, transfer_zero, True)
        elif prop_large <= prop_zero:
            # the min-transfer path is also propagation-optimal
            route = _Route(path_large, prop_large, transfer_large, True)
        else:
            # genuinely size-dependent: record the size-0 optimum as the
            # representative path but answer sized queries individually
            route = _Route(path_zero, prop_zero, transfer_zero, False)
        self._route_cache[(source, target)] = route
        # symmetric network: the reverse path is optimal in reverse
        self._route_cache[(target, source)] = _Route(
            route.path[::-1],
            route.propagation_s,
            route.transfer_s_per_bit,
            route.size_independent,
        )
        return route

    def _sized_path(self, source: str, target: str, size_bits: float) -> tuple[str, ...]:
        """Per-size fallback for size-dependent pairs (bounded cache)."""
        key = (source, target, size_bits)
        cached = self._sized_path_cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        path = self._dijkstra(source, target, size_bits)
        if len(self._sized_path_cache) >= SIZED_CACHE_LIMIT:
            # drop the oldest half; simple and O(1) amortised
            for stale in list(self._sized_path_cache)[: SIZED_CACHE_LIMIT // 2]:
                del self._sized_path_cache[stale]
        self._sized_path_cache[key] = path
        self._sized_path_cache[(target, source, size_bits)] = path[::-1]
        return path

    # ------------------------------------------------------------------
    # public queries
    # ------------------------------------------------------------------
    def path(self, source: str, target: str, size_bits: float = 0.0) -> tuple[str, ...]:
        """``Path(s, s')``: server names along the fastest route.

        A message of zero size is routed by propagation delay alone (with
        hop count as the tie-breaker via Dijkstra's behaviour). Source and
        target equal yields the single-element path ``(source,)``.
        """
        self._network.server(source)
        self._network.server(target)
        if source == target:
            return (source,)
        route = self._route_cache.get((source, target))
        if route is None:
            self.misses += 1
            route = self._build_route(source, target)
        elif route.size_independent:
            self.hits += 1
        if route.size_independent:
            return route.path
        return self._sized_path(source, target, size_bits)

    def transmission_time(
        self, source: str, target: str, size_bits: float
    ) -> float:
        """``Ttrans`` along the best path: sum of per-link size/speed + Trefl.

        Zero when source and target coincide (co-located operations talk
        through local memory, the paper's key lever for saving cost).
        Size-independent pairs are answered from the cached affine
        coefficients in O(1) regardless of how many distinct message
        sizes are queried.
        """
        if source == target:
            return 0.0
        route = self._route_cache.get((source, target))
        if route is None:
            self._network.server(source)
            self._network.server(target)
            self.misses += 1
            route = self._build_route(source, target)
        elif route.size_independent:
            self.hits += 1
        if route.size_independent:
            return route.time(size_bits)
        path = self._sized_path(source, target, size_bits)
        propagation, transfer = self._coefficients(path)
        return propagation + size_bits * transfer

    def pair_coefficients(
        self, source: str, target: str
    ) -> tuple[float, float] | None:
        """``(propagation_s, transfer_s_per_bit)`` for a size-independent pair.

        The per-server-pair transmission-time table entry shared with the
        incremental move evaluator: ``time = a + b * size`` for every
        message size. Returns ``None`` for size-dependent pairs (the
        caller must fall back to :meth:`transmission_time`). Co-located
        pairs are ``(0.0, 0.0)``.
        """
        if source == target:
            return (0.0, 0.0)
        route = self._route_cache.get((source, target))
        if route is None:
            self._network.server(source)
            self._network.server(target)
            self.misses += 1
            route = self._build_route(source, target)
        if route.size_independent:
            return (route.propagation_s, route.transfer_s_per_bit)
        return None

    def hop_count(self, source: str, target: str, size_bits: float = 0.0) -> int:
        """Number of links on the chosen route (0 when co-located)."""
        return len(self.path(source, target, size_bits)) - 1

    def cache_size(self) -> int:
        """Number of cached route entries (pairs plus sized fallbacks)."""
        return len(self._route_cache) + len(self._sized_path_cache)

    def clear_cache(self) -> None:
        """Drop memoised routes: the invalidation hook.

        Call after mutating the network's links (or servers); the next
        query re-runs Dijkstra against the current topology. Consumers
        holding a :class:`~repro.core.compiled.CompiledInstance` should
        call its ``invalidate_routes`` instead, which clears this cache
        *and* resets the compiled route-delay table reading through it.
        """
        self._route_cache.clear()
        self._sized_path_cache.clear()
