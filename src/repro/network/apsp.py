"""Batched all-pairs shortest-route compilation over a server network.

The :class:`~repro.network.routing.Router` classifies each server pair
by running Dijkstra twice -- once by propagation delay (the size-0
optimum) and once by transfer coefficient (the size-infinity optimum).
Resolved lazily that costs ``2 * S * (S - 1)`` *targeted* runs to fill
a full route table, each one driven through a networkx Python-lambda
weight callback. This module compiles the same answers in ``2 * S``
single-source passes over a prebuilt integer-indexed adjacency snapshot
with precomputed ``(propagation_s, 1/speed_bps)`` edge weights -- the
min-propagation pass, the min-transfer pass and the dominance
classification for every target of a source happen in one sweep.

**Exactness contract.** Every coefficient and representative path is
*byte-identical* to what the per-pair lazy path produces, because the
inner loop replicates networkx's ``_dijkstra_multisource`` semantics
exactly:

* the fringe holds ``(distance, tie_counter, node)`` triples, so ties
  on equal distances resolve by push order;
* neighbours relax in graph adjacency (edge-insertion) order;
* a node's path updates only on a *strict* distance improvement
  (``vu_dist < seen[u]``), never on equality;
* distances accumulate as the left fold ``dist[v] + w`` and path
  coefficients as the left-to-right sums of
  :meth:`Router._coefficients`, so every float is produced by the same
  IEEE-754 operation sequence.

A full single-source pass finalises, for each target, the exact path a
targeted run (which merely breaks early at the target's pop) would
return -- so batching changes *which* queries run, never their answers.

**Dense fast path.** Geo-region factories build *complete* graphs where
almost every shortest route is the direct link. When NumPy is available
(gated exactly like :mod:`repro.core.batch`: optional import, silent
fallback to the pure-Python passes) the per-source *direct-dominance*
check ``W[i, j] <= min_k(W[i, k] + W[k, j])`` -- evaluated in the same
float64 arithmetic Dijkstra's relaxations would use -- proves for a
whole row at once that Dijkstra would keep every direct single-link
path: the source relaxes all neighbours first, and no later relaxation
``dist[v] + W[v, u]`` can *strictly* undercut the direct ``W[i, u]``.
Rows that pass (for a given weight) skip their Dijkstra run entirely
and fill direct routes whose coefficients are single-link reads -- no
sums, hence trivially byte-exact. Rows that fail fall back to the
ordinary pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from itertools import count

from repro.exceptions import DisconnectedNetworkError
from repro.network.topology import ServerNetwork

__all__ = [
    "CompiledGraph",
    "PairRoute",
    "compile_graph",
    "compile_source_routes",
    "shortest_path",
    "shortest_sized_path",
]

#: Weight selectors of the two classification passes.
WEIGHT_PROPAGATION = 0
WEIGHT_TRANSFER = 1


def _numpy_or_none():
    """NumPy when importable, else ``None`` (same gate as repro.core.batch)."""
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is a declared dep
        return None
    return numpy


@dataclass(frozen=True)
class PairRoute:
    """One classified server pair, as the router caches it.

    ``path`` is the representative route (the size-0 optimum unless the
    min-transfer path dominates), ``alt_path`` the *other*
    classification path when it differs -- a size-dependent pair's
    optimum can flip to either, so link-scoped invalidation must watch
    the links of both. ``zero_path`` / ``large_path`` retain the two
    raw classification paths: when a later link change touches only one
    of the two weights, the unchanged weight's pass would reproduce its
    stored path exactly, so a scoped recompute can reuse it instead of
    re-running that pass (see ``compile_source_routes``'s *reuse*).
    """

    path: tuple[str, ...]
    propagation_s: float
    transfer_s_per_bit: float
    size_independent: bool
    alt_path: tuple[str, ...] | None
    zero_path: tuple[str, ...]
    large_path: tuple[str, ...]


class CompiledGraph:
    """An integer-indexed adjacency snapshot of one network's links.

    Rebuilt (cheaply, O(S + L)) whenever link parameters change; between
    rebuilds every Dijkstra pass runs over flat lists with precomputed
    weights instead of networkx dicts behind a lambda.

    Attributes
    ----------
    names, index:
        Server names in network (insertion) order and the inverse map.
    adjacency:
        ``adjacency[v] = [(u, propagation_s, inv_speed, speed_bps), ...]``
        in the *networkx adjacency order* of the underlying graph --
        the order the lazy per-pair path relaxed neighbours in, which
        the tie-counter semantics make observable.
    """

    __slots__ = ("network", "names", "index", "adjacency")

    def __init__(self, network: ServerNetwork):
        self.network = network
        self.names: tuple[str, ...] = network.server_names
        self.index: dict[str, int] = {
            name: i for i, name in enumerate(self.names)
        }
        graph = network.graph
        index = self.index
        adjacency: list[list[tuple[int, float, float, float]]] = []
        for name in self.names:
            row: list[tuple[int, float, float, float]] = []
            for neighbor in graph.adj[name]:
                link = network.link(name, neighbor)
                row.append(
                    (
                        index[neighbor],
                        link.propagation_s,
                        1.0 / link.speed_bps,
                        link.speed_bps,
                    )
                )
            adjacency.append(row)
        self.adjacency = adjacency

    def __len__(self) -> int:
        return len(self.names)

    def is_complete(self) -> bool:
        """True when every server pair is directly linked."""
        n = len(self.names)
        return all(len(row) == n - 1 for row in self.adjacency)

    def coefficients(
        self, path: tuple[int, ...]
    ) -> tuple[float, float]:
        """``(sum propagation, sum 1/speed)`` along *path* (index form).

        The same left-to-right fold as
        :meth:`repro.network.routing.Router._coefficients`, reading the
        precomputed per-edge weights -- identical floats.
        """
        propagation = 0.0
        transfer = 0.0
        adjacency = self.adjacency
        for a, b in zip(path, path[1:]):
            for u, prop, inv, _speed in adjacency[a]:
                if u == b:
                    propagation += prop
                    transfer += inv
                    break
        return propagation, transfer

    def to_names(self, path: tuple[int, ...]) -> tuple[str, ...]:
        """Translate an index path into server names."""
        names = self.names
        return tuple(names[i] for i in path)


def compile_graph(network: ServerNetwork) -> CompiledGraph:
    """Snapshot *network*'s links into a :class:`CompiledGraph`."""
    return CompiledGraph(network)


def _no_route(graph: CompiledGraph, source: int, target: int) -> Exception:
    return DisconnectedNetworkError(
        f"no route from {graph.names[source]!r} to "
        f"{graph.names[target]!r} in {graph.network.name!r}"
    )


def _dijkstra(
    graph: CompiledGraph,
    source: int,
    weight: int,
    target: int | None = None,
    size_bits: float | None = None,
) -> tuple[list[float | None], list[int]]:
    """One networkx-faithful Dijkstra pass; ``(dist, parent)`` arrays.

    *weight* selects the precomputed edge weight
    (:data:`WEIGHT_PROPAGATION` / :data:`WEIGHT_TRANSFER`); when
    *size_bits* is given the weight is instead the sized delivery time
    ``size_bits / speed_bps + propagation_s``, computed with exactly the
    float operations the lazy router's sized lambda used. A *target*
    stops the pass at the target's pop (the targeted-query fast path);
    without one the pass finalises every reachable node.

    The semantics mirror networkx ``_dijkstra_multisource`` operation
    for operation: the fringe is a heap of ``(dist, counter, node)``
    (ties resolve by push order), neighbours relax in adjacency order,
    and parent/path state updates only on strict improvement -- so
    reconstructed paths match ``nx.dijkstra_path`` byte for byte.
    """
    n = len(graph.names)
    dist: list[float | None] = [None] * n
    seen: list[float | None] = [None] * n
    parent = [-1] * n
    counter = count()
    fringe: list[tuple[float, int, int]] = [(0, next(counter), source)]
    seen[source] = 0
    adjacency = graph.adjacency
    sized = size_bits is not None
    while fringe:
        d, _, v = heappop(fringe)
        if dist[v] is not None:
            continue  # stale heap entry: already finalised
        dist[v] = d
        if v == target:
            break
        for edge in adjacency[v]:
            u = edge[0]
            if sized:
                cost = size_bits / edge[3] + edge[1]
            else:
                cost = edge[1 + weight]
            vu_dist = d + cost
            if dist[u] is not None:
                continue
            best = seen[u]
            if best is None or vu_dist < best:
                seen[u] = vu_dist
                heappush(fringe, (vu_dist, next(counter), u))
                parent[u] = v
    return dist, parent


def _reconstruct(parent: list[int], source: int, target: int) -> tuple[int, ...]:
    """The finalised path ``source -> target`` from parent pointers."""
    path = [target]
    node = target
    while node != source:
        node = parent[node]
        path.append(node)
    path.reverse()
    return tuple(path)


def shortest_path(
    graph: CompiledGraph, source: int, target: int, weight: int
) -> tuple[int, ...]:
    """The targeted single-pair query (early-stop Dijkstra)."""
    dist, parent = _dijkstra(graph, source, weight, target=target)
    if dist[target] is None:
        raise _no_route(graph, source, target)
    return _reconstruct(parent, source, target)


def shortest_sized_path(
    graph: CompiledGraph, source: int, target: int, size_bits: float
) -> tuple[int, ...]:
    """The per-size fallback query for genuinely size-dependent pairs."""
    dist, parent = _dijkstra(
        graph, source, WEIGHT_PROPAGATION, target=target, size_bits=size_bits
    )
    if dist[target] is None:
        raise _no_route(graph, source, target)
    return _reconstruct(parent, source, target)


def sized_source_paths(
    graph: CompiledGraph, source: int, targets, size_bits: float
) -> dict[int, tuple[int, ...]]:
    """Sized shortest paths from one source to many targets: ONE pass.

    The batched form of :func:`shortest_sized_path`: a single full
    sized Dijkstra pass answers every target. Each returned path is
    byte-identical to its targeted query -- the early break only stops
    the pass sooner, it never changes what was already finalised.
    """
    dist, parent = _dijkstra(
        graph, source, WEIGHT_PROPAGATION, size_bits=size_bits
    )
    paths: dict[int, tuple[int, ...]] = {}
    for target in targets:
        if dist[target] is None:
            raise _no_route(graph, source, target)
        paths[target] = _reconstruct(parent, source, target)
    return paths


def classify_pair(
    graph: CompiledGraph,
    path_zero: tuple[int, ...],
    path_large: tuple[int, ...],
) -> PairRoute:
    """The pinned dominance classification of one server pair.

    Byte-identical to ``Router._build_route``'s branch order, which is
    therefore the frozen tie-break contract:

    1. ``transfer_zero <= transfer_large``: the min-propagation path
       also minimises the transfer coefficient -- size-independent,
       coefficients from ``path_zero``.
    2. else ``prop_large <= prop_zero``: the min-transfer path is also
       propagation-optimal -- size-independent, coefficients from
       ``path_large``.
    3. else genuinely size-dependent: ``path_zero`` is the
       representative, per-size queries fall back to Dijkstra.
    """
    prop_zero, transfer_zero = graph.coefficients(path_zero)
    prop_large, transfer_large = graph.coefficients(path_large)
    zero_names = graph.to_names(path_zero)
    large_names = graph.to_names(path_large)
    if transfer_zero <= transfer_large:
        return PairRoute(
            zero_names, prop_zero, transfer_zero, True, None,
            zero_names, large_names,
        )
    if prop_large <= prop_zero:
        return PairRoute(
            large_names, prop_large, transfer_large, True, None,
            zero_names, large_names,
        )
    alt = large_names if large_names != zero_names else None
    return PairRoute(
        zero_names, prop_zero, transfer_zero, False, alt,
        zero_names, large_names,
    )


class _DenseDominance:
    """The NumPy direct-dominance fast path over a complete graph.

    For each classification weight a ``(S, S)`` matrix ``W`` of direct
    link weights is built; a *row* ``i`` passes when
    ``W[i, j] <= min_k(W[i, k] + W[k, j])`` for every ``j`` -- evaluated
    in float64, i.e. with exactly the two-term sums Dijkstra's
    relaxations would compare. A passing row certifies that the pass
    from source ``i`` finalises every target at its direct single-link
    path: the source relaxes all ``S - 1`` neighbours first (complete
    graph), so each target's tentative distance starts at ``W[i, j]``
    with parent ``i``, and the dominance inequality shows no later
    relaxation is a *strict* improvement -- the update rule never
    replaces on equality.
    """

    def __init__(self, graph: CompiledGraph, np):
        n = len(graph)
        prop = np.zeros((n, n))
        trans = np.zeros((n, n))
        for v, row in enumerate(graph.adjacency):
            for u, p, inv, _speed in row:
                prop[v, u] = p
                trans[v, u] = inv
        self.ok_rows = (
            self._dominant_rows(prop, np),
            self._dominant_rows(trans, np),
        )
        self.dense_rows = int(self.ok_rows[0].sum() + self.ok_rows[1].sum())

    @staticmethod
    def _dominant_rows(weights, np):
        # two_hop[i, j] = min_k (W[i, k] + W[k, j]); k = i and k = j are
        # harmless (W[i, i] = 0 makes them the direct weight itself)
        two_hop = (weights[:, :, None] + weights[None, :, :]).min(axis=1)
        return (weights <= two_hop).all(axis=1)

    def row_ok(self, source: int, weight: int) -> bool:
        return bool(self.ok_rows[weight][source])


def dense_dominance(graph: CompiledGraph) -> "_DenseDominance | None":
    """The dense fast-path certificate, or ``None`` when unavailable.

    Requires NumPy *and* a complete graph (the geo-factory shape); any
    other topology -- or a NumPy-less interpreter -- routes every source
    through the ordinary passes. The certificate is per ``(source,
    weight)``: mixed graphs run Dijkstra only for the rows that need it.
    """
    if not graph.is_complete() or len(graph) < 3:
        return None
    np = _numpy_or_none()
    if np is None:
        return None
    return _DenseDominance(graph, np)


def compile_source_routes(
    graph: CompiledGraph,
    source: int,
    targets,
    dense: "_DenseDominance | None" = None,
    reuse: "tuple[int, dict[int, tuple[int, ...]]] | None" = None,
) -> tuple[dict[int, PairRoute], int]:
    """Classify every ``(source, target)`` pair in one batched sweep.

    Runs the min-propagation and min-transfer passes for *source* (or
    skips either via the *dense* direct-dominance certificate) and
    classifies each requested target. Returns ``(routes, dijkstra_runs)``
    where *routes* maps target index to its :class:`PairRoute` and
    *dijkstra_runs* counts the actual passes executed (0, 1 or 2).

    *reuse* -- ``(weight, {target: index_path})`` -- skips that weight's
    pass and substitutes the given per-target paths. Sound only when the
    caller knows that weight's graph is unchanged since the paths were
    computed (e.g. a speed-only degrade leaves every propagation weight
    and the adjacency intact), in which case a fresh pass -- being
    deterministic on identical inputs -- would reproduce them exactly.
    """
    runs = 0
    parents: list[list[int] | None] = [None, None]
    dists: list[list[float | None] | None] = [None, None]
    direct = [False, False]
    for weight in (WEIGHT_PROPAGATION, WEIGHT_TRANSFER):
        if reuse is not None and reuse[0] == weight:
            continue
        if dense is not None and dense.row_ok(source, weight):
            direct[weight] = True
            continue
        dist, parent = _dijkstra(graph, source, weight)
        dists[weight], parents[weight] = dist, parent
        runs += 1

    def pass_path(weight: int, target: int) -> tuple[int, ...]:
        if reuse is not None and reuse[0] == weight:
            return reuse[1][target]
        if direct[weight]:
            return (source, target)
        if dists[weight][target] is None:
            raise _no_route(graph, source, target)
        return _reconstruct(parents[weight], source, target)

    routes: dict[int, PairRoute] = {}
    for target in targets:
        if target == source:
            continue
        path_zero = pass_path(WEIGHT_PROPAGATION, target)
        path_large = pass_path(WEIGHT_TRANSFER, target)
        routes[target] = classify_pair(graph, path_zero, path_large)
    return routes, runs
