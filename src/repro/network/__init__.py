"""Server-network model: topologies ``N(S, L)`` and message routing.

* :mod:`repro.network.topology` -- servers, links, and factory functions
  for the topologies the paper studies (line, bus) plus extras useful for
  extensions (star, ring, full mesh, random).
* :mod:`repro.network.routing` -- shortest-time routing of messages
  between servers, with caching.
"""

from repro.network.topology import (
    Server,
    Link,
    ServerNetwork,
    line_network,
    bus_network,
    star_network,
    ring_network,
    random_network,
    full_mesh_network,
)
from repro.network.routing import Router

__all__ = [
    "Server",
    "Link",
    "ServerNetwork",
    "line_network",
    "bus_network",
    "star_network",
    "ring_network",
    "random_network",
    "full_mesh_network",
    "Router",
]
