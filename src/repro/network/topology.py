"""Server networks ``N(S, L)`` (section 2.2) and topology factories.

A *server* has a computational power ``P(s)`` in Hz; a *link* between two
servers has a speed (``Line_Speed``, bits/second) and a propagation delay
(``Trefl``, seconds). The paper evaluates two topologies:

* **line** -- servers chained ``S1 - S2 - ... - SN`` (used mainly for the
  introductory Line-Line study, section 3.2);
* **bus** -- a shared medium where "the communication cost between every
  pair of servers is considered the same" (sections 3.3-3.4). We model a
  bus as a complete graph with one uniform speed and propagation delay.

Star, ring, full-mesh and random factories are provided for extension
studies; the deployment algorithms dispatch on
:attr:`ServerNetwork.topology_kind`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import networkx as nx

from repro.exceptions import (
    DisconnectedNetworkError,
    DuplicateServerError,
    NetworkError,
    UnknownServerError,
)

__all__ = [
    "Server",
    "Link",
    "ServerNetwork",
    "line_network",
    "bus_network",
    "star_network",
    "ring_network",
    "random_network",
    "full_mesh_network",
]


@dataclass(frozen=True)
class Server:
    """A deployment target: name plus computational power ``P(s)`` in Hz."""

    name: str
    power_hz: float

    def __post_init__(self) -> None:
        if not self.name:
            raise NetworkError("server name must be non-empty")
        if not math.isfinite(self.power_hz) or self.power_hz <= 0:
            raise NetworkError(
                f"server {self.name!r}: power must be finite and > 0, "
                f"got {self.power_hz!r}"
            )


@dataclass(frozen=True)
class Link:
    """An undirected connection between two servers.

    Parameters
    ----------
    a, b:
        Endpoint server names (order is irrelevant).
    speed_bps:
        ``Line_Speed`` in bits/second.
    propagation_s:
        ``Trefl``, the propagation delay in seconds (default 0, matching
        the paper's focus on transmission time).
    """

    a: str
    b: str
    speed_bps: float
    propagation_s: float = 0.0

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise NetworkError(f"self-link on server {self.a!r} is not allowed")
        if not math.isfinite(self.speed_bps) or self.speed_bps <= 0:
            raise NetworkError(
                f"link {self.a!r}-{self.b!r}: speed must be finite and > 0, "
                f"got {self.speed_bps!r}"
            )
        if not math.isfinite(self.propagation_s) or self.propagation_s < 0:
            raise NetworkError(
                f"link {self.a!r}-{self.b!r}: propagation must be finite "
                f"and >= 0, got {self.propagation_s!r}"
            )

    @property
    def endpoints(self) -> frozenset[str]:
        """The unordered endpoint pair."""
        return frozenset((self.a, self.b))


class ServerNetwork:
    """A graph of servers: the deployment substrate.

    Parameters
    ----------
    name:
        Label used in reports.
    topology_kind:
        One of ``"line"``, ``"bus"``, ``"star"``, ``"ring"``, ``"mesh"``
        or ``"custom"``. Algorithms use this to select their cost
        shortcuts (e.g. on a bus every pair communicates at the same
        speed); factories set it automatically.
    """

    KNOWN_KINDS = ("line", "bus", "star", "ring", "mesh", "custom")

    def __init__(self, name: str = "network", topology_kind: str = "custom"):
        if topology_kind not in self.KNOWN_KINDS:
            raise NetworkError(
                f"unknown topology kind {topology_kind!r}; expected one of "
                f"{self.KNOWN_KINDS}"
            )
        self.name = name
        self.topology_kind = topology_kind
        self._graph: nx.Graph = nx.Graph()
        self._servers: dict[str, Server] = {}
        self._links: dict[frozenset[str], Link] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_server(self, server: Server) -> Server:
        """Insert *server*; raise on duplicate names."""
        if server.name in self._servers:
            raise DuplicateServerError(
                f"server {server.name!r} already exists in {self.name!r}"
            )
        self._servers[server.name] = server
        self._graph.add_node(server.name)
        return server

    def add_servers(self, servers: Iterable[Server]) -> None:
        """Insert several servers in order."""
        for server in servers:
            self.add_server(server)

    def replace_server(self, server: Server) -> Server:
        """Swap the stored server of the same name with *server*.

        Links, graph structure and insertion order are untouched -- this
        models a capacity change (throttling, upgrade) of a live
        machine, not a topology change. Raises
        :class:`~repro.exceptions.UnknownServerError` when no server of
        that name exists.
        """
        if server.name not in self._servers:
            raise UnknownServerError(
                f"cannot replace unknown server {server.name!r} in "
                f"{self.name!r}"
            )
        self._servers[server.name] = server
        return server

    def add_link(self, link: Link) -> Link:
        """Insert *link*; both endpoints must already be servers."""
        for endpoint in (link.a, link.b):
            if endpoint not in self._servers:
                raise UnknownServerError(
                    f"link references unknown server {endpoint!r}"
                )
        if link.endpoints in self._links:
            raise NetworkError(
                f"a link between {link.a!r} and {link.b!r} already exists"
            )
        self._links[link.endpoints] = link
        self._graph.add_edge(link.a, link.b)
        return link

    def connect(
        self,
        a: str,
        b: str,
        speed_bps: float,
        propagation_s: float = 0.0,
    ) -> Link:
        """Convenience wrapper building and inserting a :class:`Link`."""
        return self.add_link(Link(a, b, speed_bps, propagation_s))

    def remove_link(self, a: str, b: str) -> Link:
        """Remove and return the link between *a* and *b*.

        Order-insensitive; raises
        :class:`~repro.exceptions.UnknownServerError` when no such link
        exists. Removal may disconnect the network -- callers that need
        connectivity (routing, the fleet) must check
        :meth:`is_connected` afterwards and decide their own policy
        (e.g. :meth:`repro.service.state.FleetState.drop_link` rolls the
        removal back).
        """
        link = self.link(a, b)
        del self._links[link.endpoints]
        self._graph.remove_edge(link.a, link.b)
        return link

    def replace_link(self, link: Link) -> Link:
        """Swap the stored link between the same endpoints with *link*.

        The graph structure is untouched -- this models a parameter
        change (degradation, upgrade) of an existing connection, the
        link-level sibling of :meth:`replace_server`. Raises
        :class:`~repro.exceptions.UnknownServerError` when no link
        between the endpoints exists.
        """
        if link.endpoints not in self._links:
            raise UnknownServerError(
                f"no link between {link.a!r} and {link.b!r} in "
                f"{self.name!r}"
            )
        self._links[link.endpoints] = link
        return link

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._servers

    def __len__(self) -> int:
        return len(self._servers)

    def __iter__(self) -> Iterator[Server]:
        return iter(self._servers.values())

    def server(self, name: str) -> Server:
        """Return the server called *name* or raise."""
        try:
            return self._servers[name]
        except KeyError:
            raise UnknownServerError(
                f"no server {name!r} in network {self.name!r}"
            ) from None

    @property
    def servers(self) -> tuple[Server, ...]:
        """All servers in insertion order."""
        return tuple(self._servers.values())

    @property
    def server_names(self) -> tuple[str, ...]:
        """All server names in insertion order."""
        return tuple(self._servers)

    @property
    def links(self) -> tuple[Link, ...]:
        """All links in insertion order."""
        return tuple(self._links.values())

    def link(self, a: str, b: str) -> Link:
        """Return the link between *a* and *b* (order-insensitive) or raise."""
        try:
            return self._links[frozenset((a, b))]
        except KeyError:
            raise UnknownServerError(
                f"no link between {a!r} and {b!r} in {self.name!r}"
            ) from None

    def has_link(self, a: str, b: str) -> bool:
        """True when *a* and *b* are directly connected."""
        return frozenset((a, b)) in self._links

    def neighbors(self, name: str) -> tuple[str, ...]:
        """Servers directly linked to *name*."""
        self.server(name)
        return tuple(self._graph.neighbors(name))

    @property
    def total_power_hz(self) -> float:
        """``Sum_Capacity``: combined power of all servers."""
        return sum(s.power_hz for s in self._servers.values())

    @property
    def graph(self) -> nx.Graph:
        """A read-only view of the underlying graph."""
        return self._graph.copy(as_view=True)

    def is_connected(self) -> bool:
        """True when every server can reach every other server."""
        if len(self) <= 1:
            return True
        return nx.is_connected(self._graph)

    def require_connected(self) -> None:
        """Raise :class:`DisconnectedNetworkError` unless connected."""
        if not self.is_connected():
            raise DisconnectedNetworkError(
                f"network {self.name!r} is not connected; messages between "
                f"some server pairs cannot be routed"
            )

    def is_line(self) -> bool:
        """True for a path topology ``S1 - S2 - ... - SN``."""
        if len(self) <= 1:
            return True
        if not self.is_connected():
            return False
        degrees = sorted(d for _, d in self._graph.degree())
        return degrees[:2] == [1, 1] and all(d == 2 for d in degrees[2:])

    def line_order(self) -> tuple[str, ...]:
        """Servers of a line network in chain order.

        The orientation starts from the endpoint that was inserted first,
        so factory-built lines keep their construction order. Raises
        :class:`NetworkError` when the topology is not a line.
        """
        if not self.is_line():
            raise NetworkError(f"network {self.name!r} is not a line")
        names = self.server_names
        if len(names) <= 2:
            return names
        endpoints = [n for n in names if self._graph.degree(n) == 1]
        start = min(endpoints, key=names.index)
        order = [start]
        previous = None
        while len(order) < len(names):
            candidates = [
                n for n in self._graph.neighbors(order[-1]) if n != previous
            ]
            previous = order[-1]
            order.append(candidates[0])
        return tuple(order)

    def is_uniform_bus(self, tolerance: float = 1e-12) -> bool:
        """True when every pair is directly linked at one common speed.

        This is the paper's bus assumption: "the communication cost
        between every pair of servers is considered the same".
        """
        n = len(self)
        if n <= 1:
            return True
        expected_links = n * (n - 1) // 2
        if len(self._links) != expected_links:
            return False
        speeds = {link.speed_bps for link in self._links.values()}
        props = {link.propagation_s for link in self._links.values()}
        return (
            max(speeds) - min(speeds) <= tolerance
            and max(props) - min(props) <= tolerance
        )

    @property
    def uniform_speed_bps(self) -> float:
        """The common link speed of a uniform bus network.

        Raises :class:`NetworkError` when the network is not a uniform bus.
        """
        if not self.is_uniform_bus():
            raise NetworkError(
                f"network {self.name!r} is not a uniform bus; links have "
                f"heterogeneous speeds or pairs are not fully connected"
            )
        if not self._links:
            raise NetworkError(
                f"network {self.name!r} has no links; uniform speed undefined"
            )
        return next(iter(self._links.values())).speed_bps

    def summary(self) -> dict[str, object]:
        """Small dict of structural statistics, handy for reports.

        Heterogeneous networks additionally report the link-speed range
        and worst-case propagation delay (``None`` for each when the
        network has no links), plus whether the paper's uniform-bus
        assumption holds.
        """
        speeds = [link.speed_bps for link in self._links.values()]
        propagations = [link.propagation_s for link in self._links.values()]
        return {
            "name": self.name,
            "kind": self.topology_kind,
            "servers": len(self),
            "links": len(self._links),
            "total_power_hz": self.total_power_hz,
            "connected": self.is_connected(),
            "min_link_speed_bps": min(speeds) if speeds else None,
            "max_link_speed_bps": max(speeds) if speeds else None,
            "max_propagation_s": max(propagations) if propagations else None,
            "uniform_bus": self.is_uniform_bus(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServerNetwork({self.name!r}, kind={self.topology_kind!r}, "
            f"servers={len(self)}, links={len(self._links)})"
        )


# ----------------------------------------------------------------------
# factories
# ----------------------------------------------------------------------
def _named_servers(powers_hz: Sequence[float], prefix: str) -> list[Server]:
    if not powers_hz:
        raise NetworkError("at least one server power is required")
    return [
        Server(f"{prefix}{i + 1}", power) for i, power in enumerate(powers_hz)
    ]


def line_network(
    powers_hz: Sequence[float],
    speeds_bps: Sequence[float] | float,
    propagation_s: float = 0.0,
    name: str = "line",
    prefix: str = "S",
) -> ServerNetwork:
    """A chain ``S1 - S2 - ... - SN``.

    Parameters
    ----------
    powers_hz:
        One power per server, in order along the line.
    speeds_bps:
        Either one speed per link (``len(powers_hz) - 1`` values) or a
        single speed applied to every link.
    """
    servers = _named_servers(powers_hz, prefix)
    n_links = max(0, len(servers) - 1)
    if isinstance(speeds_bps, (int, float)):
        speeds = [float(speeds_bps)] * n_links
    else:
        speeds = [float(s) for s in speeds_bps]
        if len(speeds) != n_links:
            raise NetworkError(
                f"line of {len(servers)} servers needs {n_links} link "
                f"speeds, got {len(speeds)}"
            )
    network = ServerNetwork(name, topology_kind="line")
    network.add_servers(servers)
    for (left, right), speed in zip(zip(servers, servers[1:]), speeds):
        network.connect(left.name, right.name, speed, propagation_s)
    return network


def bus_network(
    powers_hz: Sequence[float],
    speed_bps: float,
    propagation_s: float = 0.0,
    name: str = "bus",
    prefix: str = "S",
) -> ServerNetwork:
    """A shared bus: every server pair communicates at *speed_bps*.

    Modelled as a complete graph with uniform link speed, matching the
    paper's assumption that all pairs share the same communication cost.
    """
    servers = _named_servers(powers_hz, prefix)
    network = ServerNetwork(name, topology_kind="bus")
    network.add_servers(servers)
    for i, left in enumerate(servers):
        for right in servers[i + 1 :]:
            network.connect(left.name, right.name, speed_bps, propagation_s)
    return network


def star_network(
    hub_power_hz: float,
    leaf_powers_hz: Sequence[float],
    speed_bps: float,
    propagation_s: float = 0.0,
    name: str = "star",
) -> ServerNetwork:
    """A hub server linked to every leaf server (extension topology)."""
    network = ServerNetwork(name, topology_kind="star")
    hub = network.add_server(Server("HUB", hub_power_hz))
    for i, power in enumerate(leaf_powers_hz):
        leaf = network.add_server(Server(f"S{i + 1}", power))
        network.connect(hub.name, leaf.name, speed_bps, propagation_s)
    return network


def ring_network(
    powers_hz: Sequence[float],
    speed_bps: float,
    propagation_s: float = 0.0,
    name: str = "ring",
    prefix: str = "S",
) -> ServerNetwork:
    """A cycle of servers (extension topology). Requires >= 3 servers."""
    if len(powers_hz) < 3:
        raise NetworkError("a ring needs at least 3 servers")
    servers = _named_servers(powers_hz, prefix)
    network = ServerNetwork(name, topology_kind="ring")
    network.add_servers(servers)
    for left, right in zip(servers, servers[1:] + servers[:1]):
        network.connect(left.name, right.name, speed_bps, propagation_s)
    return network


def random_network(
    powers_hz: Sequence[float],
    speeds_bps: Sequence[float] | float,
    extra_edge_probability: float = 0.3,
    rng=None,
    propagation_s: float = 0.0,
    name: str = "random",
    prefix: str = "S",
) -> ServerNetwork:
    """A connected random topology (extension studies).

    Construction: a random spanning tree (guaranteeing connectivity)
    plus each remaining pair independently with *extra_edge_probability*.
    Link speeds are drawn uniformly from *speeds_bps* when a sequence is
    given, or fixed when scalar.

    Parameters
    ----------
    rng:
        Anything :func:`repro.core.rng.coerce_rng` accepts: a
        ``random.Random``, an integer seed, or ``None`` for the default
        seed-0 stream (byte-identical to the historical inlined
        ``random.Random(0)`` default).
    """
    from repro.core.rng import coerce_rng

    rng = coerce_rng(rng)
    if not 0.0 <= extra_edge_probability <= 1.0:
        raise NetworkError("extra_edge_probability must lie in [0, 1]")
    servers = _named_servers(powers_hz, prefix)
    network = ServerNetwork(name, topology_kind="custom")
    network.add_servers(servers)

    def speed() -> float:
        if isinstance(speeds_bps, (int, float)):
            return float(speeds_bps)
        return float(rng.choice(list(speeds_bps)))

    # random spanning tree: attach each new node to a random earlier one
    names = [server.name for server in servers]
    for index in range(1, len(names)):
        anchor = names[rng.randrange(index)]
        network.connect(anchor, names[index], speed(), propagation_s)
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            if network.has_link(names[i], names[j]):
                continue
            if rng.random() < extra_edge_probability:
                network.connect(names[i], names[j], speed(), propagation_s)
    return network


def full_mesh_network(
    powers_hz: Sequence[float],
    speeds_bps: Sequence[Sequence[float]] | float,
    propagation_s: float = 0.0,
    name: str = "mesh",
    prefix: str = "S",
) -> ServerNetwork:
    """Every pair directly linked, optionally with per-pair speeds.

    Parameters
    ----------
    speeds_bps:
        Either a scalar speed for all pairs, or an upper-triangular
        matrix-like nested sequence where ``speeds_bps[i][j - i - 1]`` is
        the speed between server ``i`` and server ``j`` (``j > i``).
    """
    servers = _named_servers(powers_hz, prefix)
    network = ServerNetwork(name, topology_kind="mesh")
    network.add_servers(servers)
    for i, left in enumerate(servers):
        for offset, right in enumerate(servers[i + 1 :]):
            if isinstance(speeds_bps, (int, float)):
                speed = float(speeds_bps)
            else:
                speed = float(speeds_bps[i][offset])
            network.connect(left.name, right.name, speed, propagation_s)
    return network
