"""The Class A / B / C experiment definitions of section 4.1.

* **Class A** varies link capacity and message sizes;
* **Class B** varies server CPU power and workflow workload;
* **Class C** varies everything (Table 6); only Class C results are
  reported in the paper, per bus speed -- the quality numbers quote the
  1 Mbps and 100 Mbps buses, which is :data:`FIG6_BUS_SPEEDS`.

Each function returns a list of :class:`ExperimentConfig` forming a
sweep; feed them to :meth:`ExperimentRunner.run_many` or
:meth:`ExperimentRunner.sweep_table`.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.runner import ExperimentConfig
from repro.workloads.parameters import (
    ClassAParameters,
    ClassBParameters,
    ClassCParameters,
    HEAVY_OPERATION_CYCLES,
    MEDIUM_OPERATION_CYCLES,
    SIMPLE_OPERATION_CYCLES,
)

__all__ = [
    "FIG6_BUS_SPEEDS",
    "class_a_configs",
    "class_b_configs",
    "class_c_configs",
]

#: Bus speeds the paper quotes quality numbers for (1 Mbps and 100 Mbps).
FIG6_BUS_SPEEDS = (1e6, 100e6)

#: Class A sweep: link capacities from a congested 1 Mbps bus to gigabit.
CLASS_A_SPEEDS = (1e6, 10e6, 100e6, 1000e6)
#: Class A sweep: SOAP message scales.
CLASS_A_MESSAGE_SCALES = ("simple", "medium", "complex", "mixed")

#: Class B sweep: section 4.1 operation cost anchors.
CLASS_B_CYCLES = (
    SIMPLE_OPERATION_CYCLES,
    MEDIUM_OPERATION_CYCLES,
    HEAVY_OPERATION_CYCLES,
)
#: Class B sweep: server powers around the Table 6 values.
CLASS_B_POWERS = (1e9, 2e9, 3e9)


def class_a_configs(
    workflow_kind: str = "line",
    num_operations: int = 19,
    num_servers: int = 5,
    repetitions: int = 10,
    seed: int = 101,
    speeds: Sequence[float] = CLASS_A_SPEEDS,
    message_scales: Sequence[str] = CLASS_A_MESSAGE_SCALES,
) -> list[ExperimentConfig]:
    """Class A: one config per (link speed, message scale) pair."""
    configs = []
    for speed in speeds:
        for scale in message_scales:
            parameters = ClassAParameters.sweep_point(speed, scale)
            configs.append(
                ExperimentConfig(
                    workflow_kind=workflow_kind,
                    num_operations=num_operations,
                    num_servers=num_servers,
                    parameters=parameters.as_class_c(),
                    bus_speed_bps=speed,
                    repetitions=repetitions,
                    seed=seed,
                    label=f"A: {speed / 1e6:g}Mbps {scale} msgs",
                )
            )
    return configs


def class_b_configs(
    workflow_kind: str = "line",
    num_operations: int = 19,
    num_servers: int = 5,
    repetitions: int = 10,
    seed: int = 202,
    cycles: Sequence[float] = CLASS_B_CYCLES,
    powers: Sequence[float] = CLASS_B_POWERS,
) -> list[ExperimentConfig]:
    """Class B: one config per (operation cost, server power) pair."""
    configs = []
    for operation_cycles in cycles:
        for power in powers:
            parameters = ClassBParameters.sweep_point(operation_cycles, power)
            configs.append(
                ExperimentConfig(
                    workflow_kind=workflow_kind,
                    num_operations=num_operations,
                    num_servers=num_servers,
                    parameters=parameters.as_class_c(),
                    repetitions=repetitions,
                    seed=seed,
                    label=(
                        f"B: {operation_cycles / 1e6:g}Mcycles "
                        f"{power / 1e9:g}GHz"
                    ),
                )
            )
    return configs


def class_c_configs(
    workflow_kind: str = "line",
    num_operations: int = 19,
    num_servers: int = 5,
    repetitions: int = 10,
    seed: int = 303,
    bus_speeds: Sequence[float] = FIG6_BUS_SPEEDS,
) -> list[ExperimentConfig]:
    """Class C: Table 6 mixtures, one config per reported bus speed."""
    return [
        ExperimentConfig(
            workflow_kind=workflow_kind,
            num_operations=num_operations,
            num_servers=num_servers,
            parameters=ClassCParameters.paper(),
            bus_speed_bps=speed,
            repetitions=repetitions,
            seed=seed,
            label=f"C: {workflow_kind} {speed / 1e6:g}Mbps bus",
        )
        for speed in bus_speeds
    ]
