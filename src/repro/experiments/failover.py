"""Server-failure analysis (motivated by section 2.1).

The motivating example asks for deployments that "load each server in a
fair way, so that whenever additional workflows are deployed, or a
server fails, a reasonable load scale-up is still possible." This module
quantifies that: kill one server, re-home the operations it hosted, and
measure how much the survivors' loads and the workflow's execution time
degrade.

Two recovery policies:

* :func:`replace_orphans` -- keep every surviving assignment and re-home
  only the orphaned operations, worst-fit against the survivors'
  remaining capacity-proportional budgets (minimal disruption -- what an
  operator does under pressure);
* full re-deployment -- run any registered algorithm on the shrunken
  network (maximal quality, maximal churn); pass an algorithm to
  :func:`analyze_failure` to use it instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import DeploymentAlgorithm
from repro.core.cost import CostBreakdown, CostModel
from repro.core.mapping import Deployment
from repro.core.workflow import Workflow
from repro.exceptions import ExperimentError, UnknownServerError
from repro.experiments.reporting import TextTable, format_seconds
from repro.network.topology import ServerNetwork

__all__ = [
    "remove_server",
    "replace_orphans",
    "analyze_failure",
    "FailureReport",
    "failover_table",
]


def remove_server(network: ServerNetwork, server_name: str) -> ServerNetwork:
    """A copy of *network* without *server_name* and its links.

    The copy keeps the topology kind; a bus stays a (smaller) bus, while
    removing an interior line server disconnects the network -- the cost
    model will reject that, which is the correct physical answer.
    """
    network.server(server_name)  # raise early on unknown names
    if len(network) <= 1:
        raise ExperimentError(
            f"cannot remove {server_name!r}: it is the only server"
        )
    survivor = ServerNetwork(
        f"{network.name}-minus-{server_name}",
        topology_kind=network.topology_kind,
    )
    for server in network.servers:
        if server.name != server_name:
            survivor.add_server(server)
    for link in network.links:
        if server_name not in link.endpoints:
            survivor.add_link(link)
    return survivor


def replace_orphans(
    workflow: Workflow,
    survivor_network: ServerNetwork,
    deployment: Deployment,
    failed_server: str,
    cost_model: CostModel | None = None,
) -> Deployment:
    """Re-home the failed server's operations; keep everything else.

    Orphans are assigned heaviest-first to the surviving server with the
    most remaining capacity-proportional budget, counting the work it
    already hosts -- the worst-fit rule of Fair Load restricted to the
    orphans.
    """
    if cost_model is None:
        cost_model = CostModel(workflow, survivor_network)
    recovered = Deployment(
        {
            operation: server
            for operation, server in deployment
            if server != failed_server
        }
    )
    orphans = [
        operation
        for operation, server in deployment
        if server == failed_server and operation in workflow
    ]
    # remaining budget = ideal share minus already-hosted weighted cycles
    budgets: dict[str, float] = {}
    for server in survivor_network.server_names:
        hosted = sum(
            workflow.operation(op).cycles * cost_model.node_probability(op)
            for op in recovered.operations_on(server)
        )
        budgets[server] = cost_model.ideal_cycles(server) - hosted
    rank = {
        name: i for i, name in enumerate(survivor_network.server_names)
    }
    orphans.sort(key=lambda op: -workflow.operation(op).cycles)
    for operation in orphans:
        target = max(budgets, key=lambda s: (budgets[s], -rank[s]))
        recovered.assign(operation, target)
        budgets[target] -= (
            workflow.operation(operation).cycles
            * cost_model.node_probability(operation)
        )
    return recovered


@dataclass(frozen=True)
class FailureReport:
    """Impact of one server failure on one deployment.

    Attributes
    ----------
    failed_server:
        The server that was killed.
    orphaned_operations:
        Operations that had to move.
    before, after:
        Cost breakdowns on the original and shrunken networks.
    recovered:
        The post-failure deployment.
    """

    failed_server: str
    orphaned_operations: tuple[str, ...]
    before: CostBreakdown
    after: CostBreakdown
    recovered: Deployment

    @property
    def execution_scale_up(self) -> float:
        """``Texecute`` after / before (1.0 = no degradation)."""
        if self.before.execution_time <= 0:
            return 1.0
        return self.after.execution_time / self.before.execution_time

    @property
    def peak_load_scale_up(self) -> float:
        """Busiest-server load after / before -- §2.1's "load scale-up"."""
        peak_before = max(self.before.loads.values())
        if peak_before <= 0:
            return 1.0
        return max(self.after.loads.values()) / peak_before


def analyze_failure(
    workflow: Workflow,
    network: ServerNetwork,
    deployment: Deployment,
    failed_server: str,
    algorithm: DeploymentAlgorithm | None = None,
    rng=None,
) -> FailureReport:
    """Kill *failed_server* and measure the recovery.

    With *algorithm* ``None``, recovery keeps survivors in place
    (:func:`replace_orphans`); otherwise the whole workflow is
    re-deployed from scratch on the shrunken network.
    """
    if failed_server not in network:
        raise UnknownServerError(
            f"no server {failed_server!r} in network {network.name!r}"
        )
    before = CostModel(workflow, network).evaluate(deployment)
    survivor_network = remove_server(network, failed_server)
    survivor_model = CostModel(workflow, survivor_network)
    if algorithm is None:
        recovered = replace_orphans(
            workflow, survivor_network, deployment, failed_server,
            cost_model=survivor_model,
        )
    else:
        recovered = algorithm.deploy(
            workflow, survivor_network, cost_model=survivor_model, rng=rng
        )
    after = survivor_model.evaluate(recovered)
    return FailureReport(
        failed_server=failed_server,
        orphaned_operations=deployment.operations_on(failed_server),
        before=before,
        after=after,
        recovered=recovered,
    )


def failover_table(
    workflow: Workflow,
    network: ServerNetwork,
    deployment: Deployment,
    algorithm: DeploymentAlgorithm | None = None,
) -> TextTable:
    """One row per possible single-server failure."""
    table = TextTable(
        [
            "failed_server",
            "orphans",
            "Texecute_after",
            "exec_scale_up",
            "peak_load_scale_up",
        ],
        title=f"single-failure impact on {workflow.name!r}",
    )
    for server in network.server_names:
        report = analyze_failure(
            workflow, network, deployment, server, algorithm=algorithm
        )
        table.add_row(
            [
                server,
                len(report.orphaned_operations),
                format_seconds(report.after.execution_time),
                f"{report.execution_scale_up:.2f}x",
                f"{report.peak_load_scale_up:.2f}x",
            ]
        )
    return table
