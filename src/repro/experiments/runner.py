"""Generate instances, run algorithm suites, aggregate results.

One :class:`ExperimentConfig` describes a family of problem instances
(workflow shape and size, server count, parameter mixtures, bus speed);
:class:`ExperimentRunner` materialises ``repetitions`` instances from a
seed, runs every requested algorithm on each, and returns an
:class:`ExperimentResult` whose accessors produce exactly the series the
paper plots: per-algorithm (Texecute, TimePenalty) scatter points and
their means.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.algorithms.base import DeploymentAlgorithm, get_algorithm
from repro.algorithms.runtime import SearchBudget, SearchReport
from repro.algorithms.sampling import SolutionSampler
from repro.core.cost import CostBreakdown, CostModel
from repro.core.mapping import Deployment
from repro.core.rng import coerce_rng
from repro.core.workflow import Workflow
from repro.exceptions import ExperimentError
from repro.experiments.reporting import TextTable, format_seconds
from repro.network.topology import ServerNetwork
from repro.workloads.generator import (
    GraphStructure,
    line_workflow,
    random_bus_network,
    random_graph_workflow,
    random_line_network,
)
from repro.workloads.parameters import ClassCParameters

__all__ = [
    "ExperimentConfig",
    "RunRecord",
    "ExperimentResult",
    "ExperimentRunner",
    "DEFAULT_ALGORITHMS",
    "RANDOM_BASELINE",
]

#: The algorithm suite of the paper's bus figures, in figure order.
DEFAULT_ALGORITHMS = (
    "FairLoad",
    "FL-TieResolver",
    "FL-TieResolver2",
    "FL-MergeMsgEnds",
    "HeavyOps-LargeMsgs",
)

#: Label of the best-of-random-samples baseline records (see
#: ``ExperimentRunner(random_baseline_samples=...)``).
RANDOM_BASELINE = "RandomBest"

_WORKFLOW_KINDS = ("line", "bushy", "lengthy", "hybrid")
_NETWORK_KINDS = ("bus", "line")


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment family: how instances are generated.

    Attributes
    ----------
    workflow_kind:
        ``"line"`` or one of the random-graph structures
        (``"bushy"``/``"lengthy"``/``"hybrid"``).
    num_operations, num_servers:
        ``M`` and ``N``. The paper's headline configuration is M=19, N=5
        (K = M/N ~ 4).
    network_kind:
        ``"bus"`` (sections 3.3/3.4) or ``"line"`` (section 3.2).
    parameters:
        The mixtures used for all sampled quantities (Table 6 default).
    bus_speed_bps:
        When set, pins the bus/link speed instead of sampling it --
        Figs. 6-8 are reported per bus speed.
    repetitions:
        Instances generated per run.
    seed:
        Root seed; instance ``i`` derives its own RNG from it.
    label:
        Free-form name used in tables.
    """

    workflow_kind: str = "line"
    num_operations: int = 19
    num_servers: int = 5
    network_kind: str = "bus"
    parameters: ClassCParameters = field(default_factory=ClassCParameters.paper)
    bus_speed_bps: float | None = None
    repetitions: int = 10
    seed: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        if self.workflow_kind not in _WORKFLOW_KINDS:
            raise ExperimentError(
                f"workflow_kind must be one of {_WORKFLOW_KINDS}, got "
                f"{self.workflow_kind!r}"
            )
        if self.network_kind not in _NETWORK_KINDS:
            raise ExperimentError(
                f"network_kind must be one of {_NETWORK_KINDS}, got "
                f"{self.network_kind!r}"
            )
        if self.num_operations < 1 or self.num_servers < 1:
            raise ExperimentError("num_operations and num_servers must be >= 1")
        if self.repetitions < 1:
            raise ExperimentError("repetitions must be >= 1")

    @property
    def effective_parameters(self) -> ClassCParameters:
        """Parameters with the bus speed pinned when requested."""
        if self.bus_speed_bps is None:
            return self.parameters
        return self.parameters.with_fixed_bus_speed(self.bus_speed_bps)

    @property
    def operations_per_server(self) -> float:
        """The paper's ``K = M / N`` ratio."""
        return self.num_operations / self.num_servers

    def describe(self) -> str:
        """Short label for tables."""
        if self.label:
            return self.label
        speed = (
            f"{self.bus_speed_bps / 1e6:g}Mbps"
            if self.bus_speed_bps is not None
            else "mixed-speed"
        )
        return (
            f"{self.workflow_kind}/{self.network_kind} M={self.num_operations} "
            f"N={self.num_servers} {speed}"
        )

    def instance(self, index: int) -> tuple[Workflow, ServerNetwork]:
        """Materialise instance *index* (deterministic in ``seed``)."""
        rng = coerce_rng(f"{self.seed}:{index}")
        parameters = self.effective_parameters
        if self.workflow_kind == "line":
            workflow = line_workflow(
                self.num_operations, seed=rng, parameters=parameters
            )
        else:
            workflow = random_graph_workflow(
                self.num_operations,
                structure=GraphStructure[self.workflow_kind.upper()],
                seed=rng,
                parameters=parameters,
            )
        if self.network_kind == "bus":
            network = random_bus_network(
                self.num_servers, seed=rng, parameters=parameters
            )
        else:
            network = random_line_network(
                self.num_servers, seed=rng, parameters=parameters
            )
        return workflow, network

    def with_overrides(self, **changes) -> "ExperimentConfig":
        """A modified copy (thin wrapper over ``dataclasses.replace``)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class RunRecord:
    """One algorithm run on one instance.

    ``report`` is the run's
    :class:`~repro.algorithms.runtime.SearchReport` -- evaluation
    counts, the anytime best-so-far curve and the stop reason -- or
    ``None`` for non-iterative (greedy) algorithms.
    """

    algorithm: str
    repetition: int
    cost: CostBreakdown
    deployment: Deployment
    report: SearchReport | None = None


@dataclass
class ExperimentResult:
    """All runs of one configuration, with figure-ready accessors."""

    config: ExperimentConfig
    records: list[RunRecord] = field(default_factory=list)

    def algorithms(self) -> tuple[str, ...]:
        """Algorithm names present, in first-seen order."""
        return tuple(dict.fromkeys(record.algorithm for record in self.records))

    def records_for(self, algorithm: str) -> list[RunRecord]:
        """All records of one algorithm."""
        return [r for r in self.records if r.algorithm == algorithm]

    def scatter_points(self) -> dict[str, list[tuple[float, float]]]:
        """Per-algorithm (Texecute, TimePenalty) points -- figure data."""
        points: dict[str, list[tuple[float, float]]] = {}
        for record in self.records:
            points.setdefault(record.algorithm, []).append(
                (record.cost.execution_time, record.cost.time_penalty)
            )
        return points

    def mean_execution_time(self, algorithm: str) -> float:
        """Mean ``Texecute`` of one algorithm over the repetitions."""
        records = self.records_for(algorithm)
        if not records:
            raise ExperimentError(f"no records for algorithm {algorithm!r}")
        return sum(r.cost.execution_time for r in records) / len(records)

    def mean_time_penalty(self, algorithm: str) -> float:
        """Mean fairness penalty of one algorithm over the repetitions."""
        records = self.records_for(algorithm)
        if not records:
            raise ExperimentError(f"no records for algorithm {algorithm!r}")
        return sum(r.cost.time_penalty for r in records) / len(records)

    def mean_objective(self, algorithm: str) -> float:
        """Mean scalar objective of one algorithm."""
        records = self.records_for(algorithm)
        if not records:
            raise ExperimentError(f"no records for algorithm {algorithm!r}")
        return sum(r.cost.objective for r in records) / len(records)

    def anytime_curves(self, algorithm: str) -> dict[int, tuple]:
        """Per-repetition anytime curves of one algorithm.

        Maps repetition index to the ``(step, best_value)`` curve of
        that run's :class:`~repro.algorithms.runtime.SearchReport`;
        repetitions whose run produced no report (greedy algorithms)
        are omitted. The curves are what a budget study plots:
        objective value reachable within k steps.
        """
        return {
            record.repetition: record.report.curve
            for record in self.records_for(algorithm)
            if record.report is not None
        }

    def winner_by_execution(self) -> str:
        """Algorithm with the best mean execution time."""
        return min(self.algorithms(), key=self.mean_execution_time)

    def winner_by_penalty(self) -> str:
        """Algorithm with the best mean fairness."""
        return min(self.algorithms(), key=self.mean_time_penalty)

    def summary_table(self) -> TextTable:
        """Mean metrics per algorithm, one row each."""
        table = TextTable(
            ["algorithm", "mean_Texecute", "mean_TimePenalty", "mean_objective"],
            title=self.config.describe(),
        )
        for name in self.algorithms():
            table.add_row(
                [
                    name,
                    format_seconds(self.mean_execution_time(name)),
                    format_seconds(self.mean_time_penalty(name)),
                    format_seconds(self.mean_objective(name)),
                ]
            )
        return table


def _run_repetition(job) -> list[RunRecord]:
    """One repetition's full suite (module-level: picklable for pools).

    Every run's RNG derives from ``f"{seed}:{repetition}:{name}"`` --
    a pure function of the record's identity, never of scheduling -- so
    the records are byte-identical whether repetitions run in this
    process or are fanned out across workers.
    """
    config, repetition, algorithms, budget, baseline_samples = job
    records: list[RunRecord] = []
    workflow, network = config.instance(repetition)
    cost_model = CostModel(workflow, network)
    for name, algorithm in algorithms:
        rng = coerce_rng(f"{config.seed}:{repetition}:{name}")
        deployment, report = algorithm.deploy_with_report(
            workflow,
            network,
            cost_model=cost_model,
            rng=rng,
            budget=budget,
        )
        records.append(
            RunRecord(
                algorithm=name,
                repetition=repetition,
                cost=cost_model.evaluate(deployment),
                deployment=deployment,
                report=report,
            )
        )
    if baseline_samples > 0:
        sampler = SolutionSampler(baseline_samples)
        statistics = sampler.run(
            workflow,
            network,
            cost_model,
            coerce_rng(f"{config.seed}:{repetition}:random-baseline"),
        )
        best_deployment, best_cost = statistics.best_objective
        records.append(
            RunRecord(
                algorithm=RANDOM_BASELINE,
                repetition=repetition,
                cost=best_cost,
                deployment=best_deployment,
                report=statistics.report,
            )
        )
    return records


class ExperimentRunner:
    """Run an algorithm suite over the instances of a configuration.

    Parameters
    ----------
    algorithms:
        Names (looked up in the registry) or ready instances. Instances
        let callers pass configured variants (e.g. ``LineLine(
        fix_bridges=False)``).
    budget:
        Optional :class:`~repro.algorithms.runtime.SearchBudget`
        applied to every deploy call: iterative algorithms stop at the
        first binding limit and their best-so-far incumbent is scored.
        The per-run reports (anytime curves included) land on the
        :class:`RunRecord`.
    random_baseline_samples:
        When > 0, each instance additionally gets a
        :data:`RANDOM_BASELINE` record: the best of this many uniform
        random mappings, scored in blocks through the shared batch
        kernel (the scalar path when NumPy is missing). The paper's
        "best sampled solution" reference as a figure series.
    workers:
        When > 1, repetitions are fanned out across that many worker
        processes (algorithm instances must then be picklable). Results
        are byte-identical to the serial run: each record's RNG stream
        is derived from its ``(seed, repetition, algorithm)`` identity
        and records are collected in repetition order.
    """

    def __init__(
        self,
        algorithms: Sequence[str | DeploymentAlgorithm] = DEFAULT_ALGORITHMS,
        budget: SearchBudget | None = None,
        random_baseline_samples: int = 0,
        workers: int = 1,
    ):
        if not algorithms:
            raise ExperimentError("at least one algorithm is required")
        if random_baseline_samples < 0:
            raise ExperimentError("random_baseline_samples must be >= 0")
        if workers < 1:
            raise ExperimentError("workers must be >= 1")
        self._algorithms: list[tuple[str, DeploymentAlgorithm]] = []
        for entry in algorithms:
            if isinstance(entry, DeploymentAlgorithm):
                self._algorithms.append((entry.name, entry))
            else:
                self._algorithms.append((entry, get_algorithm(entry)()))
        self.budget = budget
        self.random_baseline_samples = random_baseline_samples
        self.workers = workers

    @property
    def algorithm_names(self) -> tuple[str, ...]:
        """The suite's names, in run order."""
        return tuple(name for name, _ in self._algorithms)

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        """Execute the full suite on every instance of *config*."""
        result = ExperimentResult(config=config)
        jobs = [
            (
                config,
                repetition,
                self._algorithms,
                self.budget,
                self.random_baseline_samples,
            )
            for repetition in range(config.repetitions)
        ]
        if self.workers > 1 and config.repetitions > 1:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(
                max_workers=min(self.workers, config.repetitions)
            ) as pool:
                for records in pool.map(_run_repetition, jobs):
                    result.records.extend(records)
        else:
            for job in jobs:
                result.records.extend(_run_repetition(job))
        return result

    def run_many(
        self, configs: Sequence[ExperimentConfig]
    ) -> list[ExperimentResult]:
        """Run a list of configurations (a sweep)."""
        return [self.run(config) for config in configs]

    def sweep_table(
        self,
        configs: Sequence[ExperimentConfig],
        metric: str = "execution",
    ) -> TextTable:
        """One row per configuration, one column per algorithm.

        *metric* is ``"execution"``, ``"penalty"`` or ``"objective"``.
        """
        metric_fns = {
            "execution": ExperimentResult.mean_execution_time,
            "penalty": ExperimentResult.mean_time_penalty,
            "objective": ExperimentResult.mean_objective,
        }
        if metric not in metric_fns:
            raise ExperimentError(
                f"metric must be one of {sorted(metric_fns)}, got {metric!r}"
            )
        fn = metric_fns[metric]
        table = TextTable(
            ["configuration", *self.algorithm_names],
            title=f"mean {metric} per algorithm",
        )
        for result in self.run_many(configs):
            table.add_row(
                [
                    result.config.describe(),
                    *(
                        format_seconds(fn(result, name))
                        for name in self.algorithm_names
                    ),
                ]
            )
        return table
