"""The sampling-based solution-quality protocol of section 4.1.

The paper: "To assess the quality of our solutions, we have performed
sampling of solutions with configurations with varying number of servers
(3-5) and operations (5-19). We report worst case numbers of 50
experiments over a configuration of 5 servers and 19 operations. Each
sample involved 32,000 potential solutions."

:class:`QualityProtocol` reruns that assessment: per experiment it draws
an instance, samples ``samples`` random mappings to estimate the best
reachable execution time and time penalty independently, runs each
heuristic once, and records its relative deviations. The report keeps
both the worst case (what the paper quotes) and the mean.

Paper anchor values for HeavyOps-LargeMsgs (worst case over 50
experiments): Line--Bus (2.9 %, 12 %) at 1 Mbps and (29 %, 0.3 %) at
100 Mbps; Graph--Bus (29 %, 1.8 %) at 1 Mbps and (0 %, 0 %) at 100 Mbps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.algorithms.base import DeploymentAlgorithm, get_algorithm
from repro.algorithms.runtime import SearchBudget, SearchReport
from repro.algorithms.sampling import DEFAULT_SAMPLE_BLOCK, SolutionSampler
from repro.core.cost import CostModel
from repro.core.rng import coerce_rng
from repro.exceptions import ExperimentError
from repro.experiments.reporting import TextTable, format_percent
from repro.experiments.runner import DEFAULT_ALGORITHMS, ExperimentConfig

__all__ = ["QualityProtocol", "QualityReport", "DeviationRecord"]


@dataclass(frozen=True)
class DeviationRecord:
    """One algorithm's deviations on one experiment instance.

    ``report`` carries the run's
    :class:`~repro.algorithms.runtime.SearchReport` (anytime curve,
    stop reason) for iterative algorithms under a budget; ``None`` for
    the greedy suite.
    """

    algorithm: str
    experiment: int
    execution_deviation: float
    penalty_deviation: float
    penalty_gap_vs_load: float = 0.0
    report: SearchReport | None = None


@dataclass
class QualityReport:
    """Aggregated deviations of every algorithm over all experiments."""

    config: ExperimentConfig
    samples: int
    records: list[DeviationRecord] = field(default_factory=list)

    def algorithms(self) -> tuple[str, ...]:
        """Algorithm names present, in first-seen order."""
        return tuple(dict.fromkeys(r.algorithm for r in self.records))

    def _records_for(self, algorithm: str) -> list[DeviationRecord]:
        records = [r for r in self.records if r.algorithm == algorithm]
        if not records:
            raise ExperimentError(f"no records for algorithm {algorithm!r}")
        return records

    def worst_case(self, algorithm: str) -> tuple[float, float]:
        """Worst (execution, penalty) deviation -- the paper's metric."""
        records = self._records_for(algorithm)
        return (
            max(r.execution_deviation for r in records),
            max(r.penalty_deviation for r in records),
        )

    def worst_penalty_gap(self, algorithm: str) -> float:
        """Worst load-normalised penalty gap (scale-stable fairness metric)."""
        records = self._records_for(algorithm)
        return max(r.penalty_gap_vs_load for r in records)

    def mean(self, algorithm: str) -> tuple[float, float]:
        """Mean (execution, penalty) deviation."""
        records = self._records_for(algorithm)
        count = len(records)
        return (
            sum(r.execution_deviation for r in records) / count,
            sum(r.penalty_deviation for r in records) / count,
        )

    def table(self) -> TextTable:
        """One row per algorithm: worst-case and mean deviations."""
        table = TextTable(
            [
                "algorithm",
                "worst_exec_dev",
                "worst_penalty_dev",
                "worst_pen_gap/load",
                "mean_exec_dev",
                "mean_penalty_dev",
            ],
            title=(
                f"deviation from best of {self.samples} sampled solutions "
                f"({self.config.describe()})"
            ),
        )
        for name in self.algorithms():
            worst = self.worst_case(name)
            mean = self.mean(name)
            table.add_row(
                [
                    name,
                    format_percent(worst[0]),
                    format_percent(worst[1]),
                    format_percent(self.worst_penalty_gap(name)),
                    format_percent(mean[0]),
                    format_percent(mean[1]),
                ]
            )
        return table


class QualityProtocol:
    """Run the deviation-from-sampled-best assessment.

    Parameters
    ----------
    algorithms:
        Suite to assess (names or instances).
    experiments:
        Number of independent instances (paper: 50).
    samples:
        Random mappings sampled per instance (paper: 32 000). The
        defaults are scaled down so the protocol runs in seconds; pass
        the paper values for a full-fidelity run.
    budget:
        Optional :class:`~repro.algorithms.runtime.SearchBudget`
        applied to every assessed deploy call (the sampling baseline
        itself is left unbudgeted -- it defines the reference the
        deviations are measured against).
    sample_block:
        Draws the sampling baseline scores per batch kernel call --
        forwarded to :class:`~repro.algorithms.sampling.SolutionSampler`
        (results are bit-identical for every block size).
    """

    def __init__(
        self,
        algorithms: Sequence[str | DeploymentAlgorithm] = DEFAULT_ALGORITHMS,
        experiments: int = 10,
        samples: int = 2_000,
        budget: SearchBudget | None = None,
        sample_block: int = DEFAULT_SAMPLE_BLOCK,
    ):
        if experiments < 1:
            raise ExperimentError("experiments must be >= 1")
        self._algorithms: list[tuple[str, DeploymentAlgorithm]] = []
        for entry in algorithms:
            if isinstance(entry, DeploymentAlgorithm):
                self._algorithms.append((entry.name, entry))
            else:
                self._algorithms.append((entry, get_algorithm(entry)()))
        self.experiments = experiments
        self.sampler = SolutionSampler(samples, block=sample_block)
        self.budget = budget

    def run(self, config: ExperimentConfig) -> QualityReport:
        """Assess the suite on *config*'s instance family."""
        report = QualityReport(config=config, samples=self.sampler.samples)
        for experiment in range(self.experiments):
            workflow, network = config.instance(experiment)
            cost_model = CostModel(workflow, network)
            sample_rng = coerce_rng(f"{config.seed}:{experiment}:sample")
            statistics = self.sampler.run(
                workflow, network, cost_model, sample_rng
            )
            for name, algorithm in self._algorithms:
                rng = coerce_rng(f"{config.seed}:{experiment}:{name}")
                deployment, run_report = algorithm.deploy_with_report(
                    workflow,
                    network,
                    cost_model=cost_model,
                    rng=rng,
                    budget=self.budget,
                )
                cost = cost_model.evaluate(deployment)
                report.records.append(
                    DeviationRecord(
                        algorithm=name,
                        experiment=experiment,
                        execution_deviation=statistics.execution_deviation(
                            cost
                        ),
                        penalty_deviation=statistics.penalty_deviation(cost),
                        penalty_gap_vs_load=statistics.penalty_gap_vs_load(
                            cost
                        ),
                        report=run_report,
                    )
                )
        return report
