"""Experiment harness reproducing the paper's evaluation (section 4).

* :mod:`repro.experiments.runner` -- generate instances, run algorithm
  suites over repetitions, aggregate (Texecute, TimePenalty) points.
* :mod:`repro.experiments.classes` -- the Class A / B / C experiment
  definitions of section 4.1.
* :mod:`repro.experiments.quality` -- the 32 000-sample deviation-from-
  best protocol behind the paper's "(2.9 %, 12 %)" quality numbers.
* :mod:`repro.experiments.reporting` -- plain-text tables and CSV series
  mirroring the rows behind the paper's figures.
* :mod:`repro.experiments.multi_workflow` -- the section 6 future-work
  extension: deploying several workflows jointly.
"""

from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentResult,
    ExperimentRunner,
    RunRecord,
    DEFAULT_ALGORITHMS,
)
from repro.experiments.classes import (
    class_a_configs,
    class_b_configs,
    class_c_configs,
    FIG6_BUS_SPEEDS,
)
from repro.experiments.quality import QualityProtocol, QualityReport
from repro.experiments.reporting import (
    TextTable,
    scatter_table,
    ascii_scatter,
    format_seconds,
)
from repro.experiments.multi_workflow import (
    combine_workflows,
    deploy_workflows,
)
from repro.experiments.failover import (
    remove_server,
    replace_orphans,
    analyze_failure,
    FailureReport,
    failover_table,
)
from repro.experiments.stats import (
    SummaryStats,
    summarize,
    win_matrix,
    comparison_table,
)
from repro.experiments.pareto import (
    pareto_front,
    distance_to_origin,
    rank_by_distance,
    weight_sensitivity_table,
)
from repro.experiments.incremental import (
    patch_deployment,
    AdaptationReport,
    adaptation_report,
)
from repro.experiments.figures import ReproductionScale, reproduce_all
from repro.experiments.claims import (
    Claim,
    ClaimReport,
    PAPER_CLAIMS,
    verify_claims,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentRunner",
    "RunRecord",
    "DEFAULT_ALGORITHMS",
    "class_a_configs",
    "class_b_configs",
    "class_c_configs",
    "FIG6_BUS_SPEEDS",
    "QualityProtocol",
    "QualityReport",
    "TextTable",
    "scatter_table",
    "format_seconds",
    "combine_workflows",
    "deploy_workflows",
    "ascii_scatter",
    "remove_server",
    "replace_orphans",
    "analyze_failure",
    "FailureReport",
    "failover_table",
    "SummaryStats",
    "summarize",
    "win_matrix",
    "comparison_table",
    "pareto_front",
    "distance_to_origin",
    "rank_by_distance",
    "weight_sensitivity_table",
    "patch_deployment",
    "AdaptationReport",
    "adaptation_report",
    "ReproductionScale",
    "reproduce_all",
    "Claim",
    "ClaimReport",
    "PAPER_CLAIMS",
    "verify_claims",
]
