"""One-call reproduction of every figure/table of the paper's evaluation.

The benchmark harness (``pytest benchmarks/``) times the experiments;
this module is the *library* entry point for the same data: call
:func:`reproduce_all` (or the per-figure functions) and get the tables
written to a directory -- also exposed as ``python -m repro figures``.

Two scales:

* ``"quick"`` -- minutes-of-seconds defaults (10 repetitions, 10x2000
  quality sampling), good for CI and exploration;
* ``"paper"`` -- the paper's protocol sizes (50 experiments x 32 000
  samples for the quality assessment), which takes tens of minutes.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.exceptions import ExperimentError
from repro.experiments.classes import FIG6_BUS_SPEEDS
from repro.experiments.pareto import weight_sensitivity_table
from repro.experiments.quality import QualityProtocol
from repro.experiments.reporting import ascii_scatter, scatter_table
from repro.experiments.runner import (
    DEFAULT_ALGORITHMS,
    ExperimentConfig,
    ExperimentRunner,
)

__all__ = ["ReproductionScale", "reproduce_all", "FIGURES"]


@dataclass(frozen=True)
class ReproductionScale:
    """Protocol sizes for one reproduction run."""

    repetitions: int
    quality_experiments: int
    quality_samples: int

    @classmethod
    def named(cls, name: str) -> "ReproductionScale":
        """``"quick"`` or ``"paper"``."""
        scales = {
            "quick": cls(
                repetitions=10, quality_experiments=10, quality_samples=2_000
            ),
            "paper": cls(
                repetitions=50,
                quality_experiments=50,
                quality_samples=32_000,
            ),
        }
        if name not in scales:
            raise ExperimentError(
                f"unknown scale {name!r}; expected one of {sorted(scales)}"
            )
        return scales[name]


def _write(output_dir: Path, name: str, *chunks) -> Path:
    output_dir.mkdir(parents=True, exist_ok=True)
    path = output_dir / f"{name}.txt"
    path.write_text("\n\n".join(str(chunk) for chunk in chunks) + "\n")
    return path


def fig6(output_dir: Path, scale: ReproductionScale) -> list[Path]:
    """Fig. 6: Line--Bus suite per bus speed, plus weight sensitivity."""
    runner = ExperimentRunner(DEFAULT_ALGORITHMS + ("Random",))
    paths = []
    for speed in FIG6_BUS_SPEEDS:
        config = ExperimentConfig(
            workflow_kind="line",
            num_operations=19,
            num_servers=5,
            bus_speed_bps=speed,
            repetitions=scale.repetitions,
            seed=42,
        )
        result = runner.run(config)
        points = result.scatter_points()
        paths.append(
            _write(
                output_dir,
                f"fig6_line_bus_{speed / 1e6:g}Mbps",
                result.summary_table(),
                scatter_table(points),
                ascii_scatter(points, title=config.describe()),
            )
        )
        if speed == FIG6_BUS_SPEEDS[0]:
            paths.append(
                _write(
                    output_dir,
                    "fig6_weight_sensitivity",
                    weight_sensitivity_table(result),
                )
            )
    return paths


def fig7_fig8(output_dir: Path, scale: ReproductionScale) -> list[Path]:
    """Figs. 7-8: Graph--Bus suite, pooled and per structure."""
    runner = ExperimentRunner(DEFAULT_ALGORITHMS)
    paths = []
    for speed in FIG6_BUS_SPEEDS:
        pooled: dict[str, list[tuple[float, float]]] = {}
        for kind in ("bushy", "lengthy", "hybrid"):
            config = ExperimentConfig(
                workflow_kind=kind,
                num_operations=19,
                num_servers=5,
                bus_speed_bps=speed,
                repetitions=scale.repetitions,
                seed=99,
            )
            result = runner.run(config)
            for name, points in result.scatter_points().items():
                pooled.setdefault(name, []).extend(points)
            paths.append(
                _write(
                    output_dir,
                    f"fig8_{kind}_{speed / 1e6:g}Mbps",
                    result.summary_table(),
                )
            )
        paths.append(
            _write(
                output_dir,
                f"fig7_graph_bus_{speed / 1e6:g}Mbps",
                scatter_table(pooled),
                ascii_scatter(pooled, title=f"graph/bus {speed / 1e6:g}Mbps"),
            )
        )
    return paths


def quality_tables(output_dir: Path, scale: ReproductionScale) -> list[Path]:
    """The section 4.2 deviation-from-sampled-best tables."""
    protocol = QualityProtocol(
        algorithms=DEFAULT_ALGORITHMS,
        experiments=scale.quality_experiments,
        samples=scale.quality_samples,
    )
    paths = []
    for kind, seed in (("line", 55), ("hybrid", 56)):
        for speed in FIG6_BUS_SPEEDS:
            config = ExperimentConfig(
                workflow_kind=kind,
                num_operations=19,
                num_servers=5,
                bus_speed_bps=speed,
                repetitions=1,
                seed=seed,
            )
            paths.append(
                _write(
                    output_dir,
                    f"quality_{kind}_{speed / 1e6:g}Mbps",
                    protocol.run(config).table(),
                )
            )
    return paths


#: Every reproduction step, by name (used by the CLI's ``figures``).
FIGURES: dict[str, Callable[[Path, ReproductionScale], list[Path]]] = {
    "fig6": fig6,
    "fig7_fig8": fig7_fig8,
    "quality": quality_tables,
}


def reproduce_all(
    output_dir: str | Path, scale: str | ReproductionScale = "quick"
) -> list[Path]:
    """Write every reproduced figure/table under *output_dir*.

    Returns the written paths, in generation order.
    """
    if isinstance(scale, str):
        scale = ReproductionScale.named(scale)
    output = Path(output_dir)
    paths: list[Path] = []
    for producer in FIGURES.values():
        paths.extend(producer(output, scale))
    return paths
