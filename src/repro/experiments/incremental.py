"""Incremental adaptation of deployments to workflow changes (§3.2).

Section 3.2 observes that "a small change to this setting (say, an
additional operation or server) may change the properties" of a good
deployment. In production nobody redeploys fifteen services because one
was added; this module provides the middle ground:

* :func:`patch_deployment` -- keep every existing assignment, place only
  the new operations (worst-fit against remaining capacity budgets, the
  same policy as failover's orphan re-homing) and drop assignments of
  removed operations;
* :func:`adaptation_report` -- compare that patch against a full
  re-deployment with any algorithm: cost of each, and how many
  operations the full re-deployment would move (the churn the patch
  avoids).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import DeploymentAlgorithm
from repro.core.cost import CostBreakdown, CostModel
from repro.core.mapping import Deployment
from repro.core.workflow import Workflow
from repro.network.topology import ServerNetwork

__all__ = ["patch_deployment", "AdaptationReport", "adaptation_report"]


def patch_deployment(
    new_workflow: Workflow,
    network: ServerNetwork,
    old_deployment: Deployment,
    cost_model: CostModel | None = None,
) -> Deployment:
    """Adapt *old_deployment* to *new_workflow* with minimal moves.

    Assignments for operations that still exist are kept verbatim;
    assignments for operations that disappeared are dropped; operations
    new to the workflow are placed heaviest-first on the server with the
    most remaining capacity-proportional budget.
    """
    if cost_model is None:
        cost_model = CostModel(new_workflow, network)
    patched = Deployment(
        {
            operation: server
            for operation, server in old_deployment
            if operation in new_workflow
        }
    )
    additions = [
        name for name in new_workflow.operation_names if name not in patched
    ]
    budgets: dict[str, float] = {}
    for server in network.server_names:
        hosted = sum(
            new_workflow.operation(op).cycles
            * cost_model.node_probability(op)
            for op in patched.operations_on(server)
        )
        budgets[server] = cost_model.ideal_cycles(server) - hosted
    rank = {name: i for i, name in enumerate(network.server_names)}
    additions.sort(key=lambda op: -new_workflow.operation(op).cycles)
    for operation in additions:
        target = max(budgets, key=lambda s: (budgets[s], -rank[s]))
        patched.assign(operation, target)
        budgets[target] -= (
            new_workflow.operation(operation).cycles
            * cost_model.node_probability(operation)
        )
    return patched


@dataclass(frozen=True)
class AdaptationReport:
    """Patch-in-place vs full re-deployment after a workflow change.

    Attributes
    ----------
    patched, redeployed:
        The two candidate deployments.
    patched_cost, redeployed_cost:
        Their evaluations on the new workflow.
    moved_by_redeployment:
        Operations the full re-deployment places differently from the
        old mapping -- the churn the patch avoids (new operations are
        not counted as moves).
    """

    patched: Deployment
    redeployed: Deployment
    patched_cost: CostBreakdown
    redeployed_cost: CostBreakdown
    moved_by_redeployment: tuple[str, ...]

    @property
    def patch_overhead(self) -> float:
        """Relative objective overhead of patching vs re-deploying.

        0.05 means the minimal-churn patch is 5 % worse; negative values
        mean the patch actually beat the re-deployment.
        """
        baseline = self.redeployed_cost.objective
        if baseline <= 0:
            return 0.0
        return self.patched_cost.objective / baseline - 1.0


def adaptation_report(
    new_workflow: Workflow,
    network: ServerNetwork,
    old_deployment: Deployment,
    algorithm: DeploymentAlgorithm,
    rng=None,
) -> AdaptationReport:
    """Compare patching against re-deploying with *algorithm*."""
    cost_model = CostModel(new_workflow, network)
    patched = patch_deployment(
        new_workflow, network, old_deployment, cost_model=cost_model
    )
    redeployed = algorithm.deploy(
        new_workflow, network, cost_model=cost_model, rng=rng
    )
    moved = tuple(
        name
        for name in new_workflow.operation_names
        if old_deployment.get(name) is not None
        and redeployed.server_of(name) != old_deployment.get(name)
    )
    return AdaptationReport(
        patched=patched,
        redeployed=redeployed,
        patched_cost=cost_model.evaluate(patched),
        redeployed_cost=cost_model.evaluate(redeployed),
        moved_by_redeployment=moved,
    )
