"""Plain-text tables and CSV series for experiment output.

The paper's figures are scatter plots of (execution time, time penalty)
per algorithm; without a plotting dependency we report the same data as
aligned text tables and CSV, which is what the benchmark harness prints.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = [
    "TextTable",
    "scatter_table",
    "ascii_scatter",
    "format_seconds",
    "format_percent",
]


def format_seconds(value: float) -> str:
    """Human-scaled seconds: picks ms/us when small, fixed precision."""
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1.0:
        return f"{value:.3f} s"
    if magnitude >= 1e-3:
        return f"{value * 1e3:.3f} ms"
    if magnitude >= 1e-6:
        return f"{value * 1e6:.3f} us"
    return f"{value * 1e9:.3f} ns"


def format_percent(fraction: float) -> str:
    """0.029 -> ``2.9%``."""
    return f"{fraction * 100:.1f}%"


class TextTable:
    """A minimal aligned text table with CSV export.

    Parameters
    ----------
    headers:
        Column titles.
    title:
        Optional table caption printed above the header row.
    """

    def __init__(self, headers: Sequence[str], title: str | None = None):
        self.headers = list(headers)
        self.title = title
        self._rows: list[list[str]] = []

    def add_row(self, cells: Iterable[object]) -> None:
        """Append one row; cells are stringified."""
        row = [str(cell) for cell in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} "
                f"columns"
            )
        self._rows.append(row)

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def rows(self) -> list[list[str]]:
        """A copy of the current rows."""
        return [list(row) for row in self._rows]

    def render(self) -> str:
        """The aligned text rendering."""
        widths = [len(h) for h in self.headers]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(cell.ljust(w) for cell, w in zip(cells, widths))

        parts = []
        if self.title:
            parts.append(self.title)
        parts.append(line(self.headers))
        parts.append(line(["-" * w for w in widths]))
        parts.extend(line(row) for row in self._rows)
        return "\n".join(parts)

    def to_csv(self) -> str:
        """Comma-separated export (no quoting; cells must be simple)."""
        rows = [",".join(self.headers)]
        rows.extend(",".join(row) for row in self._rows)
        return "\n".join(rows)

    def __str__(self) -> str:
        return self.render()


def scatter_table(
    points_per_algorithm: Mapping[str, Sequence[tuple[float, float]]],
    title: str | None = None,
) -> TextTable:
    """Tabulate figure-style scatter data.

    *points_per_algorithm* maps algorithm name to its
    ``(execution_time, time_penalty)`` points; one output row per point,
    in seconds, mirroring the axes of Figs. 6-8.
    """
    table = TextTable(
        ["algorithm", "execution_time_s", "time_penalty_s"], title=title
    )
    for name, points in points_per_algorithm.items():
        for execution, penalty in points:
            table.add_row([name, f"{execution:.6g}", f"{penalty:.6g}"])
    return table


def ascii_scatter(
    points_per_algorithm: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 20,
    title: str | None = None,
) -> str:
    """Render figure-style scatter data as a character plot.

    X axis: execution time; Y axis: time penalty (both in seconds, as in
    Figs. 6-8 -- "the closer a solution is to point (0,0), the better").
    Each algorithm gets a letter marker; collisions show ``*``. Axes are
    anchored at 0 so the distance-to-origin reading survives.
    """
    if width < 8 or height < 4:
        raise ValueError("plot area too small (need width >= 8, height >= 4)")
    all_points = [
        point
        for points in points_per_algorithm.values()
        for point in points
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    if not all_points:
        lines.append("(no points)")
        return "\n".join(lines)

    x_max = max(x for x, _ in all_points) or 1.0
    y_max = max(y for _, y in all_points) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = {}
    letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    for index, name in enumerate(points_per_algorithm):
        markers[name] = letters[index % len(letters)]
    for name, points in points_per_algorithm.items():
        marker = markers[name]
        for x, y in points:
            column = min(width - 1, int(x / x_max * (width - 1)))
            row = height - 1 - min(height - 1, int(y / y_max * (height - 1)))
            cell = grid[row][column]
            grid[row][column] = marker if cell in (" ", marker) else "*"

    lines.append(f"time penalty (0 .. {y_max:.4g} s)")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" execution time (0 .. {x_max:.4g} s)")
    legend = "  ".join(
        f"{marker}={name}" for name, marker in markers.items()
    )
    lines.append(f"legend: {legend}  (*=overlap)")
    return "\n".join(lines)
