"""Joint deployment of multiple workflows (section 6 future work).

"Future extensions of this work involve the case of multiple workflows
(instead of just a single one)." This module provides that extension in
the simplest faithful way: the workflows are combined into one disjoint-
union DAG (each original workflow becomes an independent weakly-connected
component, its operation names prefixed to stay unique) and any
registered deployment algorithm runs on the union.

Semantics carried by the existing cost model:

* ``Load(s)`` naturally accumulates across workflows -- fairness is then
  judged over the *combined* load, which is exactly what a provider
  hosting several workflows cares about;
* ``Texecute`` of the union is the max over the component workflows
  (they start together and run concurrently), since the forward pass
  takes the latest finish over all exit operations.

Line-topology-specific algorithms (``Line-Line``) do not apply to a
union (it is not a line); the Fair-Load family and HOLM work unchanged.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping, Sequence

from repro.algorithms.base import DeploymentAlgorithm
from repro.core.cost import CostModel
from repro.core.mapping import Deployment
from repro.core.workflow import Workflow
from repro.exceptions import ExperimentError
from repro.network.topology import ServerNetwork

__all__ = ["combine_workflows", "split_deployment", "deploy_workflows"]


def combine_workflows(
    workflows: Sequence[Workflow], name: str = "combined"
) -> Workflow:
    """Disjoint union of *workflows* with prefixed operation names.

    Operation ``op`` of the i-th workflow (0-based) becomes
    ``w{i}.{op}``. Messages are copied with the same renaming; structure
    and probabilities are untouched.
    """
    if not workflows:
        raise ExperimentError("at least one workflow is required")
    combined = Workflow(name)
    for index, workflow in enumerate(workflows):
        prefix = f"w{index}."
        for operation in workflow.operations:
            combined.add_operation(
                replace(operation, name=prefix + operation.name)
            )
        for message in workflow.messages:
            combined.add_transition(
                replace(
                    message,
                    source=prefix + message.source,
                    target=prefix + message.target,
                )
            )
    return combined


def split_deployment(
    combined: Deployment, workflows: Sequence[Workflow]
) -> list[Deployment]:
    """Project a union deployment back onto the original workflows."""
    deployments = []
    for index, workflow in enumerate(workflows):
        prefix = f"w{index}."
        deployments.append(
            Deployment(
                {
                    name: combined.server_of(prefix + name)
                    for name in workflow.operation_names
                }
            )
        )
    return deployments


def deploy_workflows(
    workflows: Sequence[Workflow],
    network: ServerNetwork,
    algorithm: DeploymentAlgorithm,
    rng=None,
) -> tuple[list[Deployment], Mapping[str, float]]:
    """Deploy several workflows jointly; returns per-workflow mappings.

    Returns
    -------
    (deployments, loads):
        One :class:`Deployment` per input workflow (in order), plus the
        combined per-server load in seconds, so callers can check that
        fairness holds across the whole hosted portfolio.
    """
    combined = combine_workflows(workflows)
    cost_model = CostModel(combined, network)
    deployment = algorithm.deploy(
        combined, network, cost_model=cost_model, rng=rng
    )
    return (
        split_deployment(deployment, workflows),
        cost_model.loads(deployment),
    )
