"""Statistical summaries for experiment results.

The paper reports means and worst cases; a reproduction should also say
how sure it is. This module adds:

* :func:`summarize` -- mean / standard deviation / Student-t confidence
  interval for a sample of measurements;
* :func:`win_matrix` -- per-instance pairwise win counts between
  algorithms (who beats whom, how often) over an
  :class:`~repro.experiments.runner.ExperimentResult`;
* :func:`comparison_table` -- the above as a printable table.

Uses :mod:`scipy.stats` for the t quantile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy import stats as scipy_stats

from repro.exceptions import ExperimentError
from repro.experiments.reporting import TextTable, format_seconds
from repro.experiments.runner import ExperimentResult

__all__ = ["SummaryStats", "summarize", "win_matrix", "comparison_table"]


@dataclass(frozen=True)
class SummaryStats:
    """Mean, spread and confidence interval of one sample."""

    count: int
    mean: float
    std: float
    ci_low: float
    ci_high: float
    confidence: float

    @property
    def half_width(self) -> float:
        """Half the confidence interval's width."""
        return (self.ci_high - self.ci_low) / 2

    def format(self) -> str:
        """``mean ± half-width`` with time formatting."""
        return (
            f"{format_seconds(self.mean)} +/- "
            f"{format_seconds(self.half_width)}"
        )


def summarize(
    samples: Sequence[float], confidence: float = 0.95
) -> SummaryStats:
    """Mean, sample std and Student-t confidence interval of *samples*."""
    if not samples:
        raise ExperimentError("cannot summarise an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ExperimentError("confidence must lie strictly in (0, 1)")
    n = len(samples)
    mean = sum(samples) / n
    if n == 1:
        return SummaryStats(1, mean, 0.0, mean, mean, confidence)
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    std = math.sqrt(variance)
    t = float(scipy_stats.t.ppf(0.5 + confidence / 2, df=n - 1))
    half = t * std / math.sqrt(n)
    return SummaryStats(n, mean, std, mean - half, mean + half, confidence)


def win_matrix(
    result: ExperimentResult, metric: str = "execution"
) -> dict[tuple[str, str], int]:
    """Per-instance pairwise wins: ``matrix[(a, b)]`` counts instances
    where algorithm *a* strictly beats *b* on *metric*.

    *metric* is ``"execution"``, ``"penalty"`` or ``"objective"``.
    """
    extractors = {
        "execution": lambda record: record.cost.execution_time,
        "penalty": lambda record: record.cost.time_penalty,
        "objective": lambda record: record.cost.objective,
    }
    if metric not in extractors:
        raise ExperimentError(
            f"metric must be one of {sorted(extractors)}, got {metric!r}"
        )
    extract = extractors[metric]
    algorithms = result.algorithms()
    by_repetition: dict[int, dict[str, float]] = {}
    for record in result.records:
        by_repetition.setdefault(record.repetition, {})[record.algorithm] = (
            extract(record)
        )
    matrix = {
        (a, b): 0 for a in algorithms for b in algorithms if a != b
    }
    for values in by_repetition.values():
        for a in algorithms:
            for b in algorithms:
                if a != b and values[a] < values[b]:
                    matrix[(a, b)] += 1
    return matrix


def comparison_table(
    result: ExperimentResult,
    metric: str = "execution",
    confidence: float = 0.95,
) -> TextTable:
    """Mean ± CI per algorithm plus total pairwise wins on *metric*."""
    extractors = {
        "execution": lambda record: record.cost.execution_time,
        "penalty": lambda record: record.cost.time_penalty,
        "objective": lambda record: record.cost.objective,
    }
    if metric not in extractors:
        raise ExperimentError(
            f"metric must be one of {sorted(extractors)}, got {metric!r}"
        )
    extract = extractors[metric]
    matrix = win_matrix(result, metric)
    table = TextTable(
        ["algorithm", f"{metric} (mean +/- CI{confidence:.0%})", "wins"],
        title=result.config.describe(),
    )
    for name in result.algorithms():
        samples = [extract(r) for r in result.records_for(name)]
        wins = sum(
            count for (a, _b), count in matrix.items() if a == name
        )
        table.add_row([name, summarize(samples, confidence).format(), wins])
    return table
