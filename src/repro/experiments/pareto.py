"""Pareto analysis of the two-metric solution space (section 4.2).

The paper's figures plot solutions in the (execution time, time penalty)
plane and note: "The closer a solution is to point (0,0), the better it
is. Assuming different weights for the two measures, different distance
measures could also be considered." This module provides exactly that
toolkit over experiment records:

* :func:`pareto_front` -- the non-dominated subset;
* :func:`distance_to_origin` -- weighted Lp distance of one cost point;
* :func:`rank_by_distance` -- order algorithms by mean weighted distance,
  so the sensitivity of "who wins" to the weighting can be studied
  (:func:`weight_sensitivity_table`).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.cost import CostBreakdown
from repro.exceptions import ExperimentError
from repro.experiments.reporting import TextTable
from repro.experiments.runner import ExperimentResult, RunRecord

__all__ = [
    "pareto_front",
    "distance_to_origin",
    "rank_by_distance",
    "weight_sensitivity_table",
]


def pareto_front(records: Sequence[RunRecord]) -> list[RunRecord]:
    """Non-dominated records in the (Texecute, TimePenalty) plane.

    Sorted by execution time ascending. Duplicated cost points are kept
    once (the first occurrence wins).
    """
    front: list[RunRecord] = []
    for candidate in records:
        if any(kept.cost.dominates(candidate.cost) for kept in front):
            continue
        duplicate = any(
            kept.cost.execution_time == candidate.cost.execution_time
            and kept.cost.time_penalty == candidate.cost.time_penalty
            for kept in front
        )
        if duplicate:
            continue
        front = [
            kept for kept in front if not candidate.cost.dominates(kept.cost)
        ]
        front.append(candidate)
    front.sort(
        key=lambda record: (
            record.cost.execution_time,
            record.cost.time_penalty,
        )
    )
    return front


def distance_to_origin(
    cost: CostBreakdown,
    execution_weight: float = 1.0,
    penalty_weight: float = 1.0,
    order: float = 2.0,
) -> float:
    """Weighted Lp distance of *cost* from the ideal point (0, 0).

    ``order=2`` is the Euclidean reading of the figures; ``order=1``
    recovers (up to the weights) the paper's weighted-sum objective;
    large orders approach the weighted max.
    """
    if execution_weight < 0 or penalty_weight < 0:
        raise ExperimentError("weights must be >= 0")
    if order < 1:
        raise ExperimentError("order must be >= 1")
    x = execution_weight * cost.execution_time
    y = penalty_weight * cost.time_penalty
    if order == float("inf"):
        return max(x, y)
    return (x**order + y**order) ** (1.0 / order)


def rank_by_distance(
    result: ExperimentResult,
    execution_weight: float = 1.0,
    penalty_weight: float = 1.0,
    order: float = 2.0,
) -> list[tuple[str, float]]:
    """Algorithms ordered by mean weighted distance to (0, 0), best first."""
    rankings = []
    for name in result.algorithms():
        records = result.records_for(name)
        mean = sum(
            distance_to_origin(
                record.cost, execution_weight, penalty_weight, order
            )
            for record in records
        ) / len(records)
        rankings.append((name, mean))
    rankings.sort(key=lambda pair: pair[1])
    return rankings


def weight_sensitivity_table(
    result: ExperimentResult,
    weight_pairs: Sequence[tuple[float, float]] = (
        (1.0, 0.0),
        (1.0, 1.0),
        (1.0, 10.0),
        (0.0, 1.0),
    ),
    order: float = 2.0,
) -> TextTable:
    """Who wins under each (execution, penalty) weighting.

    One row per weight pair: the winner and the full ranking -- showing
    how the paper's conclusion shifts as fairness gains importance.
    """
    table = TextTable(
        ["exec_weight", "penalty_weight", "winner", "ranking"],
        title=f"weight sensitivity ({result.config.describe()})",
    )
    for execution_weight, penalty_weight in weight_pairs:
        rankings = rank_by_distance(
            result, execution_weight, penalty_weight, order
        )
        table.add_row(
            [
                f"{execution_weight:g}",
                f"{penalty_weight:g}",
                rankings[0][0],
                " > ".join(name for name, _ in rankings),
            ]
        )
    return table
