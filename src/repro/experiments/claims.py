"""The paper's qualitative claims, encoded as checkable predicates.

Every sentence of the section 4 narrative that this reproduction targets
is a :class:`Claim`: an id, the paper's wording, and a predicate over
freshly run experiments. :func:`verify_claims` runs the whole battery
and reports pass/fail per claim -- "reproduction status" as an
executable artefact rather than prose (also exposed as
``python -m repro claims``).

The integration test suite asserts the same facts with finer-grained
diagnostics; this module is the one-shot, user-facing version.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.experiments.quality import QualityProtocol
from repro.experiments.reporting import TextTable
from repro.experiments.runner import (
    DEFAULT_ALGORITHMS,
    ExperimentConfig,
    ExperimentResult,
    ExperimentRunner,
)

__all__ = ["Claim", "ClaimReport", "PAPER_CLAIMS", "verify_claims"]

HOLM = "HeavyOps-LargeMsgs"
SLOW, FAST = 1e6, 100e6


@dataclass(frozen=True)
class Claim:
    """One checkable sentence of the paper's evaluation narrative."""

    id: str
    text: str
    check: Callable[["_Evidence"], bool]


class _Evidence:
    """Lazily computed experiment results shared by all claim checks."""

    def __init__(self, repetitions: int, seed: int, quality_samples: int):
        self.repetitions = repetitions
        self.seed = seed
        self.quality_samples = quality_samples
        self._results: dict[tuple[str, float], ExperimentResult] = {}
        self._runner = ExperimentRunner(DEFAULT_ALGORITHMS + ("Random",))

    def result(self, kind: str, speed: float) -> ExperimentResult:
        """The suite's result on one (workflow kind, bus speed) panel."""
        key = (kind, speed)
        if key not in self._results:
            self._results[key] = self._runner.run(
                ExperimentConfig(
                    workflow_kind=kind,
                    num_operations=19,
                    num_servers=5,
                    bus_speed_bps=speed,
                    repetitions=self.repetitions,
                    seed=self.seed,
                )
            )
        return self._results[key]

    def quality_report(self, kind: str, speed: float, algorithm: str):
        """The §4.1 deviation report for one algorithm on one panel."""
        protocol = QualityProtocol(
            algorithms=(algorithm,),
            experiments=max(3, self.repetitions // 2),
            samples=self.quality_samples,
        )
        return protocol.run(
            ExperimentConfig(
                workflow_kind=kind,
                num_operations=19,
                num_servers=5,
                bus_speed_bps=speed,
                repetitions=1,
                seed=self.seed + 13,
            )
        )


def _holm_fastest_on(kind: str):
    def check(evidence: _Evidence) -> bool:
        result = evidence.result(kind, SLOW)
        holm = result.mean_execution_time(HOLM)
        return all(
            holm < result.mean_execution_time(name)
            for name in result.algorithms()
            if name != HOLM
        )

    return check


def _tie_resolvers_improve(evidence: _Evidence) -> bool:
    result = evidence.result("line", SLOW)
    fair = result.mean_execution_time("FairLoad")
    return (
        result.mean_execution_time("FL-TieResolver") < fair
        and result.mean_execution_time("FL-TieResolver2") < fair
    )


def _flmme_trades_fairness(evidence: _Evidence) -> bool:
    result = evidence.result("line", SLOW)
    return (
        result.mean_execution_time("FL-MergeMsgEnds")
        < result.mean_execution_time("FL-TieResolver2")
        and result.mean_time_penalty("FL-MergeMsgEnds")
        > result.mean_time_penalty("FL-TieResolver2")
    )


def _fast_bus_converges(evidence: _Evidence) -> bool:
    result = evidence.result("line", FAST)
    times = [result.mean_execution_time(name) for name in DEFAULT_ALGORITHMS]
    return max(times) / min(times) < 1.10


def _holm_fair_on_fast_bus(evidence: _Evidence) -> bool:
    result = evidence.result("line", FAST)
    best = min(result.mean_time_penalty(name) for name in DEFAULT_ALGORITHMS)
    return result.mean_time_penalty(HOLM) <= best * 1.25 + 1e-12


def _holm_stable_across_structures(evidence: _Evidence) -> bool:
    return all(
        evidence.result(kind, SLOW).winner_by_execution() == HOLM
        for kind in ("bushy", "lengthy", "hybrid")
    )


def _holm_quality_slow_bus(evidence: _Evidence) -> bool:
    report = evidence.quality_report("line", SLOW, HOLM)
    worst_exec, _ = report.worst_case(HOLM)
    return worst_exec <= 0.10


def _holm_quality_fast_bus(evidence: _Evidence) -> bool:
    # judged through the load-normalised gap: the raw relative penalty
    # deviation is ill-conditioned when the sampled best is near 0
    report = evidence.quality_report("line", FAST, HOLM)
    return report.worst_penalty_gap(HOLM) <= 0.05


#: The section 4 narrative, claim by claim.
PAPER_CLAIMS: tuple[Claim, ...] = (
    Claim(
        "holm-wins-line",
        "HeavyOps-LargeMsgs produces quite acceptable execution times, "
        "esp. for small bus capacities (Line-Bus, 1 Mbps)",
        _holm_fastest_on("line"),
    ),
    Claim(
        "tie-resolvers-improve",
        "Both Tie Resolver algorithms provide some improvements over "
        "Fair Load",
        _tie_resolvers_improve,
    ),
    Claim(
        "flmme-trades-fairness",
        "FL-Merge Messages' Ends improves the execution time by "
        "deteriorating the load balance",
        _flmme_trades_fairness,
    ),
    Claim(
        "fast-bus-converges",
        "With cheap communication (100 Mbps) the algorithms' execution "
        "times converge",
        _fast_bus_converges,
    ),
    Claim(
        "holm-fair-when-cheap",
        "On fast buses HeavyOps-LargeMsgs matches the best fairness "
        "(grouping never triggers)",
        _holm_fair_on_fast_bus,
    ),
    Claim(
        "holm-clear-winner-graphs",
        "For almost all graph configurations HeavyOps-LargeMsgs is a "
        "clear winner in execution time (bushy/lengthy/hybrid)",
        _holm_stable_across_structures,
    ),
    Claim(
        "holm-near-optimal-exec",
        "HeavyOps-LargeMsgs' execution time is near the best sampled "
        "solution on the 1 Mbps bus (paper: 2.9% worst case)",
        _holm_quality_slow_bus,
    ),
    Claim(
        "holm-near-optimal-fairness",
        "HeavyOps-LargeMsgs' fairness is near the best sampled solution "
        "on the 100 Mbps bus (paper: 0.3% worst case)",
        _holm_quality_fast_bus,
    ),
)


@dataclass
class ClaimReport:
    """Outcome of one :func:`verify_claims` run."""

    outcomes: list[tuple[Claim, bool]] = field(default_factory=list)

    @property
    def all_pass(self) -> bool:
        """True when every claim reproduced."""
        return all(passed for _, passed in self.outcomes)

    @property
    def passed(self) -> int:
        """Number of claims that reproduced."""
        return sum(1 for _, ok in self.outcomes if ok)

    def table(self) -> TextTable:
        """One row per claim: id, verdict, the paper's wording."""
        table = TextTable(
            ["claim", "verdict", "paper says"],
            title=(
                f"reproduction verdicts: {self.passed}/"
                f"{len(self.outcomes)} claims hold"
            ),
        )
        for claim, ok in self.outcomes:
            table.add_row(
                [claim.id, "PASS" if ok else "FAIL", claim.text]
            )
        return table


def verify_claims(
    repetitions: int = 8,
    seed: int = 42,
    quality_samples: int = 2_000,
    claims: tuple[Claim, ...] = PAPER_CLAIMS,
) -> ClaimReport:
    """Re-run the evaluation and judge every claim.

    Deterministic in *seed*; ~10 s at the defaults. A claim failing here
    means either the reproduction regressed or the chosen seed is an
    outlier -- the integration tests pin the same facts on fixed seeds,
    so investigate, don't re-roll.
    """
    evidence = _Evidence(repetitions, seed, quality_samples)
    report = ClaimReport()
    for claim in claims:
        report.outcomes.append((claim, bool(claim.check(evidence))))
    return report
