"""repro -- reproduction of *Efficient Deployment of Web Service Workflows*.

The library implements the ICDE 2007 paper by Stamkopoulos, Pitoura and
Vassiliadis end to end: the workflow/network/cost model of section 2, the
full suite of greedy deployment algorithms of section 3 (plus the
exhaustive and random baselines), a discrete-event simulator that
cross-checks the analytic cost model, the workload generators of section
4.1 (including the Class A/B/C parameter mixtures of Table 6) and an
experiment harness that regenerates every figure and table of the
evaluation.

Quickstart::

    from repro import (
        bus_network, line_workflow, CostModel, HeavyOpsLargeMsgs,
    )

    workflow = line_workflow(19, seed=7)
    network = bus_network([1e9, 2e9, 2e9, 3e9, 2e9], speed_bps=100e6)
    mapping = HeavyOpsLargeMsgs().deploy(workflow, network)
    print(CostModel(workflow, network).evaluate(mapping))
"""

from repro.core import (
    NodeKind,
    Operation,
    Message,
    Workflow,
    WorkflowBuilder,
    WellFormednessReport,
    check_well_formed,
    assert_well_formed,
    execution_probabilities,
    Deployment,
    CostModel,
    CostBreakdown,
    Constraint,
    MaxExecutionTime,
    MaxServerLoad,
    MaxTimePenalty,
    ConstraintSet,
)
from repro.network import (
    Server,
    Link,
    ServerNetwork,
    line_network,
    bus_network,
    star_network,
    ring_network,
    full_mesh_network,
    Router,
)
from repro.core.constraints import MaxResponseTime
from repro.core.analysis import (
    workflow_statistics,
    region_tree,
    extract_region,
    critical_path,
    CriticalPath,
    RegionNode,
)
from repro.algorithms import (
    DeploymentAlgorithm,
    algorithm_registry,
    get_algorithm,
    Exhaustive,
    RandomMapping,
    SolutionSampler,
    LineLine,
    FairLoad,
    FairLoadTieResolver,
    FairLoadTieResolver2,
    FairLoadMergeMessages,
    HeavyOpsLargeMsgs,
    HillClimbing,
    SimulatedAnnealing,
    BranchAndBound,
    GeneticAlgorithm,
)
from repro.simulation import SimulationEngine, SimulationResult
from repro.workloads import (
    MessageClass,
    SIMPLE_MESSAGE,
    MEDIUM_MESSAGE,
    COMPLEX_MESSAGE,
    line_workflow,
    random_graph_workflow,
    GraphStructure,
    ClassCParameters,
    healthcare_workflow,
    monitor_and_calibrate,
)

__version__ = "1.0.0"

__all__ = [
    # core
    "NodeKind",
    "Operation",
    "Message",
    "Workflow",
    "WorkflowBuilder",
    "WellFormednessReport",
    "check_well_formed",
    "assert_well_formed",
    "execution_probabilities",
    "Deployment",
    "CostModel",
    "CostBreakdown",
    "Constraint",
    "MaxExecutionTime",
    "MaxServerLoad",
    "MaxTimePenalty",
    "ConstraintSet",
    # network
    "Server",
    "Link",
    "ServerNetwork",
    "line_network",
    "bus_network",
    "star_network",
    "ring_network",
    "full_mesh_network",
    "Router",
    # algorithms
    "DeploymentAlgorithm",
    "algorithm_registry",
    "get_algorithm",
    "Exhaustive",
    "RandomMapping",
    "SolutionSampler",
    "LineLine",
    "FairLoad",
    "FairLoadTieResolver",
    "FairLoadTieResolver2",
    "FairLoadMergeMessages",
    "HeavyOpsLargeMsgs",
    "HillClimbing",
    "SimulatedAnnealing",
    "BranchAndBound",
    "GeneticAlgorithm",
    # analysis / constraints extensions
    "MaxResponseTime",
    "workflow_statistics",
    "region_tree",
    "extract_region",
    "critical_path",
    "CriticalPath",
    "RegionNode",
    # simulation
    "SimulationEngine",
    "SimulationResult",
    # workloads
    "MessageClass",
    "SIMPLE_MESSAGE",
    "MEDIUM_MESSAGE",
    "COMPLEX_MESSAGE",
    "line_workflow",
    "random_graph_workflow",
    "GraphStructure",
    "ClassCParameters",
    "healthcare_workflow",
    "monitor_and_calibrate",
    "__version__",
]
