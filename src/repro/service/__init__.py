"""The fleet controller service: long-running multi-tenant deployment.

The paper's algorithms place one workflow once. This package is the
layer its motivating scenario (section 2.1) actually calls for: a
provider that keeps a fleet of servers hosting many tenants' workflows
over time, absorbing arrivals, departures, server failures, new
capacity, and fairness drift -- deterministically, so every lifecycle
can be replayed and asserted upon byte for byte.

Modules
-------
:mod:`repro.service.events`
    The typed events the controller consumes.
:mod:`repro.service.state`
    :class:`FleetState`: the live fleet picture and its shared caches.
:mod:`repro.service.controller`
    :class:`FleetController`: the event loop and its policies.
:mod:`repro.service.log`
    The append-only decision log and the aggregate metrics snapshot.
:mod:`repro.service.scenarios`
    Seeded builtin scenarios and the replay driver behind
    ``repro fleet``.
:mod:`repro.service.queue`
    The priority work queue and the :class:`FleetService` façade --
    submit events, reprioritize queued-but-unstarted jobs, drain.
:mod:`repro.service.checkpoint`
    Durable checkpoints: verified serialise/replay/restore of a
    controller (plus any still-pending events).
:mod:`repro.service.server`
    The stdlib-only REST façade (``FleetApp`` + ``make_server``).
:mod:`repro.service.sharding`
    :class:`ShardRouter`: tenants hashed across N controller shards
    with per-shard rebalance budgets.
"""

from repro.service.checkpoint import (
    Checkpoint,
    load_checkpoint,
    restore_controller,
    write_checkpoint,
)
from repro.service.controller import FleetConfig, FleetController, StepClock
from repro.service.events import (
    DeployRequest,
    FleetEvent,
    ServerFailed,
    ServerJoined,
    Tick,
    UndeployRequest,
)
from repro.service.log import FleetLog, FleetMetrics, LogRecord, format_detail
from repro.service.queue import (
    DEFAULT_PRIORITIES,
    DRIFT_PRIORITY,
    PREEMPT_PRIORITY,
    FleetService,
    Job,
    WorkQueue,
)
from repro.service.scenarios import (
    Scenario,
    build_scenario,
    builtin_scenarios,
    replay,
)
from repro.service.server import FleetApp, make_server
from repro.service.sharding import ShardRouter, shard_for
from repro.service.state import (
    FleetSnapshot,
    FleetState,
    InstrumentedRouter,
    TenantDeployment,
    jain_index,
    load_penalty,
)

__all__ = [
    "Checkpoint",
    "DEFAULT_PRIORITIES",
    "DRIFT_PRIORITY",
    "DeployRequest",
    "FleetApp",
    "FleetConfig",
    "FleetController",
    "FleetEvent",
    "FleetLog",
    "FleetMetrics",
    "FleetService",
    "FleetSnapshot",
    "FleetState",
    "InstrumentedRouter",
    "Job",
    "LogRecord",
    "PREEMPT_PRIORITY",
    "Scenario",
    "ServerFailed",
    "ServerJoined",
    "ShardRouter",
    "StepClock",
    "TenantDeployment",
    "Tick",
    "UndeployRequest",
    "WorkQueue",
    "build_scenario",
    "builtin_scenarios",
    "format_detail",
    "jain_index",
    "load_checkpoint",
    "load_penalty",
    "make_server",
    "replay",
    "restore_controller",
    "shard_for",
    "write_checkpoint",
]
