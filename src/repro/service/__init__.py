"""The fleet controller service: long-running multi-tenant deployment.

The paper's algorithms place one workflow once. This package is the
layer its motivating scenario (section 2.1) actually calls for: a
provider that keeps a fleet of servers hosting many tenants' workflows
over time, absorbing arrivals, departures, server failures, new
capacity, and fairness drift -- deterministically, so every lifecycle
can be replayed and asserted upon byte for byte.

Modules
-------
:mod:`repro.service.events`
    The typed events the controller consumes.
:mod:`repro.service.state`
    :class:`FleetState`: the live fleet picture and its shared caches.
:mod:`repro.service.controller`
    :class:`FleetController`: the event loop and its policies.
:mod:`repro.service.log`
    The append-only decision log and the aggregate metrics snapshot.
:mod:`repro.service.scenarios`
    Seeded builtin scenarios and the replay driver behind
    ``repro fleet``.
"""

from repro.service.controller import FleetConfig, FleetController, StepClock
from repro.service.events import (
    DeployRequest,
    FleetEvent,
    ServerFailed,
    ServerJoined,
    Tick,
    UndeployRequest,
)
from repro.service.log import FleetLog, FleetMetrics, LogRecord
from repro.service.scenarios import (
    Scenario,
    build_scenario,
    builtin_scenarios,
    replay,
)
from repro.service.state import (
    FleetSnapshot,
    FleetState,
    InstrumentedRouter,
    TenantDeployment,
    jain_index,
    load_penalty,
)

__all__ = [
    "DeployRequest",
    "FleetConfig",
    "FleetController",
    "FleetEvent",
    "FleetLog",
    "FleetMetrics",
    "FleetSnapshot",
    "FleetState",
    "InstrumentedRouter",
    "LogRecord",
    "Scenario",
    "ServerFailed",
    "ServerJoined",
    "StepClock",
    "TenantDeployment",
    "Tick",
    "UndeployRequest",
    "build_scenario",
    "builtin_scenarios",
    "jain_index",
    "load_penalty",
    "replay",
]
